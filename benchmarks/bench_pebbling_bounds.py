"""E8 + E9 — the section 7 bound machinery on real computation graphs.

E8 (Lemma 8): exact line-spread T_d(j) of C_d vs the bound j^d/d!.
E9 (Theorem 4): realized line-time τ of 2S-partitions induced by real
pebblings vs the bound 2(d!·2S)^{1/d}.
"""

from repro.lattice.geometry import OrthogonalLattice
from repro.pebbling.bounds import (
    lemma8_lower_bound,
    theorem4_line_time_bound,
)
from repro.pebbling.division import induced_partition
from repro.pebbling.graph import ComputationGraph
from repro.pebbling.lines import line_spread, max_line_vertices_per_subset
from repro.pebbling.schedules import row_cache_schedule, trapezoid_schedule
from repro.util.tables import Table


def test_lemma8_line_spread(benchmark, report):
    def compute():
        rows = []
        for d, side, gens in ((1, 64, 16), (2, 24, 12), (3, 12, 8)):
            graph = ComputationGraph(OrthogonalLattice.cube(d, side), gens)
            for j in (1, 2, 4, 8):
                if j > gens:
                    continue
                rows.append(
                    (d, j, line_spread(graph, j), lemma8_lower_bound(d, j))
                )
        return rows

    rows = benchmark(compute)
    table = Table(
        "E8: line-spread T_d(j) vs Lemma 8 bound j^d/d! (must exceed it)",
        ["d", "j", "T_d(j) exact", "j^d/d!", "holds"],
    )
    for d, j, exact, bound in rows:
        table.add_row(d, j, exact, f"{bound:.2f}", exact > bound)
        assert exact > bound
    report(table)


def test_theorem4_realized_line_time(benchmark, report):
    def compute():
        rows = []
        g1 = ComputationGraph(OrthogonalLattice.cube(1, 48), generations=12)
        moves1 = row_cache_schedule(g1, depth=4)
        for storage in (8, 16, 32):
            part = induced_partition(g1, moves1, storage)
            tau = max_line_vertices_per_subset(g1, part)
            rows.append((1, storage, tau, theorem4_line_time_bound(1, storage)))
        g2 = ComputationGraph(OrthogonalLattice.cube(2, 10), generations=6)
        moves2 = trapezoid_schedule(g2, base=5, height=3)
        for storage in (32, 64, 128):
            part = induced_partition(g2, moves2, storage)
            tau = max_line_vertices_per_subset(g2, part)
            rows.append((2, storage, tau, theorem4_line_time_bound(2, storage)))
        return rows

    rows = benchmark(compute)
    table = Table(
        "E9: realized line-time τ of induced 2S-partitions vs Theorem 4 "
        "bound 2(d!·2S)^{1/d} (must stay below)",
        ["d", "S", "realized τ", "bound", "holds"],
    )
    for d, s, tau, bound in rows:
        table.add_row(d, s, tau, f"{bound:.1f}", tau < bound)
        assert tau < bound
    report(table)


def test_parallel_game_speedup(benchmark, report):
    """The parallel-red-blue game doing what it was invented for:
    same I/O as the sequential game, parallel time ~n× shorter."""
    from repro.pebbling.phased import layer_parallel_steps, measure_phased

    def run():
        rows = []
        for d, side, gens in ((1, 64, 8), (2, 12, 6)):
            graph = ComputationGraph(OrthogonalLattice.cube(d, side), gens)
            storage = graph.num_sites
            rep = measure_phased(
                graph, layer_parallel_steps(graph, storage), storage
            )
            rows.append(
                (
                    f"C_{d}({side}^{d}, T={gens})",
                    rep.io_moves,
                    rep.steps,
                    rep.sequential_moves_equivalent,
                    rep.parallel_speedup,
                )
            )
        return rows

    rows = benchmark(run)
    table = Table(
        "E9: parallel-red-blue game — same I/O, parallel time "
        "(pink-pebble slide: one layer of registers per generation)",
        ["graph", "I/O moves", "parallel steps", "sequential moves", "speedup"],
    )
    for name, io, steps, seq, speedup in rows:
        table.add_row(name, io, steps, seq, f"{speedup:.1f}x")
        assert speedup > 10
    report(table)


def test_theorem4_bound_growth(benchmark, report):
    """The bound's S^{1/d} shape across dimensions — the figure behind
    R = O(B·S^{1/d})."""

    def compute():
        rows = []
        for s in (16, 64, 256, 1024, 4096):
            rows.append(
                (s,)
                + tuple(theorem4_line_time_bound(d, s) for d in (1, 2, 3))
            )
        return rows

    rows = benchmark(compute)
    table = Table(
        "E9: Theorem 4 line-time bound vs storage (columns: d = 1, 2, 3)",
        ["S", "τ bound d=1", "τ bound d=2", "τ bound d=3"],
    )
    for s, b1, b2, b3 in rows:
        table.add_row(s, f"{b1:.0f}", f"{b2:.1f}", f"{b3:.1f}")
    report(table)
