"""E13 — the conclusions' promised machine comparison.

"We will apply these estimates to get quantitative comparisons between
competing architectures for lattice gas computations such as the
Connection Machine, the CRAY-XMP, and special purpose machines."

Every machine is reduced to (compute peak C, memory bandwidth B,
storage S, realized schedule reuse R/B); the table shows its realized
rate, its balance (realized/peak), the reuse a schedule must achieve to
reach the peak, and the Theorem-4 ceiling for context.
"""

from repro.core.machines import PERIOD_MACHINES, machine_comparison_rows
from repro.util.tables import Table, format_rate


def test_machine_comparison_2d(benchmark, report):
    rows = benchmark(machine_comparison_rows, 2)
    table = Table(
        "E13: 1987 machines on 2-D lattice-gas updates "
        "(reduced to the section 7 parameters)",
        [
            "machine",
            "compute peak",
            "B (site values/s)",
            "realized",
            "balance",
            "reuse needed",
            "Thm-4 ceiling",
        ],
    )
    for r in rows:
        table.add_row(
            r["name"],
            format_rate(r["compute_rate"]),
            f"{r['bandwidth_sites']:.2g}",
            format_rate(r["realized"]),
            f"{r['balance']:.0%}",
            f"{r['required_reuse']:.1f}",
            format_rate(r["io_ceiling"]),
        )
    report(table)
    by_name = {r["name"]: r for r in rows}
    # The section 8 story in one cell:
    assert by_name["WSA prototype chip"]["realized"] == 1e6
    # The paper's k = L system is exactly compute/I-O balanced:
    assert by_name["WSA max system (785 chips)"]["balance"] == 1.0


def test_dimension_sweep(benchmark, report):
    """The ceiling's d-dependence: the same machines on 2-D vs 3-D
    lattices (S^{1/3} buys less than S^{1/2})."""

    def sweep():
        out = []
        for m in PERIOD_MACHINES:
            out.append((m.name, m.io_ceiling(2), m.io_ceiling(3)))
        return out

    rows = benchmark(sweep)
    table = Table(
        "E13: Theorem-4 ceiling by lattice dimension",
        ["machine", "d=2 ceiling", "d=3 ceiling", "penalty"],
    )
    for name, c2, c3 in rows:
        table.add_row(name, format_rate(c2), format_rate(c3), f"{c2 / c3:.1f}x")
        assert c3 < c2
    report(table)


def test_reuse_gap(benchmark, report):
    """Required vs realized reuse: the machines whose schedules fall
    short of their compute peak are exactly the bandwidth-starved ones."""

    def rows_():
        out = []
        for m in PERIOD_MACHINES:
            out.append(
                (m.name, m.required_reuse(), m.schedule_reuse, m.balance())
            )
        return out

    rows = benchmark(rows_)
    table = Table(
        "E13: reuse required (peak/B) vs realized (schedule R/B)",
        ["machine", "required", "realized", "balance"],
    )
    for name, req, real, bal in rows:
        table.add_row(name, f"{req:.1f}", f"{real:.1f}", f"{bal:.0%}")
    report(table)
