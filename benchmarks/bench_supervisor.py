"""Supervision overhead: supervised sharded run vs direct evolution.

Not a paper experiment — housekeeping for the reproduction itself: the
supervised runtime (:mod:`repro.runtime`) promises fault tolerance for
roughly the price of the halo exchange, and this benchmark measures
that price.  Both arms advance the same lattice the same number of
generations on the same backend; the supervised arm adds worker
processes, the lock-step boundary barrier, and durable checkpoints.
R is site updates per second, the paper's throughput quantity.

Run directly::

    python benchmarks/bench_supervisor.py --assert-overhead 15

which exits 1 if the supervised arm is more than 15% slower than the
direct arm at the default 1024x1024 lattice (the acceptance budget).
Single-core containers still pass: the two arms do the same total
compute, so the measured difference is genuinely the supervision tax,
not a parallelism dividend foregone.
"""

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.lgca.automaton import LatticeGasAutomaton
from repro.runtime import ModelSpec, SupervisorConfig, supervised_run
from repro.telemetry import PERF_COUNTER, InMemoryRecorder, TelemetryReport
from repro.util.tables import Table, format_rate

#: Schema tag of the --json report; bump on layout changes.
SCHEMA = "repro/bench-supervisor/v1"


def run_pair(
    rows: int,
    cols: int,
    generations: int,
    workers: int,
    backend: str,
    seed: int,
    recorder: InMemoryRecorder | None = None,
) -> dict[str, object]:
    """Time one direct and one supervised run of the same evolution.

    Both arms are timed through bench-owned telemetry timers
    (``bench.supervisor.direct_seconds`` /
    ``bench.supervisor.supervised_seconds``); the supervised arm also
    feeds its lifecycle events into the same recorder.
    """
    spec = ModelSpec(kind="fhp6", rows=rows, cols=cols, boundary="periodic")
    updates = rows * cols * generations
    rec = recorder if recorder is not None else InMemoryRecorder(clock=PERF_COUNTER)
    clk = rec.clock

    # Both arms start from the same prebuilt state; each arm's timing
    # covers its own model construction (the workers build local models,
    # the direct arm builds the full one) plus the evolution itself.
    init = spec.initial_state(0.3, seed)
    t0 = clk()
    auto = LatticeGasAutomaton(spec.build(), init.copy(), backend=backend)
    auto.run(generations)
    direct_s = clk() - t0
    rec.timer("bench.supervisor.direct_seconds").record(direct_s)
    golden = auto.state.copy()

    config = SupervisorConfig(
        spec=spec,
        generations=generations,
        num_workers=workers,
        backend=backend,
        seed=seed,
        initial_state=init,
        # Checkpoint once (generation 0); the steady-state tax measured
        # here is the barrier + halo IPC, not checkpoint I/O.
        checkpoint_interval=generations + 1,
        watchdog_timeout=120.0,
    )
    t0 = clk()
    state, report = supervised_run(config, recorder=rec)
    supervised_s = clk() - t0
    rec.timer("bench.supervisor.supervised_seconds").record(supervised_s)

    overhead = (supervised_s - direct_s) / direct_s * 100.0
    return {
        "rows": rows,
        "cols": cols,
        "generations": generations,
        "workers": workers,
        "backend": backend,
        "direct_seconds": direct_s,
        "supervised_seconds": supervised_s,
        "direct_rate": updates / direct_s,
        "supervised_rate": updates / supervised_s,
        "overhead_percent": overhead,
        "outcome": report.outcome,
        "bit_identical": bool(
            state is not None and np.array_equal(state, golden)
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=1024)
    parser.add_argument("--cols", type=int, default=1024)
    parser.add_argument("--generations", type=int, default=32)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--backend", choices=("reference", "bitplane"), default="reference"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="measured pairs; the best (lowest-overhead) pair is asserted on",
    )
    parser.add_argument(
        "--assert-overhead",
        type=float,
        default=None,
        metavar="PCT",
        help="exit 1 if the best-of-repeats overhead exceeds PCT percent",
    )
    parser.add_argument("--json", default=None, metavar="PATH")
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="write the bench-owned telemetry report (arm timers plus "
        "supervisor lifecycle events) here; defaults to the --json path "
        "with a .telemetry.json suffix",
    )
    args = parser.parse_args(argv)

    # Warm up interpreter, kernels, and the process machinery off the clock.
    run_pair(64, 64, 4, args.workers, args.backend, args.seed)

    recorder = InMemoryRecorder(clock=PERF_COUNTER)
    results = [
        run_pair(
            args.rows, args.cols, args.generations, args.workers,
            args.backend, args.seed, recorder=recorder,
        )
        for _ in range(args.repeats)
    ]
    best = min(results, key=lambda r: r["overhead_percent"])

    table = Table(
        f"Supervision overhead: {args.rows}x{args.cols} fhp6, "
        f"G={args.generations}, {args.workers} workers, {args.backend}",
        ["quantity", "value"],
    )
    table.add_row("direct R", format_rate(best["direct_rate"]))
    table.add_row("supervised R", format_rate(best["supervised_rate"]))
    table.add_row("direct wall", f"{best['direct_seconds']:.2f}s")
    table.add_row("supervised wall", f"{best['supervised_seconds']:.2f}s")
    table.add_row("overhead", f"{best['overhead_percent']:+.1f}%")
    table.add_row("outcome", best["outcome"])
    table.add_row(
        "bit-identical", "yes" if best["bit_identical"] else "NO (BUG)"
    )
    table.print()

    if args.json:
        payload = {
            "schema": SCHEMA,
            "config": {
                "rows": args.rows,
                "cols": args.cols,
                "generations": args.generations,
                "workers": args.workers,
                "backend": args.backend,
                "repeats": args.repeats,
            },
            "results": results,
            "best_overhead_percent": best["overhead_percent"],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")

    # Telemetry rides along with every JSON report: same stem, sibling
    # .telemetry.json, so the differ always has a perf companion file.
    telemetry_path = args.telemetry
    if telemetry_path is None and args.json:
        telemetry_path = str(Path(args.json).with_suffix("")) + ".telemetry.json"
    if telemetry_path:
        TelemetryReport.from_recorder(
            recorder,
            meta={
                "command": "bench_supervisor",
                "rows": args.rows,
                "cols": args.cols,
                "generations": args.generations,
                "workers": args.workers,
                "backend": args.backend,
                "repeats": args.repeats,
            },
        ).write_json(telemetry_path)
        print(f"wrote {telemetry_path}")

    if not best["bit_identical"]:
        print("FAIL: supervised output is not bit-identical", file=sys.stderr)
        return 1
    if (
        args.assert_overhead is not None
        and best["overhead_percent"] > args.assert_overhead
    ):
        print(
            f"FAIL: supervision overhead {best['overhead_percent']:.1f}% "
            f"exceeds the {args.assert_overhead:g}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
