"""E5 + E6 — the section 6.3 architecture comparison tables.

E5: WSA vs SPA optimized for throughput (3x speed, ~4x bandwidth).
E6: WSA-E vs SPA at large lattices (12x per-chip speed, (2L+10)B vs
(128¾)B per-PE storage, L=1000: ~2x area at commercial memory density
and ~1/20 bandwidth).
"""

import numpy as np

from repro.core.comparison import (
    compare_extensible,
    compare_optimal_designs,
    summarize_architectures,
)
from repro.core.technology import PAPER_TECHNOLOGY
from repro.util.tables import Table


def test_optimal_comparison(benchmark, report):
    comp = benchmark(compare_optimal_designs)
    table = Table(
        "E5: WSA vs SPA at optimal operating points (section 6.3, first comparison)",
        ["quantity", "WSA", "SPA", "paper"],
    )
    table.add_row("PEs per chip", comp.wsa.pes_per_chip, comp.spa.pes_per_chip, "4 vs 12")
    table.add_row(
        "throughput/chip (updates/s)",
        f"{comp.wsa_summary.throughput_per_chip:.3g}",
        f"{comp.spa_summary.throughput_per_chip:.3g}",
        "SPA 3x faster",
    )
    table.add_row(
        "main-memory bandwidth (bits/tick)",
        f"{comp.wsa_summary.bandwidth_bits_per_tick:.0f}",
        f"{comp.spa_summary.bandwidth_bits_per_tick:.0f}",
        "64 vs 262 (~4x)",
    )
    table.add_row(
        "access pattern",
        comp.wsa_summary.access_pattern,
        comp.spa_summary.access_pattern,
        "raster vs row-staggered",
    )
    table.add_row(
        "extensible",
        comp.wsa_summary.extensible,
        comp.spa_summary.extensible,
        "SPA only",
    )
    table.add_row(
        "speed ratio SPA/WSA", "", f"{comp.speedup_spa_over_wsa:.2f}", "3"
    )
    table.add_row(
        "bandwidth ratio SPA/WSA",
        "",
        f"{comp.bandwidth_ratio_spa_over_wsa:.2f}",
        "~4 (262/64=4.09)",
    )
    report(table)


def test_extensible_comparison(benchmark, report):
    comp = benchmark(compare_extensible, 1000)
    b = PAPER_TECHNOLOGY.B
    table = Table(
        "E6: WSA-E vs SPA at L = 1000 (section 6.3, second comparison)",
        ["quantity", "WSA-E", "SPA", "paper"],
    )
    table.add_row("PEs per chip", 1, comp.spa.pes_per_chip, "1 vs 12 (12x)")
    table.add_row(
        "bandwidth (bits/tick)",
        comp.wsa_e.main_memory_bandwidth_bits_per_tick,
        f"{comp.spa.main_memory_bandwidth_bits_per_tick:.0f}",
        "16 vs 16L/W",
    )
    table.add_row(
        "storage/PE (units of B)",
        f"{comp.wsa_e.storage_area_per_pe / b:.1f}",
        f"{comp.spa.storage_area_per_pe / b:.2f}",
        "(2L+10) vs 128¾",
    )
    table.add_row(
        "area ratio (κ=8 commercial)",
        f"{comp.commercial_area_ratio_wsa_e_over_spa:.2f}",
        "1",
        "'about twice'",
    )
    table.add_row(
        "bandwidth ratio",
        f"1/{1 / comp.bandwidth_ratio_wsa_e_over_spa:.1f}",
        "1",
        "'about one twentieth'",
    )
    report(table)


def test_lattice_size_sweep(benchmark, report):
    """The penalty regimes: WSA-E area grows with L, SPA bandwidth grows
    with L (the paper's closing point of section 6.3)."""

    def sweep():
        rows = []
        for size in (500, 1000, 2000, 4000):
            c = compare_extensible(size)
            rows.append(
                (
                    size,
                    f"{c.wsa_e.storage_area_per_pe / PAPER_TECHNOLOGY.B:.0f}B",
                    c.wsa_e.main_memory_bandwidth_bits_per_tick,
                    f"{c.spa.storage_area_per_pe / PAPER_TECHNOLOGY.B:.0f}B",
                    f"{c.spa.main_memory_bandwidth_bits_per_tick:.0f}",
                )
            )
        return rows

    rows = benchmark(sweep)
    table = Table(
        "E6: growth regimes vs lattice size",
        ["L", "WSA-E storage/PE", "WSA-E bw (bits/tick)", "SPA storage/PE", "SPA bw (bits/tick)"],
    )
    table.add_rows(rows)
    report(table)


def test_commercial_density_ablation(benchmark, report):
    """The κ the paper's 'about twice the area' implicitly assumes."""

    def sweep():
        rows = []
        for kappa in (1.0, 2.0, 4.0, 8.0, 16.0):
            c = compare_extensible(1000, commercial_density=kappa)
            rows.append((kappa, f"{c.commercial_area_ratio_wsa_e_over_spa:.2f}"))
        return rows

    rows = benchmark(sweep)
    table = Table(
        "E6-ablation: WSA-E/SPA area ratio vs off-chip memory density κ "
        "(paper's 'about twice' needs κ≈8)",
        ["κ", "area ratio"],
    )
    table.add_rows(rows)
    report(table)


def test_regime_map(benchmark, report):
    """The conclusions' plane: 'Each has its preferred operating regime
    in different parts of the throughput vs. lattice-size plane.'  The
    regimes appear once the main-memory bandwidth budget binds."""
    from repro.core.regimes import regime_map

    lattice_sizes = [100, 400, 785, 1000, 2000, 4000]
    chip_budgets = [1, 10, 100, 1000]

    def build():
        return {
            budget: regime_map(
                lattice_sizes, chip_budgets, bandwidth_budget_bits_per_tick=budget
            )
            for budget in (None, 64, 320)
        }

    maps = benchmark(build)
    for budget, points in maps.items():
        label = "unconstrained" if budget is None else f"{budget} bits/tick"
        table = Table(
            f"E5/E6: winning architecture, memory budget = {label} "
            "(rows: lattice size L; columns: chip budget N)",
            ["L \\ N"] + [str(n) for n in chip_budgets],
        )
        for lattice_size in lattice_sizes:
            row = [p.winner for p in points if p.lattice_size == lattice_size]
            table.add_row(lattice_size, *row)
        report(table)
    constrained = {
        (p.lattice_size, p.num_chips): p.winner for p in maps[64]
    }
    assert constrained[(100, 10)] == "SPA"
    assert constrained[(785, 100)] == "WSA"
    assert constrained[(2000, 100)] == "WSA-E"


def test_three_architecture_summary(benchmark, report):
    rows = benchmark(summarize_architectures)
    table = Table(
        "E5/E6: all architectures side by side",
        ["arch", "PEs/chip", "bw bits/tick", "storage/PE (B)", "pattern", "extensible"],
    )
    for r in rows:
        table.add_row(
            r.name,
            f"{r.pes_per_chip:.0f}",
            f"{r.bandwidth_bits_per_tick:.0f}",
            f"{r.storage_area_per_pe / PAPER_TECHNOLOGY.B:.0f}",
            r.access_pattern,
            r.extensible,
        )
    report(table)
