"""Benchmark harness plumbing.

Each benchmark regenerates one of the paper's tables or figures as a
fixed-width text table (the "series" a figure plots).  Tables are
printed to stdout *and* appended to ``benchmarks/out/<module>.txt`` so
``pytest benchmarks/ --benchmark-only`` leaves a reviewable artifact
even with output capture on.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.util.tables import Table

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def report(request):
    """Print a table and persist it under benchmarks/out/."""

    def _report(table: Table) -> None:
        text = table.render()
        print()
        print(text)
        OUT_DIR.mkdir(exist_ok=True)
        out_file = OUT_DIR / f"{request.module.__name__}.txt"
        with out_file.open("a") as fh:
            fh.write(text + "\n\n")

    return _report


@pytest.fixture(scope="session", autouse=True)
def _clean_out_dir():
    """Start each bench session with fresh artifacts."""
    if OUT_DIR.exists():
        for f in OUT_DIR.glob("*.txt"):
            f.unlink()
    yield
