"""E4 — the SPA design-space figure (paper section 6.2).

Regenerates the P-vs-W figure: the constant pin-optimal line
P = Π²/(16DE) = 13.5 and the area curve P = 1/((2W+9)B + Γ), their
corner (P ≈ 13.5, W ≈ 43), and the integer design (P_w = 2, P_k = 6).
"""

import pytest

from repro.core.spa import SPAModel
from repro.core.technology import PAPER_TECHNOLOGY
from repro.util.tables import Table


def test_spa_design_curves(benchmark, report):
    model = SPAModel(PAPER_TECHNOLOGY)

    def build():
        return model.design_curves(w_min=1, w_max=1000, num=101)

    pins, area = benchmark(build)

    table = Table(
        "E4: SPA design space (figure, section 6.2) — P limit vs slice width W",
        ["W (sites)", "P pin-limit (Π²/16DE)", "P area-limit"],
    )
    for x in (1, 25, 43, 50, 100, 200, 400, 600, 800, 1000):
        table.add_row(x, pins.at(x), area.at(x))
    report(table)

    corner = model.corner()
    pw, pk = model.optimal_split_continuous()
    ipw, ipk = model.optimal_integer_split()
    t2 = Table(
        "E4: SPA operating point (paper: corner P≈13.5, W≈43; P_w=9/4)",
        ["quantity", "model", "paper"],
    )
    t2.add_row("continuous corner P", f"{corner.p:.2f}", "13.5")
    t2.add_row("continuous corner W", f"{corner.x:.1f}", "~43")
    t2.add_row("continuous split P_w", f"{pw:.2f}", "9/4 = 2.25")
    t2.add_row("continuous split P_k", f"{pk:.2f}", "6")
    t2.add_row("integer split (P_w, P_k)", f"({ipw}, {ipk})", "(2, 6) -> 12 PEs")
    d = model.optimal_design(785)
    t2.add_row("integer design W", d.slice_width, 43)
    t2.add_row("pins used", d.pins_used, "68 of 72")
    t2.add_row("chip area used", f"{d.chip_area_used:.4f}", "<= 1")
    report(t2)


def test_spa_split_tradeoff(benchmark, report):
    """The pin budget trade: every feasible (P_w, P_k) split and its
    product — showing why (2,6) (or (3,4)) wins."""
    t = PAPER_TECHNOLOGY

    def enumerate_splits():
        rows = []
        for pw in range(1, t.Pi // (2 * t.D) + 1):
            pk = (t.Pi - 2 * t.D * pw) // (2 * t.E)
            if pk >= 1:
                rows.append((pw, pk, pw * pk, 2 * t.D * pw + 2 * t.E * pk))
        return rows

    rows = benchmark(enumerate_splits)
    table = Table(
        "E4: feasible integer (P_w, P_k) splits under 2D·P_w + 2E·P_k <= 72",
        ["P_w", "P_k", "P = P_w·P_k", "pins used"],
    )
    table.add_rows(rows)
    report(table)


def test_pin_scaling_ablation(benchmark, report):
    """How the two architectures spend a bigger package: the WSA's PE
    count grows *linearly* in Π (P = Π/2D) while the SPA's grows
    *quadratically* (P = Π²/16DE) until chip area bites — the structural
    reason the partitioned design ultimately wins the pin race, and an
    ablation the models make one-line."""
    from repro.core.wsa import WSAModel

    def sweep():
        rows = []
        for pins in (36, 72, 144, 288, 576):
            tech = PAPER_TECHNOLOGY.with_(pins=pins)
            wsa_p = int(WSAModel(tech).pin_limit())
            spa_model = SPAModel(tech)
            pin_p = spa_model.pin_limit()
            try:
                pw, pk = spa_model.optimal_integer_split()
                spa_p = pw * pk
            except ValueError:
                spa_p = 0
            rows.append((pins, wsa_p, pin_p, spa_p))
        return rows

    rows = benchmark(sweep)
    table = Table(
        "E4-ablation: PEs per chip vs pin budget Π "
        "(WSA ∝ Π; SPA ∝ Π² until area binds)",
        ["Π", "WSA P (pins)", "SPA P (pins, continuous)", "SPA P (integer, area-capped)"],
    )
    for pins, wsa_p, pin_p, spa_p in rows:
        table.add_row(pins, wsa_p, f"{pin_p:.1f}", spa_p)
    report(table)
    # quadratic vs linear in the un-capped region:
    assert rows[1][1] == 2 * rows[0][1]  # WSA doubles
    assert rows[1][2] == pytest.approx(4 * rows[0][2])  # SPA quadruples


def test_spa_beyond_corner_dropoff(benchmark, report):
    """'Beyond this point, throughput drops off quite rapidly as the
    silicon real estate is used by memory.'"""
    model = SPAModel(PAPER_TECHNOLOGY)

    def sweep():
        rows = []
        for w in (43, 60, 100, 200, 400, 800):
            p = min(model.pin_limit(), model.area_limit(w))
            rows.append((w, p))
        return rows

    rows = benchmark(sweep)
    table = Table("E4: P achievable vs W past the corner", ["W", "P achievable"])
    for w, p in rows:
        table.add_row(w, f"{p:.2f}")
    report(table)
