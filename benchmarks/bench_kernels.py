"""Library kernel performance (pytest-benchmark timings proper).

Not a paper experiment — housekeeping for the reproduction itself:
tracks the throughput of the vectorized kernels so a performance
regression in the substrate is visible.  The guide rule applied here is
the usual one: measure, don't guess; the table reports site updates per
second for each kernel at a realistic size.
"""

import numpy as np
import pytest

from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.lgca.hpp import HPPModel
from repro.lgca.ndim import NDHPPModel
from repro.util.tables import Table, format_rate

SIZE = 256


@pytest.fixture(scope="module")
def fhp_state():
    rng = np.random.default_rng(0)
    return uniform_random_state(SIZE, SIZE, 6, 0.3, rng)


def _rate(benchmark, updates):
    return updates / benchmark.stats.stats.mean


def test_fhp_step(benchmark, report, fhp_state):
    model = FHPModel(SIZE, SIZE)
    benchmark(model.step, fhp_state, 0)
    table = Table("kernel: FHP-6 full step (collide + propagate)", ["quantity", "value"])
    table.add_row("lattice", f"{SIZE}x{SIZE}")
    table.add_row("rate", format_rate(_rate(benchmark, SIZE * SIZE)))
    report(table)


def test_fhp_collide_only(benchmark, report, fhp_state):
    model = FHPModel(SIZE, SIZE)
    benchmark(model.collide, fhp_state, 0)
    table = Table("kernel: FHP-6 collide (table lookup + chirality mix)", ["quantity", "value"])
    table.add_row("rate", format_rate(_rate(benchmark, SIZE * SIZE)))
    report(table)


def test_fhp_propagate_only(benchmark, report, fhp_state):
    model = FHPModel(SIZE, SIZE)
    benchmark(model.propagate, fhp_state)
    table = Table("kernel: FHP-6 propagate (6-channel gather)", ["quantity", "value"])
    table.add_row("rate", format_rate(_rate(benchmark, SIZE * SIZE)))
    report(table)


def test_hpp_step(benchmark, report):
    model = HPPModel(SIZE, SIZE)
    rng = np.random.default_rng(1)
    state = uniform_random_state(SIZE, SIZE, 4, 0.3, rng)
    benchmark(model.step, state, 0)
    table = Table("kernel: HPP full step", ["quantity", "value"])
    table.add_row("rate", format_rate(_rate(benchmark, SIZE * SIZE)))
    report(table)


def test_ndhpp_3d_step(benchmark, report):
    model = NDHPPModel((32, 32, 32))
    rng = np.random.default_rng(2)
    state = rng.integers(0, 64, size=(32, 32, 32)).astype(np.uint8)
    benchmark(model.step, state, 0)
    table = Table("kernel: 3-D gas full step", ["quantity", "value"])
    table.add_row("lattice", "32^3")
    table.add_row("rate", format_rate(_rate(benchmark, 32**3)))
    report(table)


def test_engine_stage_vectorized(benchmark, report, fhp_state):
    from repro.engines.pe import make_rule
    from repro.engines.pipeline import PipelineStage

    model = FHPModel(SIZE, SIZE, boundary="null")
    stage = PipelineStage(make_rule(model))
    stream = fhp_state.ravel()
    benchmark(stage.process, stream, 0)
    table = Table("kernel: pipeline stage (vectorized gather)", ["quantity", "value"])
    table.add_row("rate", format_rate(_rate(benchmark, SIZE * SIZE)))
    report(table)
