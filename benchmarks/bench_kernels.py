"""Library kernel performance (pytest-benchmark timings proper).

Not a paper experiment — housekeeping for the reproduction itself:
tracks the throughput of the vectorized kernels so a performance
regression in the substrate is visible.  The guide rule applied here is
the usual one: measure, don't guess; the table reports site updates per
second for each kernel at a realistic size.

Run directly (no pytest needed) for the backend comparison pipeline::

    python benchmarks/bench_kernels.py --json BENCH_kernels.json

which measures R — site updates per second, the paper's throughput
quantity — for every registered kernel backend across grid sizes and
models, and writes a schema-versioned JSON report.  CI runs a small
configuration of this and asserts the bitplane backend beats the
reference.
"""

import argparse
import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.lgca.backends import make_stepper
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.lgca.hpp import HPPModel
from repro.lgca.ndim import NDHPPModel
from repro.telemetry import PERF_COUNTER, InMemoryRecorder, TelemetryReport
from repro.util.tables import Table, format_rate

SIZE = 256

#: Schema tag of the --json report; bump on layout changes.
#: v2: per-worker-count rows for the "parallel" backend ("workers" key),
#: with parallel-efficiency and vs-bitplane speedup annotations.
SCHEMA = "repro/bench-kernels/v2"


@pytest.fixture(scope="module")
def fhp_state():
    rng = np.random.default_rng(0)
    return uniform_random_state(SIZE, SIZE, 6, 0.3, rng)


def _rate(benchmark, updates):
    return updates / benchmark.stats.stats.mean


def test_fhp_step(benchmark, report, fhp_state):
    model = FHPModel(SIZE, SIZE)
    benchmark(model.step, fhp_state, 0)
    table = Table("kernel: FHP-6 full step (collide + propagate)", ["quantity", "value"])
    table.add_row("lattice", f"{SIZE}x{SIZE}")
    table.add_row("rate", format_rate(_rate(benchmark, SIZE * SIZE)))
    report(table)


def test_fhp_collide_only(benchmark, report, fhp_state):
    model = FHPModel(SIZE, SIZE)
    benchmark(model.collide, fhp_state, 0)
    table = Table("kernel: FHP-6 collide (table lookup + chirality mix)", ["quantity", "value"])
    table.add_row("rate", format_rate(_rate(benchmark, SIZE * SIZE)))
    report(table)


def test_fhp_propagate_only(benchmark, report, fhp_state):
    model = FHPModel(SIZE, SIZE)
    benchmark(model.propagate, fhp_state)
    table = Table("kernel: FHP-6 propagate (6-channel gather)", ["quantity", "value"])
    table.add_row("rate", format_rate(_rate(benchmark, SIZE * SIZE)))
    report(table)


def test_hpp_step(benchmark, report):
    model = HPPModel(SIZE, SIZE)
    rng = np.random.default_rng(1)
    state = uniform_random_state(SIZE, SIZE, 4, 0.3, rng)
    benchmark(model.step, state, 0)
    table = Table("kernel: HPP full step", ["quantity", "value"])
    table.add_row("rate", format_rate(_rate(benchmark, SIZE * SIZE)))
    report(table)


def test_ndhpp_3d_step(benchmark, report):
    model = NDHPPModel((32, 32, 32))
    rng = np.random.default_rng(2)
    state = rng.integers(0, 64, size=(32, 32, 32)).astype(np.uint8)
    benchmark(model.step, state, 0)
    table = Table("kernel: 3-D gas full step", ["quantity", "value"])
    table.add_row("lattice", "32^3")
    table.add_row("rate", format_rate(_rate(benchmark, 32**3)))
    report(table)


def test_engine_stage_vectorized(benchmark, report, fhp_state):
    from repro.engines.pe import make_rule
    from repro.engines.pipeline import PipelineStage

    model = FHPModel(SIZE, SIZE, boundary="null")
    stage = PipelineStage(make_rule(model))
    stream = fhp_state.ravel()
    benchmark(stage.process, stream, 0)
    table = Table("kernel: pipeline stage (vectorized gather)", ["quantity", "value"])
    table.add_row("rate", format_rate(_rate(benchmark, SIZE * SIZE)))
    report(table)


def test_bitplane_step(benchmark, report, fhp_state):
    stepper = make_stepper(FHPModel(SIZE, SIZE), backend="bitplane")
    benchmark(stepper.run, fhp_state, 8)
    table = Table(
        "kernel: FHP-6 bitplane backend (8 generations)", ["quantity", "value"]
    )
    table.add_row("lattice", f"{SIZE}x{SIZE}")
    table.add_row("rate", format_rate(_rate(benchmark, 8 * SIZE * SIZE)))
    report(table)


# -- the R (site updates/sec) measurement pipeline ---------------------------


def _make_model(name: str, rows: int, cols: int):
    """Build a periodic model by benchmark name."""
    if name == "hpp":
        return HPPModel(rows, cols)
    if name == "fhp6":
        return FHPModel(rows, cols)
    if name == "fhp7":
        return FHPModel(rows, cols, rest_particles=True)
    if name == "fhp-sat":
        return FHPModel(rows, cols, rest_particles=True, saturated=True)
    raise ValueError(f"unknown model {name!r}")


def _cell_timer_name(
    model_name: str, size: int, backend: str, workers: int | None
) -> str:
    """Telemetry timer name for one measurement cell."""
    suffix = f".w{workers}" if workers is not None else ""
    return f"bench.kernels.{model_name}.{size}.{backend}{suffix}.pass_seconds"


def measure_backend(
    model_name: str,
    size: int,
    backend: str,
    generations: int,
    repeats: int,
    density: float = 0.3,
    seed: int = 0,
    workers: int | None = None,
    recorder: InMemoryRecorder | None = None,
) -> dict:
    """Measure R for one (model, size, backend[, workers]) cell.

    Runs one untimed warmup pass (buffer allocation, table compilation,
    thread-pool spin-up), then ``repeats`` timed passes of
    ``generations`` steps each, and quotes R from the *best* pass — the
    standard way to estimate the kernel's intrinsic rate under
    scheduler noise.  Timing goes through a bench-owned telemetry timer
    (one per cell, ``perf_counter`` clock); R is read back from the
    timer's recorded minimum.  The stepper itself stays on the default
    ``NullRecorder`` so kernel-side instrumentation cannot perturb the
    measurement.
    """
    model = _make_model(model_name, size, size)
    rng = np.random.default_rng(seed)
    state = uniform_random_state(size, size, model.num_channels, density, rng)
    stepper = make_stepper(model, backend=backend, workers=workers)
    stepper.run(state, generations)  # warmup, untimed
    rec = recorder if recorder is not None else InMemoryRecorder(clock=PERF_COUNTER)
    clk = rec.clock
    timer = rec.timer(_cell_timer_name(model_name, size, backend, workers))
    for _ in range(repeats):
        start = clk()
        stepper.run(state, generations)
        timer.record(clk() - start)
    best = timer.min
    updates = generations * size * size
    rec = {
        "model": model_name,
        "rows": size,
        "cols": size,
        "backend": backend,
        "generations": generations,
        "repeats": repeats,
        "best_seconds": best,
        "site_updates": updates,
        "updates_per_second": updates / best,
    }
    if workers is not None:
        rec["workers"] = workers
    return rec


def run_matrix(
    sizes: list[int],
    models: list[str],
    backends: list[str],
    generations: int,
    repeats: int,
    workers_sweep: list[int] | None = None,
    recorder: InMemoryRecorder | None = None,
) -> dict:
    """The full measurement matrix plus per-cell speedup annotations.

    ``workers_sweep`` expands the ``"parallel"`` backend into one row
    per worker count; those rows carry thread-scaling annotations:
    ``parallel_efficiency`` (R(w) / (w · R(1)), the fraction of ideal
    linear scaling retained) and ``speedup_vs_bitplane`` (the overhead
    or win against the single-slab kernel the tiles are built from).
    """
    results = []
    for model_name in models:
        for size in sizes:
            by_backend = {}
            parallel_rows = []
            for backend in backends:
                if backend == "parallel" and workers_sweep:
                    for w in workers_sweep:
                        rec = measure_backend(
                            model_name, size, backend, generations, repeats,
                            workers=w, recorder=recorder,
                        )
                        parallel_rows.append(rec)
                        results.append(rec)
                    continue
                rec = measure_backend(
                    model_name, size, backend, generations, repeats,
                    recorder=recorder,
                )
                by_backend[backend] = rec
                results.append(rec)
            if "reference" in by_backend and "bitplane" in by_backend:
                ref = by_backend["reference"]["updates_per_second"]
                fast = by_backend["bitplane"]["updates_per_second"]
                by_backend["bitplane"]["speedup_vs_reference"] = fast / ref
            one = next((r for r in parallel_rows if r["workers"] == 1), None)
            for rec in parallel_rows:
                if one is not None and rec["workers"] >= 1:
                    rec["parallel_efficiency"] = rec["updates_per_second"] / (
                        rec["workers"] * one["updates_per_second"]
                    )
                if "bitplane" in by_backend:
                    rec["speedup_vs_bitplane"] = (
                        rec["updates_per_second"]
                        / by_backend["bitplane"]["updates_per_second"]
                    )
    return {
        "schema": SCHEMA,
        "quantity": "R, site updates per second (paper's throughput measure)",
        "config": {
            "sizes": sizes,
            "models": models,
            "backends": backends,
            "generations": generations,
            "repeats": repeats,
            "workers": workers_sweep,
        },
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure R (site updates/sec) for the registered kernel backends."
    )
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the schema-versioned report here")
    parser.add_argument("--sizes", default="256,512,1024",
                        help="comma-separated square grid sizes")
    parser.add_argument("--models", default="hpp,fhp6",
                        help="comma-separated: hpp, fhp6, fhp7, fhp-sat")
    parser.add_argument("--backends", default="reference,bitplane",
                        help="comma-separated backend names")
    parser.add_argument("--generations", type=int, default=16,
                        help="steps per timed pass")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed passes per cell (best is quoted)")
    parser.add_argument("--workers", default=None, metavar="N,M,...",
                        help="comma-separated worker counts: sweep the "
                        "'parallel' backend once per count")
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="write the bench-owned telemetry report "
                        "(per-cell pass timers) here; defaults to the "
                        "--json path with a .telemetry.json suffix")
    parser.add_argument("--assert-speedup", type=float, default=None, metavar="FACTOR",
                        help="exit 1 unless bitplane beats reference by FACTOR "
                        "in every measured cell")
    parser.add_argument("--assert-parallel-ratio", type=float, default=None,
                        metavar="FACTOR",
                        help="exit 1 unless every multi-worker parallel cell "
                        "reaches FACTOR x the bitplane R at the same size "
                        "(the no-regression thread-overhead gate)")
    args = parser.parse_args(argv)

    sizes = [int(s) for s in args.sizes.split(",") if s]
    models = [m.strip() for m in args.models.split(",") if m.strip()]
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    workers_sweep = (
        [int(w) for w in args.workers.split(",") if w] if args.workers else None
    )
    if workers_sweep and "parallel" not in backends:
        backends.append("parallel")
    recorder = InMemoryRecorder(clock=PERF_COUNTER)
    report = run_matrix(
        sizes, models, backends, args.generations, args.repeats, workers_sweep,
        recorder=recorder,
    )

    table = Table(
        "R: site updates per second by backend",
        ["model", "grid", "backend", "R", "speedup", "efficiency"],
    )
    for rec in report["results"]:
        backend = rec["backend"]
        if "workers" in rec:
            backend = f"{backend}@{rec['workers']}"
        speedup = rec.get("speedup_vs_reference", rec.get("speedup_vs_bitplane"))
        efficiency = rec.get("parallel_efficiency")
        table.add_row(
            rec["model"],
            f"{rec['rows']}x{rec['cols']}",
            backend,
            format_rate(rec["updates_per_second"]),
            f"{speedup:.2f}x" if speedup is not None else "-",
            f"{efficiency:.2f}" if efficiency is not None else "-",
        )
    table.print()

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")

    # Telemetry rides along with every JSON report: same stem, sibling
    # .telemetry.json, so the differ always has a perf companion file.
    telemetry_path = args.telemetry
    if telemetry_path is None and args.json:
        telemetry_path = str(Path(args.json).with_suffix("")) + ".telemetry.json"
    if telemetry_path:
        TelemetryReport.from_recorder(
            recorder,
            meta={
                "command": "bench_kernels",
                "sizes": args.sizes,
                "models": args.models,
                "backends": ",".join(backends),
                "generations": args.generations,
                "repeats": args.repeats,
            },
        ).write_json(telemetry_path)
        print(f"wrote {telemetry_path}")

    if args.assert_speedup is not None:
        failed = [
            rec for rec in report["results"]
            if rec.get("speedup_vs_reference") is not None
            and rec["speedup_vs_reference"] < args.assert_speedup
        ]
        checked = [r for r in report["results"] if "speedup_vs_reference" in r]
        if not checked:
            print("assert-speedup: no (reference, bitplane) pairs measured", file=sys.stderr)
            return 1
        if failed:
            for rec in failed:
                print(
                    f"assert-speedup FAILED: {rec['model']} {rec['rows']}x{rec['cols']} "
                    f"bitplane is only {rec['speedup_vs_reference']:.2f}x reference "
                    f"(< {args.assert_speedup}x)",
                    file=sys.stderr,
                )
            return 1
        print(f"assert-speedup OK: every cell >= {args.assert_speedup}x")

    if args.assert_parallel_ratio is not None:
        checked = [
            rec for rec in report["results"]
            if rec.get("workers", 0) > 1 and "speedup_vs_bitplane" in rec
        ]
        if not checked:
            print(
                "assert-parallel-ratio: no multi-worker (parallel, bitplane) "
                "pairs measured",
                file=sys.stderr,
            )
            return 1
        failed = [
            rec for rec in checked
            if rec["speedup_vs_bitplane"] < args.assert_parallel_ratio
        ]
        if failed:
            for rec in failed:
                print(
                    f"assert-parallel-ratio FAILED: {rec['model']} "
                    f"{rec['rows']}x{rec['cols']} parallel@{rec['workers']} is "
                    f"only {rec['speedup_vs_bitplane']:.2f}x bitplane "
                    f"(< {args.assert_parallel_ratio}x)",
                    file=sys.stderr,
                )
            return 1
        print(
            f"assert-parallel-ratio OK: every multi-worker cell >= "
            f"{args.assert_parallel_ratio}x bitplane"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
