"""E1 — Theorem 1 and the stream-embedding storage figures (section 3).

Regenerates: span of every classical embedding vs the Theorem 1 lower
bound n, and the hexagonal-neighborhood stream spread (the 2n / 2n−2
delay-line figures that force 'about 2000 sites worth of memory' at
n = 1000).
"""

from repro.lattice.embedding import (
    block_embedding,
    column_major_embedding,
    diagonal_embedding,
    hex_diagonal_pair_distance,
    hex_neighborhood_stream_diameter,
    minimum_span_lower_bound,
    row_major_embedding,
    snake_embedding,
)
from repro.util.tables import Table

EMBEDDINGS = [
    row_major_embedding,
    column_major_embedding,
    snake_embedding,
    block_embedding,
    diagonal_embedding,
]


def test_span_vs_theorem1(benchmark, report):
    n = 256

    def spans():
        return [(make(n).name, make(n).span()) for make in EMBEDDINGS]

    rows = benchmark(spans)
    table = Table(
        f"E1: embedding span at n = {n} vs Theorem 1 bound (span >= n = {n})",
        ["embedding", "span", ">= n?"],
    )
    for name, span in rows:
        table.add_row(name, span, span >= minimum_span_lower_bound(n))
    report(table)


def test_neighborhood_memory_figures(benchmark, report):
    def figures():
        rows = []
        for n in (100, 500, 785, 1000):
            emb = row_major_embedding(n)
            rows.append(
                (
                    n,
                    emb.span(),
                    hex_neighborhood_stream_diameter(emb.positions),
                    hex_diagonal_pair_distance(emb.positions),
                )
            )
        return rows

    rows = benchmark(figures)
    table = Table(
        "E1: row-major PE delay memory vs lattice size "
        "(paper: 'about 2000 sites' at n = 1000; quoted pair gap 2n-2)",
        ["n", "span", "hex neighborhood spread (2n)", "diagonal pair gap (2n-2)"],
    )
    table.add_rows(rows)
    report(table)


def test_random_placements_obey_theorem1(benchmark, report):
    """Monte-Carlo face of Theorem 1: no random placement beats span n."""
    import numpy as np

    rng = np.random.default_rng(0)
    n = 32

    def trial_min_span():
        from repro.lattice.embedding import array_span

        best = 10**9
        for _ in range(200):
            perm = rng.permutation(n * n).reshape(n, n)
            best = min(best, array_span(perm))
        return best

    best = benchmark(trial_min_span)
    table = Table(
        f"E1: best span over 200 random {n}x{n} placements",
        ["best random span", "Theorem 1 bound", "row-major (optimal class)"],
    )
    table.add_row(best, n, row_major_embedding(n).span())
    report(table)
    assert best >= n
