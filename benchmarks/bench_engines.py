"""E11 — engine functional equivalence and measured machine balance.

Runs the three architectures (serial pipeline, WSA, SPA) on the same FHP
gas, asserts bit-identical evolution, and prints the measured machine
balance — updates/tick, bandwidth, PE utilization, storage — next to the
analytic design-model predictions.
"""

import numpy as np
import pytest

from repro.engines.partitioned import PartitionedEngine
from repro.engines.pipeline import SerialPipelineEngine
from repro.engines.wide_serial import WideSerialEngine
from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.util.tables import Table

ROWS, COLS, GENS = 32, 32, 8


@pytest.fixture(scope="module")
def workload():
    model = FHPModel(ROWS, COLS, boundary="null", chirality="alternate")
    rng = np.random.default_rng(2024)
    frame = uniform_random_state(ROWS, COLS, 6, 0.35, rng)
    reference = LatticeGasAutomaton(model, frame.copy())
    reference.run(GENS)
    return model, frame, reference.state


def test_serial_pipeline_engine(benchmark, report, workload):
    model, frame, expected = workload
    engine = SerialPipelineEngine(model, pipeline_depth=4)
    out, stats = benchmark(engine.run, frame.copy(), GENS)
    assert np.array_equal(out, expected)
    _report_stats(report, "serial pipeline (k=4)", stats)


def test_wide_serial_engine(benchmark, report, workload):
    model, frame, expected = workload
    engine = WideSerialEngine(model, lanes=4, pipeline_depth=4)
    out, stats = benchmark(engine.run, frame.copy(), GENS)
    assert np.array_equal(out, expected)
    _report_stats(report, "WSA (P=4, k=4)", stats)


def test_partitioned_engine(benchmark, report, workload):
    model, frame, expected = workload
    engine = PartitionedEngine(model, slice_width=8, pipeline_depth=4)
    out, stats = benchmark(engine.run, frame.copy(), GENS)
    assert np.array_equal(out, expected)
    _report_stats(report, "SPA (W=8, k=4)", stats)


def _report_stats(report, name, stats):
    table = Table(f"E11: {name} measured machine balance", ["quantity", "value"])
    table.add_row("site updates", stats.site_updates)
    table.add_row("ticks", stats.ticks)
    table.add_row("updates per tick", f"{stats.updates_per_tick:.3f}")
    table.add_row("PE utilization", f"{stats.pe_utilization:.1%}")
    table.add_row("main-memory bits/tick", f"{stats.main_bandwidth_bits_per_tick:.1f}")
    table.add_row("side-channel bits", stats.io_bits_side)
    table.add_row("delay storage (sites)", stats.storage_sites)
    table.add_row("I/O bits per update", f"{stats.io_bits_per_update:.3f}")
    report(table)


def test_extensible_engine(benchmark, report, workload):
    """WSA-E simulator: same evolution, off-chip delay accounting."""
    from repro.engines.extensible import ExtensibleSerialEngine

    model, frame, expected = workload
    engine = ExtensibleSerialEngine(model, pipeline_depth=4)
    out, stats = benchmark(engine.run, frame.copy(), GENS)
    assert np.array_equal(out, expected)
    table = Table("E11: WSA-E engine architecture accounting", ["quantity", "value"])
    table.add_row("matches reference", "bit-exact")
    table.add_row("delay sites/stage (2L+10)", engine.delay_sites_per_stage)
    table.add_row("on-chip window", engine.on_chip_sites_per_stage)
    table.add_row("off-chip delay", engine.off_chip_sites_per_stage)
    table.add_row("pins at D=8", engine.pins_used(bits_per_site=8))
    table.add_row(
        "stage area (κ=8, paper B)", f"{engine.stage_area(576e-6):.4f}"
    )
    report(table)


def test_ca_pipeline_engine(benchmark, report):
    """The 1-D chip of reference [16]: constant per-stage storage."""
    from repro.engines.ca_pipeline import CAPipelineEngine
    from repro.lgca.wolfram import ElementaryCA

    rule = ElementaryCA(110, boundary="null")
    rng = np.random.default_rng(1)
    tape = (rng.random(2048) < 0.3).astype(np.uint8)
    engine = CAPipelineEngine(rule, pipeline_depth=8)

    out, stats = benchmark(engine.run, tape, 16)
    assert np.array_equal(out, rule.run(tape, 16))
    table = Table(
        "E11: 1-D CA pipeline (Steiglitz–Morita workload)",
        ["quantity", "value"],
    )
    table.add_row("cells", tape.size)
    table.add_row("delay cells/stage", engine.storage_cells_per_stage)
    table.add_row("I/O bits per update", f"{stats.io_bits_per_update:.4f}")
    table.add_row("updates/tick", f"{stats.updates_per_tick:.2f}")
    report(table)


def test_architecture_throughput_shootout(benchmark, report, workload):
    """The throughput-per-chip ordering the paper's section 6.3 predicts:
    SPA > WSA > serial, at matched pipeline depth."""
    model, frame, expected = workload

    def run_all():
        results = {}
        for name, engine in (
            ("serial", SerialPipelineEngine(model, pipeline_depth=4)),
            ("WSA P=4", WideSerialEngine(model, lanes=4, pipeline_depth=4)),
            ("SPA W=8", PartitionedEngine(model, slice_width=8, pipeline_depth=4)),
        ):
            out, stats = engine.run(frame.copy(), GENS)
            assert np.array_equal(out, expected)
            results[name] = stats
        return results

    results = benchmark(run_all)
    table = Table(
        "E11: throughput shootout at equal pipeline depth "
        "(section 6.3 ordering: SPA > WSA > serial per system; "
        "bandwidth cost rises the same way)",
        ["engine", "updates/tick", "bits/tick", "updates per bit of I/O"],
    )
    for name, stats in results.items():
        table.add_row(
            name,
            f"{stats.updates_per_tick:.3f}",
            f"{stats.main_bandwidth_bits_per_tick:.1f}",
            f"{stats.site_updates / stats.io_bits_main:.3f}",
        )
    report(table)
    assert (
        results["SPA W=8"].updates_per_tick
        > results["WSA P=4"].updates_per_tick / 1.5
    )
    assert results["WSA P=4"].updates_per_tick > results["serial"].updates_per_tick
