"""E11 — engine functional equivalence and measured machine balance.

Runs the registered architectures (serial pipeline, WSA, SPA, WSA-E) on
the same FHP gas, asserts bit-identical evolution, and prints the
measured machine balance — updates/tick, bandwidth, PE utilization,
storage — next to the analytic design-model predictions.

Engines are constructed exclusively through the machine registry
(:mod:`repro.machines`); an engine class that is exported but not
registered fails the sweep.  Run directly (no pytest needed) for the
CI registry sweep::

    python benchmarks/bench_engines.py --json BENCH_engines.json

which runs every registered machine on a small HPP workload, checks the
measured tick count against the spec's closed-form prediction, and
writes a schema-versioned JSON report.
"""

import argparse
import json
import sys

import numpy as np
import pytest

from repro import machines
from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.lgca.hpp import HPPModel
from repro.telemetry import PERF_COUNTER
from repro.util.tables import Table

ROWS, COLS, GENS = 32, 32, 8

#: Schema tag of the --json report; bump on layout changes.
SCHEMA = "repro/bench-engines/v1"

#: Registry parameters used by the pytest benchmarks below.
BENCH_PARAMS = {
    "serial": {"pipeline_depth": 4},
    "wsa": {"lanes": 4, "pipeline_depth": 4},
    "spa": {"slice_width": 8, "pipeline_depth": 4},
    "wsa-e": {"pipeline_depth": 4},
}


@pytest.fixture(scope="module")
def workload():
    model = FHPModel(ROWS, COLS, boundary="null", chirality="alternate")
    rng = np.random.default_rng(2024)
    frame = uniform_random_state(ROWS, COLS, 6, 0.35, rng)
    reference = LatticeGasAutomaton(model, frame.copy())
    reference.run(GENS)
    return model, frame, reference.state


def test_serial_pipeline_engine(benchmark, report, workload):
    model, frame, expected = workload
    engine = machines.create("serial", model, **BENCH_PARAMS["serial"])
    out, stats = benchmark(engine.run, frame.copy(), GENS)
    assert np.array_equal(out, expected)
    _report_stats(report, "serial pipeline (k=4)", stats)


def test_wide_serial_engine(benchmark, report, workload):
    model, frame, expected = workload
    engine = machines.create("wsa", model, **BENCH_PARAMS["wsa"])
    out, stats = benchmark(engine.run, frame.copy(), GENS)
    assert np.array_equal(out, expected)
    _report_stats(report, "WSA (P=4, k=4)", stats)


def test_partitioned_engine(benchmark, report, workload):
    model, frame, expected = workload
    engine = machines.create("spa", model, **BENCH_PARAMS["spa"])
    out, stats = benchmark(engine.run, frame.copy(), GENS)
    assert np.array_equal(out, expected)
    _report_stats(report, "SPA (W=8, k=4)", stats)


def _report_stats(report, name, stats):
    table = Table(f"E11: {name} measured machine balance", ["quantity", "value"])
    table.add_row("site updates", stats.site_updates)
    table.add_row("ticks", stats.ticks)
    table.add_row("updates per tick", f"{stats.updates_per_tick:.3f}")
    table.add_row("PE utilization", f"{stats.pe_utilization:.1%}")
    table.add_row("main-memory bits/tick", f"{stats.main_bandwidth_bits_per_tick:.1f}")
    table.add_row("side-channel bits", stats.io_bits_side)
    table.add_row("delay storage (sites)", stats.storage_sites)
    table.add_row("I/O bits per update", f"{stats.io_bits_per_update:.3f}")
    report(table)


def test_extensible_engine(benchmark, report, workload):
    """WSA-E simulator: same evolution, off-chip delay accounting."""
    model, frame, expected = workload
    engine = machines.create("wsa-e", model, **BENCH_PARAMS["wsa-e"])
    out, stats = benchmark(engine.run, frame.copy(), GENS)
    assert np.array_equal(out, expected)
    table = Table("E11: WSA-E engine architecture accounting", ["quantity", "value"])
    table.add_row("matches reference", "bit-exact")
    table.add_row("delay sites/stage (2L+10)", engine.delay_sites_per_stage)
    table.add_row("on-chip window", engine.on_chip_sites_per_stage)
    table.add_row("off-chip delay", engine.off_chip_sites_per_stage)
    table.add_row("pins at D=8", engine.pins_used(bits_per_site=8))
    table.add_row(
        "stage area (κ=8, paper B)", f"{engine.stage_area(576e-6):.4f}"
    )
    report(table)


def test_ca_pipeline_engine(benchmark, report):
    """The 1-D chip of reference [16]: constant per-stage storage."""
    from repro.engines.ca_pipeline import CAPipelineEngine
    from repro.lgca.wolfram import ElementaryCA

    rule = ElementaryCA(110, boundary="null")
    rng = np.random.default_rng(1)
    tape = (rng.random(2048) < 0.3).astype(np.uint8)
    engine = CAPipelineEngine(rule, pipeline_depth=8)

    out, stats = benchmark(engine.run, tape, 16)
    assert np.array_equal(out, rule.run(tape, 16))
    table = Table(
        "E11: 1-D CA pipeline (Steiglitz–Morita workload)",
        ["quantity", "value"],
    )
    table.add_row("cells", tape.size)
    table.add_row("delay cells/stage", engine.storage_cells_per_stage)
    table.add_row("I/O bits per update", f"{stats.io_bits_per_update:.4f}")
    table.add_row("updates/tick", f"{stats.updates_per_tick:.2f}")
    report(table)


def test_registry_covers_every_engine():
    """Every exported streaming engine class must be registered."""
    assert machines.unregistered_engines() == []


def test_architecture_throughput_shootout(benchmark, report, workload):
    """The throughput-per-chip ordering the paper's section 6.3 predicts:
    SPA > WSA > serial, at matched pipeline depth."""
    model, frame, expected = workload

    def run_all():
        results = {}
        for name, machine in (
            ("serial", "serial"),
            ("WSA P=4", "wsa"),
            ("SPA W=8", "spa"),
        ):
            engine = machines.create(machine, model, **BENCH_PARAMS[machine])
            out, stats = engine.run(frame.copy(), GENS)
            assert np.array_equal(out, expected)
            results[name] = stats
        return results

    results = benchmark(run_all)
    table = Table(
        "E11: throughput shootout at equal pipeline depth "
        "(section 6.3 ordering: SPA > WSA > serial per system; "
        "bandwidth cost rises the same way)",
        ["engine", "updates/tick", "bits/tick", "updates per bit of I/O"],
    )
    for name, stats in results.items():
        table.add_row(
            name,
            f"{stats.updates_per_tick:.3f}",
            f"{stats.main_bandwidth_bits_per_tick:.1f}",
            f"{stats.site_updates / stats.io_bits_main:.3f}",
        )
    report(table)
    assert (
        results["SPA W=8"].updates_per_tick
        > results["WSA P=4"].updates_per_tick / 1.5
    )
    assert results["WSA P=4"].updates_per_tick > results["serial"].updates_per_tick


# -- the registry sweep (CI's machine coverage gate) -------------------------


def sweep_registry(
    rows: int = 16,
    cols: int = 16,
    generations: int = 3,
    pipeline_depth: int = 2,
    density: float = 0.3,
    seed: int = 11,
) -> dict:
    """Run every registered machine on one HPP workload.

    Each machine is constructed through the registry, run for
    ``generations``, checked bit-exact against the kernel reference, and
    its measured tick count compared to the spec's closed-form
    prediction.  A streaming engine class exported by
    :mod:`repro.engines` but absent from the registry makes the sweep
    fail — that is the CI gate an unregistered machine trips.
    """
    model = HPPModel(rows, cols, boundary="null")
    rng = np.random.default_rng(seed)
    frame = uniform_random_state(rows, cols, 4, density, rng)
    reference = LatticeGasAutomaton(model, frame.copy())
    reference.run(generations)
    expected = reference.state

    unregistered = machines.unregistered_engines()
    results = []
    for spec in machines.specs():
        engine = spec.create(model, pipeline_depth=pipeline_depth)
        start = PERF_COUNTER()
        out, stats = engine.run(frame.copy(), generations)
        elapsed = PERF_COUNTER() - start
        predicted = spec.predicted_ticks(engine, generations)
        results.append(
            {
                "machine": spec.name,
                "engine": type(engine).__name__,
                "bit_exact": bool(np.array_equal(out, expected)),
                "ticks": stats.ticks,
                "predicted_ticks": predicted,
                "ticks_match": stats.ticks == predicted,
                "site_updates": stats.site_updates,
                "updates_per_tick": stats.updates_per_tick,
                "num_pes": stats.num_pes,
                "storage_sites": stats.storage_sites,
                "seconds": elapsed,
            }
        )
    return {
        "schema": SCHEMA,
        "config": {
            "rows": rows,
            "cols": cols,
            "generations": generations,
            "pipeline_depth": pipeline_depth,
            "density": density,
            "seed": seed,
        },
        "unregistered_engines": unregistered,
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Sweep every registered machine and check ticks against "
        "the design-model prediction."
    )
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the schema-versioned report here")
    parser.add_argument("--rows", type=int, default=16)
    parser.add_argument("--cols", type=int, default=16)
    parser.add_argument("--generations", type=int, default=3)
    parser.add_argument("--depth", type=int, default=2,
                        help="pipeline depth for every machine")
    args = parser.parse_args(argv)

    report = sweep_registry(
        rows=args.rows,
        cols=args.cols,
        generations=args.generations,
        pipeline_depth=args.depth,
    )

    table = Table(
        "registry sweep: measured vs predicted machine balance",
        ["machine", "engine", "bit-exact", "ticks", "predicted", "updates/tick"],
    )
    for rec in report["results"]:
        table.add_row(
            rec["machine"],
            rec["engine"],
            "yes" if rec["bit_exact"] else "NO",
            rec["ticks"],
            rec["predicted_ticks"],
            f"{rec['updates_per_tick']:.3f}",
        )
    table.print()

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")

    ok = True
    if report["unregistered_engines"]:
        print(
            "registry sweep FAILED: unregistered engine classes: "
            + ", ".join(report["unregistered_engines"]),
            file=sys.stderr,
        )
        ok = False
    for rec in report["results"]:
        if not rec["bit_exact"]:
            print(
                f"registry sweep FAILED: {rec['machine']} diverged from the "
                "kernel reference",
                file=sys.stderr,
            )
            ok = False
        if not rec["ticks_match"]:
            print(
                f"registry sweep FAILED: {rec['machine']} measured "
                f"{rec['ticks']} ticks, design model predicts "
                f"{rec['predicted_ticks']}",
                file=sys.stderr,
            )
            ok = False
    if ok:
        print(
            f"registry sweep OK: {len(report['results'])} machines bit-exact, "
            "ticks match the design model"
        )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
