"""E7 — the section 8 prototype: peak vs host-limited realized rate.

"Each chip provides 20 million site-updates per second running at 10
MHz.  It is unlikely, however, that the workstation host will be able to
supply the 40 megabyte per second bandwidth ...  We expect to realize
approximately 1 million site-updates/sec/chip."
"""

import numpy as np

from repro.core.throughput import PrototypeThroughputModel
from repro.engines.memory import HostInterface
from repro.engines.stats import EngineRunStats
from repro.util.tables import Table, format_quantity, format_rate


def test_prototype_host_sweep(benchmark, report):
    model = PrototypeThroughputModel()

    def sweep():
        hosts = np.array([0.5e6, 1e6, 2e6, 5e6, 10e6, 20e6, 40e6, 80e6])
        return model.bandwidth_sweep(hosts)

    rows = benchmark(sweep)
    table = Table(
        "E7: prototype realized rate vs host bandwidth "
        "(paper: 20M peak, 40MB/s demand, ~1M realized)",
        ["host bandwidth", "realized rate", "utilization"],
    )
    for hb, rate, util in rows:
        table.add_row(format_quantity(hb, "B/s"), format_rate(rate), f"{util:.1%}")
    report(table)

    t2 = Table("E7: prototype chip summary", ["quantity", "model", "paper"])
    t2.add_row("peak rate", format_rate(model.peak_updates_per_second), "20 M updates/s")
    t2.add_row(
        "bandwidth demand",
        format_quantity(model.required_bandwidth_bytes_per_second, "B/s"),
        "40 MB/s",
    )
    t2.add_row(
        "realized on ~2 MB/s workstation",
        format_rate(model.realized_rate(2e6)),
        "~1 M updates/s",
    )
    report(t2)


def test_engine_stats_through_host_interface(benchmark, report):
    """The same derating computed from a simulated engine run's stats
    instead of the closed form — the two must agree."""
    stats = EngineRunStats(
        name="wsa-prototype",
        site_updates=20_000_000,
        ticks=10_000_000,
        io_bits_main=20_000_000 * 16,
        num_pes=2,
        num_chips=1,
        clock_hz=10e6,
    )

    def derate():
        return [
            (hb, HostInterface(hb).realized(stats))
            for hb in (1e6, 2e6, 10e6, 40e6)
        ]

    rows = benchmark(derate)
    table = Table(
        "E7: engine-run derating via HostInterface (cross-check)",
        ["host B/s", "peak", "realized", "derating"],
    )
    for hb, rep in rows:
        table.add_row(
            format_quantity(hb, "B/s"),
            format_rate(rep.peak_updates_per_second),
            format_rate(rep.realized_updates_per_second),
            f"{rep.derating:.2%}",
        )
    report(table)
