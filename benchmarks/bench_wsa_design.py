"""E2 + E3 — the WSA design-space figure and maxima (paper section 6.1).

Regenerates the P-vs-L constraint-curve figure (two series: the pin
curve at P = Π/2D and the area curve P = (1−3B−2BL)/(7B+Γ)), the corner
operating point, and the ultimate-performance numbers (N_max = L chips,
R_max = (Π/2D)·F·L).
"""

import numpy as np

from repro.core.technology import PAPER_TECHNOLOGY
from repro.core.wsa import WSAModel
from repro.util.tables import Table, format_rate


def test_wsa_design_curves(benchmark, report):
    model = WSAModel(PAPER_TECHNOLOGY)

    def build():
        return model.design_curves(l_min=1, l_max=1000, num=101)

    pins, area = benchmark(build)

    table = Table(
        "E2: WSA design space (figure, section 6.1) — P limit vs lattice size L",
        ["L (sites)", "P pin-limit (Π/2D)", "P area-limit"],
    )
    for x in range(0, 1001, 100):
        x = max(x, 1)
        table.add_row(x, pins.at(x), area.at(x))
    report(table)

    corner = model.corner()
    d = model.optimal_design()
    t2 = Table(
        "E2: WSA operating point (paper: corner P≈4, L≈785)",
        ["quantity", "model", "paper"],
    )
    t2.add_row("continuous corner P", f"{corner.p:.2f}", "4.5 (pin curve)")
    t2.add_row("continuous corner L", f"{corner.x:.0f}", "~785")
    t2.add_row("integer design P", d.pes_per_chip, 4)
    t2.add_row("integer design L", d.lattice_size, 785)
    t2.add_row("chip area used", f"{d.chip_area_used:.4f}", "~1 (corner)")
    t2.add_row("pins used", d.pins_used, "64 of 72")
    report(t2)


def test_wsa_maximum_system(benchmark, report):
    model = WSAModel(PAPER_TECHNOLOGY)
    ms = benchmark(model.max_system)
    table = Table(
        "E3: WSA ultimate performance (paper: N_max = L, R_max = (Π/2D)·F·L)",
        ["quantity", "model", "paper"],
    )
    table.add_row("max pipeline depth k_max", ms.pipeline_depth, "L = 785")
    table.add_row("N_max (chips)", ms.num_chips, 785)
    table.add_row("R_max", format_rate(ms.update_rate), "3.14e10 updates/s")
    table.add_row(
        "absolute max L (P=1)", model.absolute_max_lattice_size(), "(area exhausted)"
    )
    report(table)


def test_wsa_technology_sensitivity(benchmark, report):
    """Ablation: how the corner moves with pins and site area — the
    design-space knobs a different process would change."""

    def sweep():
        rows = []
        for pin_scale, b_scale in [(0.5, 1.0), (1.0, 1.0), (2.0, 1.0), (1.0, 0.5), (1.0, 2.0)]:
            tech = PAPER_TECHNOLOGY.with_(
                pins=int(72 * pin_scale), site_area=576e-6 * b_scale
            )
            m = WSAModel(tech)
            try:
                d = m.optimal_design()
                rows.append((pin_scale, b_scale, d.pes_per_chip, d.lattice_size))
            except ValueError:
                rows.append((pin_scale, b_scale, 0, 0))
        return rows

    rows = benchmark(sweep)
    table = Table(
        "E2-ablation: WSA corner vs technology scaling",
        ["pin scale", "site-area scale", "P*", "L*"],
    )
    table.add_rows(rows)
    report(table)
