"""Monitor overhead and campaign cost.

The resilience subsystem's pitch is "detection is cheap".  The asserted
configuration is :class:`FusedMonitor` — one light mass sweep per
generation plus a periodic full histogram sweep — which keeps the
single-event detection guarantee (any single bit flip moves total mass,
and LGCA microdynamics never heal it) at under 10% of the step cost.
The two-pass localizing configuration the recovery runner uses (per-row
parity check + tag + full conservation sweep every generation) is
reported alongside for transparency, without an assertion.

Methodology: overhead is the ratio of accumulated monitor time to
accumulated step time *within one run* (best of several runs).  Timing
two separate end-to-end runs and subtracting is hopeless on a shared
machine — the bare run alone fluctuates by tens of percent between
invocations, which would drown the quantity being measured.
"""

import numpy as np
import pytest

from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.resilience.campaign import CampaignConfig, run_campaign
from repro.resilience.monitors import (
    ConservationMonitor,
    FusedMonitor,
    ParityMonitor,
)
from repro.telemetry import PERF_COUNTER
from repro.util.tables import Table

ROWS, COLS, GENS = 128, 128, 32
REPEATS = 5
#: Acceptance threshold: fused monitor time <= 10% of step time.
MAX_OVERHEAD = 0.10


def _make_auto() -> LatticeGasAutomaton:
    model = FHPModel(ROWS, COLS, boundary="periodic", chirality="alternate")
    state = uniform_random_state(ROWS, COLS, 6, 0.35, np.random.default_rng(9))
    return LatticeGasAutomaton(model, state)


def _fused_ratio() -> tuple[float, float, float]:
    """One monitored run; returns (overhead, step us/gen, monitor us/gen)."""
    auto = _make_auto()
    monitor = FusedMonitor(auto.model)
    monitor.arm(auto.state)
    t_step = t_mon = 0.0
    for _ in range(GENS):
        start = PERF_COUNTER()
        auto.step()
        mid = PERF_COUNTER()
        detections = monitor.observe(auto.state, auto.time)
        end = PERF_COUNTER()
        assert not detections
        t_step += mid - start
        t_mon += end - mid
    return t_mon / t_step, t_step / GENS * 1e6, t_mon / GENS * 1e6


def _two_pass_ratio() -> tuple[float, float, float]:
    """Same measurement for the runner's localizing configuration."""
    auto = _make_auto()
    parity = ParityMonitor()
    conservation = ConservationMonitor(auto.model)
    conservation.arm(auto.state)
    parity.tag(auto.state)
    t_step = t_mon = 0.0
    for _ in range(GENS):
        start = PERF_COUNTER()
        assert not parity.check(auto.state, auto.time)
        mid1 = PERF_COUNTER()
        auto.step()
        mid2 = PERF_COUNTER()
        assert not conservation.check(auto.state, auto.time)
        parity.tag(auto.state)
        end = PERF_COUNTER()
        t_step += mid2 - mid1
        t_mon += (mid1 - start) + (end - mid2)
    return t_mon / t_step, t_step / GENS * 1e6, t_mon / GENS * 1e6


def _best_ratio(fn) -> tuple[float, float, float]:
    return min((fn() for _ in range(REPEATS)), key=lambda r: r[0])


def test_monitor_overhead_under_10_percent(report):
    fused = _best_ratio(_fused_ratio)
    two_pass = _best_ratio(_two_pass_ratio)
    table = Table(
        f"Monitor overhead ({ROWS}x{COLS}, {GENS} generations, "
        f"best of {REPEATS})",
        ["configuration", "step us/gen", "monitor us/gen", "overhead"],
    )
    table.add_row("fused (asserted)", f"{fused[1]:.1f}", f"{fused[2]:.1f}", f"{fused[0]:+.1%}")
    table.add_row(
        "two-pass localizing", f"{two_pass[1]:.1f}", f"{two_pass[2]:.1f}", f"{two_pass[0]:+.1%}"
    )
    report(table)
    assert fused[0] < MAX_OVERHEAD, (
        f"fused monitoring overhead {fused[0]:.1%} exceeds {MAX_OVERHEAD:.0%}"
    )


@pytest.mark.parametrize("monitors", [True, False])
def test_campaign_wall_time(report, monitors):
    start = PERF_COUNTER()
    rep = run_campaign(CampaignConfig(monitors=monitors))
    elapsed = PERF_COUNTER() - start
    summary = rep["summary"]
    table = Table(
        f"Campaign cost (monitors={'on' if monitors else 'off'})",
        ["quantity", "value"],
    )
    table.add_row("trials", len(rep["trials"]))
    table.add_row("wall time (s)", f"{elapsed:.3f}")
    table.add_row("silent-data-corruption", summary["silent-data-corruption"])
    table.add_row("detected-corrected", summary["detected-corrected"])
    report(table)
    if monitors:
        assert summary["silent-data-corruption"] == 0
    else:
        assert summary["silent-data-corruption"] > 0
