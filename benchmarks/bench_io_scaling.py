"""E10 — the headline result: R = O(B·S^{1/d}).

Measured I/O per site update of real, legality-checked pebbling
schedules vs the Lemma 1/2 + Theorem 4 lower-bound floor, as a function
of processor storage S, for d = 1 and d = 2.  Who wins and the scaling
shape (I/O per update ∝ S^{-1/d} for the tiled schedule; constant for
the no-reuse strawman; 2/k for the k-deep pipeline) is the reproduction
target — the bound's constant is loose by design.
"""

import math

from repro.lattice.geometry import OrthogonalLattice
from repro.pebbling.bounds import io_per_update_lower_bound
from repro.pebbling.graph import ComputationGraph
from repro.pebbling.schedules import (
    lru_cache_schedule,
    measure_schedule,
    per_site_schedule,
    row_cache_schedule,
    row_cache_storage_needed,
    trapezoid_schedule,
    trapezoid_storage_needed,
)
from repro.util.tables import Table


def test_io_scaling_1d(benchmark, report):
    graph = ComputationGraph(OrthogonalLattice.cube(1, 256), generations=32)

    def measure():
        rows = []
        naive = measure_schedule(graph, per_site_schedule(graph), 8, "per-site")
        rows.append(("per-site (no reuse)", naive.max_red, naive.io_per_update, 1.0))
        for depth in (1, 4, 16, 32):
            rep = measure_schedule(
                graph,
                row_cache_schedule(graph, depth),
                row_cache_storage_needed(graph, depth),
                f"pipeline k={depth}",
            )
            rows.append((rep.name, rep.max_red, rep.io_per_update, 1.0))
        for b in (4, 8, 16, 32):
            rep = measure_schedule(
                graph,
                trapezoid_schedule(graph, b, min(b, 32)),
                trapezoid_storage_needed(graph, b, min(b, 32)),
                f"trapezoid b=h={b}",
            )
            rows.append((rep.name, rep.max_red, rep.io_per_update, rep.recompute_factor))
        return rows

    rows = benchmark(measure)
    table = Table(
        "E10 (d=1): measured I/O per update vs storage, with lower-bound floor",
        ["schedule", "S used", "I/O per update", "recompute", "bound floor at S"],
    )
    for name, s, io, rf in rows:
        floor = io_per_update_lower_bound(graph, s)
        table.add_row(name, s, f"{io:.4f}", f"{rf:.2f}", f"{floor:.5f}")
        assert io >= floor
    report(table)


def test_io_scaling_2d(benchmark, report):
    graph = ComputationGraph(OrthogonalLattice.cube(2, 24), generations=8)

    def measure():
        rows = []
        naive = measure_schedule(graph, per_site_schedule(graph), 8, "per-site")
        rows.append(("per-site (no reuse)", naive.max_red, naive.io_per_update))
        for depth in (1, 2, 4, 8):
            rep = measure_schedule(
                graph,
                row_cache_schedule(graph, depth),
                row_cache_storage_needed(graph, depth),
                f"pipeline k={depth}",
            )
            rows.append((rep.name, rep.max_red, rep.io_per_update))
        for b, h in ((4, 2), (6, 3), (8, 4), (12, 6)):
            rep = measure_schedule(
                graph,
                trapezoid_schedule(graph, b, h),
                trapezoid_storage_needed(graph, b, h),
                f"trapezoid b={b},h={h}",
            )
            rows.append((rep.name, rep.max_red, rep.io_per_update))
        return rows

    rows = benchmark(measure)
    table = Table(
        "E10 (d=2): measured I/O per update vs storage, with lower-bound floor",
        ["schedule", "S used", "I/O per update", "bound floor at S"],
    )
    for name, s, io in rows:
        floor = io_per_update_lower_bound(graph, s)
        table.add_row(name, s, f"{io:.4f}", f"{floor:.5f}")
        assert io >= floor
    report(table)


def test_lru_cache_cliff_2d(benchmark, report):
    """The general-purpose-machine curve: an LRU cache sweeping
    generation by generation.  Thrashes below the two-line working set,
    plateaus at 2 I/O per update above it, and never reaches the
    engines' 2/k or the tiles' S^{-1/2} — motivation for special-purpose
    hardware in one table."""
    graph = ComputationGraph(OrthogonalLattice.cube(2, 16), generations=6)

    def measure():
        rows = []
        for s in (8, 16, 32, 48, 64, 96, 200):
            rep = measure_schedule(
                graph, lru_cache_schedule(graph, s), s, f"lru-{s}"
            )
            rows.append((s, rep.io_per_update))
        return rows

    rows = benchmark(measure)
    table = Table(
        "E10 (d=2): LRU-cache schedule — the capacity cliff "
        "(working set = 2 lattice lines + stencil ≈ 35..64 sites)",
        ["cache S", "I/O per update"],
    )
    for s, io in rows:
        table.add_row(s, f"{io:.4f}")
    report(table)
    assert rows[0][1] > 1.5 * rows[-1][1]
    assert rows[-1][1] >= 2.0 - 1e-9


def test_io_scaling_3d(benchmark, report):
    """d = 3 panel ('as we increase the dimensionality of the problems,
    this effect will become even more dramatic'): the same schedules on
    the computation graph of a 3-D gas."""
    graph = ComputationGraph(OrthogonalLattice.cube(3, 8), generations=4)

    def measure():
        rows = []
        naive = measure_schedule(graph, per_site_schedule(graph), 10, "per-site")
        rows.append(("per-site (no reuse)", naive.max_red, naive.io_per_update))
        for depth in (1, 2, 4):
            rep = measure_schedule(
                graph,
                row_cache_schedule(graph, depth),
                row_cache_storage_needed(graph, depth),
                f"pipeline k={depth}",
            )
            rows.append((rep.name, rep.max_red, rep.io_per_update))
        for b, h in ((2, 1), (3, 2), (4, 2)):
            rep = measure_schedule(
                graph,
                trapezoid_schedule(graph, b, h),
                trapezoid_storage_needed(graph, b, h),
                f"trapezoid b={b},h={h}",
            )
            rows.append((rep.name, rep.max_red, rep.io_per_update))
        return rows

    rows = benchmark(measure)
    table = Table(
        "E10 (d=3): measured I/O per update vs storage, with lower-bound floor",
        ["schedule", "S used", "I/O per update", "bound floor at S"],
    )
    for name, s, io in rows:
        floor = io_per_update_lower_bound(graph, s)
        table.add_row(name, s, f"{io:.4f}", f"{floor:.5f}")
        assert io >= floor
    report(table)


def test_exact_optimum_vs_schedules(benchmark, report):
    """The conclusions' future work, solved at toy scale: exact minimum
    I/O Q*(S) (0-1 Dijkstra over game states) vs the Lemma 1/2 floor and
    the constructive schedules, on a 12-vertex C_1."""
    from repro.pebbling.optimal import minimum_io

    graph = ComputationGraph(OrthogonalLattice.cube(1, 4), generations=2)

    def solve():
        rows = []
        for s in (4, 5, 6, 8):
            rows.append((s, minimum_io(graph, s), io_per_update_lower_bound(graph, s)))
        return rows

    rows = benchmark.pedantic(solve, rounds=1, iterations=1)
    table = Table(
        "E10: exact optimal pebbling Q*(S) on C_1(4 sites, T=2), 12 vertices",
        ["S", "Q* exact", "per-update", "Lemma floor/update", "schedule match"],
    )
    rc = measure_schedule(
        graph, row_cache_schedule(graph, 2), row_cache_storage_needed(graph, 2), "rc"
    )
    for s, q, floor in rows:
        per_update = q / graph.num_non_input_vertices
        match = (
            "pipeline k=2 achieves Q*"
            if s >= rc.max_red and rc.io_moves == q
            else ""
        )
        table.add_row(s, q, f"{per_update:.3f}", f"{floor:.4f}", match)
        assert q / graph.num_non_input_vertices >= floor
    report(table)
    # With enough pebbles the optimum is inputs + outputs, and the
    # paper's pipeline schedule achieves it exactly.
    assert rows[-1][1] == 2 * graph.num_sites
    assert rc.io_moves == rows[-1][1]


def test_tiled_schedule_matches_s_power(benchmark, report):
    """Fit the tiled schedule's measured exponent: log(io) vs log(S)
    should have slope ≈ −1/d."""

    def fit():
        out = []
        for d, side, gens, bs in (
            (1, 512, 32, (4, 8, 16, 32)),
            (2, 32, 8, ((3, 2), (4, 3), (6, 4), (8, 6))),
        ):
            graph = ComputationGraph(OrthogonalLattice.cube(d, side), gens)
            pts = []
            for b in bs:
                if d == 1:
                    base, height = b, min(b, gens)
                else:
                    base, height = b
                rep = measure_schedule(
                    graph,
                    trapezoid_schedule(graph, base, height),
                    trapezoid_storage_needed(graph, base, height),
                    "t",
                )
                pts.append((rep.max_red, rep.io_per_update))
            xs = [math.log(s) for s, _ in pts]
            ys = [math.log(io) for _, io in pts]
            n = len(pts)
            slope = (n * sum(x * y for x, y in zip(xs, ys)) - sum(xs) * sum(ys)) / (
                n * sum(x * x for x in xs) - sum(xs) ** 2
            )
            out.append((d, slope, -1.0 / d))
        return out

    rows = benchmark(fit)
    table = Table(
        "E10: fitted scaling exponent of tiled-schedule I/O vs storage "
        "(theory: -1/d)",
        ["d", "fitted slope", "theory"],
    )
    for d, slope, theory in rows:
        table.add_row(d, f"{slope:.3f}", f"{theory:.3f}")
        assert abs(slope - theory) < 0.35
    report(table)
