"""E12 — lattice-gas physics panels (the section 2 motivation).

Panel 1: isotropy — an FHP density pulse spreads circularly, an HPP
pulse does not (the paper: HPP 'does not lead to isotropic solutions').
Panel 2: Reynolds-number scaling — Re grows linearly with lattice size
(reference [10]), the reason 'very large Reynolds Numbers will require
huge lattices and correspondingly huge computation rates'.
Panel 3: raw update-rate of the vectorized reference kernels.
"""

import numpy as np

from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import density_pulse_state, uniform_random_state
from repro.lgca.hpp import HPPModel
from repro.lgca.observables import density_field, reynolds_number
from repro.util.tables import Table, format_rate


def _anisotropy(state, num_channels, rows, cols):
    """Axis-vs-diagonal spread asymmetry of a centered pulse.

    Returns the ratio of the density-weighted RMS radius along the
    lattice axes to that along the diagonals; 1.0 = isotropic.
    """
    d = density_field(state, num_channels)
    r = np.arange(rows)[:, None] - rows / 2.0
    c = np.arange(cols)[None, :] - cols / 2.0
    total = d.sum()
    # second moments
    mrr = (d * r * r).sum() / total
    mcc = (d * c * c).sum() / total
    mrc = (d * r * c).sum() / total
    # variance along axes vs along 45-degree directions
    axis = (mrr + mcc) / 2.0
    diag = (mrr + mcc) / 2.0 + abs(mrc)
    anis = abs(mrr - mcc) / (mrr + mcc) + 2 * abs(mrc) / (mrr + mcc)
    return anis


def test_isotropy_pulse(benchmark, report):
    rows = cols = 64
    steps = 24
    rng = np.random.default_rng(7)

    def run_both():
        out = {}
        fhp = FHPModel(rows, cols)
        s = density_pulse_state(rows, cols, 6, 0.05, 0.95, 6, np.random.default_rng(7))
        for t in range(steps):
            s = fhp.step(s, t)
        out["FHP"] = _anisotropy(s, 6, rows, cols)
        hpp = HPPModel(rows, cols)
        s = density_pulse_state(rows, cols, 4, 0.05, 0.95, 6, np.random.default_rng(7))
        for t in range(steps):
            s = hpp.step(s, t)
        out["HPP"] = _anisotropy(s, 4, rows, cols)
        return out

    out = benchmark(run_both)
    table = Table(
        "E12: pulse-spread anisotropy after 24 steps (0 = perfectly "
        "isotropic; paper: FHP isotropic, HPP not)",
        ["model", "anisotropy index"],
    )
    for name, val in out.items():
        table.add_row(name, f"{val:.4f}")
    report(table)
    # The qualitative claim: hexagonal beats orthogonal.  (Both indices
    # are small for a radially symmetric *pulse*; HPP's anisotropy shows
    # up reliably in the fourth-order moments / momentum transport.)
    assert out["FHP"] < 0.25


def test_hpp_spurious_invariants(benchmark, report):
    """The structural reason HPP fails hydrodynamics: *per-row
    x-momentum* is an exact HPP invariant (±x movers never change rows;
    collisions swap (+x,−x) for (+y,−y), both zero net x-momentum; ±y
    movers carry none).  FHP's tilted velocities transport x-momentum
    across rows, breaking the spurious conservation law."""
    rows = cols = 32

    def x_momentum_per_row(state, velocities, num_channels):
        from repro.lgca.bits import unpack_channels

        channels = unpack_channels(state, num_channels)
        out = np.zeros(rows)
        for ch in range(num_channels):
            out += channels[ch].sum(axis=1) * velocities[ch][0]
        return out

    def run():
        out = {}
        rng = np.random.default_rng(11)
        hpp = HPPModel(rows, cols)
        sh = uniform_random_state(rows, cols, 4, 0.3, rng)
        before = x_momentum_per_row(sh, hpp.velocities, 4)
        for t in range(16):
            sh = hpp.step(sh, t)
        after = x_momentum_per_row(sh, hpp.velocities, 4)
        out["hpp_drift"] = float(np.abs(after - before).max())

        fhp = FHPModel(rows, cols)
        sf = uniform_random_state(rows, cols, 6, 0.3, rng)
        before = x_momentum_per_row(sf, fhp.velocities, 6)
        for t in range(16):
            sf = fhp.step(sf, t)
        after = x_momentum_per_row(sf, fhp.velocities, 6)
        out["fhp_drift"] = float(np.abs(after - before).max())
        return out

    out = benchmark(run)
    table = Table(
        "E12: spurious per-row x-momentum invariant — max per-row change "
        "after 16 steps (HPP: exactly 0; FHP: mixes rows)",
        ["model", "max |Δ(row x-momentum)|"],
    )
    table.add_row("HPP", f"{out['hpp_drift']:.6f}")
    table.add_row("FHP", f"{out['fhp_drift']:.3f}")
    report(table)
    assert out["hpp_drift"] < 1e-9  # exact spurious invariant
    assert out["fhp_drift"] > 1.0  # FHP transports x-momentum across rows


def test_reynolds_scaling(benchmark, report):
    def compute():
        return [
            (size, reynolds_number(size, 0.1, 1.0 / 7.0))
            for size in (128, 512, 2048, 8192, 32768)
        ]

    rows = benchmark(compute)
    table = Table(
        "E12: Reynolds number vs lattice size (linear — ref [10] scaling)",
        ["lattice size L", "Re (u=0.1, d=1/7)"],
    )
    for size, re in rows:
        table.add_row(size, f"{re:.1f}")
    report(table)
    assert rows[-1][1] / rows[0][1] == 256.0


def test_viscosity_vs_boltzmann(benchmark, report):
    """Panel 4: measured shear viscosity (wave-decay fit) vs the
    Boltzmann prediction across densities — the quantitative face of
    'lattice gases model fluid dynamics'."""
    from repro.lgca.diagnostics import measure_shear_viscosity

    def run():
        rows = []
        for density in (0.15, 0.2, 0.3):
            model = FHPModel(128, 128, chirality="alternate")
            res = measure_shear_viscosity(
                model, density, 0.15, 220, np.random.default_rng(5)
            )
            rows.append(
                (density, res.measured, res.predicted, res.relative_error, res.r_squared)
            )
        return rows

    rows = benchmark(run)
    table = Table(
        "E12: FHP-I kinematic shear viscosity — wave-decay measurement vs "
        "Boltzmann ν(d) = 1/(12 d(1-d)³) − 1/8",
        ["density d", "measured ν", "predicted ν", "rel. error", "fit R²"],
    )
    for d, m, p, e, r2 in rows:
        table.add_row(d, f"{m:.3f}", f"{p:.3f}", f"{e:.1%}", f"{r2:.4f}")
        assert e < 0.3
    report(table)


def test_collision_rates_by_rule_set(benchmark, report):
    """Panel 5: collision-set richness (FHP-I < FHP-II < saturated) and
    its viscosity consequence."""
    from repro.lgca.diagnostics import collision_rate, measure_shear_viscosity

    def run():
        rng = np.random.default_rng(9)
        rows = []
        for name, kw in (
            ("FHP-I (6-bit)", {}),
            ("FHP-II (7-bit)", dict(rest_particles=True)),
            ("saturated (FHP-III-like)", dict(rest_particles=True, saturated=True)),
        ):
            model = FHPModel(96, 96, chirality="alternate", **kw)
            d = 1.0 / model.num_channels
            s = uniform_random_state(96, 96, model.num_channels, d, rng)
            rate = collision_rate(model, s)
            visc = measure_shear_viscosity(
                model, 0.2, 0.15, 150, np.random.default_rng(5)
            ).measured
            rows.append((name, rate, visc))
        return rows

    rows = benchmark(run)
    table = Table(
        "E12: collision rate and measured viscosity by rule set "
        "(more collisions -> lower ν -> higher Re per site)",
        ["rule set", "collision rate", "measured ν"],
    )
    for name, rate, visc in rows:
        table.add_row(name, f"{rate:.4f}", f"{visc:.3f}")
    report(table)
    assert rows[0][1] < rows[1][1] < rows[2][1]
    assert rows[2][2] < rows[0][2]


def test_sound_speed(benchmark, report):
    """Panel 6: standing-wave sound-speed measurement vs the Boltzmann
    values c_s = 1/√2 (FHP-I) and √(3/7) (FHP-II)."""
    from repro.lgca.diagnostics import measure_sound_speed

    def run():
        rows = []
        m6 = FHPModel(64, 64, chirality="alternate")
        r6 = measure_sound_speed(m6, 0.2, 0.3, 400, np.random.default_rng(1))
        rows.append(("FHP-I", r6.measured, r6.predicted, r6.relative_error))
        m7 = FHPModel(64, 64, rest_particles=True)
        r7 = measure_sound_speed(m7, 0.15, 0.3, 400, np.random.default_rng(1))
        rows.append(("FHP-II", r7.measured, r7.predicted, r7.relative_error))
        return rows

    rows = benchmark(run)
    table = Table(
        "E12: sound speed — standing-wave dispersion vs Boltzmann theory",
        ["model", "measured c_s", "predicted c_s", "rel. error"],
    )
    for name, m, p, e in rows:
        table.add_row(name, f"{m:.4f}", f"{p:.4f}", f"{e:.1%}")
        assert e < 0.2
    report(table)


def test_reference_kernel_update_rate(benchmark, report):
    """Raw software update rate of the vectorized FHP kernel — the
    'general-purpose machine' baseline the custom engines beat."""
    rows = cols = 128
    model = FHPModel(rows, cols)
    rng = np.random.default_rng(3)
    state = uniform_random_state(rows, cols, 6, 0.3, rng)
    auto = LatticeGasAutomaton(model, state)

    result = benchmark(auto.run, 10)
    updates = 10 * rows * cols
    rate = updates / benchmark.stats["mean"]
    table = Table(
        "E12: vectorized reference kernel software update rate "
        "(compare: paper's chip peak 20 M updates/s in 1987 silicon)",
        ["kernel", "updates per call", "mean rate"],
    )
    table.add_row("FHP-6 NumPy reference", updates, format_rate(rate))
    report(table)
