"""Cross-cutting edge cases gathered from review of the public API."""


import numpy as np

from repro.core.design_space import DesignCurve
from repro.core.technology import PAPER_TECHNOLOGY
from repro.util.tables import Table, format_quantity


class TestFormatQuantityEdges:
    def test_zero(self):
        assert format_quantity(0.0, "b") == "0 b"

    def test_exactly_one_thousand(self):
        assert format_quantity(1000, "b") == "1 kb"

    def test_just_below_prefix(self):
        assert format_quantity(999.4, "b") == "999 b"

    def test_negative_mega(self):
        assert format_quantity(-3.2e6, "B/s") == "-3.2 MB/s"

    def test_digits_control(self):
        assert format_quantity(1.23456e6, digits=5) == "1.2346 M"


class TestTableEdges:
    def test_empty_table_renders(self):
        t = Table("empty", ["a", "b"])
        out = t.render()
        assert "empty" in out and "a" in out

    def test_unicode_cells_align(self):
        t = Table("u", ["name", "v"])
        t.add_row("τ(2S)", 1)
        t.add_row("plain", 22)
        lines = t.render().splitlines()
        assert len(lines) == 6

    def test_bool_cells(self):
        t = Table("b", ["flag"])
        t.add_row(True)
        assert "True" in t.render()


class TestDesignCurveEdges:
    def test_at_exact_endpoints(self):
        c = DesignCurve("c", np.array([1.0, 2.0, 3.0]), np.array([5.0, 4.0, 3.0]))
        assert c.at(1.0) == 5.0
        assert c.at(3.0) == 3.0


class TestTechnologyEdges:
    def test_with_multiple_changes(self):
        t = PAPER_TECHNOLOGY.with_(pins=100, clock_hz=20e6)
        assert t.pins == 100 and t.F == 20e6
        assert t.B == PAPER_TECHNOLOGY.B

    def test_equality_semantics(self):
        assert PAPER_TECHNOLOGY == PAPER_TECHNOLOGY.with_()
        assert PAPER_TECHNOLOGY != PAPER_TECHNOLOGY.with_(pins=73)


class TestAutomatonEdges:
    def test_single_row_lattice_null(self, rng):
        """Degenerate 1-row lattice still conserves mass internally."""
        from repro.lgca.automaton import LatticeGasAutomaton
        from repro.lgca.fhp import FHPModel
        from repro.lgca.flows import uniform_random_state

        m = FHPModel(1, 16, boundary="null")
        s = uniform_random_state(1, 16, 6, 0.4, rng)
        a = LatticeGasAutomaton(m, s)
        a.run(4)  # must not crash; vertical movers fall off the edge
        assert a.particle_count() <= int((s != 0).sum()) * 6

    def test_single_column_hpp(self, rng):
        from repro.lgca.automaton import LatticeGasAutomaton
        from repro.lgca.hpp import HPPModel

        m = HPPModel(8, 1, boundary="reflecting")
        s = np.zeros((8, 1), dtype=np.uint8)
        s[4, 0] = 0b0001  # +x against both walls instantly
        a = LatticeGasAutomaton(m, s)
        a.run(3)
        assert a.particle_count() == 1

    def test_two_by_two_periodic_fhp(self, rng):
        from repro.lgca.automaton import LatticeGasAutomaton
        from repro.lgca.fhp import FHPModel
        from repro.lgca.flows import uniform_random_state

        m = FHPModel(2, 2)
        s = uniform_random_state(2, 2, 6, 0.5, rng)
        a = LatticeGasAutomaton(m, s)
        mass0 = a.particle_count()
        a.run(10)
        assert a.particle_count() == mass0


class TestEngineEdges:
    def test_one_by_n_engine(self, rng):
        """A single-row stream through the pipeline (prism limit)."""
        from repro.engines.pipeline import SerialPipelineEngine
        from repro.lgca.automaton import LatticeGasAutomaton
        from repro.lgca.fhp import FHPModel
        from repro.lgca.flows import uniform_random_state

        m = FHPModel(1, 20, boundary="null")
        f = uniform_random_state(1, 20, 6, 0.4, rng)
        ref = LatticeGasAutomaton(m, f.copy())
        ref.run(3)
        out, _ = SerialPipelineEngine(m, 3).run(f, 3)
        assert np.array_equal(out, ref.state)

    def test_lanes_exceed_sites(self, rng):
        from repro.engines.wide_serial import WideSerialEngine
        from repro.lgca.fhp import FHPModel
        from repro.lgca.flows import uniform_random_state

        m = FHPModel(4, 4, boundary="null")
        f = uniform_random_state(4, 4, 6, 0.4, rng)
        eng = WideSerialEngine(m, lanes=100)
        out, stats = eng.run(f, 2)
        assert stats.ticks > 0

    def test_slice_width_one(self, rng):
        from repro.engines.partitioned import PartitionedEngine
        from repro.lgca.automaton import LatticeGasAutomaton
        from repro.lgca.fhp import FHPModel
        from repro.lgca.flows import uniform_random_state

        m = FHPModel(6, 6, boundary="null")
        f = uniform_random_state(6, 6, 6, 0.4, rng)
        ref = LatticeGasAutomaton(m, f.copy())
        ref.run(2)
        out, _ = PartitionedEngine(m, slice_width=1).run(f, 2)
        assert np.array_equal(out, ref.state)


class TestPebblingEdges:
    def test_one_generation_graph(self):
        from repro.lattice.geometry import OrthogonalLattice
        from repro.pebbling.graph import ComputationGraph
        from repro.pebbling.schedules import measure_schedule, per_site_schedule

        g = ComputationGraph(OrthogonalLattice.cube(1, 3), generations=1)
        r = measure_schedule(g, per_site_schedule(g), 4, "tiny")
        assert r.unique_computed == 3

    def test_single_site_lattice_graph(self):
        from repro.lattice.geometry import OrthogonalLattice
        from repro.pebbling.graph import ComputationGraph
        from repro.pebbling.schedules import measure_schedule, per_site_schedule

        g = ComputationGraph(OrthogonalLattice((1,)), generations=3)
        # site depends only on itself each step
        r = measure_schedule(g, per_site_schedule(g), 4, "chain")
        assert r.unique_computed == 3
        assert r.io_moves == 3 + 3  # read each layer value once, write once
