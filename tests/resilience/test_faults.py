"""Tests for fault specs, the injector, and the unreliable host channel."""

import numpy as np
import pytest

from repro.resilience.faults import (
    FAULT_KINDS,
    FAULT_LOCATIONS,
    FaultInjector,
    FaultSpec,
    HostStallError,
    UnreliableRowChannel,
    row_checksum,
)


def spec(**kwargs):
    base = dict(
        fault_id="f0", kind="bit_flip", location="memory", generation=1
    )
    base.update(kwargs)
    return FaultSpec(**base)


class TestFaultSpec:
    def test_kinds_and_locations_closed(self):
        assert "bit_flip" in FAULT_KINDS
        assert "host" in FAULT_LOCATIONS

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            spec(kind="gamma_ray")

    def test_rejects_unknown_location(self):
        with pytest.raises(ValueError, match="location"):
            spec(location="cloud")

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError, match="duration"):
            spec(duration=0)

    def test_rejects_bad_bandwidth_factor(self):
        with pytest.raises(ValueError, match="bandwidth_factor"):
            spec(kind="brownout", bandwidth_factor=0.0)

    def test_active_window(self):
        s = spec(kind="stuck_at", generation=3, duration=2)
        assert not s.active_at(2)
        assert s.active_at(3)
        assert s.active_at(4)
        assert not s.active_at(5)

    def test_to_dict_round_trips_identity(self):
        d = spec().to_dict()
        assert d["fault_id"] == "f0"
        assert d["kind"] == "bit_flip"


class TestFaultInjector:
    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="unique"):
            FaultInjector([spec(), spec()])

    def test_bit_flip_fires_once(self):
        inj = FaultInjector([spec(row=1, col=2, channel=3)])
        frame = np.zeros((4, 4), dtype=np.uint8)
        out1 = inj.corrupt_frame(frame, 1)
        assert out1[1, 2] == 1 << 3
        # Replay (rollback) of the same generation: the upset is gone.
        out2 = inj.corrupt_frame(frame, 1)
        assert np.array_equal(out2, frame)
        assert inj.fired == ["f0"]
        assert inj.landed == {"f0"}

    def test_bit_flip_never_mutates_input(self):
        inj = FaultInjector([spec(row=0, col=0)])
        frame = np.zeros((2, 2), dtype=np.uint8)
        inj.corrupt_frame(frame, 1)
        assert frame[0, 0] == 0

    def test_stuck_at_reapplies_each_generation(self):
        inj = FaultInjector(
            [spec(kind="stuck_at", row=0, col=0, channel=0, stuck_value=1, duration=3)]
        )
        frame = np.zeros((2, 2), dtype=np.uint8)
        for g in (1, 2, 3):
            assert inj.corrupt_frame(frame, g)[0, 0] == 1
        assert np.array_equal(inj.corrupt_frame(frame, 4), frame)

    def test_stuck_at_matching_value_does_not_land(self):
        inj = FaultInjector(
            [spec(kind="stuck_at", row=0, col=0, channel=0, stuck_value=1)]
        )
        frame = np.ones((2, 2), dtype=np.uint8)
        out = inj.corrupt_frame(frame, 1)
        assert np.array_equal(out, frame)
        assert inj.landed == set()

    def test_pe_hook_flips_one_site(self):
        inj = FaultInjector([spec(location="pe", row=0, col=1, channel=2)])
        hook = inj.post_collide_hook()
        values = np.zeros(4, dtype=np.uint8)
        r = np.array([0, 0, 1, 1])
        c = np.array([0, 1, 0, 1])
        out = hook(values, r, c, 1)
        assert out[1] == 1 << 2
        assert out[0] == out[2] == out[3] == 0

    def test_pe_stuck_forces_all_sites(self):
        inj = FaultInjector(
            [spec(location="pe", kind="stuck_at", channel=1, stuck_value=1)]
        )
        hook = inj.post_collide_hook()
        values = np.zeros(3, dtype=np.uint8)
        out = hook(values, np.zeros(3, int), np.arange(3), 1)
        assert np.all(out == 1 << 1)

    def test_shiftreg_transform_targets_flat_index(self):
        inj = FaultInjector([spec(location="shiftreg", row=1, col=2, channel=0)])
        transform = inj.shiftreg_transform(cols=4, generation=1)
        assert transform is not None
        assert transform(0, 1 * 4 + 2) == 1
        assert transform(0, 0) == 0

    def test_shiftreg_transform_none_when_not_due(self):
        inj = FaultInjector([spec(location="shiftreg")])
        assert inj.shiftreg_transform(cols=4, generation=7) is None

    def test_reset_clears_history(self):
        inj = FaultInjector([spec()])
        inj.corrupt_frame(np.zeros((2, 2), dtype=np.uint8), 1)
        inj.reset()
        assert inj.fired == [] and inj.landed == set()


class TestRowChecksum:
    def test_detects_any_single_bit_flip(self):
        row = np.arange(16, dtype=np.uint8)
        tag = row_checksum(row)
        for col in range(16):
            for ch in range(6):
                bad = row.copy()
                bad[col] ^= 1 << ch
                assert row_checksum(bad) != tag


class TestUnreliableRowChannel:
    def frame(self):
        return (np.arange(32, dtype=np.uint8) % 64).reshape(8, 4)

    def test_clean_channel_delivers_everything_intact(self):
        inj = FaultInjector([])
        chan = UnreliableRowChannel(self.frame(), inj, generation=0)
        packets = list(chan.packets())
        assert [p.seq for p in packets] == list(range(8))
        assert all(p.intact for p in packets)
        assert chan.transfer_time_units == 8.0

    def test_drop_removes_row(self):
        inj = FaultInjector([spec(kind="drop_row", location="host", row=3)])
        chan = UnreliableRowChannel(self.frame(), inj, generation=1)
        assert [p.seq for p in chan.packets()] == [0, 1, 2, 4, 5, 6, 7]

    def test_duplicate_repeats_row(self):
        inj = FaultInjector([spec(kind="duplicate_row", location="host", row=2)])
        chan = UnreliableRowChannel(self.frame(), inj, generation=1)
        assert [p.seq for p in chan.packets()] == [0, 1, 2, 2, 3, 4, 5, 6, 7]

    def test_payload_flip_breaks_checksum_only_there(self):
        inj = FaultInjector(
            [spec(kind="bit_flip", location="host", row=5, col=1, channel=2)]
        )
        chan = UnreliableRowChannel(self.frame(), inj, generation=1)
        packets = list(chan.packets())
        assert [p.intact for p in packets] == [p.seq != 5 for p in packets]

    def test_retransmit_returns_clean_row(self):
        inj = FaultInjector(
            [spec(kind="bit_flip", location="host", row=5, col=1, channel=2)]
        )
        frame = self.frame()
        chan = UnreliableRowChannel(frame, inj, generation=1)
        list(chan.packets())
        packet = chan.retransmit(5)
        assert packet.intact and np.array_equal(packet.row, frame[5])

    def test_stall_fails_first_attempts_then_recovers(self):
        inj = FaultInjector(
            [spec(kind="stall", location="host", generation=1, duration=2)]
        )
        chan = UnreliableRowChannel(self.frame(), inj, generation=1)
        for _ in range(2):
            with pytest.raises(HostStallError):
                chan.retransmit(0)
        assert chan.retransmit(0).intact

    def test_brownout_stretches_transfer_time(self):
        inj = FaultInjector(
            [
                spec(
                    kind="brownout",
                    location="host",
                    generation=1,
                    bandwidth_factor=0.5,
                )
            ]
        )
        chan = UnreliableRowChannel(self.frame(), inj, generation=1)
        list(chan.packets())
        assert chan.transfer_time_units == pytest.approx(16.0)
        assert inj.landed == {"f0"}

    def test_faults_scoped_to_their_generation(self):
        inj = FaultInjector([spec(kind="drop_row", location="host", row=3)])
        chan = UnreliableRowChannel(self.frame(), inj, generation=0)
        assert len(list(chan.packets())) == 8
