"""Tests for the fault-injection / detection / recovery subsystem."""
