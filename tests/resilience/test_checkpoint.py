"""Tests for checkpoint/restart.

Includes the mandated restart test: an evolution interrupted and
restored from a checkpoint is bit-identical to the uninterrupted run —
including through the RNG state of random-chirality models.
"""

import numpy as np
import pytest

from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.resilience.checkpoint import Checkpoint, CheckpointStore
from repro.util.errors import CheckpointError

ROWS, COLS = 8, 8


def make_auto(chirality="alternate", seed=7):
    model = FHPModel(ROWS, COLS, boundary="periodic", chirality=chirality)
    state = uniform_random_state(ROWS, COLS, 6, 0.35, np.random.default_rng(3))
    rng = np.random.default_rng(seed) if chirality == "random" else None
    return LatticeGasAutomaton(model, state, rng=rng)


class TestCheckpoint:
    def test_save_copies_state(self):
        store = CheckpointStore()
        state = np.zeros((2, 2), dtype=np.uint8)
        cp = store.save(0, state)
        state[0, 0] = 5
        assert cp.state[0, 0] == 0

    def test_verify_passes_clean(self):
        cp = CheckpointStore().save(0, np.arange(4, dtype=np.uint8).reshape(2, 2))
        cp.verify()

    def test_verify_detects_rot(self):
        cp = CheckpointStore().save(0, np.arange(4, dtype=np.uint8).reshape(2, 2))
        cp.state[1, 0] ^= 1
        with pytest.raises(CheckpointError, match="rows \\[1\\]"):
            cp.verify()

    def test_untagged_checkpoint_verifies_trivially(self):
        Checkpoint(generation=0, state=np.zeros((2, 2), dtype=np.uint8)).verify()


class TestCheckpointStore:
    def test_due_on_interval(self):
        store = CheckpointStore(interval=4)
        assert store.due(0) and store.due(8)
        assert not store.due(3)

    def test_ring_evicts_oldest(self):
        store = CheckpointStore(keep=2)
        for g in range(3):
            store.save(g, np.full((2, 2), g, dtype=np.uint8))
        assert len(store) == 2
        assert store.latest().generation == 2

    def test_latest_empty_raises(self):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            CheckpointStore().latest()

    def test_latest_skips_corrupted(self):
        store = CheckpointStore(keep=2)
        store.save(0, np.zeros((2, 2), dtype=np.uint8))
        newest = store.save(1, np.ones((2, 2), dtype=np.uint8))
        newest.state[0, 0] ^= 1  # rot the newest in place
        assert store.latest().generation == 0

    def test_latest_all_corrupted_raises(self):
        store = CheckpointStore(keep=1)
        cp = store.save(0, np.zeros((2, 2), dtype=np.uint8))
        cp.state[0, 0] ^= 1
        with pytest.raises(CheckpointError, match="every retained"):
            store.latest()


class TestDurableStore:
    """Satellite: crash-safe durable writes (temp + fsync + atomic rename)."""

    def test_save_persists_and_fresh_store_restores(self, tmp_path):
        store = CheckpointStore(directory=tmp_path)
        store.save(4, np.arange(16, dtype=np.uint8).reshape(4, 4))
        # A restarted process = a brand-new store over the same directory.
        fresh = CheckpointStore(directory=tmp_path)
        cp = fresh.latest()
        assert cp.generation == 4
        assert np.array_equal(cp.state, np.arange(16, dtype=np.uint8).reshape(4, 4))

    def test_no_temp_residue_after_save(self, tmp_path):
        store = CheckpointStore(directory=tmp_path)
        store.save(0, np.zeros((2, 2), dtype=np.uint8))
        store.save(8, np.ones((2, 2), dtype=np.uint8))
        leftovers = [p.name for p in tmp_path.iterdir() if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_prunes_to_keep_newest(self, tmp_path):
        store = CheckpointStore(keep=2, directory=tmp_path)
        for g in range(5):
            store.save(g, np.full((2, 2), g, dtype=np.uint8))
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["ckpt-000000000003.npz", "ckpt-000000000004.npz"]

    def test_torn_newest_falls_back_to_older(self, tmp_path):
        store = CheckpointStore(keep=3, directory=tmp_path)
        store.save(0, np.zeros((2, 2), dtype=np.uint8))
        store.save(8, np.ones((2, 2), dtype=np.uint8))
        # Simulate a crash mid-write of the newest file: truncate it.
        newest = sorted(tmp_path.iterdir())[-1]
        newest.write_bytes(newest.read_bytes()[:20])
        cp = CheckpointStore.load_latest(tmp_path)
        assert cp.generation == 0

    def test_leftover_temp_files_are_ignored(self, tmp_path):
        store = CheckpointStore(directory=tmp_path)
        store.save(2, np.ones((2, 2), dtype=np.uint8))
        (tmp_path / ".tmp-ckpt-000000000009.npz.123").write_bytes(b"garbage")
        assert CheckpointStore.load_latest(tmp_path).generation == 2

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no restorable checkpoint"):
            CheckpointStore.load_latest(tmp_path)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint directory"):
            CheckpointStore.load_latest(tmp_path / "never-made")

    def test_rng_state_round_trips_through_disk(self, tmp_path):
        rng = np.random.default_rng(11)
        rng.random(7)  # advance off the seed state
        store = CheckpointStore(directory=tmp_path)
        store.save(3, np.zeros((2, 2), dtype=np.uint8), rng)
        cp = CheckpointStore.load_latest(tmp_path)
        restored = np.random.default_rng(0)
        store.restore_rng(cp, restored)
        assert restored.random() == np.random.default_rng(11).random(8)[-1]

    def test_durable_files_round_trip_parity_tags(self, tmp_path):
        state = np.arange(16, dtype=np.uint8).reshape(4, 4)
        CheckpointStore(directory=tmp_path).save(0, state)
        cp = CheckpointStore.load_latest(tmp_path)
        cp.verify()
        # A flipped bit on disk must be caught by the stored tags.
        cp.state[2, 1] ^= 1
        with pytest.raises(CheckpointError):
            cp.verify()


class TestRestartBitIdentical:
    @pytest.mark.parametrize("chirality", ["alternate", "random"])
    def test_restart_matches_uninterrupted_run(self, chirality):
        """Evolve 10 generations straight; separately evolve 4, then
        checkpoint, evolve 3 more, 'crash', restore, and finish.  The
        restored run must be bit-identical — state AND RNG state."""
        total, cut = 10, 4
        straight = make_auto(chirality)
        straight.run(total)

        auto = make_auto(chirality)
        auto.run(cut)
        store = CheckpointStore()
        cp = store.save(auto.time, auto.state, auto.rng)
        auto.run(3)  # progress that the crash throws away

        # Crash and restore.
        auto.state = store.latest().state.copy()
        auto.time = cp.generation
        store.restore_rng(cp, auto.rng)
        auto.run(total - cut)

        assert auto.time == straight.time
        assert np.array_equal(auto.state, straight.state)

    def test_rng_state_is_captured_not_aliased(self):
        auto = make_auto("random")
        store = CheckpointStore()
        cp = store.save(0, auto.state, auto.rng)
        before = dict(cp.rng_state)
        auto.run(2)  # advances the live RNG
        assert cp.rng_state == before
