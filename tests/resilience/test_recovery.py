"""Tests for the recovery layer: resilient runner and reliable transport."""

import numpy as np
import pytest

from repro.engines.memory import MainMemory
from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.resilience.faults import FaultInjector, FaultSpec, UnreliableRowChannel
from repro.resilience.recovery import (
    BackoffPolicy,
    ReliableRowTransport,
    ResilientAutomatonRunner,
    assemble_raw,
)
from repro.util.errors import FaultDetectedError

ROWS, COLS = 8, 8
GENS = 6


def model():
    return FHPModel(ROWS, COLS, boundary="periodic", chirality="alternate")


def init_state():
    return uniform_random_state(ROWS, COLS, 6, 0.35, np.random.default_rng(11))


def golden():
    return LatticeGasAutomaton(model(), init_state()).run(GENS)


def make_runner(specs, **kwargs):
    injector = FaultInjector(specs) if specs is not None else None
    auto = LatticeGasAutomaton(model(), init_state())
    return ResilientAutomatonRunner(
        auto, injector, checkpoint_interval=2, **kwargs
    )


class TestBackoffPolicy:
    def test_delays_grow_exponentially(self):
        policy = BackoffPolicy(max_retries=3, base_delay=1.0, multiplier=2.0)
        assert [policy.delay(a) for a in range(3)] == [1.0, 2.0, 4.0]

    def test_rejects_nonpositive_retries(self):
        with pytest.raises(ValueError):
            BackoffPolicy(max_retries=0)


class TestResilientAutomatonRunner:
    def test_clean_run_matches_reference(self):
        runner = make_runner(None)
        final = runner.run(GENS)
        assert np.array_equal(final, golden())
        assert not runner.report.detected
        assert runner.report.checkpoint_saves >= 2

    def test_transient_flip_corrected_by_row_recompute(self):
        specs = [FaultSpec("f", "bit_flip", "memory", 3, row=4, col=4, channel=2)]
        runner = make_runner(specs)
        final = runner.run(GENS)
        assert np.array_equal(final, golden())
        assert runner.report.detected
        assert runner.report.row_recomputes == 1
        assert runner.report.rollbacks == 0
        assert not runner.report.aborted

    def test_transient_flip_corrected_by_rollback_without_parity(self):
        specs = [FaultSpec("f", "bit_flip", "memory", 3, row=4, col=4, channel=2)]
        runner = make_runner(specs, use_parity=False)
        final = runner.run(GENS)
        assert np.array_equal(final, golden())
        assert runner.report.rollbacks >= 1
        assert runner.report.backoff_delays  # retries waited
        assert not runner.report.aborted

    def test_persistent_fault_without_parity_aborts(self):
        """Conservation alone cannot localize; replay re-detects the
        stuck cell every attempt, so the bounded retries exhaust."""
        specs = [
            FaultSpec(
                "f", "stuck_at", "memory", 2,
                row=3, col=3, channel=0, stuck_value=1, duration=GENS,
            )
        ]
        runner = make_runner(specs, use_parity=False)
        runner.run(GENS)
        assert runner.report.aborted
        assert "rollback" in runner.report.abort_reason

    def test_persistent_fault_abort_raises_when_asked(self):
        specs = [
            FaultSpec(
                "f", "stuck_at", "memory", 2,
                row=3, col=3, channel=0, stuck_value=1, duration=GENS,
            )
        ]
        runner = make_runner(specs, use_parity=False)
        with pytest.raises(FaultDetectedError, match="rollback"):
            runner.run(GENS, abort_raises=True)

    def test_persistent_fault_with_parity_is_scrubbed(self):
        """Parity names the rotten row every generation, so the runner
        repairs the read instead of rolling back — memory scrubbing."""
        specs = [
            FaultSpec(
                "f", "stuck_at", "memory", 2,
                row=3, col=3, channel=0, stuck_value=1, duration=3,
            )
        ]
        runner = make_runner(specs)
        final = runner.run(GENS)
        assert np.array_equal(final, golden())
        assert runner.report.row_recomputes >= 1
        assert not runner.report.aborted

    def test_unmonitored_corruption_is_silent(self):
        specs = [FaultSpec("f", "bit_flip", "memory", 3, row=4, col=4, channel=2)]
        runner = make_runner(specs, use_parity=False, use_conservation=False)
        final = runner.run(GENS)
        assert not np.array_equal(final, golden())
        assert not runner.report.detected

    def test_memory_routed_faults_are_accounted(self):
        memory = MainMemory()
        specs = [FaultSpec("f", "bit_flip", "memory", 3, row=4, col=4, channel=2)]
        injector = FaultInjector(specs)
        auto = LatticeGasAutomaton(model(), init_state())
        runner = ResilientAutomatonRunner(
            auto, injector, checkpoint_interval=2, memory=memory
        )
        final = runner.run(GENS)
        assert np.array_equal(final, golden())
        assert memory.bits_read > 0 and memory.bits_written > 0


class TestReliableRowTransport:
    def frame(self):
        return init_state()

    def channel(self, specs, generation=1):
        return UnreliableRowChannel(
            self.frame(), FaultInjector(specs), generation=generation
        )

    def test_clean_transfer(self):
        frame, report = ReliableRowTransport(self.channel([])).receive()
        assert np.array_equal(frame, self.frame())
        assert not report.detected and report.retransmits == 0

    @pytest.mark.parametrize(
        "kind", ["drop_row", "duplicate_row", "bit_flip"]
    )
    def test_single_row_faults_recovered(self, kind):
        specs = [FaultSpec("f", kind, "host", 1, row=3, col=2, channel=1)]
        frame, report = ReliableRowTransport(self.channel(specs)).receive()
        assert np.array_equal(frame, self.frame())
        assert report.detected

    def test_stall_recovered_with_backoff(self):
        specs = [
            FaultSpec("d", "drop_row", "host", 1, row=3),
            FaultSpec("s", "stall", "host", 1, duration=2),
        ]
        frame, report = ReliableRowTransport(self.channel(specs)).receive()
        assert np.array_equal(frame, self.frame())
        assert report.backoff_delays == [1.0, 2.0]

    def test_hard_stall_aborts(self):
        specs = [
            FaultSpec("d", "drop_row", "host", 1, row=3),
            FaultSpec("s", "stall", "host", 1, duration=99),
        ]
        with pytest.raises(FaultDetectedError, match="unrecoverable"):
            ReliableRowTransport(self.channel(specs)).receive()

    def test_brownout_detected_data_intact(self):
        specs = [
            FaultSpec("b", "brownout", "host", 1, bandwidth_factor=0.5)
        ]
        frame, report = ReliableRowTransport(self.channel(specs)).receive()
        assert np.array_equal(frame, self.frame())
        assert report.realized_bandwidth_factor == pytest.approx(0.5)
        assert any(d.monitor == "bandwidth" for d in report.detections)


class TestAssembleRaw:
    def test_drop_shifts_and_pads(self):
        specs = [FaultSpec("f", "drop_row", "host", 1, row=0)]
        chan = UnreliableRowChannel(
            init_state(), FaultInjector(specs), generation=1
        )
        frame = assemble_raw(chan)
        assert frame.shape == (ROWS, COLS)
        assert np.array_equal(frame[0], init_state()[1])  # shifted up
        assert np.all(frame[-1] == 0)  # zero padding

    def test_duplicate_truncates(self):
        specs = [FaultSpec("f", "duplicate_row", "host", 1, row=0)]
        chan = UnreliableRowChannel(
            init_state(), FaultInjector(specs), generation=1
        )
        frame = assemble_raw(chan)
        assert np.array_equal(frame[0], frame[1])  # duplicated row
        assert frame.shape == (ROWS, COLS)
