"""Tests for the corruption monitors.

Includes the subsystem's key property test: *any* single bit flip in a
conserved channel is flagged by the conservation monitor within one
generation.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.resilience.monitors import (
    BandwidthMonitor,
    ConservationMonitor,
    FusedMonitor,
    ParityMonitor,
    TMRVoter,
    row_parity_tags,
)

ROWS, COLS = 8, 8


@pytest.fixture
def model():
    return FHPModel(ROWS, COLS, boundary="periodic", chirality="alternate")


@pytest.fixture
def state(rng):
    return uniform_random_state(ROWS, COLS, 6, 0.4, rng)


class TestRowParityTags:
    def test_shape(self, state):
        assert row_parity_tags(state).shape == (ROWS,)

    def test_stable_for_same_state(self, state):
        assert np.array_equal(row_parity_tags(state), row_parity_tags(state.copy()))

    def test_any_single_flip_changes_its_row_tag(self, state):
        tags = row_parity_tags(state)
        for r in range(ROWS):
            for c in range(COLS):
                for ch in range(6):
                    bad = state.copy()
                    bad[r, c] ^= 1 << ch
                    new = row_parity_tags(bad)
                    assert new[r] != tags[r]
                    mask = np.ones(ROWS, dtype=bool)
                    mask[r] = False
                    assert np.array_equal(new[mask], tags[mask])


class TestParityMonitor:
    def test_silent_before_tagging(self, state):
        assert ParityMonitor().check(state, 0) == []

    def test_clean_state_passes(self, state):
        monitor = ParityMonitor()
        monitor.tag(state)
        assert monitor.check(state, 1) == []

    def test_flip_detected_and_localized(self, state):
        monitor = ParityMonitor()
        monitor.tag(state)
        bad = state.copy()
        bad[5, 3] ^= 1 << 2
        detections = monitor.check(bad, 1)
        assert len(detections) == 1
        assert detections[0].rows == (5,)
        assert detections[0].monitor == "parity"


class TestConservationMonitor:
    def test_requires_periodic_boundary(self):
        null_model = FHPModel(ROWS, COLS, boundary="null")
        with pytest.raises(ValueError, match="periodic"):
            ConservationMonitor(null_model)

    def test_clean_evolution_never_flags(self, model, state):
        monitor = ConservationMonitor(model)
        monitor.arm(state)
        auto = LatticeGasAutomaton(model, state)
        for _ in range(6):
            auto.step()
            assert monitor.check(auto.state, auto.time) == []

    @given(
        r=st.integers(0, ROWS - 1),
        c=st.integers(0, COLS - 1),
        ch=st.integers(0, 5),
        steps_before=st.integers(0, 3),
    )
    def test_any_single_flip_flagged_within_one_generation(
        self, r, c, ch, steps_before
    ):
        """The mandated property: a single bit flip in any conserved
        channel, at any site, at any point of the evolution, is flagged
        within one generation — the flip changes total mass by exactly
        ±1 and the microdynamics conserve mass thereafter, so the drift
        can never re-mask itself."""
        model = FHPModel(ROWS, COLS, boundary="periodic", chirality="alternate")
        state = uniform_random_state(
            ROWS, COLS, 6, 0.4, np.random.default_rng(99)
        )
        monitor = ConservationMonitor(model)
        monitor.arm(state)
        auto = LatticeGasAutomaton(model, state)
        auto.run(steps_before)
        auto.state[r, c] ^= np.uint8(1 << ch)
        # Flagged immediately on the corrupted frame...
        assert monitor.check(auto.state, auto.time)
        # ...and still flagged one generation later (conservation means
        # the corrupted mass count persists through the update).
        auto.step()
        assert monitor.check(auto.state, auto.time)

    def test_exhaustive_single_flips_at_one_generation(self, model, state):
        """Deterministic exhaustive sweep of the same property at t=1."""
        monitor = ConservationMonitor(model)
        monitor.arm(state)
        auto = LatticeGasAutomaton(model, state)
        auto.step()
        base = auto.state.copy()
        for r in range(ROWS):
            for c in range(COLS):
                for ch in range(6):
                    bad = base.copy()
                    bad[r, c] ^= 1 << ch
                    assert monitor.check(bad, 1), (r, c, ch)


class TestFusedMonitor:
    def test_requires_periodic_boundary(self):
        null_model = FHPModel(ROWS, COLS, boundary="null")
        with pytest.raises(ValueError, match="periodic"):
            FusedMonitor(null_model)

    def test_rejects_bad_sweep_interval(self, model):
        with pytest.raises(ValueError, match="sweep_interval"):
            FusedMonitor(model, sweep_interval=0)

    def test_clean_evolution_never_flags(self, model, state):
        monitor = FusedMonitor(model, sweep_interval=2)
        monitor.arm(state)
        auto = LatticeGasAutomaton(model, state)
        for _ in range(8):
            auto.step()
            assert monitor.observe(auto.state, auto.time) == []
            assert monitor.check_at_rest(auto.state, auto.time) == []

    def test_silent_before_arming(self, state):
        monitor = FusedMonitor(
            FHPModel(ROWS, COLS, boundary="periodic", chirality="alternate")
        )
        assert monitor.observe(state, 0) == []
        assert monitor.check_at_rest(state, 0) == []

    def test_exhaustive_single_flips_flagged(self, model, state):
        """The one-generation guarantee survives the light sweep: every
        single flip moves total mass, which the per-generation popcount
        check compares exactly."""
        monitor = FusedMonitor(model)
        monitor.arm(state)
        auto = LatticeGasAutomaton(model, state)
        auto.step()
        base = auto.state.copy()
        for r in range(ROWS):
            for c in range(COLS):
                for ch in range(6):
                    bad = base.copy()
                    bad[r, c] ^= 1 << ch
                    fresh = FusedMonitor(model)
                    fresh.arm(state)
                    detections = fresh.observe(bad, 1)
                    assert detections, (r, c, ch)
                    assert detections[0].monitor == "conservation"

    def test_mass_preserving_substitution_caught_by_sweep(self, model):
        """A particle moved between channels keeps mass but not
        momentum; the periodic full sweep bounds the detection latency
        to sweep_interval generations."""
        state = np.zeros((ROWS, COLS), dtype=np.uint8)
        state[2, 3] = 0b000001
        monitor = FusedMonitor(model, sweep_interval=3)
        monitor.arm(state)
        bad = state.copy()
        bad[2, 3] = 0b000010  # same popcount, different velocity
        assert monitor.observe(bad, 1) == []  # light sweep: mass intact
        assert monitor.observe(bad, 2) == []
        detections = monitor.observe(bad, 3)  # full sweep generation
        assert detections
        assert "momentum" in detections[0].detail

    def test_at_rest_flip_localized(self, model, state):
        monitor = FusedMonitor(model)
        monitor.arm(state)
        bad = state.copy()
        bad[4, 1] ^= 1 << 3
        detections = monitor.check_at_rest(bad, 1)
        assert len(detections) == 1
        assert detections[0].monitor == "parity"
        assert detections[0].rows == (4,)

    def test_rearm_resets_baseline(self, model, state, rng):
        monitor = FusedMonitor(model)
        monitor.arm(state)
        other = uniform_random_state(ROWS, COLS, 6, 0.2, rng)
        assert monitor.observe(other, 1)  # different mass: flagged
        monitor.rearm(other)
        assert monitor.observe(other, 2) == []


class TestTMRVoter:
    def test_vote_is_bitwise_majority(self):
        a = np.array([0b1100], dtype=np.uint8)
        b = np.array([0b1010], dtype=np.uint8)
        c = np.array([0b1001], dtype=np.uint8)
        assert TMRVoter.vote(a, b, c)[0] == 0b1000

    def test_outvotes_single_faulty_replica(self):
        def faulty(values, r, c, t):
            values[0] ^= 0b1
            return values

        voter = TMRVoter(faulty)
        hook = voter.as_post_collide()
        values = np.array([0b10, 0b11], dtype=np.uint8)
        out = hook(values.copy(), np.zeros(2, int), np.arange(2), 3)
        assert np.array_equal(out, values)
        assert len(voter.detections) == 1
        assert voter.detections[0].generation == 3

    def test_clean_replicas_no_detection(self):
        voter = TMRVoter(lambda values, r, c, t: values)
        hook = voter.as_post_collide()
        values = np.array([0b10], dtype=np.uint8)
        assert np.array_equal(hook(values.copy(), np.zeros(1, int), np.zeros(1, int), 0), values)
        assert voter.detections == []


class TestBandwidthMonitor:
    def test_above_floor_silent(self):
        assert BandwidthMonitor(floor=0.9).check_transfer(0.95, 1) == []

    def test_below_floor_flags(self):
        detections = BandwidthMonitor(floor=0.9).check_transfer(0.5, 1)
        assert len(detections) == 1
        assert "50%" in detections[0].detail

    def test_rejects_bad_floor(self):
        with pytest.raises(ValueError, match="floor"):
            BandwidthMonitor(floor=0.0)
