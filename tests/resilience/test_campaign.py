"""Tests for the campaign runner, its report, and the CLI subcommand."""

import json

import pytest

from repro.cli import main
from repro.resilience.campaign import (
    OUTCOMES,
    CampaignConfig,
    build_trials,
    render_report,
    report_json,
    run_campaign,
)
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def monitored_report():
    return run_campaign(CampaignConfig(monitors=True))


@pytest.fixture(scope="module")
def unmonitored_report():
    return run_campaign(CampaignConfig(monitors=False))


class TestCampaignConfig:
    def test_rejects_odd_rows(self):
        with pytest.raises(ConfigError, match="even"):
            CampaignConfig(rows=15)

    def test_rejects_tiny_runs(self):
        with pytest.raises(ConfigError, match="generations"):
            CampaignConfig(generations=3)

    def test_rejects_bad_density(self):
        with pytest.raises(ConfigError, match="density"):
            CampaignConfig(density=0.0)


class TestBuildTrials:
    def test_covers_every_location(self):
        trials = build_trials(CampaignConfig())
        locations = {t.specs[-1].location for t in trials}
        assert locations == {"memory", "pe", "shiftreg", "host"}

    def test_covers_every_kind(self):
        trials = build_trials(CampaignConfig())
        kinds = {s.kind for t in trials for s in t.specs}
        assert kinds == {
            "bit_flip",
            "stuck_at",
            "drop_row",
            "duplicate_row",
            "stall",
            "brownout",
        }

    def test_deterministic_for_seed(self):
        assert build_trials(CampaignConfig(seed=5)) == build_trials(
            CampaignConfig(seed=5)
        )

    def test_seed_changes_placement(self):
        a = build_trials(CampaignConfig(seed=0))
        b = build_trials(CampaignConfig(seed=1))
        assert a != b


class TestAcceptanceCriteria:
    """The ISSUE's acceptance criteria, verbatim."""

    def test_monitored_campaign_has_zero_sdc(self, monitored_report):
        assert monitored_report["summary"]["silent-data-corruption"] == 0

    def test_monitored_campaign_has_no_uncorrected(self, monitored_report):
        assert monitored_report["summary"]["detected-uncorrected"] == 0

    def test_unmonitored_campaign_has_sdc(self, unmonitored_report):
        assert unmonitored_report["summary"]["silent-data-corruption"] > 0

    def test_report_byte_reproducible(self, monitored_report):
        again = run_campaign(CampaignConfig(monitors=True))
        assert report_json(monitored_report) == report_json(again)


class TestReportShape:
    def test_versioned_schema(self, monitored_report):
        assert monitored_report["schema"] == "repro-fault-campaign"
        assert monitored_report["version"] == 2

    def test_summary_buckets_complete(self, monitored_report):
        assert set(monitored_report["summary"]) == set(OUTCOMES)
        assert sum(monitored_report["summary"].values()) == len(
            monitored_report["trials"]
        )

    def test_every_trial_has_faults_and_outcome(self, monitored_report):
        for trial in monitored_report["trials"]:
            assert trial["faults"]
            assert trial["outcome"] in OUTCOMES

    def test_json_round_trips(self, monitored_report):
        assert json.loads(report_json(monitored_report)) == monitored_report

    def test_render_mentions_summary(self, monitored_report):
        text = render_report(monitored_report)
        assert "silent-data-corruption=0" in text
        assert "monitors=on" in text


class TestTrialTimeout:
    """Satellite: the campaign's wall-clock guard per trial."""

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ConfigError, match="trial_timeout_seconds"):
            CampaignConfig(trial_timeout_seconds=0.0)

    def test_stalled_trial_is_classified_aborted(self, monkeypatch):
        import time

        from repro.resilience import campaign as mod

        def hang_forever(config, trial, monitored):
            time.sleep(60.0)
            raise AssertionError("the timeout guard never fired")

        monkeypatch.setitem(mod._RUNNERS, "memory", hang_forever)
        config = CampaignConfig(trial_timeout_seconds=0.2)
        trial = next(
            t
            for t in build_trials(config)
            if t.specs[0].location == "memory"
        )
        result = mod.run_trial(config, trial)
        assert result.outcome == "aborted"
        assert result.aborted
        # The note records the configured limit, not the elapsed time,
        # so reports stay byte-reproducible.
        assert "0.2s" in result.notes

    def test_aborted_bucket_in_summary(self, monitored_report):
        assert "aborted" in monitored_report["summary"]
        assert monitored_report["summary"]["aborted"] == 0


class TestFaultsCli:
    def test_text_mode_exits_zero(self, capsys):
        assert main(["faults"]) == 0
        out = capsys.readouterr().out
        assert "Fault campaign" in out
        assert "silent-data-corruption=0" in out

    def test_json_mode_byte_reproducible(self, capsys):
        assert main(["faults", "--seed", "0", "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["faults", "--seed", "0", "--json"]) == 0
        assert capsys.readouterr().out == first

    def test_no_monitors_reports_sdc_without_failing(self, capsys):
        assert main(["faults", "--no-monitors"]) == 0
        out = capsys.readouterr().out
        assert "monitors=off" in out
        assert "silent-data-corruption=0" not in out

    def test_config_error_is_one_line_exit_2(self, capsys):
        assert main(["faults", "--generations", "3"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro faults:")
        assert err.count("\n") == 1
