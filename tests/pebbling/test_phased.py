"""Tests for native parallel-red-blue schedules."""

import pytest

from repro.lattice.geometry import OrthogonalLattice
from repro.pebbling.game import IllegalMoveError
from repro.pebbling.graph import ComputationGraph
from repro.pebbling.parallel_game import ParallelRedBluePebbleGame
from repro.pebbling.phased import layer_parallel_steps, measure_phased


@pytest.fixture
def graph():
    return ComputationGraph(OrthogonalLattice.cube(2, 5), generations=4)


class TestLayerParallelSteps:
    def test_complete_and_legal(self, graph):
        storage = graph.num_sites
        steps = layer_parallel_steps(graph, storage)
        report = measure_phased(graph, steps, storage)
        assert report.io_moves > 0

    def test_io_matches_sequential_pipeline(self, graph):
        """Parallelism changes time, never I/O: (T+1)·n transfers, the
        same as the sequential k=1 sweep."""
        storage = graph.num_sites
        report = measure_phased(graph, layer_parallel_steps(graph, storage), storage)
        assert report.io_moves == graph.num_layers * graph.num_sites

    def test_pink_pebble_slide_needs_only_one_layer(self, graph):
        """The pink-pebble fan-out/slide: supports hand registers to the
        results computed in the same phase, so S = n suffices."""
        storage = graph.num_sites
        report = measure_phased(graph, layer_parallel_steps(graph, storage), storage)
        assert report.steps > 0

    def test_parallel_speedup_scales_with_storage(self, graph):
        """Wider parallel I/O (bigger S) means fewer steps."""
        s_small = graph.num_sites
        rep_small = measure_phased(
            graph, layer_parallel_steps(graph, s_small), s_small
        )
        s_big = 10 * graph.num_sites
        rep_big = measure_phased(graph, layer_parallel_steps(graph, s_big), s_big)
        assert rep_big.steps <= rep_small.steps
        assert rep_big.parallel_speedup >= rep_small.parallel_speedup

    def test_speedup_order_of_magnitude(self, graph):
        """Steps ≈ 2T + n/S-ish vs ~5n·T sequential moves: the phased
        machine is ~n times faster at full width."""
        storage = 2 * graph.num_sites
        report = measure_phased(graph, layer_parallel_steps(graph, storage), storage)
        assert report.parallel_speedup > graph.num_sites / 4

    def test_rejects_insufficient_storage(self, graph):
        with pytest.raises(ValueError, match="one layer"):
            layer_parallel_steps(graph, graph.num_sites - 1)

    def test_budget_enforced_by_game(self, graph):
        """Replaying with a budget below one layer fails in the game's
        own legality checks."""
        storage = graph.num_sites
        steps = layer_parallel_steps(graph, storage)
        game = ParallelRedBluePebbleGame(graph, storage - 1)
        with pytest.raises(IllegalMoveError):
            game.run(steps)

    def test_1d_graph(self):
        g = ComputationGraph(OrthogonalLattice.cube(1, 12), generations=6)
        storage = g.num_sites
        report = measure_phased(g, layer_parallel_steps(g, storage), storage)
        assert report.io_moves == g.num_layers * g.num_sites
