"""Unit tests for the sequential red-blue pebble game."""

import pytest

from repro.lattice.geometry import OrthogonalLattice
from repro.pebbling.game import (
    IllegalMoveError,
    Move,
    MoveKind,
    RedBluePebbleGame,
    replay,
)
from repro.pebbling.graph import ComputationGraph


@pytest.fixture
def graph() -> ComputationGraph:
    return ComputationGraph(OrthogonalLattice.cube(1, 3), generations=1)


class TestInitialState:
    def test_inputs_blue(self, graph):
        game = RedBluePebbleGame(graph, storage=4)
        for v in graph.inputs():
            assert game.is_blue(int(v))
        assert game.io_moves == 0
        assert not game.goal_reached()


class TestReads:
    def test_read_blue_vertex(self, graph):
        game = RedBluePebbleGame(graph, storage=4)
        game.read(0)
        assert game.is_red(0)
        assert game.io_moves == 1

    def test_read_requires_blue(self, graph):
        game = RedBluePebbleGame(graph, storage=4)
        with pytest.raises(IllegalMoveError, match="no blue"):
            game.read(3)  # layer-1 vertex, not in memory yet

    def test_read_already_red_is_wasted(self, graph):
        game = RedBluePebbleGame(graph, storage=4)
        game.read(0)
        with pytest.raises(IllegalMoveError, match="already red"):
            game.read(0)

    def test_red_budget_enforced(self, graph):
        game = RedBluePebbleGame(graph, storage=2)
        game.read(0)
        game.read(1)
        with pytest.raises(IllegalMoveError, match="red pebbles in use"):
            game.read(2)


class TestCompute:
    def test_compute_with_red_preds(self, graph):
        game = RedBluePebbleGame(graph, storage=4)
        for v in (0, 1):
            game.read(v)
        game.compute(3)  # site 0 at layer 1 depends on sites 0,1
        assert game.is_red(3)
        assert game.compute_moves == 1

    def test_compute_missing_pred(self, graph):
        game = RedBluePebbleGame(graph, storage=4)
        game.read(0)
        with pytest.raises(IllegalMoveError, match="not red-pebbled"):
            game.compute(3)

    def test_compute_input_forbidden(self, graph):
        game = RedBluePebbleGame(graph, storage=4)
        with pytest.raises(IllegalMoveError, match="input"):
            game.compute(0)

    def test_compute_budget(self, graph):
        game = RedBluePebbleGame(graph, storage=2)
        game.read(0)
        game.read(1)
        with pytest.raises(IllegalMoveError, match="red pebbles in use"):
            game.compute(3)

    def test_recompute_allowed_after_removal(self, graph):
        game = RedBluePebbleGame(graph, storage=4)
        game.read(0)
        game.read(1)
        game.compute(3)
        game.remove_red(3)
        game.compute(3)  # recomputation is legal in pebble games
        assert game.compute_moves == 2
        assert len(game.computed) == 1


class TestWriteAndRemove:
    def test_write_requires_red(self, graph):
        game = RedBluePebbleGame(graph, storage=4)
        with pytest.raises(IllegalMoveError, match="no red"):
            game.write(3)

    def test_write_already_blue_wasted(self, graph):
        game = RedBluePebbleGame(graph, storage=4)
        game.read(0)
        with pytest.raises(IllegalMoveError, match="already blue"):
            game.write(0)

    def test_remove_red(self, graph):
        game = RedBluePebbleGame(graph, storage=1)
        game.read(0)
        game.remove_red(0)
        assert not game.is_red(0)
        game.read(1)  # budget freed

    def test_remove_red_requires_red(self, graph):
        game = RedBluePebbleGame(graph, storage=2)
        with pytest.raises(IllegalMoveError):
            game.remove_red(0)

    def test_remove_blue(self, graph):
        game = RedBluePebbleGame(graph, storage=2)
        game.remove_blue(0)
        assert not game.is_blue(0)
        with pytest.raises(IllegalMoveError):
            game.remove_blue(0)

    def test_evict_lru_like(self, graph):
        game = RedBluePebbleGame(graph, storage=4)
        game.read(0)
        game.read(1)
        game.read(2)
        game.evict_lru_like(keep=[1])
        assert game.red == {1}


class TestGoalAndReplay:
    def _complete_moves(self, graph):
        """Hand-built complete computation of the 3-site, 1-generation C_1."""
        moves = [Move(MoveKind.READ, v) for v in (0, 1, 2)]
        for out, preds in ((3, (0, 1)), (4, (0, 1, 2)), (5, (1, 2))):
            moves.append(Move(MoveKind.COMPUTE, out))
            moves.append(Move(MoveKind.WRITE, out))
        return moves

    def test_goal_reached(self, graph):
        game = replay(graph, storage=6, moves=self._complete_moves(graph))
        assert game.goal_reached()
        assert game.io_moves == 3 + 3

    def test_replay_rejects_illegal(self, graph):
        moves = [Move(MoveKind.COMPUTE, 3)]
        with pytest.raises(IllegalMoveError):
            replay(graph, storage=6, moves=moves)

    def test_history_recorded(self, graph):
        game = replay(graph, storage=6, moves=self._complete_moves(graph))
        assert len(game.history) == 9
        assert game.history[0].kind is MoveKind.READ

    def test_apply_dispatch(self, graph):
        game = RedBluePebbleGame(graph, storage=4)
        game.apply(Move(MoveKind.READ, 0))
        game.apply(Move(MoveKind.REMOVE_RED, 0))
        game.apply(Move(MoveKind.REMOVE_BLUE, 0))
        assert game.io_moves == 1

    def test_move_is_io(self):
        assert Move(MoveKind.READ, 0).is_io()
        assert Move(MoveKind.WRITE, 0).is_io()
        assert not Move(MoveKind.COMPUTE, 0).is_io()
        assert not Move(MoveKind.REMOVE_RED, 0).is_io()

    def test_storage_validated(self, graph):
        with pytest.raises(ValueError):
            RedBluePebbleGame(graph, storage=0)
