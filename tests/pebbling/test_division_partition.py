"""Unit tests for S-I/O-divisions, induced partitions, and K-partition
verification (Theorem 2 machinery)."""

import pytest

from repro.lattice.geometry import OrthogonalLattice
from repro.pebbling.division import division_size, induced_partition, io_division
from repro.pebbling.game import Move, MoveKind
from repro.pebbling.graph import ComputationGraph
from repro.pebbling.partition import (
    KPartition,
    PartitionError,
    verify_dominator,
    verify_partition,
)
from repro.pebbling.schedules import (
    per_site_schedule,
    row_cache_schedule,
)


@pytest.fixture
def graph() -> ComputationGraph:
    return ComputationGraph(OrthogonalLattice.cube(1, 6), generations=4)


def io(v):
    return Move(MoveKind.READ, v)


def comp(v):
    return Move(MoveKind.COMPUTE, v)


class TestIODivision:
    def test_exact_chunks(self):
        moves = [io(0), comp(1), io(1), io(2), comp(3), io(3)]
        chunks = io_division(moves, storage=2)
        assert len(chunks) == 2
        assert sum(m.is_io() for m in chunks[0]) == 2
        assert sum(m.is_io() for m in chunks[1]) == 2

    def test_remainder_chunk(self):
        moves = [io(0), io(1), io(2)]
        chunks = io_division(moves, storage=2)
        assert len(chunks) == 2
        assert sum(m.is_io() for m in chunks[1]) == 1

    def test_trailing_non_io_attaches(self):
        moves = [io(0), io(1), comp(5)]
        chunks = io_division(moves, storage=2)
        assert len(chunks) == 2
        assert chunks[1][0].kind is MoveKind.COMPUTE

    def test_empty_sequence(self):
        assert division_size([], storage=3) == 1

    def test_division_size_counts(self):
        moves = [io(i) for i in range(10)]
        assert division_size(moves, storage=3) == 4  # 3+3+3+1


class TestInducedPartition:
    @pytest.mark.parametrize("storage", [4, 8, 16])
    def test_partition_is_valid_2s_partition(self, graph, storage):
        """Theorem 2, checked constructively: the partition induced by a
        real pebbling is a valid 2S-partition."""
        moves = row_cache_schedule(graph, depth=2)
        part = induced_partition(graph, moves, storage)
        universe = sorted({v for sub in part.subsets for v in sub})
        verify_partition(graph, part, 2 * storage, universe=universe)

    def test_per_site_schedule_partition(self, graph):
        moves = per_site_schedule(graph)
        part = induced_partition(graph, moves, 6)
        universe = sorted({v for sub in part.subsets for v in sub})
        verify_partition(graph, part, 12, universe=universe)

    def test_partition_covers_computed_and_read(self, graph):
        moves = row_cache_schedule(graph, depth=1)
        part = induced_partition(graph, moves, 8)
        covered = {v for sub in part.subsets for v in sub}
        # every vertex ever red — inputs (read) + all computed vertices
        assert covered == set(range(graph.num_vertices))

    def test_size_relates_to_io(self, graph):
        """g ≈ h = ceil(q / S): each chunk holds exactly S I/O moves."""
        moves = row_cache_schedule(graph, depth=1)
        storage = 10
        from repro.pebbling.game import replay

        q = replay(graph, 200, moves).io_moves
        part = induced_partition(graph, moves, storage)
        assert part.size <= -(-q // storage)  # ceil division

    def test_dominator_sizes_bounded(self, graph):
        moves = row_cache_schedule(graph, depth=2)
        storage = 8
        part = induced_partition(graph, moves, storage)
        assert part.max_dominator_size() <= 2 * storage
        assert part.max_minimum_size() <= 2 * storage


class TestVerifyDominator:
    def test_accepts_true_dominator(self, graph):
        # subset = layer-1 vertex for site 2; dominator = its inputs
        v = graph.vertex((2,), 1)
        dom = [graph.vertex((i,), 0) for i in (1, 2, 3)]
        verify_dominator(graph, [v], dom)

    def test_rejects_leaky_dominator(self, graph):
        v = graph.vertex((2,), 1)
        dom = [graph.vertex((1,), 0)]  # misses inputs 2 and 3
        with pytest.raises(PartitionError, match="misses"):
            verify_dominator(graph, [v], dom)

    def test_subset_vertex_in_dominator_is_fine(self, graph):
        v = graph.vertex((2,), 1)
        verify_dominator(graph, [v], [v])


class TestVerifyPartition:
    def test_rejects_overlapping_subsets(self, graph):
        part = KPartition(
            subsets=((6, 7), (7, 8)),
            dominators=((), ()),
            minimums=((6, 7), (7, 8)),
        )
        with pytest.raises(PartitionError, match="two subsets"):
            verify_partition(graph, part, 10, universe=[6, 7, 8])

    def test_rejects_wrong_universe(self, graph):
        part = KPartition(subsets=((6,),), dominators=((),), minimums=((6,),))
        with pytest.raises(PartitionError, match="wrong vertex set"):
            verify_partition(graph, part, 10, universe=[6, 7])

    def test_rejects_oversized_dominator(self, graph):
        v = graph.vertex((2,), 1)
        dom = tuple(graph.vertex((i,), 0) for i in (1, 2, 3))
        part = KPartition(subsets=((v,),), dominators=(dom,), minimums=(((v,)),))
        with pytest.raises(PartitionError, match="exceed"):
            verify_partition(graph, part, 2, universe=[v])

    def test_rejects_missing_minimum(self, graph):
        v = graph.vertex((2,), 1)
        dom = tuple(graph.vertex((i,), 0) for i in (1, 2, 3))
        part = KPartition(subsets=((v,),), dominators=(dom,), minimums=((),))
        with pytest.raises(PartitionError, match="minimum"):
            verify_partition(graph, part, 10, universe=[v])

    def test_alignment_required(self):
        with pytest.raises(PartitionError, match="align"):
            KPartition(subsets=((1,),), dominators=(), minimums=())
