"""Unit tests for the LGCA computation graph C_d."""

import numpy as np
import pytest

from repro.lattice.geometry import OrthogonalLattice
from repro.pebbling.graph import ComputationGraph


@pytest.fixture
def g1() -> ComputationGraph:
    return ComputationGraph(OrthogonalLattice.cube(1, 5), generations=3)


@pytest.fixture
def g2() -> ComputationGraph:
    return ComputationGraph(OrthogonalLattice.cube(2, 4), generations=2)


class TestSizes:
    def test_layers_and_vertices(self, g1):
        assert g1.num_layers == 4
        assert g1.num_vertices == 20
        assert g1.num_sites == 5
        assert g1.num_non_input_vertices == 15

    def test_2d(self, g2):
        assert g2.num_vertices == 3 * 16
        assert g2.d == 2

    def test_validates_generations(self):
        with pytest.raises(ValueError):
            ComputationGraph(OrthogonalLattice.cube(1, 3), generations=0)


class TestEncoding:
    def test_vertex_roundtrip(self, g2):
        v = g2.vertex((1, 2), 2)
        assert g2.layer_of(v) == 2
        assert g2.site_of(v) == (1, 2)

    def test_vertex_rejects_bad_layer(self, g2):
        with pytest.raises(ValueError):
            g2.vertex((0, 0), 3)

    def test_check_vertex_range(self, g1):
        with pytest.raises(ValueError):
            g1.layer_of(20)
        with pytest.raises(ValueError):
            g1.layer_of(-1)

    def test_site_index_of(self, g1):
        v = g1.vertex((3,), 2)
        assert g1.site_index_of(v) == 3


class TestStructure:
    def test_inputs_outputs(self, g1):
        assert np.array_equal(g1.inputs(), np.arange(5))
        assert np.array_equal(g1.outputs(), np.arange(15, 20))

    def test_layer(self, g1):
        assert np.array_equal(g1.layer(2), np.arange(10, 15))
        with pytest.raises(ValueError):
            g1.layer(4)

    def test_inputs_have_no_predecessors(self, g1):
        for v in g1.inputs():
            assert g1.predecessors(int(v)).size == 0

    def test_outputs_have_no_successors(self, g1):
        for v in g1.outputs():
            assert g1.successors(int(v)).size == 0

    def test_interior_1d_predecessors(self, g1):
        v = g1.vertex((2,), 1)
        preds = {g1.site_of(int(u)) + (g1.layer_of(int(u)),) for u in g1.predecessors(v)}
        assert preds == {(1, 0), (2, 0), (3, 0)}

    def test_boundary_1d_predecessors(self, g1):
        v = g1.vertex((0,), 1)
        assert g1.predecessors(v).size == 2  # self + right neighbor

    def test_2d_interior_in_degree(self, g2):
        v = g2.vertex((1, 1), 1)
        assert g2.in_degree(v) == 5  # self + 4 von Neumann neighbors

    def test_successors_are_adjoint(self, g2):
        """u in preds(v) iff v in succs(u)."""
        for v in range(g2.num_sites, g2.num_vertices):
            for u in g2.predecessors(v):
                assert v in set(g2.successors(int(u)).tolist())

    def test_bounded_in_degree(self, g2):
        max_deg = max(g2.in_degree(v) for v in range(g2.num_sites, g2.num_vertices))
        assert max_deg == 2 * g2.d + 1


class TestDistances:
    def test_lemma3_paths_have_layer_gap_length(self, g1):
        """Every (u,v)-path has length layer(v) - layer(u)."""
        u = g1.vertex((1,), 0)
        v = g1.vertex((2,), 2)
        assert g1.distance(u, v) == 2

    def test_unreachable_spatially(self, g1):
        u = g1.vertex((0,), 0)
        v = g1.vertex((4,), 1)  # needs 4 lattice steps in 1 layer
        assert g1.distance(u, v) is None

    def test_backwards_unreachable(self, g1):
        u = g1.vertex((0,), 2)
        v = g1.vertex((0,), 1)
        assert g1.distance(u, v) is None

    def test_reachable_in_counts(self, g2):
        u = g2.vertex((0, 0), 0)
        reach = g2.reachable_in(u, 1)
        # corner: sites within distance 1 = 3 sites
        assert reach.size == 3
        assert all(g2.layer_of(int(v)) == 1 for v in reach)

    def test_reachable_in_beyond_depth_empty(self, g2):
        u = g2.vertex((0, 0), 2)
        assert g2.reachable_in(u, 1).size == 0


class TestNetworkx:
    def test_matches_networkx_dag(self, g2):
        nxg = g2.to_networkx()
        import networkx as nx

        assert nx.is_directed_acyclic_graph(nxg)
        assert nxg.number_of_nodes() == g2.num_vertices
        # arc count = sum of in-degrees
        expected_arcs = sum(
            g2.in_degree(v) for v in range(g2.num_sites, g2.num_vertices)
        )
        assert nxg.number_of_edges() == expected_arcs

    def test_refuses_huge(self):
        g = ComputationGraph(OrthogonalLattice.cube(2, 400), generations=2)
        with pytest.raises(ValueError, match="refusing"):
            g.to_networkx()
