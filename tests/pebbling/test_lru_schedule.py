"""Unit tests for the LRU-cache schedule (general-purpose-machine model)."""

import pytest

from repro.lattice.geometry import OrthogonalLattice
from repro.pebbling.graph import ComputationGraph
from repro.pebbling.schedules import (
    lru_cache_schedule,
    measure_schedule,
    row_cache_schedule,
    row_cache_storage_needed,
)


def graph_2d(side=12, gens=4):
    return ComputationGraph(OrthogonalLattice.cube(2, side), generations=gens)


class TestCorrectness:
    @pytest.mark.parametrize("storage", [6, 20, 60, 300])
    def test_complete_and_legal(self, storage):
        g = graph_2d()
        report = measure_schedule(
            g, lru_cache_schedule(g, storage), storage, f"lru-{storage}"
        )
        assert report.unique_computed == g.num_non_input_vertices
        assert report.recompute_factor == 1.0

    def test_respects_budget_exactly(self):
        g = graph_2d()
        report = measure_schedule(g, lru_cache_schedule(g, 25), 25, "lru")
        assert report.max_red <= 25

    def test_1d_graph(self):
        g = ComputationGraph(OrthogonalLattice.cube(1, 24), generations=8)
        report = measure_schedule(g, lru_cache_schedule(g, 8), 8, "lru1d")
        assert report.unique_computed == g.num_non_input_vertices

    def test_rejects_below_working_set(self):
        g = graph_2d()
        with pytest.raises(ValueError, match="working set"):
            lru_cache_schedule(g, 5)


class TestCacheBehaviour:
    def test_capacity_cliff(self):
        """Below the two-line working set the cache thrashes; above it,
        it matches the pipeline's 2 I/O per update."""
        g = graph_2d(side=16, gens=4)
        thrash = measure_schedule(g, lru_cache_schedule(g, 16), 16, "small")
        smooth = measure_schedule(g, lru_cache_schedule(g, 300), 300, "big")
        assert smooth.io_per_update == pytest.approx(2.0)
        assert thrash.io_per_update > 1.5 * smooth.io_per_update

    def test_working_set_cache_matches_pipeline_io(self):
        """A cache holding the stencil working set (but not whole
        layers across generations) does exactly what the single-stage
        pipeline does: 2 I/O per update."""
        g = graph_2d(side=10, gens=4)
        lru = measure_schedule(g, lru_cache_schedule(g, 40), 40, "lru")
        pipe = measure_schedule(
            g, row_cache_schedule(g, 1), row_cache_storage_needed(g, 1), "pipe"
        )
        assert lru.io_per_update == pytest.approx(pipe.io_per_update)

    def test_whole_problem_in_cache_floor(self):
        """When the entire graph fits, only the unavoidable I/O remains:
        read every input, write every computed value once."""
        g = graph_2d(side=8, gens=3)
        lru = measure_schedule(g, lru_cache_schedule(g, 10_000), 10_000, "lru")
        expected = (g.num_sites + g.num_non_input_vertices) / g.num_non_input_vertices
        assert lru.io_per_update == pytest.approx(expected)

    def test_monotone_in_storage(self):
        """More cache never costs more I/O for this sweep order."""
        g = graph_2d(side=12, gens=4)
        ios = [
            measure_schedule(g, lru_cache_schedule(g, s), s, "m").io_per_update
            for s in (8, 24, 72, 216)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(ios, ios[1:]))

    def test_never_beats_two_when_problem_exceeds_cache(self):
        """Without cross-generation blocking, a cache smaller than the
        problem cannot beat the read-once/write-once floor — beating 2
        requires the engines' k-deep pipelines or trapezoid tiles."""
        g = graph_2d(side=8, gens=3)
        lru = measure_schedule(g, lru_cache_schedule(g, 48), 48, "lru")
        assert lru.io_per_update >= 2.0 - 1e-9
