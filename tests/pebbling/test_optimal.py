"""Unit tests for the exact minimum-I/O pebbling search."""

import pytest

from repro.lattice.geometry import OrthogonalLattice
from repro.pebbling.bounds import io_moves_lower_bound
from repro.pebbling.graph import ComputationGraph
from repro.pebbling.optimal import minimum_io, optimal_pebbling
from repro.pebbling.schedules import (
    measure_schedule,
    per_site_schedule,
    row_cache_schedule,
    row_cache_storage_needed,
)


@pytest.fixture(scope="module")
def tiny():
    """1-D lattice, 4 sites, 2 generations: 12 vertices."""
    return ComputationGraph(OrthogonalLattice.cube(1, 4), generations=2)


class TestValidation:
    def test_rejects_large_graph(self):
        g = ComputationGraph(OrthogonalLattice.cube(1, 10), generations=2)
        with pytest.raises(ValueError, match="capped"):
            optimal_pebbling(g, 8)

    def test_rejects_insufficient_storage(self, tiny):
        with pytest.raises(ValueError, match="in-degree"):
            optimal_pebbling(tiny, 3)

    def test_rejects_zero_storage(self, tiny):
        with pytest.raises(ValueError):
            optimal_pebbling(tiny, 0)


class TestExactValues:
    def test_generous_storage_floor_is_inputs_plus_outputs(self, tiny):
        """With S >= all vertices, the only unavoidable I/O is reading
        every input once and writing every output once."""
        assert minimum_io(tiny, 12) == tiny.num_sites * 2  # 4 + 4

    def test_monotone_in_storage(self, tiny):
        q4 = minimum_io(tiny, 4)
        q6 = minimum_io(tiny, 6)
        q8 = minimum_io(tiny, 8)
        assert q4 >= q6 >= q8

    def test_tight_budget_costs_more(self, tiny):
        assert minimum_io(tiny, 4) > minimum_io(tiny, 8)

    def test_exact_against_lemma_bound(self, tiny):
        """The exact optimum respects (and dominates) the Lemma 1/2 lower
        bound."""
        for s in (4, 6, 8):
            assert minimum_io(tiny, s) >= io_moves_lower_bound(tiny, s)

    def test_single_generation_line(self):
        """3-site, 1-generation path: Q* = 3 reads + 3 writes with room,
        since every input must enter and every output must leave."""
        g = ComputationGraph(OrthogonalLattice.cube(1, 3), generations=1)
        assert minimum_io(g, 6) == 6


class TestSchedulesVsOptimal:
    def test_row_cache_is_optimal_at_depth_t(self, tiny):
        """The paper's pipeline schedule with k = T matches the exact
        optimum Q* = inputs + outputs (reads each input once, writes
        each output once, nothing else)."""
        moves = row_cache_schedule(tiny, depth=2)
        report = measure_schedule(
            tiny, moves, row_cache_storage_needed(tiny, 2), "rc"
        )
        assert report.io_moves == minimum_io(tiny, report.max_red)

    def test_per_site_is_far_from_optimal(self, tiny):
        report = measure_schedule(tiny, per_site_schedule(tiny), 4, "ps")
        q_star = minimum_io(tiny, 4)
        assert report.io_moves > 2 * q_star

    def test_search_diagnostics(self, tiny):
        res = optimal_pebbling(tiny, 6)
        assert res.states_expanded > 0
        assert res.storage == 6
