"""Hexagonal computation graphs: the paper's worst-case claim, checked.

Section 7 proves its bounds on the orthogonal grid and argues that is
the worst case: "we are assuming the minimum connectivity for G in the
sense that any lattice that satisfies isotropy requires at least the
same degree of connectivity."  These tests run the full pebbling stack
on the *actual FHP lattice* and verify (a) line-spreads dominate the
orthogonal ones (so Lemma 8 / Theorem 4 hold a fortiori), and (b) the
schedules and bound machinery work unchanged.
"""

import pytest

from repro.lattice.geometry import HexagonalLattice, OrthogonalLattice
from repro.pebbling.bounds import (
    lemma8_lower_bound,
    theorem4_line_time_bound,
)
from repro.pebbling.division import induced_partition
from repro.pebbling.graph import ComputationGraph
from repro.pebbling.lines import line_spread, max_line_vertices_per_subset
from repro.pebbling.schedules import (
    lru_cache_schedule,
    measure_schedule,
    per_site_schedule,
    trapezoid_schedule,
    trapezoid_storage_needed,
)


@pytest.fixture
def hex_graph():
    return ComputationGraph(HexagonalLattice(8, 8), generations=3)


class TestHexLatticeGraphInterface:
    def test_index_site_roundtrip(self):
        hexl = HexagonalLattice(5, 7)
        for i in range(hexl.num_sites):
            assert hexl.index(hexl.site(i)) == i

    def test_distance_symmetric(self):
        hexl = HexagonalLattice(6, 6)
        assert hexl.distance((0, 0), (3, 3)) == hexl.distance((3, 3), (0, 0))

    def test_distance_shorter_than_manhattan(self):
        """Hex diagonals shortcut the orthogonal metric."""
        hexl = HexagonalLattice(8, 8)
        orth = OrthogonalLattice((8, 8))
        assert hexl.distance((0, 0), (5, 5)) <= orth.distance((0, 0), (5, 5))

    def test_reachable_within_grows(self):
        hexl = HexagonalLattice(10, 10)
        counts = [hexl.reachable_within((5, 5), j) for j in range(4)]
        assert counts[0] == 1
        assert all(a < b for a, b in zip(counts, counts[1:]))

    def test_interior_ball_sizes_hex(self):
        """Interior hex ball: 1 + 3j(j+1) sites within j steps."""
        hexl = HexagonalLattice(20, 20)
        for j in (1, 2, 3):
            assert hexl.reachable_within((10, 10), j) == 1 + 3 * j * (j + 1)

    def test_validation(self):
        hexl = HexagonalLattice(4, 4)
        with pytest.raises(ValueError):
            hexl.index((4, 0))
        with pytest.raises(ValueError):
            hexl.site(16)
        with pytest.raises(ValueError):
            hexl.reachable_within((0, 0), -1)


class TestHexComputationGraph:
    def test_in_degree_is_seven_interior(self, hex_graph):
        v = hex_graph.vertex((4, 4), 1)
        assert hex_graph.in_degree(v) == 7  # self + 6 hex neighbors

    def test_minimal_connectivity_claim(self):
        """The paper's worst-case argument: the hexagonal lattice reaches
        at least as many sites in j steps as the orthogonal one, for
        every j — so bounds proved on the orthogonal grid carry over."""
        hexl = HexagonalLattice(10, 10)
        orth = OrthogonalLattice((10, 10))
        for j in range(1, 6):
            assert hexl.min_reachable_within(j) >= orth.min_reachable_within(j)

    def test_line_spread_dominates_orthogonal(self):
        hex_g = ComputationGraph(HexagonalLattice(10, 10), generations=5)
        orth_g = ComputationGraph(OrthogonalLattice((10, 10)), generations=5)
        for j in (1, 2, 3, 4):
            assert line_spread(hex_g, j) >= line_spread(orth_g, j)

    def test_lemma8_holds_a_fortiori(self, hex_graph):
        for j in (1, 2, 3):
            assert line_spread(hex_graph, j) > lemma8_lower_bound(2, j)


class TestSchedulesOnHexGraphs:
    def test_per_site_complete(self, hex_graph):
        report = measure_schedule(
            hex_graph, per_site_schedule(hex_graph), 8, "ps-hex"
        )
        assert report.unique_computed == hex_graph.num_non_input_vertices
        # hex stencil: up to 7 reads + 1 write per update
        assert 6.0 < report.io_per_update <= 8.0

    def test_lru_complete(self, hex_graph):
        report = measure_schedule(
            hex_graph, lru_cache_schedule(hex_graph, 64), 64, "lru-hex"
        )
        assert report.unique_computed == hex_graph.num_non_input_vertices

    def test_trapezoid_complete(self, hex_graph):
        """Hex storage offsets stay within ±1 per axis, so the orthogonal
        trapezoid halo still covers every dependency."""
        report = measure_schedule(
            hex_graph,
            trapezoid_schedule(hex_graph, 4, 2),
            trapezoid_storage_needed(hex_graph, 4, 2),
            "trap-hex",
        )
        assert report.unique_computed == hex_graph.num_non_input_vertices

    def test_theorem4_on_hex_partitions(self, hex_graph):
        """τ of induced 2S-partitions respects the orthogonal-lattice
        bound (hex spreads are larger, dominators bite harder)."""
        moves = per_site_schedule(hex_graph)
        for storage in (8, 16):
            part = induced_partition(hex_graph, moves, storage)
            tau = max_line_vertices_per_subset(hex_graph, part)
            assert tau < theorem4_line_time_bound(2, storage)
