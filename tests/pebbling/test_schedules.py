"""Unit + property tests for constructive pebbling schedules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.geometry import OrthogonalLattice
from repro.pebbling.game import IllegalMoveError
from repro.pebbling.graph import ComputationGraph
from repro.pebbling.schedules import (
    measure_schedule,
    per_site_schedule,
    per_site_storage_needed,
    row_cache_schedule,
    row_cache_storage_needed,
    trapezoid_schedule,
    trapezoid_storage_needed,
)


def graph_1d(side=16, gens=8):
    return ComputationGraph(OrthogonalLattice.cube(1, side), generations=gens)


def graph_2d(side=6, gens=4):
    return ComputationGraph(OrthogonalLattice.cube(2, side), generations=gens)


class TestPerSite:
    def test_complete_and_legal(self):
        g = graph_1d()
        report = measure_schedule(
            g, per_site_schedule(g), per_site_storage_needed(g), "per-site"
        )
        assert report.unique_computed == g.num_non_input_vertices
        assert report.recompute_factor == 1.0

    def test_io_per_update_constant(self):
        """No reuse: ~2d+2 I/O per update regardless of problem size."""
        small = graph_1d(8, 4)
        large = graph_1d(32, 8)
        r_small = measure_schedule(
            small, per_site_schedule(small), 8, "s"
        ).io_per_update
        r_large = measure_schedule(
            large, per_site_schedule(large), 8, "l"
        ).io_per_update
        assert r_small == pytest.approx(r_large, rel=0.1)
        assert 3.0 < r_large <= 4.0  # 3 reads + 1 write, minus boundary

    def test_storage_needed_tiny(self):
        g = graph_2d()
        assert per_site_storage_needed(g) == 6
        measure_schedule(g, per_site_schedule(g), 6, "min-storage")

    def test_fails_below_min_storage(self):
        g = graph_2d()
        with pytest.raises(IllegalMoveError):
            measure_schedule(g, per_site_schedule(g), 5, "too-small")


class TestRowCache:
    @pytest.mark.parametrize("depth", [1, 2, 4])
    def test_complete_all_depths_1d(self, depth):
        g = graph_1d()
        report = measure_schedule(
            g,
            row_cache_schedule(g, depth),
            row_cache_storage_needed(g, depth),
            f"rc-{depth}",
        )
        assert report.unique_computed == g.num_non_input_vertices
        assert report.recompute_factor == 1.0

    @pytest.mark.parametrize("depth", [1, 3])
    def test_complete_2d(self, depth):
        g = graph_2d(6, 3)
        report = measure_schedule(
            g,
            row_cache_schedule(g, depth),
            row_cache_storage_needed(g, depth),
            f"rc2-{depth}",
        )
        assert report.unique_computed == g.num_non_input_vertices

    def test_io_scales_inverse_depth(self):
        """The k-stage pipeline reads+writes each generation once per
        pass: I/O per update = 2/k exactly."""
        g = graph_1d(16, 8)
        for depth in (1, 2, 4, 8):
            report = measure_schedule(
                g,
                row_cache_schedule(g, depth),
                row_cache_storage_needed(g, depth),
                "rc",
            )
            assert report.io_per_update == pytest.approx(2.0 / depth)

    def test_storage_grows_with_depth(self):
        g = graph_2d(6, 4)
        r1 = measure_schedule(
            g, row_cache_schedule(g, 1), row_cache_storage_needed(g, 1), "a"
        )
        r4 = measure_schedule(
            g, row_cache_schedule(g, 4), row_cache_storage_needed(g, 4), "b"
        )
        assert r4.max_red > 2 * r1.max_red

    def test_depth_cannot_exceed_generations(self):
        with pytest.raises(ValueError, match="exceeds"):
            row_cache_schedule(graph_1d(8, 2), depth=3)

    def test_partial_final_pass(self):
        g = graph_1d(12, 7)  # 7 = 3+3+1 with depth 3
        report = measure_schedule(
            g, row_cache_schedule(g, 3), row_cache_storage_needed(g, 3), "rc"
        )
        assert report.unique_computed == g.num_non_input_vertices


class TestTrapezoid:
    @pytest.mark.parametrize("base,height", [(4, 2), (8, 4), (4, 4)])
    def test_complete_1d(self, base, height):
        g = graph_1d(16, 8)
        report = measure_schedule(
            g,
            trapezoid_schedule(g, base, height),
            trapezoid_storage_needed(g, base, height),
            "trap",
        )
        assert report.unique_computed == g.num_non_input_vertices

    def test_complete_2d(self):
        g = graph_2d(6, 4)
        report = measure_schedule(
            g,
            trapezoid_schedule(g, 3, 2),
            trapezoid_storage_needed(g, 3, 2),
            "trap2",
        )
        assert report.unique_computed == g.num_non_input_vertices

    def test_recompute_overhead_bounded(self):
        g = graph_1d(32, 8)
        report = measure_schedule(
            g, trapezoid_schedule(g, 8, 4), trapezoid_storage_needed(g, 8, 4), "t"
        )
        assert 1.0 <= report.recompute_factor < 2.0

    def test_height_amortizes_io(self):
        """Taller trapezoids amortize the halo: I/O per update falls."""
        g = graph_1d(64, 16)
        r2 = measure_schedule(
            g, trapezoid_schedule(g, 16, 2), trapezoid_storage_needed(g, 16, 2), "a"
        )
        r8 = measure_schedule(
            g, trapezoid_schedule(g, 16, 8), trapezoid_storage_needed(g, 16, 8), "b"
        )
        assert r8.io_per_update < r2.io_per_update

    def test_io_scaling_matches_s_power_1d(self):
        """Doubling b=h roughly halves I/O per update at 4x the storage
        (d=1: I/O ∝ 1/S)."""
        g = graph_1d(128, 32)
        reports = []
        for b in (4, 8, 16):
            rep = measure_schedule(
                g, trapezoid_schedule(g, b, b), trapezoid_storage_needed(g, b, b), "t"
            )
            reports.append(rep)
        assert reports[1].io_per_update < 0.7 * reports[0].io_per_update
        assert reports[2].io_per_update < 0.7 * reports[1].io_per_update

    def test_height_capped(self):
        with pytest.raises(ValueError, match="exceeds"):
            trapezoid_schedule(graph_1d(8, 2), base=4, height=3)

    def test_validates(self):
        g = graph_1d()
        with pytest.raises(ValueError):
            trapezoid_schedule(g, base=0, height=1)


class TestMeasureSchedule:
    def test_incomplete_schedule_rejected(self):
        g = graph_1d(8, 2)
        moves = row_cache_schedule(g, 1)[:-10]  # drop the tail
        with pytest.raises((ValueError, IllegalMoveError)):
            measure_schedule(g, moves, 100, "partial")

    def test_max_red_reported(self):
        g = graph_1d(8, 2)
        report = measure_schedule(g, per_site_schedule(g), 10, "x")
        assert report.max_red == 4  # 3 preds + 1 output


class TestScheduleProperties:
    @given(
        st.integers(6, 14),
        st.integers(2, 5),
        st.integers(1, 4),
    )
    @settings(max_examples=10)
    def test_row_cache_always_legal_and_complete_1d(self, side, gens, depth):
        depth = min(depth, gens)
        g = ComputationGraph(OrthogonalLattice.cube(1, side), generations=gens)
        report = measure_schedule(
            g,
            row_cache_schedule(g, depth),
            row_cache_storage_needed(g, depth),
            "prop",
        )
        assert report.unique_computed == g.num_non_input_vertices

    @given(st.integers(3, 7), st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=10)
    def test_trapezoid_always_legal_and_complete_1d(self, side, gens, base):
        g = ComputationGraph(OrthogonalLattice.cube(1, side), generations=gens)
        height = min(gens, base)
        report = measure_schedule(
            g,
            trapezoid_schedule(g, base, height),
            trapezoid_storage_needed(g, base, height),
            "prop",
        )
        assert report.unique_computed == g.num_non_input_vertices
