"""Property tests: Theorem 2 machinery over *randomized* legal pebblings.

The induced-partition construction must hold for any legal pebbling, not
just our tidy schedules.  These tests generate randomized-but-legal
pebblings (random site order per layer, random eviction victims) and
check every Theorem 2 property on the result.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice.geometry import OrthogonalLattice
from repro.pebbling.division import induced_partition, io_division
from repro.pebbling.game import Move, MoveKind, replay
from repro.pebbling.graph import ComputationGraph
from repro.pebbling.lines import max_line_vertices_per_subset
from repro.pebbling.bounds import theorem4_line_time_bound
from repro.pebbling.partition import verify_partition


def random_legal_pebbling(graph, rng) -> list[Move]:
    """A randomized no-reuse pebbling: each layer in random site order,
    each update reading its neighborhood fresh and evicting in random
    order."""
    moves: list[Move] = []
    for t in range(1, graph.num_layers):
        order = rng.permutation(graph.num_sites)
        for s in order:
            v = int(t * graph.num_sites + s)
            preds = [int(u) for u in graph.predecessors(v)]
            rng.shuffle(preds)
            for u in preds:
                moves.append(Move(MoveKind.READ, u))
            moves.append(Move(MoveKind.COMPUTE, v))
            moves.append(Move(MoveKind.WRITE, v))
            victims = preds + [v]
            rng.shuffle(victims)
            for u in victims:
                moves.append(Move(MoveKind.REMOVE_RED, u))
    return moves


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    d=st.integers(1, 2),
    side=st.integers(3, 6),
    gens=st.integers(1, 4),
    storage=st.integers(6, 40),
)
def test_induced_partition_always_valid(seed, d, side, gens, storage):
    rng = np.random.default_rng(seed)
    graph = ComputationGraph(OrthogonalLattice.cube(d, side), generations=gens)
    moves = random_legal_pebbling(graph, rng)
    # legality of the generated pebbling itself
    game = replay(graph, 2 * d + 2, moves)
    assert game.goal_reached()
    part = induced_partition(graph, moves, storage)
    universe = sorted({v for sub in part.subsets for v in sub})
    verify_partition(graph, part, 2 * storage, universe=universe)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    side=st.integers(3, 6),
    gens=st.integers(1, 4),
    storage=st.integers(6, 40),
)
def test_theorem4_on_random_pebblings(seed, side, gens, storage):
    """τ of the induced 2S-partition respects the Theorem 4 bound for
    arbitrary legal pebblings."""
    rng = np.random.default_rng(seed)
    graph = ComputationGraph(OrthogonalLattice.cube(2, side), generations=gens)
    moves = random_legal_pebbling(graph, rng)
    part = induced_partition(graph, moves, storage)
    tau = max_line_vertices_per_subset(graph, part)
    assert tau < theorem4_line_time_bound(graph.d, storage)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    storage=st.integers(1, 50),
    n_io=st.integers(0, 200),
)
def test_io_division_invariants(seed, storage, n_io):
    """Division invariants hold for arbitrary move streams: every chunk
    except the last carries exactly S I/O moves, chunks concatenate to
    the original sequence, and h = ceil(q/S) (+1 for a trailing
    non-I/O-only chunk)."""
    rng = np.random.default_rng(seed)
    moves = []
    for _ in range(n_io):
        kind = MoveKind.READ if rng.random() < 0.5 else MoveKind.WRITE
        moves.append(Move(kind, int(rng.integers(0, 100))))
        for _ in range(int(rng.integers(0, 3))):
            moves.append(Move(MoveKind.COMPUTE, int(rng.integers(0, 100))))
    chunks = io_division(moves, storage)
    flat = [m for chunk in chunks for m in chunk]
    assert flat == moves
    for chunk in chunks[:-1]:
        assert sum(m.is_io() for m in chunk) == storage
    q = sum(m.is_io() for m in moves)
    expected_h = max(1, -(-q // storage))
    assert expected_h <= len(chunks) <= expected_h + 1
