"""Unit tests for the parallel-red-blue pebble game (the paper's extension)."""

import pytest

from repro.lattice.geometry import OrthogonalLattice
from repro.pebbling.game import IllegalMoveError
from repro.pebbling.graph import ComputationGraph
from repro.pebbling.parallel_game import ParallelRedBluePebbleGame, PhaseStep


@pytest.fixture
def graph() -> ComputationGraph:
    return ComputationGraph(OrthogonalLattice.cube(1, 3), generations=1)


class TestPhaseStep:
    def test_io_moves(self):
        step = PhaseStep(writes=(1,), reads=(2, 3))
        assert step.io_moves == 3

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            PhaseStep(reads=(1, 1))


class TestPhases:
    def test_parallel_read_then_compute(self, graph):
        game = ParallelRedBluePebbleGame(graph, storage=6)
        game.run_step(PhaseStep(reads=(0, 1, 2)))
        game.run_step(PhaseStep(computes=(3, 4, 5)))
        assert game.compute_moves == 3
        assert game.red_count == 6

    def test_fan_out_from_shared_supports(self, graph):
        """All three layer-1 vertices share input supports; the pink-
        pebble semantics let them compute simultaneously."""
        game = ParallelRedBluePebbleGame(graph, storage=6)
        game.run_step(PhaseStep(reads=(0, 1, 2)))
        # vertex 4 depends on all three inputs; 3 and 5 share 0,1 / 1,2
        game.run_step(PhaseStep(computes=(3, 4, 5)))
        assert {3, 4, 5} <= game.red

    def test_compute_sees_start_of_phase_reds_only(self, graph):
        """A vertex computed in this phase cannot support another
        calculation in the same phase."""
        g2 = ComputationGraph(OrthogonalLattice.cube(1, 3), generations=2)
        game = ParallelRedBluePebbleGame(g2, storage=9)
        game.run_step(PhaseStep(reads=(0, 1, 2)))
        with pytest.raises(IllegalMoveError, match="not red at phase start"):
            # layer-2 vertex 7 needs layer-1 vertices computed in the same phase
            game.run_step(PhaseStep(computes=(3, 4, 5, 7)))

    def test_write_precedes_compute(self, graph):
        """A write cannot use a value computed in the same step."""
        game = ParallelRedBluePebbleGame(graph, storage=6)
        game.run_step(PhaseStep(reads=(0, 1, 2)))
        with pytest.raises(IllegalMoveError, match="no red pebble"):
            game.run_step(PhaseStep(writes=(3,), computes=(3,)))

    def test_write_from_previous_step(self, graph):
        game = ParallelRedBluePebbleGame(graph, storage=6)
        game.run_step(PhaseStep(reads=(0, 1, 2)))
        game.run_step(PhaseStep(computes=(3, 4, 5)))
        game.run_step(PhaseStep(writes=(3, 4, 5)))
        assert game.goal_reached()
        assert game.io_moves == 6

    def test_read_after_compute_same_step_forbidden(self, graph):
        game = ParallelRedBluePebbleGame(graph, storage=6)
        game.run_step(PhaseStep(reads=(0, 1, 2)))
        game.run_step(PhaseStep(computes=(3,), evict_after_compute=(0,)))
        game.run_step(PhaseStep(writes=(3,)))
        # now try to compute 3 again... instead check the fresh-read rule:
        game2 = ParallelRedBluePebbleGame(graph, storage=8)
        game2.run_step(PhaseStep(reads=(0, 1, 2)))
        game2.run_step(PhaseStep(computes=(3,), writes=()))
        game2.run_step(PhaseStep(writes=(3,)))
        with pytest.raises(IllegalMoveError, match="cannot"):
            game2.run_step(
                PhaseStep(computes=(4,), reads=(4,))
            )  # read of a vertex computed this step

    def test_storage_cap_in_calculate(self, graph):
        game = ParallelRedBluePebbleGame(graph, storage=4)
        game.run_step(PhaseStep(reads=(0, 1, 2)))
        with pytest.raises(IllegalMoveError, match="red pebbles > S"):
            game.run_step(PhaseStep(computes=(3, 4, 5)))

    def test_evictions_free_space(self, graph):
        game = ParallelRedBluePebbleGame(graph, storage=4)
        game.run_step(PhaseStep(reads=(0, 1, 2)))
        game.run_step(PhaseStep(computes=(4,)))  # needs all three inputs
        game.run_step(
            PhaseStep(computes=(3,), evict_after_compute=(2,))
        )  # 3 needs 0,1
        assert game.red_count == 4

    def test_io_width_capped_at_s(self, graph):
        game = ParallelRedBluePebbleGame(graph, storage=2)
        with pytest.raises(IllegalMoveError, match="width"):
            game.run_step(PhaseStep(reads=(0, 1, 2)))

    def test_evict_before_read_makes_room(self, graph):
        game = ParallelRedBluePebbleGame(graph, storage=3)
        game.run_step(PhaseStep(reads=(0, 1, 2)))
        game.run_step(
            PhaseStep(computes=(3,), evict_after_compute=(0,), evict_before_read=(1,), reads=(0,))
        )
        assert game.red_count == 3

    def test_compute_input_forbidden(self, graph):
        game = ParallelRedBluePebbleGame(graph, storage=4)
        with pytest.raises(IllegalMoveError, match="input"):
            game.run_step(PhaseStep(computes=(0,)))

    def test_steps_counted(self, graph):
        game = ParallelRedBluePebbleGame(graph, storage=6)
        game.run(
            [
                PhaseStep(reads=(0, 1, 2)),
                PhaseStep(computes=(3, 4, 5)),
                PhaseStep(writes=(3, 4, 5)),
            ]
        )
        assert game.steps_run == 3


class TestParallelAdvantage:
    def test_parallel_io_same_total_as_sequential(self, graph):
        """Phases change time, not I/O count: 3 reads + 3 writes."""
        game = ParallelRedBluePebbleGame(graph, storage=6)
        game.run(
            [
                PhaseStep(reads=(0, 1, 2)),
                PhaseStep(computes=(3, 4, 5)),
                PhaseStep(writes=(3, 4, 5)),
            ]
        )
        assert game.io_moves == 6
        assert game.steps_run == 3  # vs >= 9 sequential moves
