"""Unit + property tests for lines, line-spread, Lemma 8, and Theorem 4."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lattice.geometry import OrthogonalLattice
from repro.pebbling.bounds import (
    io_moves_lower_bound,
    io_per_update_lower_bound,
    lemma8_lower_bound,
    partition_size_lower_bound,
    theorem4_line_time_bound,
)
from repro.pebbling.division import induced_partition
from repro.pebbling.graph import ComputationGraph
from repro.pebbling.lines import (
    complete_line_set,
    line_of_vertex,
    line_spread,
    lines_covered_by_ball,
    max_line_vertices_per_subset,
)
from repro.pebbling.schedules import row_cache_schedule, trapezoid_schedule


@pytest.fixture
def g1():
    return ComputationGraph(OrthogonalLattice.cube(1, 8), generations=6)


@pytest.fixture
def g2():
    return ComputationGraph(OrthogonalLattice.cube(2, 5), generations=4)


class TestLines:
    def test_line_of_vertex_is_site_column(self, g1):
        v = g1.vertex((3,), 2)
        line = line_of_vertex(g1, v)
        assert line.size == g1.num_layers
        assert all(g1.site_index_of(int(u)) == 3 for u in line)
        assert [g1.layer_of(int(u)) for u in line] == list(range(7))

    def test_complete_line_set_disjoint_and_covering(self, g2):
        lines = complete_line_set(g2)
        assert len(lines) == g2.num_sites
        all_vertices = np.concatenate(lines)
        assert np.unique(all_vertices).size == g2.num_vertices

    def test_lines_covered_by_ball_matches_lattice(self, g2):
        u = g2.vertex((0, 0), 0)
        assert lines_covered_by_ball(g2, u, 2) == g2.lattice.reachable_within(
            (0, 0), 2
        )

    def test_lines_covered_infinite_when_too_deep(self, g2):
        u = g2.vertex((0, 0), 3)
        assert lines_covered_by_ball(g2, u, 2) == math.inf

    def test_line_spread_corner_minimizes(self, g2):
        assert line_spread(g2, 2) == g2.lattice.min_reachable_within(2)

    def test_line_spread_infinite_beyond_depth(self, g2):
        assert line_spread(g2, 5) == math.inf


class TestLemma8:
    @given(st.integers(1, 3), st.integers(1, 8))
    def test_line_spread_exceeds_bound(self, d, j):
        side = 12
        graph = ComputationGraph(OrthogonalLattice.cube(d, side), generations=9)
        if j > graph.generations:
            return
        spread = line_spread(graph, j)
        assert spread > lemma8_lower_bound(d, j)

    def test_bound_values(self):
        assert lemma8_lower_bound(1, 5) == 5.0
        assert lemma8_lower_bound(2, 4) == 8.0
        assert lemma8_lower_bound(3, 6) == 36.0

    def test_validates(self):
        with pytest.raises(ValueError):
            lemma8_lower_bound(0, 3)
        with pytest.raises(ValueError):
            lemma8_lower_bound(2, -1)


class TestTheorem4:
    def test_bound_form(self):
        assert theorem4_line_time_bound(1, 10) == pytest.approx(2 * (2 * 10))
        assert theorem4_line_time_bound(2, 50) == pytest.approx(
            2 * math.sqrt(2 * 2 * 50)
        )

    @pytest.mark.parametrize("storage", [4, 8, 16])
    def test_realized_partitions_respect_bound_1d(self, g1, storage):
        """Every 2S-partition induced by a real pebbling obeys
        τ(2S) < 2(d!·2S)^{1/d} — the theorem, checked on constructions."""
        moves = row_cache_schedule(g1, depth=2)
        part = induced_partition(g1, moves, storage)
        tau = max_line_vertices_per_subset(g1, part)
        assert tau < theorem4_line_time_bound(g1.d, storage)

    @pytest.mark.parametrize("storage", [12, 24])
    def test_realized_partitions_respect_bound_2d(self, g2, storage):
        moves = trapezoid_schedule(g2, base=3, height=2)
        part = induced_partition(g2, moves, storage)
        tau = max_line_vertices_per_subset(g2, part)
        assert tau < theorem4_line_time_bound(g2.d, storage)

    def test_tau_trivially_bounded_by_layers(self, g1):
        moves = row_cache_schedule(g1, depth=1)
        part = induced_partition(g1, moves, 8)
        assert max_line_vertices_per_subset(g1, part) <= g1.num_layers


class TestIOLowerBounds:
    def test_partition_size_bound_formula(self, g2):
        s = 10
        expected = g2.num_vertices / (2 * s * theorem4_line_time_bound(2, s))
        assert partition_size_lower_bound(g2, s) == pytest.approx(expected)

    def test_io_moves_bound_nonnegative(self, g2):
        assert io_moves_lower_bound(g2, 1000) == 0.0

    def test_io_moves_bound_positive_at_scale(self):
        big = ComputationGraph(OrthogonalLattice.cube(1, 512), generations=64)
        assert io_moves_lower_bound(big, 16) > 0

    def test_measured_io_exceeds_lower_bound(self):
        """The fundamental soundness check: a real legal pebbling's I/O
        is at least the Lemma 1 lower bound."""
        graph = ComputationGraph(OrthogonalLattice.cube(1, 64), generations=16)
        from repro.pebbling.game import replay

        for depth, storage in ((1, 8), (4, 16)):
            moves = row_cache_schedule(graph, depth=depth)
            game = replay(graph, 500, moves)
            assert game.io_moves >= io_moves_lower_bound(graph, storage)

    def test_per_update_scaling_in_storage(self):
        """The bound floor decays as S grows (more reuse possible)."""
        graph = ComputationGraph(OrthogonalLattice.cube(2, 64), generations=32)
        lo = io_per_update_lower_bound(graph, 16)
        hi = io_per_update_lower_bound(graph, 256)
        assert hi < lo

    def test_asymptotic_s_power(self):
        """For |X| >> S the per-update floor ~ 1/(2τ(2S)) ∝ S^{-1/d}."""
        graph = ComputationGraph(OrthogonalLattice.cube(2, 256), generations=64)
        f1 = io_per_update_lower_bound(graph, 100)
        f2 = io_per_update_lower_bound(graph, 400)
        assert f1 / f2 == pytest.approx(2.0, rel=0.2)
