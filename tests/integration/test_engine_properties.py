"""Property-based engine tests: equivalence over random configurations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.ca_pipeline import CAPipelineEngine
from repro.engines.extensible import ExtensibleSerialEngine
from repro.engines.partitioned import PartitionedEngine
from repro.engines.pipeline import SerialPipelineEngine
from repro.engines.wide_serial import WideSerialEngine
from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.wolfram import ElementaryCA


def reference(model, frame, generations):
    auto = LatticeGasAutomaton(model, frame.copy())
    auto.run(generations)
    return auto.state


def random_frame(rng, rows, cols, channels):
    return rng.integers(0, 1 << channels, size=(rows, cols)).astype(np.uint8)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(4, 12),
    cols=st.integers(4, 12),
    generations=st.integers(0, 6),
    depth=st.integers(1, 4),
)
def test_serial_pipeline_equivalence(seed, rows, cols, generations, depth):
    rng = np.random.default_rng(seed)
    model = FHPModel(rows, cols, boundary="null")
    frame = random_frame(rng, rows, cols, 6)
    expected = reference(model, frame, generations)
    out, _ = SerialPipelineEngine(model, pipeline_depth=depth).run(
        frame, generations
    )
    assert np.array_equal(out, expected)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(4, 12),
    cols=st.integers(4, 12),
    generations=st.integers(1, 5),
    lanes=st.integers(1, 6),
)
def test_wide_serial_equivalence(seed, rows, cols, generations, lanes):
    rng = np.random.default_rng(seed)
    model = FHPModel(rows, cols, boundary="null")
    frame = random_frame(rng, rows, cols, 6)
    expected = reference(model, frame, generations)
    out, _ = WideSerialEngine(model, lanes=lanes, pipeline_depth=2).run(
        frame, generations
    )
    assert np.array_equal(out, expected)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(4, 10),
    cols=st.integers(4, 14),
    generations=st.integers(1, 5),
    slice_width=st.integers(2, 14),
)
def test_partitioned_equivalence(seed, rows, cols, generations, slice_width):
    slice_width = min(slice_width, cols)
    rng = np.random.default_rng(seed)
    model = FHPModel(rows, cols, boundary="null")
    frame = random_frame(rng, rows, cols, 6)
    expected = reference(model, frame, generations)
    out, _ = PartitionedEngine(
        model, slice_width=slice_width, pipeline_depth=2
    ).run(frame, generations)
    assert np.array_equal(out, expected)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(4, 10),
    cols=st.integers(4, 10),
    generations=st.integers(1, 4),
)
def test_extensible_equivalence(seed, rows, cols, generations):
    rng = np.random.default_rng(seed)
    model = FHPModel(rows, cols, boundary="null", rest_particles=True)
    frame = random_frame(rng, rows, cols, 7)
    expected = reference(model, frame, generations)
    out, _ = ExtensibleSerialEngine(model, pipeline_depth=2).run(
        frame, generations
    )
    assert np.array_equal(out, expected)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rule=st.integers(0, 255),
    width=st.integers(3, 40),
    generations=st.integers(0, 8),
    depth=st.integers(1, 4),
)
def test_ca_pipeline_equivalence(seed, rule, width, generations, depth):
    rng = np.random.default_rng(seed)
    ca = ElementaryCA(rule, boundary="null")
    tape = (rng.random(width) < 0.5).astype(np.uint8)
    expected = ca.run(tape, generations)
    out, _ = CAPipelineEngine(ca, pipeline_depth=depth).run(tape, generations)
    assert np.array_equal(out, expected)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(4, 8),
    cols=st.integers(4, 8),
)
def test_all_engines_agree_pairwise(seed, rows, cols):
    """Any two engines agree with each other (stronger than each
    agreeing with the reference — catches shared-reference bugs)."""
    rng = np.random.default_rng(seed)
    model = FHPModel(rows, cols, boundary="null")
    frame = random_frame(rng, rows, cols, 6)
    outs = []
    for engine in (
        SerialPipelineEngine(model, 3),
        WideSerialEngine(model, lanes=2, pipeline_depth=3),
        PartitionedEngine(model, slice_width=max(2, cols // 2), pipeline_depth=3),
        ExtensibleSerialEngine(model, 3),
    ):
        out, _ = engine.run(frame.copy(), 3)
        outs.append(out)
    for other in outs[1:]:
        assert np.array_equal(outs[0], other)
