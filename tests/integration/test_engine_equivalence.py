"""Experiment E11: every engine architecture computes bit-identical
evolutions to the reference automaton, across models and configurations."""

import numpy as np
import pytest

from repro.engines.partitioned import PartitionedEngine
from repro.engines.pipeline import SerialPipelineEngine
from repro.engines.wide_serial import WideSerialEngine
from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import density_pulse_state, uniform_random_state
from repro.lgca.hpp import HPPModel


def reference_evolution(model, frame, generations):
    auto = LatticeGasAutomaton(model, frame.copy())
    auto.run(generations)
    return auto.state


MODELS = [
    ("fhp6-alt", lambda r, c: FHPModel(r, c, boundary="null", chirality="alternate")),
    ("fhp6-left", lambda r, c: FHPModel(r, c, boundary="null", chirality="left")),
    ("fhp7", lambda r, c: FHPModel(r, c, boundary="null", rest_particles=True)),
    ("hpp", lambda r, c: HPPModel(r, c, boundary="null")),
]


@pytest.mark.parametrize("name,make_model", MODELS)
@pytest.mark.parametrize("generations", [1, 3, 7])
class TestAllEnginesMatchReference:
    def _frame(self, model, rng):
        return uniform_random_state(
            model.rows, model.cols, model.num_channels, 0.35, rng
        )

    def test_serial_pipeline(self, name, make_model, generations, rng):
        model = make_model(9, 11)
        frame = self._frame(model, rng)
        expected = reference_evolution(model, frame, generations)
        out, _ = SerialPipelineEngine(model, pipeline_depth=2).run(
            frame, generations
        )
        assert np.array_equal(out, expected)

    def test_wide_serial(self, name, make_model, generations, rng):
        model = make_model(9, 11)
        frame = self._frame(model, rng)
        expected = reference_evolution(model, frame, generations)
        out, _ = WideSerialEngine(model, lanes=3, pipeline_depth=2).run(
            frame, generations
        )
        assert np.array_equal(out, expected)

    def test_partitioned(self, name, make_model, generations, rng):
        model = make_model(9, 11)
        frame = self._frame(model, rng)
        expected = reference_evolution(model, frame, generations)
        out, _ = PartitionedEngine(model, slice_width=4, pipeline_depth=2).run(
            frame, generations
        )
        assert np.array_equal(out, expected)


class TestCrossEngineAgreement:
    def test_all_engines_agree_on_pulse(self, rng):
        """A structured flow (density pulse) through all three engines."""
        model = FHPModel(12, 12, boundary="null")
        frame = density_pulse_state(12, 12, 6, 0.1, 0.8, 3, rng)
        outs = []
        for eng in (
            SerialPipelineEngine(model, pipeline_depth=4),
            WideSerialEngine(model, lanes=4, pipeline_depth=4),
            PartitionedEngine(model, slice_width=6, pipeline_depth=4),
        ):
            out, _ = eng.run(frame.copy(), 4)
            outs.append(out)
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[1], outs[2])

    def test_tickwise_agrees_on_pulse(self, rng):
        model = FHPModel(8, 8, boundary="null")
        frame = density_pulse_state(8, 8, 6, 0.1, 0.9, 2, rng)
        fast, _ = SerialPipelineEngine(model, 2).run(frame.copy(), 2)
        slow, _ = SerialPipelineEngine(model, 2).run(
            frame.copy(), 2, tickwise=True
        )
        assert np.array_equal(fast, slow)


class TestAnalyticIOMatchesMeasured:
    def test_wsa_bandwidth_matches_design_model(self, rng):
        """Measured engine bits/tick approaches the analytic 2DP as the
        frame grows (fill/drain overhead vanishes)."""
        model = FHPModel(24, 24, boundary="null")
        frame = uniform_random_state(24, 24, 6, 0.3, rng)
        lanes = 4
        _, stats = WideSerialEngine(model, lanes=lanes, pipeline_depth=1).run(
            frame, 1
        )
        analytic = 2 * 6 * lanes  # 2 D P with D = 6 bits for FHP-6
        assert stats.main_bandwidth_bits_per_tick == pytest.approx(
            analytic, rel=0.15
        )

    def test_spa_side_traffic_scales_with_boundaries(self, rng):
        model = FHPModel(12, 24, boundary="null")
        frame = uniform_random_state(12, 24, 6, 0.3, rng)
        _, s2 = PartitionedEngine(model, slice_width=12).run(frame.copy(), 2)
        _, s4 = PartitionedEngine(model, slice_width=6).run(frame.copy(), 2)
        # 1 boundary vs 3 boundaries
        assert s4.io_bits_side == pytest.approx(3 * s2.io_bits_side, rel=0.05)

    def test_serial_engine_io_per_update_is_2d_over_k(self, rng):
        """The engine realizes the row-cache schedule's 2/k site values
        (= 2D/k bits) per update."""
        model = FHPModel(10, 10, boundary="null")
        frame = uniform_random_state(10, 10, 6, 0.3, rng)
        for k in (1, 2, 4):
            _, stats = SerialPipelineEngine(model, pipeline_depth=k).run(
                frame.copy(), 4
            )
            expected_bits = 2 * 6 / k
            # generations=4 divides evenly by k for k in 1,2,4
            assert stats.io_bits_per_update == pytest.approx(expected_bits)
