"""Smoke tests: every example script runs to completion.

Examples are user-facing contracts; these tests keep them from rotting.
Each example's ``main()`` is imported and executed (stdout captured).
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = [
    "quickstart",
    "reproduce_paper",
    "design_space_exploration",
    "pebbling_io_bounds",
    "engine_simulation",
    "wolfram_pipeline",
    "fhp_cylinder_flow",
]


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    # dataclasses resolve string annotations through sys.modules
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(spec.name, None)
        raise
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # every example narrates its result


def test_quickstart_reports_paper_points(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "P=4" in out and "L=785" in out
    assert "bit-identical" in out


def test_engine_simulation_all_bit_exact(capsys):
    _load("engine_simulation").main()
    out = capsys.readouterr().out
    assert out.count("bit-exact") == 3


def test_reproduce_paper_scoreboard_all_pass(capsys):
    _load("reproduce_paper").main()
    out = capsys.readouterr().out
    assert "25/25 paper claims reproduced." in out
    assert "FAIL" not in out


def test_cylinder_flow_reports_drag(capsys):
    _load("fhp_cylinder_flow").main()
    out = capsys.readouterr().out
    assert "drag" in out
    assert "velocity deficit" in out
