"""Cross-module consistency: independent implementations must agree.

The geometry module, the LGCA propagation kernels, the engine stencils,
and the pebbling graph each encode the lattice neighborhoods separately
(by design — the engines are *checked against* the reference, not built
from it).  These tests pin them to each other.
"""

import numpy as np

from repro.engines.pe import make_rule
from repro.lattice.geometry import HexagonalLattice, OrthogonalLattice
from repro.lgca.fhp import FHPModel
from repro.lgca.hpp import HPPModel, HPP_OFFSETS
from repro.pebbling.graph import ComputationGraph


class TestFHPGeometryAgreement:
    def test_propagation_matches_hexagonal_lattice(self):
        """A particle sent along direction ch from (r, c) lands exactly
        where HexagonalLattice.neighbor says it should."""
        rows, cols = 8, 8
        model = FHPModel(rows, cols, boundary="null")
        hex_ = HexagonalLattice(rows, cols)
        for r in range(rows):
            for c in range(cols):
                for ch in range(6):
                    state = np.zeros((rows, cols), dtype=np.uint8)
                    state[r, c] = 1 << ch
                    out = model.propagate(state)
                    target = hex_.neighbor((r, c), ch)
                    if target is None:
                        assert out.sum() == 0, (r, c, ch)
                    else:
                        assert out[target] == 1 << ch, (r, c, ch, target)

    def test_engine_stencil_matches_geometry(self):
        """The engine's stream stencil inverts the lattice neighbor map:
        source_index(target, ch) == origin for every edge."""
        rows, cols = 6, 7
        model = FHPModel(rows, cols, boundary="null")
        hex_ = HexagonalLattice(rows, cols)
        stencil = make_rule(model).stencil
        for r in range(rows):
            for c in range(cols):
                for ch in range(6):
                    target = hex_.neighbor((r, c), ch)
                    if target is None:
                        continue
                    assert stencil.source_index(target[0], target[1], ch) == (r, c)


class TestHPPGeometryAgreement:
    def test_offsets_match_velocities(self):
        """Storage offsets and physical velocities agree: +x moves +col,
        +y moves -row."""
        model = HPPModel(4, 4)
        for ch, (dr, dc) in enumerate(HPP_OFFSETS):
            vx, vy = model.velocities[ch]
            assert dc == int(vx)
            assert dr == -int(vy)


class TestGraphMatchesModelDependencies:
    def test_graph_predecessors_match_orthogonal_neighborhood(self):
        """The pebbling graph's arcs are exactly the lattice N(x) the
        models' update rules read."""
        lattice = OrthogonalLattice((4, 5))
        graph = ComputationGraph(lattice, generations=2)
        for site_idx in range(lattice.num_sites):
            site = lattice.site(site_idx)
            v = graph.vertex(site, 1)
            pred_sites = {graph.site_of(int(u)) for u in graph.predecessors(v)}
            assert pred_sites == set(lattice.neighborhood(site))

    def test_graph_in_degree_matches_stencil_size(self):
        """HPP's stencil touches exactly the graph's in-degree sites."""
        lattice = OrthogonalLattice((6, 6))
        graph = ComputationGraph(lattice, generations=1)
        interior = graph.vertex((3, 3), 1)
        assert graph.in_degree(interior) == 5  # self + 4 — HPP's full stencil


class TestNDHPPMatchesOrthogonalLattice:
    def test_propagation_follows_lattice_axes(self):
        from repro.lgca.ndim import NDHPPModel

        lattice = OrthogonalLattice((4, 4, 4))
        model = NDHPPModel((4, 4, 4), boundary="null")
        origin = (2, 2, 2)
        for ch in range(6):
            axis, step = ch // 2, 1 if ch % 2 == 0 else -1
            state = np.zeros((4, 4, 4), dtype=np.uint8)
            state[origin] = 1 << ch
            out = model.propagate(state)
            expected = list(origin)
            expected[axis] += step
            assert out[tuple(expected)] == 1 << ch
            assert lattice.distance(origin, tuple(expected)) == 1
