"""Regression anchors: every quantitative claim of the paper, in one file.

Each test quotes the paper's sentence it checks.  These are the numbers
EXPERIMENTS.md tabulates.
"""

import pytest

from repro.core.comparison import compare_extensible, compare_optimal_designs
from repro.core.spa import SPAModel
from repro.core.technology import PAPER_TECHNOLOGY
from repro.core.throughput import PrototypeThroughputModel
from repro.core.wsa import WSAModel
from repro.core.wsa_e import WSAEDesign
from repro.lattice.embedding import (
    hex_diagonal_pair_distance,
    minimum_span_lower_bound,
    row_major_embedding,
)


class TestSection3:
    def test_span_theorem_bound(self):
        """'Then span >= n.' (Theorem 1)"""
        for n in (10, 100):
            assert row_major_embedding(n).span() >= minimum_span_lower_bound(n)

    def test_2n_minus_2_figure(self):
        """'...so that some elements of the neighborhood are at least
        2n - 2 positions apart.'"""
        assert hex_diagonal_pair_distance(row_major_embedding(100).positions) == 198

    def test_n_1000_needs_2000_sites(self):
        """'If n = 1000, then each PE would require about 2000 sites
        worth of memory.'"""
        from repro.lattice.embedding import hex_neighborhood_stream_diameter

        assert (
            hex_neighborhood_stream_diameter(row_major_embedding(1000).positions)
            == 2000
        )


class TestSection61WSA:
    def test_intersection_P4_L785(self):
        """'The intersection of the two curves is P ≈ 4 and L ≈ 785.'"""
        d = WSAModel().optimal_design()
        assert d.pes_per_chip == 4
        assert d.lattice_size == 785

    def test_max_system(self):
        """'N_max = L chips; R_max = (Π/2D)·F·L sites/sec.'"""
        m = WSAModel()
        ms = m.max_system()
        assert ms.num_chips == 785
        assert ms.update_rate == pytest.approx(4 * 10e6 * 785)

    def test_upper_bound_on_L_exists(self):
        """'there is an upper bound on L even if we were to accept
        arbitrarily slow computation.'"""
        assert WSAModel().absolute_max_lattice_size() < 1000


class TestSection62SPA:
    def test_corner_13_5_and_43(self):
        """'the corner at P ≈ 13.5 and W ≈ 43 yields the best choice.'"""
        c = SPAModel().corner()
        assert c.p == pytest.approx(13.5)
        assert round(c.x) == 43

    def test_pw_split(self):
        """'this occurs at P_w = 9/4.'"""
        pw, pk = SPAModel().optimal_split_continuous()
        assert pw == pytest.approx(9 / 4)
        assert pk == pytest.approx(6.0)


class TestSection63Comparison:
    def test_spa_three_times_faster(self):
        """'SPA is three times faster than WSA. (SPA has twelve
        processors per chip while WSA has four.)'"""
        c = compare_optimal_designs()
        assert c.speedup_spa_over_wsa == pytest.approx(3.0)

    def test_wsa_64_bits_per_tick(self):
        """'...versus 64 bits/tick.'"""
        c = compare_optimal_designs()
        assert c.wsa.main_memory_bandwidth_bits_per_tick == 64

    def test_spa_bandwidth_factor_about_4(self):
        """'the SPA system requires four times as much main memory
        bandwidth' (paper: 262 bits/tick; our exact W=43 model: 292)."""
        c = compare_optimal_designs()
        assert c.bandwidth_ratio_spa_over_wsa == pytest.approx(4.0, abs=0.7)

    def test_wsa_e_single_pe_16_bits(self):
        """'The pin constraints ... allow only one processor per chip';
        'WSA-E has a constant bandwidth requirement of 16 bits per clock
        tick and requires (2L+10)B storage area per processor.'"""
        d = WSAEDesign(PAPER_TECHNOLOGY, lattice_size=1000)
        assert d.pes_per_chip == 1
        assert d.main_memory_bandwidth_bits_per_tick == 16
        assert d.delay_sites_per_stage == 2 * 1000 + 10

    def test_spa_128_34_B_per_pe(self):
        """'SPA has a main memory bandwidth requirement of ... and
        requires (128¾)B area per processor.'"""
        spa = SPAModel().optimal_design(1000)
        assert spa.storage_area_per_pe / PAPER_TECHNOLOGY.B == pytest.approx(
            128.75, abs=0.3
        )

    def test_spa_twelve_times_faster_than_wsa_e(self):
        """'the SPA system is twelve times faster than WSA-E.'"""
        assert compare_extensible(1000).speedup_spa_over_wsa_e == pytest.approx(12.0)

    def test_l1000_twice_area_twentieth_bandwidth(self):
        """'if L = 1000, then WSA-E requires about twice as much area as
        SPA, while requiring about one twentieth as much bandwidth.'"""
        c = compare_extensible(1000, commercial_density=8.0)
        assert c.commercial_area_ratio_wsa_e_over_spa == pytest.approx(2.0, abs=0.3)
        assert 1 / c.bandwidth_ratio_wsa_e_over_spa == pytest.approx(20.0, abs=5.0)


class TestSection8Prototype:
    def test_20m_updates_at_10mhz(self):
        """'Each chip provides 20 million site-updates per second running
        at 10 MHz.'"""
        assert PrototypeThroughputModel().peak_updates_per_second == 20e6

    def test_40mb_per_second_demand(self):
        """'...the 40 megabyte per second bandwidth required.'"""
        assert PrototypeThroughputModel().required_bandwidth_bytes_per_second == 40e6

    def test_1m_realized(self):
        """'We expect to realize approximately 1 million
        site-updates/sec/chip from the prototype implementation.'"""
        assert PrototypeThroughputModel().realized_rate(2e6) == pytest.approx(1e6)

    def test_four_percent_processing_area(self):
        """'a chip in 3µ CMOS has been fabricated ... in which about 4
        percent of the area is used for processing.'  At the optimal
        design (P=4) the PE area fraction is 4Γ ≈ 7.8%; the fabricated
        2-lane prototype is 2Γ ≈ 3.9% ≈ 4%."""
        fabricated_fraction = 2 * PAPER_TECHNOLOGY.Gamma
        assert fabricated_fraction == pytest.approx(0.04, abs=0.01)
