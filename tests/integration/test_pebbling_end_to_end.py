"""End-to-end pebbling chain: schedule -> game -> division -> partition
-> line-time -> bounds, on one graph, every link checked (experiments
E8-E10's test-scale versions)."""


import pytest

from repro.core.bounds import update_rate_upper_bound
from repro.lattice.geometry import OrthogonalLattice
from repro.pebbling.bounds import (
    io_moves_lower_bound,
    io_per_update_lower_bound,
    theorem4_line_time_bound,
)
from repro.pebbling.division import induced_partition, io_division
from repro.pebbling.game import replay
from repro.pebbling.graph import ComputationGraph
from repro.pebbling.lines import max_line_vertices_per_subset
from repro.pebbling.partition import verify_partition
from repro.pebbling.schedules import (
    measure_schedule,
    row_cache_schedule,
    row_cache_storage_needed,
    trapezoid_schedule,
    trapezoid_storage_needed,
)


@pytest.fixture(scope="module")
def graph():
    return ComputationGraph(OrthogonalLattice.cube(1, 24), generations=8)


@pytest.fixture(scope="module")
def moves(graph):
    return row_cache_schedule(graph, depth=4)


class TestFullChain:
    def test_schedule_is_complete_computation(self, graph, moves):
        game = replay(graph, row_cache_storage_needed(graph, 4), moves)
        assert game.goal_reached()

    def test_division_chunks_have_exact_io(self, graph, moves):
        storage = 12
        chunks = io_division(moves, storage)
        for chunk in chunks[:-1]:
            assert sum(m.is_io() for m in chunk) == storage
        # The final chunk holds the remainder (possibly zero I/O when the
        # schedule ends with bookkeeping evictions).
        assert 0 <= sum(m.is_io() for m in chunks[-1]) <= storage

    def test_induced_partition_verifies(self, graph, moves):
        storage = 12
        part = induced_partition(graph, moves, storage)
        universe = sorted({v for sub in part.subsets for v in sub})
        verify_partition(graph, part, 2 * storage, universe=universe)

    def test_theorem2_size_equals_division_size(self, graph, moves):
        """Theorem 2: 'there is a 2S-partition of G of size g = h'
        (up to empty trailing chunks we drop)."""
        storage = 12
        h = len(io_division(moves, storage))
        part = induced_partition(graph, moves, storage)
        assert part.size <= h
        assert part.size >= h - 2

    def test_line_time_respects_theorem4(self, graph, moves):
        storage = 12
        part = induced_partition(graph, moves, storage)
        tau = max_line_vertices_per_subset(graph, part)
        assert tau < theorem4_line_time_bound(graph.d, storage)

    def test_measured_io_above_lower_bound(self, graph, moves):
        storage = row_cache_storage_needed(graph, 4)
        game = replay(graph, storage, moves)
        assert game.io_moves >= io_moves_lower_bound(graph, storage)

    def test_rate_bound_consistency(self, graph, moves):
        """Translate the measured pebbling into an update rate under a
        bandwidth B and check it never exceeds the R = O(B·S^{1/d})
        ceiling."""
        storage = row_cache_storage_needed(graph, 4)
        game = replay(graph, storage, moves)
        bandwidth = 100.0  # site values per second
        # the machine can at best overlap compute fully with I/O:
        seconds = game.io_moves / bandwidth
        rate = graph.num_non_input_vertices / seconds
        ceiling = update_rate_upper_bound(
            bandwidth, storage, graph.d, num_vertices=graph.num_vertices
        )
        assert rate <= ceiling


class TestSchedulesVsBound2D:
    def test_tiled_io_between_bound_and_naive(self):
        """The tiled schedule sits above the lower bound but improves on
        the engine-style row cache as S grows — the E10 story."""
        g = ComputationGraph(OrthogonalLattice.cube(2, 12), generations=6)
        trap = measure_schedule(
            g,
            trapezoid_schedule(g, base=6, height=3),
            trapezoid_storage_needed(g, 6, 3),
            "trap",
        )
        floor = io_per_update_lower_bound(g, trap.max_red)
        assert trap.io_per_update >= floor
        assert trap.io_per_update < 8  # far below per-site's ~2d+2=6... bound sanity

    def test_bound_scaling_shape_matches_schedules(self):
        """As S quadruples (d=2), both the bound floor and the tiled
        schedule's measured I/O per update drop by ~2x."""
        g = ComputationGraph(OrthogonalLattice.cube(2, 16), generations=8)
        r_small = measure_schedule(
            g, trapezoid_schedule(g, 2, 2), trapezoid_storage_needed(g, 2, 2), "s"
        )
        r_big = measure_schedule(
            g, trapezoid_schedule(g, 6, 4), trapezoid_storage_needed(g, 6, 4), "b"
        )
        assert r_big.max_red > 2 * r_small.max_red
        assert r_big.io_per_update < r_small.io_per_update
