"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

# Keep hypothesis deadlines generous: several properties replay pebble
# games or stream engines, which are deliberately unoptimized Python.
settings.register_profile("repro", deadline=None, max_examples=25)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG; tests that need different streams reseed."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    """Factory for independent deterministic RNGs."""

    def make(seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)

    return make
