"""End-to-end tests for the supervised sharded runtime.

These spawn real worker processes, so they keep lattices small and
backoff delays short.  The headline assertions mirror the subsystem's
acceptance criteria: a supervised run with a mid-run worker kill
completes, restarts from checkpoint, and is bit-identical to the
unsupervised evolution; the breaker demonstrably trips a failing
backend over to the fallback.
"""

import numpy as np
import pytest

from repro.lgca.automaton import LatticeGasAutomaton
from repro.runtime import (
    InducedFault,
    ModelSpec,
    SupervisorConfig,
    supervised_run,
)
from repro.telemetry import StepClock
from repro.util.backoff import BackoffPolicy
from repro.util.errors import ConfigError

GENS = 12

FAST_BACKOFF = BackoffPolicy(
    max_retries=6, base_delay=0.05, multiplier=2.0, max_delay=0.3, jitter=0.1
)


@pytest.fixture(scope="module")
def spec():
    return ModelSpec(kind="fhp6", rows=24, cols=16, boundary="periodic")


@pytest.fixture(scope="module")
def golden(spec):
    auto = LatticeGasAutomaton(
        spec.build(), spec.initial_state(0.3, 42), backend="reference"
    )
    auto.run(GENS)
    return auto.state.copy()


def config(spec, **overrides):
    defaults = dict(
        spec=spec,
        generations=GENS,
        num_workers=2,
        seed=42,
        checkpoint_interval=4,
        watchdog_timeout=15.0,
        backoff=FAST_BACKOFF,
        max_total_restarts=10,
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


class TestCleanRun:
    def test_bit_identical_to_unsupervised(self, spec, golden):
        state, report = supervised_run(config(spec))
        assert report.outcome == "complete"
        assert report.exit_code == 0
        assert not report.restarts
        assert np.array_equal(state, golden)

    def test_single_worker(self, spec, golden):
        state, report = supervised_run(config(spec, num_workers=1))
        assert report.outcome == "complete"
        assert np.array_equal(state, golden)

    def test_three_workers_null_boundary(self):
        spec = ModelSpec(kind="hpp", rows=21, cols=18, boundary="null")
        auto = LatticeGasAutomaton(spec.build(), spec.initial_state(0.3, 7))
        auto.run(GENS)
        state, report = supervised_run(config(spec, num_workers=3, seed=7))
        assert report.outcome == "complete"
        assert np.array_equal(state, auto.state)

    def test_report_schema(self, spec):
        _, report = supervised_run(config(spec))
        payload = report.to_dict()
        assert payload["schema"] == "repro-supervised-run"
        assert payload["schema_version"] == 1
        assert payload["generations_completed"] == GENS
        assert payload["num_restarts"] == 0
        assert payload["degraded_shards"] == []


class TestCheckpointRestart:
    def test_killed_worker_restarts_bit_identically(self, spec, golden):
        """The tentpole acceptance test: kill a worker mid-run at a
        generation that is NOT a checkpoint boundary; the restarted
        incarnation restores the last checkpoint, replays the halo
        history, and the final lattice is bit-identical."""
        state, report = supervised_run(
            config(
                spec,
                induced=(InducedFault(worker=0, generation=7, kind="crash"),),
            )
        )
        assert report.outcome == "complete"
        assert len(report.restarts) == 1
        assert report.restarts[0].worker == 0
        assert "died" in report.restarts[0].reason
        assert np.array_equal(state, golden)

    def test_both_workers_killed_at_different_gens(self, spec, golden):
        state, report = supervised_run(
            config(
                spec,
                induced=(
                    InducedFault(worker=0, generation=5, kind="crash"),
                    InducedFault(worker=1, generation=9, kind="crash"),
                ),
            )
        )
        assert report.outcome == "complete"
        assert len(report.restarts) == 2
        assert np.array_equal(state, golden)

    def test_stalled_worker_is_watchdogged_and_restarted(self, spec, golden):
        """The watchdog trips on *virtual* time: a StepClock advances a
        fixed step per supervisor clock read, so the 60-second stall is
        detected after ~400 event-loop wakeups instead of a real-time
        wait.  The timeout is generous in fake seconds so worker
        startup (which also reads the clock) can never false-trip it."""
        clock = StepClock(step=0.05)
        state, report = supervised_run(
            config(
                spec,
                watchdog_timeout=20.0,
                poll_interval=0.005,
                induced=(
                    InducedFault(
                        worker=1, generation=6, kind="stall", seconds=60.0
                    ),
                ),
            ),
            clock=clock,
        )
        assert report.outcome == "complete"
        assert report.watchdog_kills == 1
        assert any("watchdog" in r.reason for r in report.restarts)
        assert np.array_equal(state, golden)
        assert clock.reads > 0  # the supervisor really used the fake clock

    def test_restart_delays_follow_backoff(self, spec):
        _, report = supervised_run(
            config(
                spec,
                induced=(
                    InducedFault(
                        worker=0, generation=5, kind="crash", incarnations=2
                    ),
                ),
            )
        )
        assert len(report.restarts) == 2
        for event, attempt in zip(report.restarts, range(2)):
            base = FAST_BACKOFF.base(attempt)
            assert base * 0.9 <= event.delay <= min(base * 1.1, 0.3)


class TestCircuitBreaker:
    def test_persistent_backend_error_trips_to_fallback(self, spec, golden):
        """Breaker acceptance test: N consecutive worker failures on the
        bitplane backend open the breaker; respawns fall back to the
        reference backend, the run completes, and the transition is in
        the report."""
        state, report = supervised_run(
            config(
                spec,
                backend="bitplane",
                fallback_backend="reference",
                checkpoint_interval=64,  # failures stay consecutive
                breaker_threshold=3,
                breaker_cooldown=1000.0,
                induced=(
                    InducedFault(
                        worker=0,
                        generation=5,
                        kind="backend-error",
                        backend="bitplane",
                        incarnations=99,
                    ),
                ),
            )
        )
        assert report.outcome == "complete"
        assert np.array_equal(state, golden)
        assert report.breaker is not None
        assert report.breaker["state"] == "open"
        trips = report.breaker["transitions"]
        assert trips and trips[0]["state"] == "open"
        assert "consecutive failures" in trips[0]["reason"]
        # The rescued incarnation ran the fallback backend.
        assert report.restarts[-1].backend == "bitplane"

    def test_clean_bitplane_run_keeps_breaker_closed(self, spec, golden):
        state, report = supervised_run(
            config(spec, backend="bitplane", fallback_backend="reference")
        )
        assert report.outcome == "complete"
        assert report.breaker["state"] == "closed"
        assert report.breaker["transitions"] == []
        assert np.array_equal(state, golden)


class TestDegradation:
    UNRECOVERABLE = (
        InducedFault(worker=1, generation=6, kind="crash", incarnations=99),
    )
    TIGHT = BackoffPolicy(
        max_retries=2, base_delay=0.05, multiplier=2.0, max_delay=0.2
    )

    def test_allow_degraded_freezes_the_lost_shard(self, spec, golden):
        state, report = supervised_run(
            config(
                spec,
                backoff=self.TIGHT,
                allow_degraded=True,
                induced=self.UNRECOVERABLE,
            )
        )
        assert report.outcome == "degraded"
        assert report.exit_code == 3
        [shard] = report.degraded_shards
        assert shard["worker"] == 1
        assert shard["generation"] == 4  # its last checkpoint
        # The surviving shard still produced data; the frozen one is stale.
        assert state is not None
        assert not np.array_equal(state, golden)
        rows = slice(shard["row_start"], shard["row_stop"])
        assert not np.array_equal(state[rows], golden[rows])

    def test_without_allow_degraded_the_run_fails(self, spec):
        state, report = supervised_run(
            config(spec, backoff=self.TIGHT, induced=self.UNRECOVERABLE)
        )
        assert report.outcome == "failed"
        assert report.exit_code == 1
        assert state is None

    def test_deadline_fails_the_run(self, spec):
        """A StepClock makes the deadline trip after a handful of clock
        reads — no real-time budget is burned waiting for it."""
        clock = StepClock(step=1.0)
        state, report = supervised_run(
            config(spec, deadline_seconds=5.0), clock=clock
        )
        assert report.outcome == "failed"
        assert "deadline" in report.reason
        assert state is None
        assert clock.reads > 0


class TestConfigValidation:
    def test_rejects_reflecting_boundary(self):
        spec = ModelSpec(kind="fhp6", rows=24, cols=16, boundary="reflecting")
        with pytest.raises(ConfigError, match="boundary"):
            SupervisorConfig(spec=spec, generations=4)

    def test_rejects_random_chirality(self):
        spec = ModelSpec(kind="fhp6", rows=24, cols=16, chirality="random")
        with pytest.raises(ConfigError, match="chirality"):
            SupervisorConfig(spec=spec, generations=4)

    def test_rejects_unknown_backend(self, spec):
        with pytest.raises(ConfigError, match="backend"):
            SupervisorConfig(spec=spec, generations=4, backend="systolic")

    def test_rejects_too_many_workers(self, spec):
        with pytest.raises(ConfigError, match="at least"):
            SupervisorConfig(spec=spec, generations=4, num_workers=16)

    def test_rejects_mismatched_initial_state(self, spec):
        with pytest.raises(ConfigError, match="initial state"):
            supervised_run(
                config(spec, initial_state=np.zeros((4, 4), dtype=np.uint8))
            )


class TestDurableCheckpointDir:
    def test_explicit_dir_retains_checkpoints(self, spec, tmp_path):
        _, report = supervised_run(
            config(spec, checkpoint_dir=str(tmp_path))
        )
        assert report.outcome == "complete"
        worker_dirs = sorted(p.name for p in tmp_path.iterdir())
        assert worker_dirs == ["worker-00", "worker-01"]
        assert any((tmp_path / "worker-00").glob("ckpt-*.npz"))

    def test_checkpoint_saves_are_counted(self, spec):
        _, report = supervised_run(config(spec))
        # Interval 4 over 12 generations: saves at 0, 4, 8, 12 per worker.
        assert report.checkpoint_saves == {0: 4, 1: 4}
