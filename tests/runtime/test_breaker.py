"""Tests for the per-backend circuit breaker (virtual clock)."""

import pytest

from repro.runtime.breaker import CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def make(clock, threshold=3, cooldown=30.0):
    return CircuitBreaker(
        backend="bitplane",
        fallback="reference",
        failure_threshold=threshold,
        cooldown_seconds=cooldown,
        clock=clock,
    )


class TestClosed:
    def test_starts_closed_on_primary(self, clock):
        breaker = make(clock)
        assert breaker.state == "closed"
        assert breaker.select_backend(0) == "bitplane"

    def test_failures_below_threshold_stay_closed(self, clock):
        breaker = make(clock)
        breaker.record_failure("bitplane", 1)
        breaker.record_failure("bitplane", 2)
        assert breaker.state == "closed"
        assert breaker.select_backend(3) == "bitplane"

    def test_success_resets_the_count(self, clock):
        breaker = make(clock)
        for g in range(10):
            breaker.record_failure("bitplane", g)
            breaker.record_success("bitplane", g)
        assert breaker.state == "closed"

    def test_fallback_failures_never_count(self, clock):
        breaker = make(clock)
        for g in range(10):
            breaker.record_failure("reference", g)
        assert breaker.state == "closed"


class TestTrip:
    def test_threshold_consecutive_failures_open(self, clock):
        breaker = make(clock)
        for g in range(3):
            breaker.record_failure("bitplane", g)
        assert breaker.state == "open"
        assert breaker.select_backend(4) == "reference"
        [trip] = breaker.transitions
        assert trip.state == "open"
        assert "3 consecutive failures" in trip.reason

    def test_open_selects_fallback_until_cooldown(self, clock):
        breaker = make(clock, cooldown=30.0)
        for g in range(3):
            breaker.record_failure("bitplane", g)
        clock.advance(29.0)
        assert breaker.select_backend(5) == "reference"
        assert breaker.state == "open"


class TestHalfOpen:
    def trip(self, breaker):
        for g in range(3):
            breaker.record_failure("bitplane", g)

    def test_cooldown_elapsed_allows_one_probe(self, clock):
        breaker = make(clock, cooldown=30.0)
        self.trip(breaker)
        clock.advance(31.0)
        assert breaker.select_backend(5) == "bitplane"  # the probe
        assert breaker.state == "half-open"
        # Only one probe at a time; other spawns stay on the fallback.
        assert breaker.select_backend(5) == "reference"

    def test_probe_success_closes(self, clock):
        breaker = make(clock, cooldown=30.0)
        self.trip(breaker)
        clock.advance(31.0)
        breaker.select_backend(5)
        breaker.record_success("bitplane", 6)
        assert breaker.state == "closed"
        assert breaker.select_backend(7) == "bitplane"
        assert [t.state for t in breaker.transitions] == [
            "open",
            "half-open",
            "closed",
        ]

    def test_probe_failure_reopens_and_restarts_cooldown(self, clock):
        breaker = make(clock, cooldown=30.0)
        self.trip(breaker)
        clock.advance(31.0)
        breaker.select_backend(5)
        breaker.record_failure("bitplane", 6)
        assert breaker.state == "open"
        clock.advance(29.0)  # cooldown restarted at the probe failure
        assert breaker.select_backend(7) == "reference"
        clock.advance(2.0)
        assert breaker.select_backend(8) == "bitplane"  # next probe


class TestInertAndReport:
    def test_same_fallback_is_inert(self, clock):
        breaker = CircuitBreaker("reference", "reference", clock=clock)
        for g in range(10):
            breaker.record_failure("reference", g)
        assert breaker.select_backend(11) == "reference"
        assert breaker.transitions == []

    def test_rejects_zero_threshold(self, clock):
        with pytest.raises(ValueError):
            make(clock, threshold=0)

    def test_to_dict_shape(self, clock):
        breaker = make(clock)
        for g in range(3):
            breaker.record_failure("bitplane", g)
        payload = breaker.to_dict()
        assert payload["state"] == "open"
        assert payload["backend"] == "bitplane"
        assert payload["fallback"] == "reference"
        assert payload["transitions"][0]["generation"] == 2
