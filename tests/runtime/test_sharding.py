"""Tests for row-slab sharding: geometry invariants and bit-identity."""

import numpy as np
import pytest

from repro.lgca.automaton import LatticeGasAutomaton, ObstacleMap
from repro.runtime.modelspec import ModelSpec
from repro.runtime.sharding import BOUNDARY_ROWS, Shard, ShardRunner, plan_shards
from repro.util.errors import ConfigError


class TestPlanShards:
    @pytest.mark.parametrize("rows,workers", [(16, 1), (16, 2), (17, 3), (24, 4), (9, 2)])
    def test_slabs_tile_the_lattice(self, rows, workers):
        shards = plan_shards(rows, workers)
        assert shards[0].row_start == 0
        assert shards[-1].row_stop == rows
        for a, b in zip(shards, shards[1:]):
            assert a.row_stop == b.row_start

    @pytest.mark.parametrize("rows,workers", [(16, 2), (17, 3), (23, 5), (64, 7)])
    def test_local_frames_start_even_and_are_even_tall(self, rows, workers):
        for shard in plan_shards(rows, workers):
            # Even global start row: local row parity == global row parity,
            # which the hexagonal propagation offsets key on.
            assert (shard.row_start - shard.halo_top) % 2 == 0
            # Even height: a periodic FHP sub-model must be constructible.
            assert shard.local_rows % 2 == 0
            assert 1 <= shard.halo_top <= BOUNDARY_ROWS
            assert 1 <= shard.halo_bottom <= BOUNDARY_ROWS

    def test_rejects_too_many_workers(self):
        with pytest.raises(ConfigError, match="at least"):
            plan_shards(6, 4)

    @pytest.mark.parametrize("rows,workers", [(16, 2), (17, 3), (23, 5)])
    def test_edge_halos_false_strips_outer_halos(self, rows, workers):
        """Walled lattices: the first/last slab's frame edge must BE the
        lattice edge, so local reflections fire at the true wall."""
        shards = plan_shards(rows, workers, edge_halos=False)
        assert shards[0].halo_top == 0
        assert shards[-1].halo_bottom == 0
        for shard in shards[1:]:
            assert shard.halo_top >= 1
        for shard in shards[:-1]:
            assert shard.halo_bottom >= 1
        # interior slab frames keep the even-start parity invariant
        for shard in shards:
            assert (shard.row_start - shard.halo_top) % 2 == 0

    def test_local_row_indices_wrap(self):
        shard = plan_shards(16, 2)[1]  # bottom slab wraps past the edge
        idx = shard.local_row_indices(16)
        assert len(idx) == shard.local_rows
        assert idx[shard.halo_top] == shard.row_start
        assert idx[-1] == (shard.row_stop + shard.halo_bottom - 1) % 16


def _evolve_sharded(spec, init, generations, workers, backend, obstacles=None):
    """In-process sharded evolution via ShardRunner + manual halo routing."""
    shards = plan_shards(spec.rows, workers)
    runners = []
    for shard in shards:
        mask = (
            None
            if obstacles is None
            else obstacles[shard.local_row_indices(spec.rows)]
        )
        runners.append(
            ShardRunner(
                spec.build(rows=shard.local_rows),
                shard,
                init[shard.row_start : shard.row_stop].copy(),
                backend=backend,
                obstacles_mask=mask,
            )
        )
    periodic = spec.boundary == "periodic"
    n = len(runners)
    for _ in range(generations):
        rows = [r.boundary_rows() for r in runners]
        for i, runner in enumerate(runners):
            above = rows[i - 1][1] if (i > 0 or periodic) else None
            below = rows[(i + 1) % n][0] if (i < n - 1 or periodic) else None
            runner.set_halos(above, below)
            runner.step()
    return np.concatenate([r.interior for r in runners], axis=0)


class TestShardRunnerBitIdentity:
    @pytest.mark.parametrize("kind", ["hpp", "fhp6", "fhp7"])
    @pytest.mark.parametrize("boundary", ["periodic", "null"])
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_matches_whole_lattice_run(self, kind, boundary, workers):
        spec = ModelSpec(kind=kind, rows=18, cols=13, boundary=boundary)
        init = spec.initial_state(0.35, 5)
        auto = LatticeGasAutomaton(spec.build(), init.copy())
        auto.run(9)
        sharded = _evolve_sharded(spec, init, 9, workers, "reference")
        assert np.array_equal(sharded, auto.state)

    def test_bitplane_backend_matches(self):
        spec = ModelSpec(kind="fhp6", rows=16, cols=16)
        init = spec.initial_state(0.3, 2)
        auto = LatticeGasAutomaton(spec.build(), init.copy(), backend="bitplane")
        auto.run(8)
        sharded = _evolve_sharded(spec, init, 8, 2, "bitplane")
        assert np.array_equal(sharded, auto.state)

    def test_obstacles_match(self):
        spec = ModelSpec(kind="fhp6", rows=16, cols=16)
        init = spec.initial_state(0.3, 3)
        mask = np.zeros((16, 16), dtype=bool)
        mask[7:9, 4:12] = True  # a bar crossing the shard boundary
        init[mask] = 0
        auto = LatticeGasAutomaton(
            spec.build(), init.copy(), obstacles=ObstacleMap(mask)
        )
        auto.run(8)
        sharded = _evolve_sharded(spec, init, 8, 2, "reference", obstacles=mask)
        assert np.array_equal(sharded, auto.state)


class TestShardRunnerValidation:
    def test_rejects_wrong_local_model_shape(self):
        spec = ModelSpec(kind="fhp6", rows=16, cols=16)
        shard = plan_shards(16, 2)[0]
        with pytest.raises(ConfigError, match="rows"):
            ShardRunner(
                spec.build(),  # full-lattice model, not the local frame
                shard,
                np.zeros((shard.slab_rows, 16), dtype=np.uint8),
            )

    def test_rejects_wrong_slab_shape(self):
        spec = ModelSpec(kind="fhp6", rows=16, cols=16)
        shard = plan_shards(16, 2)[0]
        with pytest.raises(ConfigError, match="slab"):
            ShardRunner(
                spec.build(rows=shard.local_rows),
                shard,
                np.zeros((3, 16), dtype=np.uint8),
            )

    def test_boundary_rows_are_copies(self):
        spec = ModelSpec(kind="fhp6", rows=16, cols=16)
        shard = plan_shards(16, 2)[0]
        runner = ShardRunner(
            spec.build(rows=shard.local_rows),
            shard,
            spec.initial_state(0.3, 1)[shard.row_start : shard.row_stop],
        )
        top, _ = runner.boundary_rows()
        top[:] = 0xFF
        assert not np.array_equal(runner.interior[:BOUNDARY_ROWS], top)


class TestModelSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            ModelSpec(kind="fhp9", rows=8, cols=8)

    def test_fails_fast_on_bad_geometry(self):
        # Periodic FHP needs even rows; the spec builds once to fail fast.
        with pytest.raises(Exception):
            ModelSpec(kind="fhp6", rows=9, cols=8, boundary="periodic")

    def test_channels(self):
        assert ModelSpec(kind="hpp", rows=8, cols=8).num_channels == 4
        assert ModelSpec(kind="fhp6", rows=8, cols=8).num_channels == 6
        assert ModelSpec(kind="fhp7", rows=8, cols=8).num_channels == 7

    def test_initial_state_is_seeded(self):
        spec = ModelSpec(kind="fhp6", rows=8, cols=8)
        assert np.array_equal(spec.initial_state(0.3, 9), spec.initial_state(0.3, 9))
