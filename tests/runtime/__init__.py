"""Tests for the supervised multi-process runtime."""
