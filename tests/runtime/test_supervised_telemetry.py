"""Cross-process telemetry tests for the supervised runtime.

Satellite of the telemetry tentpole: a supervised run with a recorder
must hand back ONE merged v2 report — coordinator plus every worker
incarnation's spool, clock-aligned — and the supervisor's lifecycle
event stream (spawn / restart / watchdog_kill / breaker_transition)
must carry worker attribution through induced kill and stall faults.

These spawn real worker processes; faults and clocks follow the
patterns of ``test_supervised.py`` (StepClock for the stall, no real
waiting on the induced 60-second hang).
"""

import numpy as np
import pytest

from repro.lgca.automaton import LatticeGasAutomaton
from repro.runtime import (
    InducedFault,
    ModelSpec,
    SupervisorConfig,
    supervised_run,
)
from repro.telemetry import InMemoryRecorder, StepClock, validate_report
from repro.util.backoff import BackoffPolicy

GENS = 12

FAST_BACKOFF = BackoffPolicy(
    max_retries=6, base_delay=0.05, multiplier=2.0, max_delay=0.3, jitter=0.1
)


@pytest.fixture(scope="module")
def spec():
    return ModelSpec(kind="fhp6", rows=24, cols=16, boundary="periodic")


@pytest.fixture(scope="module")
def golden(spec):
    auto = LatticeGasAutomaton(
        spec.build(), spec.initial_state(0.3, 42), backend="reference"
    )
    auto.run(GENS)
    return auto.state.copy()


def config(spec, **overrides):
    defaults = dict(
        spec=spec,
        generations=GENS,
        num_workers=2,
        seed=42,
        checkpoint_interval=4,
        watchdog_timeout=15.0,
        backoff=FAST_BACKOFF,
        max_total_restarts=10,
    )
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def events_named(report, name):
    return [e for e in report.telemetry.events if e.get("name") == name]


class TestCleanRunTelemetry:
    def test_merged_report_is_valid_v2_with_worker_attribution(self, spec):
        recorder = InMemoryRecorder()
        _, report = supervised_run(config(spec), recorder=recorder)
        assert report.outcome == "complete"
        merged = report.telemetry
        assert merged is not None
        payload = merged.to_dict()
        assert payload["schema_version"] == 2
        assert validate_report(payload) == []
        names = [p["name"] for p in merged.processes]
        assert names == ["coordinator", "worker-0.0", "worker-1.0"]

    def test_worker_kernel_and_halo_timers_are_merged(self, spec):
        recorder = InMemoryRecorder()
        _, report = supervised_run(config(spec), recorder=recorder)
        merged = report.telemetry
        # Every worker steps GENS generations; the merged counter is the
        # whole fleet's work.
        assert merged.counters["shard.generations"] == 2 * GENS
        for name in ("shard.step_seconds", "shard.halo_seconds"):
            assert merged.timers[name]["count"] == 2 * GENS
        # Per-process attribution survives the fold.
        for p in merged.processes[1:]:
            assert p["kind"] == "worker"
            assert p["counters"]["shard.generations"] == GENS
            assert p["timers"]["shard.step_seconds"]["count"] == GENS
            assert p["backend"] == "reference"
            assert isinstance(p["pid"], int)
            assert "clock_offset_seconds" in p

    def test_worker_spans_are_clock_aligned_and_tagged(self, spec):
        recorder = InMemoryRecorder()
        _, report = supervised_run(config(spec), recorder=recorder)
        merged = report.telemetry
        runs = [s for s in merged.spans if s["name"] == "worker.run"]
        assert {s["process"] for s in runs} == {"worker-0.0", "worker-1.0"}
        # Aligned onto the coordinator timeline: every worker span must
        # start after the supervisor did and end within the run.
        spawn_times = [e["time"] for e in events_named(report, "supervisor.spawn")]
        outcome_time = events_named(report, "supervisor.outcome")[0]["time"]
        for s in runs:
            assert min(spawn_times) <= s["start"] <= outcome_time
            assert s["end"] <= outcome_time + 1.0

    def test_lifecycle_events_attribute_workers(self, spec):
        recorder = InMemoryRecorder()
        _, report = supervised_run(config(spec), recorder=recorder)
        spawns = events_named(report, "supervisor.spawn")
        assert sorted(e["worker"] for e in spawns) == [0, 1]
        assert all(e["incarnation"] == 0 for e in spawns)
        (outcome,) = events_named(report, "supervisor.outcome")
        assert outcome["outcome"] == "complete"

    def test_recording_is_bit_identical_to_not_recording(self, spec, golden):
        """Acceptance: telemetry must never perturb the physics."""
        state_off, report_off = supervised_run(config(spec))
        state_on, report_on = supervised_run(
            config(spec), recorder=InMemoryRecorder()
        )
        assert report_off.telemetry is None
        assert report_on.telemetry is not None
        assert np.array_equal(state_off, state_on)
        assert np.array_equal(state_on, golden)


class TestKillScenario:
    def test_killed_worker_leaves_both_incarnations_in_the_report(self, spec, golden):
        recorder = InMemoryRecorder()
        state, report = supervised_run(
            config(
                spec,
                induced=(InducedFault(worker=0, generation=7, kind="crash"),),
            ),
            recorder=recorder,
        )
        assert report.outcome == "complete"
        assert np.array_equal(state, golden)
        merged = report.telemetry
        assert validate_report(merged.to_dict()) == []
        names = [p["name"] for p in merged.processes]
        assert names == [
            "coordinator", "worker-0.0", "worker-0.1", "worker-1.0",
        ]
        # The dead incarnation's spool survives to its last checkpoint
        # (generation 4 of 12) — cumulative snapshots mean the fleet
        # total is still exactly the work done once.
        dead = merged.processes[1]
        assert dead["counters"]["shard.generations"] == 4
        assert merged.counters["shard.generations"] == 2 * GENS

    def test_restart_event_attributes_the_killed_worker(self, spec):
        recorder = InMemoryRecorder()
        _, report = supervised_run(
            config(
                spec,
                induced=(InducedFault(worker=0, generation=7, kind="crash"),),
            ),
            recorder=recorder,
        )
        (restart,) = events_named(report, "supervisor.restart")
        assert restart["worker"] == 0
        assert restart["incarnation"] == 1
        assert "died" in restart["reason"]
        spawns = events_named(report, "supervisor.spawn")
        assert len(spawns) == 3  # two initial + one respawn


class TestStallScenario:
    def test_watchdog_kill_event_with_worker_attribution(self, spec, golden):
        """Virtual-time stall (see test_supervised.py): the StepClock
        advances per supervisor clock read, so the 60s hang is detected
        without real waiting."""
        recorder = InMemoryRecorder()
        state, report = supervised_run(
            config(
                spec,
                watchdog_timeout=20.0,
                poll_interval=0.005,
                induced=(
                    InducedFault(
                        worker=1, generation=6, kind="stall", seconds=60.0
                    ),
                ),
            ),
            recorder=recorder,
            clock=StepClock(step=0.05),
        )
        assert report.outcome == "complete"
        assert np.array_equal(state, golden)
        (kill,) = events_named(report, "supervisor.watchdog_kill")
        assert kill["worker"] == 1
        (restart,) = events_named(report, "supervisor.restart")
        assert restart["worker"] == 1
        assert "watchdog" in restart["reason"]
        names = [p["name"] for p in report.telemetry.processes]
        assert "worker-1.0" in names and "worker-1.1" in names


class TestBreakerScenario:
    def test_breaker_transition_events_carry_backend(self, spec, golden):
        recorder = InMemoryRecorder()
        state, report = supervised_run(
            config(
                spec,
                backend="bitplane",
                fallback_backend="reference",
                checkpoint_interval=64,
                breaker_threshold=3,
                breaker_cooldown=1000.0,
                induced=(
                    InducedFault(
                        worker=0,
                        generation=5,
                        kind="backend-error",
                        backend="bitplane",
                        incarnations=99,
                    ),
                ),
            ),
            recorder=recorder,
        )
        assert report.outcome == "complete"
        assert np.array_equal(state, golden)
        trips = events_named(report, "supervisor.breaker_transition")
        assert trips and trips[0]["backend"] == "bitplane"
        assert trips[0]["state"] == "open"
        # The rescued incarnations ran the fallback backend, and the
        # merged report shows it per process.
        backends = {
            p["name"]: p["backend"] for p in report.telemetry.processes[1:]
        }
        assert backends["worker-0.0"] == "bitplane"
        assert any(
            b == "reference" for name, b in backends.items()
            if name.startswith("worker-0.")
        )
        assert validate_report(report.telemetry.to_dict()) == []
