"""Tests for the streaming (prism-array) row updater."""

import numpy as np
import pytest

from repro.engines.streaming import StreamingRowUpdater, stream_rows
from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.lgca.hpp import HPPModel


@pytest.fixture
def model():
    return FHPModel(10, 12, boundary="null")


class TestStreamingRowUpdater:
    def test_matches_reference_one_generation(self, model, rng):
        frame = uniform_random_state(10, 12, 6, 0.4, rng)
        ref = LatticeGasAutomaton(model, frame.copy())
        ref.run(1)
        out = np.stack(list(StreamingRowUpdater(model).feed(frame)))
        assert np.array_equal(out, ref.state)

    def test_chained_generations(self, model, rng):
        frame = uniform_random_state(10, 12, 6, 0.4, rng)
        ref = LatticeGasAutomaton(model, frame.copy())
        ref.run(4)
        out = np.stack(list(stream_rows(model, frame, generations=4)))
        assert np.array_equal(out, ref.state)

    def test_hpp_streaming(self, rng):
        model = HPPModel(8, 9, boundary="null")
        frame = uniform_random_state(8, 9, 4, 0.3, rng)
        ref = LatticeGasAutomaton(model, frame.copy())
        ref.run(2)
        out = np.stack(list(stream_rows(model, frame, generations=2)))
        assert np.array_equal(out, ref.state)

    def test_row_count_preserved(self, model, rng):
        frame = uniform_random_state(10, 12, 6, 0.3, rng)
        assert len(list(StreamingRowUpdater(model).feed(frame))) == 10

    def test_prism_longer_than_model_rows(self, model, rng):
        """The whole point: the stream may be any length.  A 50-row
        prism through a model constructed with rows=10 must equal a
        50-row reference."""
        tall = FHPModel(50, 12, boundary="null")
        frame = uniform_random_state(50, 12, 6, 0.35, rng)
        ref = LatticeGasAutomaton(tall, frame.copy())
        ref.run(3)
        out = np.stack(list(stream_rows(model, frame, generations=3)))
        assert np.array_equal(out, ref.state)

    def test_generator_input_lazy(self, model, rng):
        """Rows may come from a generator — nothing is materialized."""
        frame = uniform_random_state(10, 12, 6, 0.3, rng)
        lazy = (frame[i] for i in range(10))
        out = np.stack(list(StreamingRowUpdater(model).feed(lazy)))
        ref = LatticeGasAutomaton(model, frame.copy())
        ref.run(1)
        assert np.array_equal(out, ref.state)

    def test_window_is_three_rows(self, model):
        assert StreamingRowUpdater(model).window_rows == 3

    def test_rejects_bad_row_shape(self, model):
        updater = StreamingRowUpdater(model)
        with pytest.raises(ValueError, match="shape"):
            list(updater.feed([np.zeros(5, dtype=np.uint8)]))

    def test_bad_row_shape_is_config_error(self, model):
        from repro.util.errors import ConfigError

        updater = StreamingRowUpdater(model)
        with pytest.raises(ConfigError, match="prism width"):
            list(updater.feed([np.zeros(5, dtype=np.uint8)]))

    def test_rejects_float_rows(self, model):
        from repro.util.errors import ConfigError

        updater = StreamingRowUpdater(model)
        with pytest.raises(ConfigError, match="dtype"):
            list(updater.feed([np.zeros(12, dtype=np.float64)]))

    def test_rejects_out_of_range_values(self, model):
        from repro.util.errors import ConfigError

        updater = StreamingRowUpdater(model)
        row = np.zeros(12, dtype=np.uint8)
        row[3] = 1 << 6  # bit 6 does not exist in the 6-channel gas
        with pytest.raises(ConfigError, match="state space"):
            list(updater.feed([row]))

    def test_error_names_offending_row(self, model, rng):
        from repro.util.errors import ConfigError

        frame = uniform_random_state(4, 12, 6, 0.3, rng)
        rows = [frame[0], frame[1], np.zeros(7, dtype=np.uint8)]
        with pytest.raises(ConfigError, match="row 2"):
            list(StreamingRowUpdater(model).feed(rows))

    def test_time_advances_per_feed(self, model, rng):
        frame = uniform_random_state(10, 12, 6, 0.3, rng)
        updater = StreamingRowUpdater(model, start_time=0)
        list(updater.feed(frame))
        assert updater.time == 1

    def test_start_time_respected(self, model, rng):
        """Chirality parity: streaming from t=1 equals reference started
        at t=1."""
        frame = uniform_random_state(10, 12, 6, 0.4, rng)
        ref = LatticeGasAutomaton(model, frame.copy(), time=1)
        ref.run(1)
        out = np.stack(list(StreamingRowUpdater(model, start_time=1).feed(frame)))
        assert np.array_equal(out, ref.state)

    def test_empty_stream(self, model):
        assert list(StreamingRowUpdater(model).feed([])) == []
