"""Engine simulators must compute identical evolutions on every backend."""

import numpy as np
import pytest

from repro.engines.extensible import ExtensibleSerialEngine
from repro.engines.partitioned import PartitionedEngine
from repro.engines.pipeline import SerialPipelineEngine
from repro.engines.wide_serial import WideSerialEngine
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.lgca.hpp import HPPModel


def _state(model, seed=0):
    return uniform_random_state(
        model.rows, model.cols, model.num_channels, 0.3, np.random.default_rng(seed)
    )


def _engines(model, backend, **options):
    return [
        SerialPipelineEngine(model, pipeline_depth=2, backend=backend, **options),
        WideSerialEngine(model, lanes=3, pipeline_depth=2, backend=backend, **options),
        PartitionedEngine(
            model, slice_width=8, pipeline_depth=2, backend=backend, **options
        ),
        ExtensibleSerialEngine(model, pipeline_depth=2, backend=backend, **options),
    ]


@pytest.mark.parametrize(
    "model",
    [HPPModel(10, 66, boundary="null"), FHPModel(10, 66, boundary="null")],
    ids=["hpp", "fhp6"],
)
def test_bitplane_engines_match_reference(model):
    state = _state(model)
    for ref, fast in zip(_engines(model, "reference"), _engines(model, "bitplane")):
        out_ref, stats_ref = ref.run(state, 5)
        out_fast, stats_fast = fast.run(state, 5)
        np.testing.assert_array_equal(out_ref, out_fast, err_msg=ref.name)
        # stats model the hardware, not the software backend
        assert stats_ref == stats_fast


@pytest.mark.parametrize(
    "model",
    [HPPModel(10, 66, boundary="null"), FHPModel(10, 66, boundary="null")],
    ids=["hpp", "fhp6"],
)
def test_parallel_engines_match_reference(model):
    state = _state(model)
    for ref, fast in zip(
        _engines(model, "reference"), _engines(model, "parallel", workers=2)
    ):
        out_ref, stats_ref = ref.run(state, 5)
        out_fast, stats_fast = fast.run(state, 5)
        np.testing.assert_array_equal(out_ref, out_fast, err_msg=ref.name)
        assert stats_ref == stats_fast


def test_workers_rejected_without_parallel_backend():
    from repro.util.errors import ConfigError

    model = HPPModel(8, 32, boundary="null")
    for backend in ("reference", "bitplane"):
        with pytest.raises(ConfigError, match="does not accept option"):
            SerialPipelineEngine(model, backend=backend, workers=2)


def test_stats_accounting_independent_of_backend():
    model = FHPModel(8, 32, boundary="null")
    state = _state(model)
    _, ref_stats = SerialPipelineEngine(model, pipeline_depth=3).run(state, 7)
    _, fast_stats = SerialPipelineEngine(
        model, pipeline_depth=3, backend="bitplane"
    ).run(state, 7)
    assert ref_stats.ticks == fast_stats.ticks
    assert ref_stats.io_bits_main == fast_stats.io_bits_main
    assert ref_stats.site_updates == fast_stats.site_updates


def test_partitioned_exchange_accounting_independent_of_backend():
    model = FHPModel(8, 32, boundary="null")
    ref = PartitionedEngine(model, slice_width=8)
    fast = PartitionedEngine(model, slice_width=8, backend="bitplane")
    assert ref.exchange_per_stage_pass() == fast.exchange_per_stage_pass()
    assert (
        ref.boundary_bits_per_site_update() == fast.boundary_bits_per_site_update()
    )


def test_output_detached_from_internal_buffers():
    """Successive runs must not overwrite previously returned frames."""
    model = HPPModel(8, 32, boundary="null")
    engine = SerialPipelineEngine(model, backend="bitplane")
    state = _state(model)
    out1, _ = engine.run(state, 3)
    snapshot = out1.copy()
    engine.run(state, 4)
    np.testing.assert_array_equal(out1, snapshot)


def test_tickwise_requires_reference_backend():
    model = FHPModel(8, 32, boundary="null")
    state = _state(model)
    with pytest.raises(ValueError, match="tickwise"):
        SerialPipelineEngine(model, backend="bitplane").run(state, 2, tickwise=True)
    with pytest.raises(ValueError, match="tickwise"):
        WideSerialEngine(model, backend="bitplane").run(state, 2, tickwise=True)


def test_fault_hooks_require_reference_backend():
    model = FHPModel(8, 32, boundary="null")

    def hook(values, r, c, t):
        return values

    with pytest.raises(ValueError, match="fault-injection"):
        SerialPipelineEngine(model, post_collide=hook, backend="bitplane")
    with pytest.raises(ValueError, match="fault-injection"):
        PartitionedEngine(model, slice_width=8, post_collide=hook, backend="bitplane")


def test_unknown_backend_rejected_uniformly():
    model = HPPModel(8, 32, boundary="null")
    with pytest.raises(ValueError, match="unknown backend"):
        SerialPipelineEngine(model, backend="gpu")
    with pytest.raises(ValueError, match="unknown backend"):
        WideSerialEngine(model, backend="gpu")
    with pytest.raises(ValueError, match="unknown backend"):
        PartitionedEngine(model, slice_width=8, backend="gpu")
    with pytest.raises(ValueError, match="unknown backend"):
        ExtensibleSerialEngine(model, backend="gpu")


class TestExtensibleBackendSupport:
    """WSA-E inherits backend, fault-hook, and tickwise support from the
    shared streaming core — previously it only had the reference path."""

    def test_bitplane_matches_reference(self):
        model = FHPModel(10, 66, boundary="null")
        state = _state(model)
        out_ref, stats_ref = ExtensibleSerialEngine(model, pipeline_depth=2).run(
            state, 5
        )
        out_fast, stats_fast = ExtensibleSerialEngine(
            model, pipeline_depth=2, backend="bitplane"
        ).run(state, 5)
        np.testing.assert_array_equal(out_ref, out_fast)
        assert stats_ref == stats_fast

    def test_fault_hook_accepted_on_reference_backend(self):
        model = HPPModel(8, 32, boundary="null")
        calls = []

        def hook(values, r, c, t):
            calls.append(t)
            return values

        engine = ExtensibleSerialEngine(model, post_collide=hook)
        out, _ = engine.run(_state(model), 3)
        assert calls  # the hook actually ran
        np.testing.assert_array_equal(
            out, ExtensibleSerialEngine(model).run(_state(model), 3)[0]
        )

    def test_fault_hook_rejected_on_bitplane_backend(self):
        model = HPPModel(8, 32, boundary="null")
        with pytest.raises(ValueError, match="fault-injection"):
            ExtensibleSerialEngine(
                model, post_collide=lambda v, r, c, t: v, backend="bitplane"
            )

    def test_tickwise_matches_vectorized(self):
        model = HPPModel(6, 24, boundary="null")
        state = _state(model)
        out_vec, _ = ExtensibleSerialEngine(model, pipeline_depth=2).run(state, 3)
        out_tick, _ = ExtensibleSerialEngine(model, pipeline_depth=2).run(
            state, 3, tickwise=True
        )
        np.testing.assert_array_equal(out_vec, out_tick)

    def test_tickwise_rejected_on_bitplane_backend(self):
        model = HPPModel(8, 32, boundary="null")
        with pytest.raises(ValueError, match="tickwise"):
            ExtensibleSerialEngine(model, backend="bitplane").run(
                _state(model), 2, tickwise=True
            )
