"""Failure injection: the 2L+3 delay window is necessary, not just
sufficient — and broken hardware configurations fail loudly, never
silently."""

import numpy as np
import pytest

from repro.engines.pe import make_rule
from repro.engines.pipeline import PipelineStage
from repro.engines.shiftreg import WindowOverrunError
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.lgca.hpp import HPPModel


class TestWindowNecessity:
    def test_fhp_window_minus_one_overruns(self, rng):
        """A delay line one cell shorter than 2L+3 cannot assemble the
        hexagonal neighborhood."""
        model = FHPModel(6, 8, boundary="null")
        stage = PipelineStage(make_rule(model))
        frame = uniform_random_state(6, 8, 6, 0.5, rng).ravel()
        full = stage._stencil.window_sites()
        # exact capacity works
        out = stage.process_tickwise(frame, 0, capacity_override=full)
        assert np.array_equal(out, stage.process(frame, 0))
        # one less: provably impossible
        with pytest.raises(WindowOverrunError, match="capacity"):
            stage.process_tickwise(frame, 0, capacity_override=full - 1)

    def test_hpp_window_minus_one_overruns(self, rng):
        model = HPPModel(6, 7, boundary="null")
        stage = PipelineStage(make_rule(model))
        frame = uniform_random_state(6, 7, 4, 0.4, rng).ravel()
        full = stage._stencil.window_sites()
        stage.process_tickwise(frame, 0, capacity_override=full)
        with pytest.raises(WindowOverrunError):
            stage.process_tickwise(frame, 0, capacity_override=full - 1)

    def test_oversized_window_is_harmless(self, rng):
        """Extra delay cells change nothing (they are just wasted β)."""
        model = FHPModel(6, 8, boundary="null")
        stage = PipelineStage(make_rule(model))
        frame = uniform_random_state(6, 8, 6, 0.5, rng).ravel()
        big = stage.process_tickwise(
            frame, 0, capacity_override=stage._stencil.window_sites() + 50
        )
        assert np.array_equal(big, stage.process(frame, 0))

    def test_window_scales_with_lattice_width(self):
        """The window is 2·cols + 3 — the Theorem 1 consequence that a
        wider lattice needs a longer delay line."""
        for cols in (5, 9, 17):
            model = FHPModel(4, cols, boundary="null")
            stage = PipelineStage(make_rule(model))
            assert stage.storage_sites == 2 * cols + 3


class TestCorruptTablesAreRejected:
    def test_bit_flip_in_table_caught_at_construction(self):
        """A single corrupted entry in a collision ROM is caught by the
        conservation verifier before any simulation runs."""
        from repro.lgca.collision import CollisionTable, ConservationError
        from repro.lgca.fhp import FHP_VELOCITIES, fhp6_collision_tables

        left, _ = fhp6_collision_tables()
        corrupted = left.table.copy()
        corrupted[0b000001] = 0b000010  # rotate a lone particle: momentum broken
        with pytest.raises(ConservationError):
            CollisionTable(
                name="corrupt", table=corrupted, velocities=FHP_VELOCITIES
            )

    def test_mass_corruption_caught(self):
        from repro.lgca.collision import CollisionTable, ConservationError
        from repro.lgca.fhp import FHP_VELOCITIES, fhp6_collision_tables

        left, _ = fhp6_collision_tables()
        corrupted = left.table.copy()
        corrupted[0b000011] = 0b000001  # drops a particle
        with pytest.raises(ConservationError, match="mass"):
            CollisionTable(
                name="corrupt", table=corrupted, velocities=FHP_VELOCITIES
            )
