"""Unit tests for the SPA engine (section 5)."""

import numpy as np
import pytest

from repro.engines.partitioned import PartitionedEngine
from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.lgca.hpp import HPPModel


@pytest.fixture
def model():
    return FHPModel(10, 15, boundary="null")


class TestFunctional:
    def test_matches_reference(self, model, rng):
        frame = uniform_random_state(10, 15, 6, 0.4, rng)
        ref = LatticeGasAutomaton(model, frame.copy())
        ref.run(5)
        eng = PartitionedEngine(model, slice_width=5, pipeline_depth=5)
        out, _ = eng.run(frame, 5)
        assert np.array_equal(out, ref.state)

    def test_slicing_does_not_change_result(self, model, rng):
        frame = uniform_random_state(10, 15, 6, 0.4, rng)
        out_a, _ = PartitionedEngine(model, slice_width=3).run(frame.copy(), 3)
        out_b, _ = PartitionedEngine(model, slice_width=15).run(frame.copy(), 3)
        assert np.array_equal(out_a, out_b)

    def test_non_dividing_slice_width(self, model, rng):
        frame = uniform_random_state(10, 15, 6, 0.4, rng)
        ref = LatticeGasAutomaton(model, frame.copy())
        ref.run(2)
        out, _ = PartitionedEngine(model, slice_width=4).run(frame, 2)  # 15 = 4+4+4+3
        assert np.array_equal(out, ref.state)


class TestGeometry:
    def test_num_slices(self, model):
        assert PartitionedEngine(model, slice_width=5).num_slices == 3
        assert PartitionedEngine(model, slice_width=4).num_slices == 4

    def test_rejects_wide_slice(self, model):
        with pytest.raises(ValueError, match="exceeds"):
            PartitionedEngine(model, slice_width=16)

    def test_storage_per_pe_formula(self, model):
        """The paper's 2W + 9 delay budget."""
        eng = PartitionedEngine(model, slice_width=5)
        assert eng.storage_sites_per_pe == 2 * 5 + 9

    def test_slice_of_column(self, model):
        eng = PartitionedEngine(model, slice_width=5)
        assert eng.slice_of_column(0) == 0
        assert eng.slice_of_column(4) == 0
        assert eng.slice_of_column(5) == 1


class TestExchange:
    def test_boundary_bits_is_three_for_hex(self, model):
        """Measured worst-case cross-boundary bits per site update is
        exactly the paper's E = 3."""
        eng = PartitionedEngine(model, slice_width=5)
        assert eng.boundary_bits_per_site_update() == 3

    def test_boundary_bits_hpp_is_one(self):
        """The orthogonal HPP stencil needs only 1 bit across a slice."""
        m = HPPModel(8, 8, boundary="null")
        eng = PartitionedEngine(m, slice_width=4)
        assert eng.boundary_bits_per_site_update() == 1

    def test_single_slice_no_exchange(self, model):
        eng = PartitionedEngine(model, slice_width=15)
        assert eng.boundary_bits_per_site_update() == 0
        assert eng.exchange_per_stage_pass() == []

    def test_exchange_records_symmetric_shape(self, model):
        eng = PartitionedEngine(model, slice_width=5)
        recs = eng.exchange_per_stage_pass()
        assert len(recs) == 2
        for rec in recs:
            assert rec.bits_leftward > 0
            assert rec.bits_rightward > 0
            assert rec.total_bits == rec.bits_leftward + rec.bits_rightward

    def test_mean_boundary_bits_about_two(self, model):
        """Hex average is 2/row (heavy parity 3, light parity 1)."""
        eng = PartitionedEngine(model, slice_width=5)
        assert 1.5 <= eng.mean_boundary_bits_per_edge_site() <= 2.0

    def test_side_bits_counted_in_stats(self, model, rng):
        frame = uniform_random_state(10, 15, 6, 0.4, rng)
        _, stats = PartitionedEngine(model, slice_width=5).run(frame, 3)
        assert stats.io_bits_side > 0

    def test_no_side_bits_single_slice(self, model, rng):
        frame = uniform_random_state(10, 15, 6, 0.4, rng)
        _, stats = PartitionedEngine(model, slice_width=15).run(frame, 3)
        assert stats.io_bits_side == 0


class TestThroughput:
    def test_slices_multiply_throughput(self, model, rng):
        """'it increases the ratio of processing elements to the total
        number of sites, permitting an increase in the maximum
        throughput by a multiplicative constant equal to the number of
        slices.'"""
        frame = uniform_random_state(10, 15, 6, 0.4, rng)
        _, s1 = PartitionedEngine(model, slice_width=15).run(frame.copy(), 2)
        _, s3 = PartitionedEngine(model, slice_width=5).run(frame.copy(), 2)
        ratio = s3.updates_per_second / s1.updates_per_second
        assert 2.5 < ratio < 3.5

    def test_bandwidth_multiplies_too(self, model, rng):
        frame = uniform_random_state(10, 15, 6, 0.4, rng)
        _, s1 = PartitionedEngine(model, slice_width=15).run(frame.copy(), 2)
        _, s3 = PartitionedEngine(model, slice_width=5).run(frame.copy(), 2)
        assert (
            s3.main_bandwidth_bits_per_tick > 2.5 * s1.main_bandwidth_bits_per_tick
        )

    def test_stats_pes_chips(self, model, rng):
        frame = uniform_random_state(10, 15, 6, 0.3, rng)
        _, stats = PartitionedEngine(model, slice_width=5, pipeline_depth=2).run(
            frame, 2
        )
        assert stats.num_pes == 3 * 2
        assert stats.storage_sites == 6 * (2 * 5 + 9)


class TestGracefulDegradation:
    """A failed PE's slices are remapped; evolution is unchanged but
    each pass takes more rounds and fewer PEs are accounted."""

    def test_rejects_out_of_range_slice(self, model):
        with pytest.raises(ValueError, match="out of range"):
            PartitionedEngine(model, slice_width=5, failed_slices=(3,))

    def test_rejects_all_slices_failed(self, model):
        with pytest.raises(ValueError, match="no PEs left"):
            PartitionedEngine(model, slice_width=5, failed_slices=(0, 1, 2))

    def test_failed_slices_deduped_and_sorted(self, model):
        eng = PartitionedEngine(model, slice_width=5, failed_slices=(2, 0, 2))
        assert eng.failed_slices == (0, 2)
        assert eng.num_healthy_slices == 1

    def test_degraded_name(self, model):
        eng = PartitionedEngine(model, slice_width=5, failed_slices=(1,))
        assert "degraded-1" in eng.name

    def test_evolution_unchanged(self, model, rng):
        frame = uniform_random_state(10, 15, 6, 0.4, rng)
        ref = LatticeGasAutomaton(model, frame.copy())
        ref.run(3)
        out, _ = PartitionedEngine(
            model, slice_width=5, failed_slices=(1,)
        ).run(frame, 3)
        assert np.array_equal(out, ref.state)

    def test_degradation_stretches_passes(self, model, rng):
        frame = uniform_random_state(10, 15, 6, 0.4, rng)
        _, healthy = PartitionedEngine(model, slice_width=5).run(frame.copy(), 2)
        _, degraded = PartitionedEngine(
            model, slice_width=5, failed_slices=(1,)
        ).run(frame.copy(), 2)
        # 3 slices on 2 healthy PE columns -> ceil(3/2) = 2 rounds per pass.
        assert degraded.ticks > healthy.ticks
        assert degraded.updates_per_second < healthy.updates_per_second

    def test_dead_pes_drop_out_of_accounting(self, model, rng):
        frame = uniform_random_state(10, 15, 6, 0.4, rng)
        _, healthy = PartitionedEngine(
            model, slice_width=5, pipeline_depth=2
        ).run(frame.copy(), 2)
        _, degraded = PartitionedEngine(
            model, slice_width=5, pipeline_depth=2, failed_slices=(2,)
        ).run(frame.copy(), 2)
        assert healthy.num_pes == 3 * 2
        assert degraded.num_pes == 2 * 2
        assert degraded.storage_sites < healthy.storage_sites
