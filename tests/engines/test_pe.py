"""Unit tests for PE rules and stream stencils."""

import numpy as np
import pytest

from repro.engines.pe import StreamStencil, make_rule
from repro.lgca.fhp import FHPModel
from repro.lgca.hpp import HPPModel


class TestStreamStencil:
    def _hex(self, rows=6, cols=8):
        from repro.lgca.fhp import _COL_OFFSET_EVEN, _COL_OFFSET_ODD, _ROW_OFFSET

        return StreamStencil(
            rows=rows,
            cols=cols,
            row_offsets=tuple(_ROW_OFFSET),
            col_offsets_even=tuple(_COL_OFFSET_EVEN),
            col_offsets_odd=tuple(_COL_OFFSET_ODD),
        )

    def test_window_reach_is_cols_plus_one(self):
        st = self._hex(6, 8)
        assert st.window_reach() == 9
        assert st.window_sites() == 2 * 9 + 1  # the paper's 2L + 3

    def test_source_index_interior(self):
        st = self._hex()
        # channel 0 (+x): source is the site to the left
        assert st.source_index(2, 3, 0) == (2, 2)
        # channel 3 (-x): source to the right
        assert st.source_index(2, 3, 3) == (2, 4)

    def test_source_index_parity(self):
        st = self._hex()
        # channel 1 from even source row vs odd source row
        # destination (3, 3): source row 4 (even), dc_even[1] = 0
        assert st.source_index(3, 3, 1) == (4, 3)
        # destination (2, 3): source row 3 (odd), dc_odd[1] = 1
        assert st.source_index(2, 3, 1) == (3, 2)

    def test_source_index_boundary_none(self):
        st = self._hex()
        assert st.source_index(0, 0, 0) is None  # left edge, +x source off-grid

    def test_gather_maps_match_source_index(self):
        st = self._hex(4, 5)
        src, valid = st.gather_maps()
        for flat in range(20):
            r, c = divmod(flat, 5)
            for ch in range(6):
                expected = st.source_index(r, c, ch)
                if expected is None:
                    assert not valid[ch, flat]
                else:
                    assert valid[ch, flat]
                    assert src[ch, flat] == expected[0] * 5 + expected[1]

    def test_validates_offsets(self):
        with pytest.raises(ValueError, match="equal length"):
            StreamStencil(2, 2, (0,), (1, 2), (1,))


class TestMakeRule:
    def test_fhp_rule_metadata(self):
        m = FHPModel(6, 8, boundary="null")
        rule = make_rule(m)
        assert rule.name == "fhp6"
        assert rule.num_channels == 6
        assert rule.stencil.self_channels == ()

    def test_fhp7_rest_channel(self):
        m = FHPModel(6, 8, boundary="null", rest_particles=True)
        rule = make_rule(m)
        assert rule.name == "fhp7"
        assert rule.stencil.self_channels == (6,)

    def test_hpp_rule(self):
        m = HPPModel(4, 4, boundary="null")
        rule = make_rule(m)
        assert rule.name == "hpp"
        assert rule.stencil.window_reach() == 4

    def test_rejects_periodic_model(self):
        with pytest.raises(ValueError, match="null"):
            make_rule(FHPModel(4, 4))

    def test_rejects_random_chirality(self):
        with pytest.raises(ValueError, match="deterministic"):
            make_rule(FHPModel(4, 4, boundary="null", chirality="random"))

    def test_rejects_unknown_model(self):
        with pytest.raises(TypeError):
            make_rule(object())

    def test_collide_matches_model(self):
        m = FHPModel(6, 8, boundary="null", chirality="alternate")
        rule = make_rule(m)
        rng = np.random.default_rng(0)
        frame = rng.integers(0, 64, size=(6, 8)).astype(np.uint8)
        r = np.repeat(np.arange(6), 8)
        c = np.tile(np.arange(8), 6)
        got = rule.collide(frame.ravel(), r, c, 5)
        expected = m.collide(frame, 5)
        assert np.array_equal(np.asarray(got).reshape(6, 8), expected)

    def test_hpp_collide_ignores_time(self):
        m = HPPModel(4, 4, boundary="null")
        rule = make_rule(m)
        frame = np.array([0b0101, 0b1010, 3, 0], dtype=np.uint8)
        r = c = np.zeros(4, dtype=int)
        a = rule.collide(frame, r, c, 0)
        b = rule.collide(frame, r, c, 99)
        assert np.array_equal(a, b)
