"""Unit tests for the serial pipeline engine (section 3)."""

import numpy as np
import pytest

from repro.engines.pipeline import PipelineStage, SerialPipelineEngine
from repro.engines.pe import make_rule
from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.lgca.hpp import HPPModel


@pytest.fixture
def fhp_model():
    return FHPModel(8, 10, boundary="null", chirality="alternate")


class TestPipelineStage:
    def test_latency_and_storage(self, fhp_model):
        stage = PipelineStage(make_rule(fhp_model))
        assert stage.latency_ticks == 10 + 1
        assert stage.storage_sites == 2 * 10 + 3  # the paper's 2L + 3

    def test_stage_equals_model_step(self, fhp_model, rng):
        stage = PipelineStage(make_rule(fhp_model))
        frame = uniform_random_state(8, 10, 6, 0.4, rng)
        out = stage.process(frame.ravel(), generation=0)
        expected = fhp_model.step(frame, 0)
        assert np.array_equal(out.reshape(8, 10), expected)

    def test_tickwise_equals_vectorized(self, fhp_model, rng):
        stage = PipelineStage(make_rule(fhp_model))
        frame = uniform_random_state(8, 10, 6, 0.4, rng).ravel()
        for t in (0, 1):
            assert np.array_equal(
                stage.process_tickwise(frame, t), stage.process(frame, t)
            )

    def test_tickwise_window_suffices(self, rng):
        """The tick-accurate stage never overruns its 2L+3 window — a
        constructive proof of the paper's storage claim."""
        m = FHPModel(6, 7, boundary="null")
        stage = PipelineStage(make_rule(m))
        frame = uniform_random_state(6, 7, 6, 0.5, rng).ravel()
        stage.process_tickwise(frame, 0)  # would raise WindowOverrunError

    def test_rejects_wrong_stream_shape(self, fhp_model):
        stage = PipelineStage(make_rule(fhp_model))
        with pytest.raises(ValueError, match="shape"):
            stage.process(np.zeros(7, dtype=np.uint8), 0)

    def test_hpp_stage(self, rng):
        m = HPPModel(6, 6, boundary="null")
        stage = PipelineStage(make_rule(m))
        frame = uniform_random_state(6, 6, 4, 0.3, rng)
        out = stage.process(frame.ravel(), 0)
        assert np.array_equal(out.reshape(6, 6), m.step(frame, 0))


class TestSerialPipelineEngine:
    def test_matches_reference_multi_generation(self, fhp_model, rng):
        frame = uniform_random_state(8, 10, 6, 0.35, rng)
        ref = LatticeGasAutomaton(fhp_model, frame.copy())
        ref.run(6)
        eng = SerialPipelineEngine(fhp_model, pipeline_depth=3)
        out, stats = eng.run(frame, 6)
        assert np.array_equal(out, ref.state)
        assert stats.site_updates == 6 * 80

    def test_generations_not_multiple_of_depth(self, fhp_model, rng):
        frame = uniform_random_state(8, 10, 6, 0.35, rng)
        ref = LatticeGasAutomaton(fhp_model, frame.copy())
        ref.run(5)
        eng = SerialPipelineEngine(fhp_model, pipeline_depth=3)
        out, _ = eng.run(frame, 5)
        assert np.array_equal(out, ref.state)

    def test_zero_generations(self, fhp_model, rng):
        frame = uniform_random_state(8, 10, 6, 0.35, rng)
        eng = SerialPipelineEngine(fhp_model)
        out, stats = eng.run(frame.copy(), 0)
        assert np.array_equal(out, frame)
        assert stats.ticks == 0 and stats.io_bits_main == 0

    def test_tick_accounting_single_pass(self, fhp_model, rng):
        frame = uniform_random_state(8, 10, 6, 0.35, rng)
        eng = SerialPipelineEngine(fhp_model, pipeline_depth=4)
        _, stats = eng.run(frame, 4)
        n = 80
        assert stats.ticks == n + 4 * (10 + 1)
        assert stats.io_bits_main == 2 * 6 * n

    def test_io_independent_of_depth_per_pass(self, fhp_model, rng):
        """Deeper pipelines do the same total I/O in fewer passes —
        'without the need for further external data'."""
        frame = uniform_random_state(8, 10, 6, 0.35, rng)
        _, s1 = SerialPipelineEngine(fhp_model, 1).run(frame.copy(), 6)
        _, s6 = SerialPipelineEngine(fhp_model, 6).run(frame.copy(), 6)
        assert s1.io_bits_main == 6 * s6.io_bits_main

    def test_stats_metadata(self, fhp_model, rng):
        eng = SerialPipelineEngine(fhp_model, pipeline_depth=2, clock_hz=5e6)
        frame = uniform_random_state(8, 10, 6, 0.3, rng)
        _, stats = eng.run(frame, 2)
        assert stats.num_pes == 2
        assert stats.num_chips == 2
        assert stats.clock_hz == 5e6
        assert stats.storage_sites == 2 * (2 * 10 + 3)

    def test_tickwise_mode_matches(self, rng):
        m = FHPModel(6, 6, boundary="null")
        frame = uniform_random_state(6, 6, 6, 0.4, rng)
        fast, _ = SerialPipelineEngine(m, 2).run(frame.copy(), 2)
        slow, _ = SerialPipelineEngine(m, 2).run(frame.copy(), 2, tickwise=True)
        assert np.array_equal(fast, slow)

    def test_start_time_affects_chirality(self, rng):
        """FHP alternate chirality depends on generation parity: starting
        at t=1 must differ from t=0 for a state with collisions."""
        m = FHPModel(6, 6, boundary="null")
        frame = np.full((6, 6), 0b001001, dtype=np.uint8)  # head-on pairs
        out0, _ = SerialPipelineEngine(m).run(frame.copy(), 1, start_time=0)
        out1, _ = SerialPipelineEngine(m).run(frame.copy(), 1, start_time=1)
        assert not np.array_equal(out0, out1)

    def test_validates_depth(self, fhp_model):
        with pytest.raises(ValueError):
            SerialPipelineEngine(fhp_model, pipeline_depth=0)
