"""Unit tests for the WSA-E engine simulator."""

import numpy as np
import pytest

from repro.engines.extensible import ExtensibleSerialEngine
from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state


@pytest.fixture
def model():
    return FHPModel(10, 14, boundary="null")


class TestFunctional:
    def test_matches_reference(self, model, rng):
        frame = uniform_random_state(10, 14, 6, 0.35, rng)
        ref = LatticeGasAutomaton(model, frame.copy())
        ref.run(5)
        out, _ = ExtensibleSerialEngine(model, pipeline_depth=5).run(frame, 5)
        assert np.array_equal(out, ref.state)

    def test_matches_plain_serial(self, model, rng):
        from repro.engines.pipeline import SerialPipelineEngine

        frame = uniform_random_state(10, 14, 6, 0.35, rng)
        a, _ = ExtensibleSerialEngine(model, 2).run(frame.copy(), 4)
        b, _ = SerialPipelineEngine(model, 2).run(frame.copy(), 4)
        assert np.array_equal(a, b)


class TestArchitecture:
    def test_delay_split(self, model):
        eng = ExtensibleSerialEngine(model)
        assert eng.delay_sites_per_stage == 2 * 14 + 10
        assert eng.on_chip_sites_per_stage == 10
        assert eng.off_chip_sites_per_stage == 2 * 14

    def test_pins_are_6d(self, model):
        eng = ExtensibleSerialEngine(model)
        assert eng.pins_used(bits_per_site=8) == 48
        assert eng.pins_used() == 6 * 6  # FHP-6's D = 6

    def test_stage_area_scales_with_kappa(self, model):
        e8 = ExtensibleSerialEngine(model, commercial_density=8.0)
        e1 = ExtensibleSerialEngine(model, commercial_density=1.0)
        site_area = 576e-6
        assert e8.stage_area(site_area) < e1.stage_area(site_area)
        # chip itself dominates at small L
        assert e8.stage_area(site_area) == pytest.approx(
            1.0 + 28 * site_area / 8.0
        )

    def test_bandwidth_constant_16_bits_at_d8(self, rng):
        """With D=8-bit sites the stream is 16 bits/tick regardless of
        L or k (here D=6 for raw FHP-6: 12 bits/tick)."""
        model = FHPModel(10, 14, boundary="null")
        frame = uniform_random_state(10, 14, 6, 0.3, rng)
        n = 140
        _, s1 = ExtensibleSerialEngine(model, 1).run(frame.copy(), 2)
        _, s4 = ExtensibleSerialEngine(model, 4).run(frame.copy(), 4)
        # exactly 2D·n bits per pass, diluted by the fill/drain latency
        latency = 14 + 1
        assert s1.main_bandwidth_bits_per_tick == pytest.approx(
            2 * 6 * n / (n + latency)
        )
        assert s4.main_bandwidth_bits_per_tick == pytest.approx(
            2 * 6 * n / (n + 4 * latency)
        )

    def test_stats_metadata(self, model, rng):
        frame = uniform_random_state(10, 14, 6, 0.3, rng)
        _, stats = ExtensibleSerialEngine(model, pipeline_depth=3).run(frame, 3)
        assert stats.num_pes == 3
        assert stats.storage_sites == 3 * (2 * 14 + 10)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            ExtensibleSerialEngine(model, pipeline_depth=0)
        with pytest.raises(ValueError):
            ExtensibleSerialEngine(model, commercial_density=0)
