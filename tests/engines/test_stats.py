"""Unit tests for engine statistics."""

import pytest

from repro.engines.stats import EngineRunStats, ThroughputReport


def make_stats(**kw) -> EngineRunStats:
    defaults = dict(
        name="x",
        site_updates=1000,
        ticks=500,
        io_bits_main=16000,
        io_bits_side=0,
        storage_sites=100,
        num_pes=4,
        num_chips=2,
        clock_hz=10e6,
    )
    defaults.update(kw)
    return EngineRunStats(**defaults)


class TestEngineStats:
    def test_seconds(self):
        assert make_stats().seconds == pytest.approx(5e-5)

    def test_updates_per_second(self):
        assert make_stats().updates_per_second == pytest.approx(1000 / 5e-5)

    def test_updates_per_tick(self):
        assert make_stats().updates_per_tick == pytest.approx(2.0)

    def test_bandwidth_per_tick(self):
        assert make_stats().main_bandwidth_bits_per_tick == pytest.approx(32.0)

    def test_bandwidth_bytes_per_second(self):
        assert make_stats().main_bandwidth_bytes_per_second == pytest.approx(
            32 * 10e6 / 8
        )

    def test_io_bits_per_update(self):
        assert make_stats().io_bits_per_update == pytest.approx(16.0)

    def test_pe_utilization(self):
        assert make_stats().pe_utilization == pytest.approx(0.5)

    def test_zero_ticks_rates(self):
        s = make_stats(ticks=0, site_updates=0, io_bits_main=0)
        assert s.updates_per_second == 0.0
        assert s.main_bandwidth_bits_per_tick == 0.0
        assert s.io_bits_per_update == 0.0

    def test_merge_accumulates(self):
        merged = make_stats().merge(make_stats(site_updates=500, ticks=100))
        assert merged.site_updates == 1500
        assert merged.ticks == 600
        assert merged.num_pes == 4  # max, not sum

    def test_merge_rejects_clock_mismatch(self):
        with pytest.raises(ValueError):
            make_stats().merge(make_stats(clock_hz=5e6))

    def test_validates_negative(self):
        with pytest.raises(ValueError):
            make_stats(site_updates=-1)

    def test_validates_clock(self):
        with pytest.raises(ValueError):
            make_stats(clock_hz=0)

    def test_to_dict_round_trips_counters(self):
        d = make_stats().to_dict()
        assert d["site_updates"] == 1000
        assert d["ticks"] == 500
        assert d["updates_per_tick"] == pytest.approx(2.0)


class TestEngineStatsShimRemoved:
    """The deprecated ``EngineStats`` alias is gone (renamed two releases ago)."""

    def test_module_attribute_is_gone(self):
        import repro.engines.stats as stats_mod

        with pytest.raises(AttributeError):
            stats_mod.EngineStats

    def test_package_attribute_is_gone(self):
        import repro.engines as engines_mod

        with pytest.raises(AttributeError):
            engines_mod.EngineStats

    def test_new_name_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro.engines.stats import EngineRunStats as again
        assert again is EngineRunStats

    def test_unknown_attribute_still_raises(self):
        import repro.engines.stats as stats_mod

        with pytest.raises(AttributeError):
            stats_mod.EngineStatz


class TestThroughputReport:
    def test_derating(self):
        r = ThroughputReport(
            name="x",
            peak_updates_per_second=20e6,
            realized_updates_per_second=1e6,
            bandwidth_demand_bytes_per_second=40e6,
            host_bandwidth_bytes_per_second=2e6,
        )
        assert r.derating == pytest.approx(0.05)

    def test_validates(self):
        with pytest.raises(ValueError):
            ThroughputReport(
                name="x",
                peak_updates_per_second=0,
                realized_updates_per_second=1,
                bandwidth_demand_bytes_per_second=1,
                host_bandwidth_bytes_per_second=1,
            )
