"""Unit tests for memory and host-interface models."""

import pytest

from repro.engines.memory import HostInterface, MainMemory
from repro.engines.stats import EngineRunStats


class TestMainMemory:
    def test_accounting(self):
        mem = MainMemory(bits_per_site=8)
        mem.read_sites(10)
        mem.write_sites(5)
        assert mem.bits_read == 80
        assert mem.bits_written == 40
        assert mem.bits_total == 120

    def test_rejects_negative_counts(self):
        mem = MainMemory()
        with pytest.raises(ValueError):
            mem.read_sites(-1)
        with pytest.raises(ValueError):
            mem.write_sites(-1)

    def test_unlimited_bandwidth(self):
        mem = MainMemory()
        mem.read_sites(1000)
        assert mem.min_ticks_for_traffic() == 0
        assert mem.stretch_ticks(500) == 500

    def test_limited_bandwidth_stretches(self):
        mem = MainMemory(bits_per_site=8, bandwidth_bits_per_tick=16)
        mem.read_sites(100)  # 800 bits -> 50 ticks minimum
        assert mem.min_ticks_for_traffic() == 50
        assert mem.stretch_ticks(30) == 50
        assert mem.stretch_ticks(80) == 80

    def test_explicit_bits(self):
        mem = MainMemory(bandwidth_bits_per_tick=10)
        assert mem.min_ticks_for_traffic(95) == 10

    def test_reset(self):
        mem = MainMemory()
        mem.read_sites(5)
        mem.reset()
        assert mem.bits_total == 0

    def test_validates(self):
        with pytest.raises(ValueError):
            MainMemory(bits_per_site=0)
        with pytest.raises(ValueError):
            MainMemory(bandwidth_bits_per_tick=0)
        mem = MainMemory(bandwidth_bits_per_tick=8)
        with pytest.raises(ValueError):
            mem.min_ticks_for_traffic(-1)
        with pytest.raises(ValueError):
            mem.stretch_ticks(-1)


class TestHostInterface:
    def _stats(self, updates=20_000_000, ticks=10_000_000, io_bits=320_000_000):
        # A 2-PE chip at 10 MHz for 1 second: 20M updates, 40 MB traffic.
        return EngineRunStats(
            name="proto",
            site_updates=updates,
            ticks=ticks,
            io_bits_main=io_bits,
            num_pes=2,
            num_chips=1,
            clock_hz=10e6,
        )

    def test_reproduces_section8_derating(self):
        """20M updates/s wanting 40MB/s on a 2MB/s host -> ~1M updates/s."""
        host = HostInterface(bandwidth_bytes_per_second=2e6)
        report = host.realized(self._stats())
        assert report.realized_updates_per_second == pytest.approx(1e6)
        assert report.derating == pytest.approx(0.05)

    def test_fast_host_no_derating(self):
        host = HostInterface(bandwidth_bytes_per_second=100e6)
        report = host.realized(self._stats())
        assert report.realized_updates_per_second == pytest.approx(20e6)
        assert report.derating == pytest.approx(1.0)

    def test_breakeven_host(self):
        host = HostInterface(bandwidth_bytes_per_second=40e6)
        report = host.realized(self._stats())
        assert report.derating == pytest.approx(1.0)

    def test_validates(self):
        with pytest.raises(ValueError):
            HostInterface(bandwidth_bytes_per_second=0)
