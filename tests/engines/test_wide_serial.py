"""Unit tests for the WSA engine (section 4)."""

import numpy as np
import pytest

from repro.engines.wide_serial import WideSerialEngine
from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state


@pytest.fixture
def model():
    return FHPModel(8, 12, boundary="null")


class TestFunctional:
    def test_matches_reference(self, model, rng):
        frame = uniform_random_state(8, 12, 6, 0.35, rng)
        ref = LatticeGasAutomaton(model, frame.copy())
        ref.run(4)
        eng = WideSerialEngine(model, lanes=4, pipeline_depth=2)
        out, _ = eng.run(frame, 4)
        assert np.array_equal(out, ref.state)

    def test_lanes_do_not_change_result(self, model, rng):
        frame = uniform_random_state(8, 12, 6, 0.35, rng)
        out1, _ = WideSerialEngine(model, lanes=1).run(frame.copy(), 3)
        out4, _ = WideSerialEngine(model, lanes=4).run(frame.copy(), 3)
        assert np.array_equal(out1, out4)


class TestAccounting:
    def test_lanes_speed_up_streaming(self, model, rng):
        frame = uniform_random_state(8, 12, 6, 0.35, rng)
        _, s1 = WideSerialEngine(model, lanes=1).run(frame.copy(), 2)
        _, s4 = WideSerialEngine(model, lanes=4).run(frame.copy(), 2)
        assert s4.ticks < s1.ticks
        assert s4.updates_per_second > 3 * s1.updates_per_second

    def test_bandwidth_scales_with_lanes(self, model, rng):
        """'two new site values are required every clock period ... the
        extra PEs require added bandwidth.'"""
        frame = uniform_random_state(8, 12, 6, 0.35, rng)
        _, s1 = WideSerialEngine(model, lanes=1).run(frame.copy(), 2)
        _, s4 = WideSerialEngine(model, lanes=4).run(frame.copy(), 2)
        # Same total bits, but moved in ~1/4 the ticks: bandwidth ≈ 4x.
        assert s1.io_bits_main == s4.io_bits_main
        ratio = s4.main_bandwidth_bits_per_tick / s1.main_bandwidth_bits_per_tick
        assert 3.0 < ratio < 4.5

    def test_storage_incremental_in_lanes(self, model):
        """'at a cost of only the incremental amount of memory' — 7 cells
        per extra lane, exactly the paper's 2L + 7P + 3 budget."""
        e1 = WideSerialEngine(model, lanes=1)
        e4 = WideSerialEngine(model, lanes=4)
        assert e1.storage_sites_per_stage == 2 * 12 + 3
        assert e4.storage_sites_per_stage - e1.storage_sites_per_stage == 7 * 3

    def test_storage_matches_paper_formula(self, model):
        for lanes in (1, 2, 4):
            eng = WideSerialEngine(model, lanes=lanes)
            # paper formula 2L + 7P + 3, with the serial window 2L + 3
            assert eng.storage_sites_per_stage == (2 * 12 + 3) + 7 * (lanes - 1)

    def test_num_pes(self, model, rng):
        frame = uniform_random_state(8, 12, 6, 0.3, rng)
        _, stats = WideSerialEngine(model, lanes=3, pipeline_depth=2).run(frame, 2)
        assert stats.num_pes == 6
        assert stats.num_chips == 2

    def test_pe_utilization_below_one(self, model, rng):
        frame = uniform_random_state(8, 12, 6, 0.3, rng)
        _, stats = WideSerialEngine(model, lanes=2, pipeline_depth=2).run(frame, 2)
        assert 0 < stats.pe_utilization <= 1.0

    def test_ticks_per_pass_rounds_up(self, model):
        eng = WideSerialEngine(model, lanes=5)  # 96 sites / 5 -> 20 ticks
        assert eng.ticks_per_pass(1) >= 20

    def test_validates_lanes(self, model):
        with pytest.raises(ValueError):
            WideSerialEngine(model, lanes=0)


class TestTickwiseLanes:
    def test_tickwise_matches_vectorized(self, model, rng):
        """Lane-accurate tick simulation through a hard-capacity delay
        line of 2L + 3 + (P−1) cells — the multi-lane window proved by
        construction."""
        from repro.lgca.flows import uniform_random_state

        frame = uniform_random_state(8, 12, 6, 0.4, rng)
        for lanes in (1, 2, 4, 5):
            fast, _ = WideSerialEngine(model, lanes=lanes, pipeline_depth=2).run(
                frame.copy(), 4
            )
            slow, _ = WideSerialEngine(model, lanes=lanes, pipeline_depth=2).run(
                frame.copy(), 4, tickwise=True
            )
            assert np.array_equal(fast, slow), f"lanes={lanes}"

    def test_capacity_is_exactly_tight(self, model, rng):
        """The oldest tap of a P-lane tick has age 2·reach + P − 1, so
        capacity 2·reach + P is exactly sufficient — and the simulation
        would raise WindowOverrunError if the block math drifted."""
        from repro.lgca.flows import uniform_random_state

        frame = uniform_random_state(8, 12, 6, 0.4, rng)
        eng = WideSerialEngine(model, lanes=3)
        out = eng.process_stage_tickwise(frame.ravel(), 0)
        expected = eng.stage.process(frame.ravel(), 0)
        assert np.array_equal(out, expected)
