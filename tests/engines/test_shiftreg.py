"""Unit tests for the shift-register delay line."""

import pytest

from repro.engines.shiftreg import ShiftRegister, WindowOverrunError


class TestShiftRegister:
    def test_push_and_tap_newest(self):
        sr = ShiftRegister(capacity=4)
        sr.push(10)
        assert sr.tap(0) == 10

    def test_ages(self):
        sr = ShiftRegister(capacity=4)
        for v in (1, 2, 3):
            sr.push(v)
        assert sr.tap(0) == 3
        assert sr.tap(1) == 2
        assert sr.tap(2) == 1

    def test_wraparound(self):
        sr = ShiftRegister(capacity=3)
        for v in range(10):
            sr.push(v)
        assert sr.tap(0) == 9
        assert sr.tap(2) == 7

    def test_overrun_capacity(self):
        sr = ShiftRegister(capacity=3)
        for v in range(5):
            sr.push(v)
        with pytest.raises(WindowOverrunError, match="capacity"):
            sr.tap(3)

    def test_overrun_unpushed(self):
        sr = ShiftRegister(capacity=5)
        sr.push(1)
        with pytest.raises(WindowOverrunError, match="pushed"):
            sr.tap(1)

    def test_negative_age(self):
        sr = ShiftRegister(capacity=2)
        sr.push(1)
        with pytest.raises(WindowOverrunError, match="future"):
            sr.tap(-1)

    def test_tap_or_fill(self):
        sr = ShiftRegister(capacity=4, fill_value=7)
        sr.push(1)
        assert sr.tap_or_fill(0) == 1
        assert sr.tap_or_fill(2) == 7
        with pytest.raises(WindowOverrunError):
            sr.tap_or_fill(4)

    def test_reset(self):
        sr = ShiftRegister(capacity=3)
        sr.push(5)
        sr.reset()
        assert sr.pushes == 0
        with pytest.raises(WindowOverrunError):
            sr.tap(0)

    def test_pushes_counter(self):
        sr = ShiftRegister(capacity=2)
        for _ in range(7):
            sr.push(0)
        assert sr.pushes == 7

    def test_validates_capacity(self):
        with pytest.raises(ValueError):
            ShiftRegister(capacity=0)
