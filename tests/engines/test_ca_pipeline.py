"""Unit tests for the 1-D CA pipeline (reference [16]'s machine)."""

import numpy as np
import pytest

from repro.engines.ca_pipeline import CAPipelineEngine
from repro.lgca.wolfram import ElementaryCA, ParityCA


@pytest.fixture
def tape(rng):
    return (rng.random(48) < 0.4).astype(np.uint8)


class TestValidation:
    def test_rejects_periodic_rule(self):
        with pytest.raises(ValueError, match="null"):
            CAPipelineEngine(ElementaryCA(90))

    def test_rejects_unknown_rule(self):
        with pytest.raises(TypeError):
            CAPipelineEngine(object())

    def test_rejects_bad_tape(self):
        eng = CAPipelineEngine(ElementaryCA(90, boundary="null"))
        with pytest.raises(ValueError):
            eng.run(np.zeros((2, 2), dtype=np.uint8), 1)


class TestFunctional:
    @pytest.mark.parametrize("rule_num", [30, 90, 110, 184])
    def test_matches_reference(self, tape, rule_num):
        rule = ElementaryCA(rule_num, boundary="null")
        expected = rule.run(tape, 6)
        out, _ = CAPipelineEngine(rule, pipeline_depth=3).run(tape, 6)
        assert np.array_equal(out, expected)

    def test_tickwise_matches(self, tape):
        rule = ElementaryCA(110, boundary="null")
        fast, _ = CAPipelineEngine(rule, 2).run(tape, 4)
        slow, _ = CAPipelineEngine(rule, 2).run(tape, 4, tickwise=True)
        assert np.array_equal(fast, slow)

    def test_parity_rule(self, tape):
        rule = ParityCA(taps=(-1, 0, 1), boundary="null")
        expected = rule.run(tape, 5)
        out, _ = CAPipelineEngine(rule, 5).run(tape, 5)
        assert np.array_equal(out, expected)

    def test_parity_tickwise(self, tape):
        rule = ParityCA(taps=(-2, 1), boundary="null")
        fast, _ = CAPipelineEngine(rule, 1).run(tape, 3)
        slow, _ = CAPipelineEngine(rule, 1).run(tape, 3, tickwise=True)
        assert np.array_equal(fast, slow)

    def test_radius_2_window(self, tape):
        """A radius-2 rule needs a 5-cell window; the hard-capacity
        register proves sufficiency."""
        rule = ParityCA(taps=(-2, 0, 2), boundary="null")
        eng = CAPipelineEngine(rule)
        assert eng.storage_cells_per_stage == 5
        out, _ = eng.run(tape, 2, tickwise=True)
        assert np.array_equal(out, rule.run(tape, 2))


class TestAccounting:
    def test_constant_storage(self):
        """The 1-D advantage: storage independent of tape length."""
        eng = CAPipelineEngine(ElementaryCA(90, boundary="null"), pipeline_depth=4)
        assert eng.storage_cells_per_stage == 3
        _, stats_small = eng.run(np.zeros(16, dtype=np.uint8), 4)
        _, stats_large = eng.run(np.zeros(1024, dtype=np.uint8), 4)
        assert stats_small.storage_sites == stats_large.storage_sites == 12

    def test_io_per_update_is_2_over_k(self, tape):
        rule = ElementaryCA(90, boundary="null")
        for k in (1, 2, 4):
            _, stats = CAPipelineEngine(rule, k).run(tape, 4)
            assert stats.io_bits_per_update == pytest.approx(2.0 / k)

    def test_ticks(self, tape):
        rule = ElementaryCA(90, boundary="null")
        _, stats = CAPipelineEngine(rule, 2).run(tape, 2)
        assert stats.ticks == tape.size + 2 * 1  # one pass, latency r=1/stage

    def test_zero_generations(self, tape):
        out, stats = CAPipelineEngine(ElementaryCA(90, boundary="null")).run(tape, 0)
        assert np.array_equal(out, tape)
        assert stats.ticks == 0
