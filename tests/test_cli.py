"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_design_defaults(self):
        args = build_parser().parse_args(["design"])
        assert args.pins == 72
        assert args.clock_mhz == 10.0


class TestDesign:
    def test_prints_paper_point(self, capsys):
        assert main(["design"]) == 0
        out = capsys.readouterr().out
        assert "785" in out
        assert "P_w=2, P_k=6" in out

    def test_custom_pins(self, capsys):
        assert main(["design", "--pins", "144"]) == 0
        out = capsys.readouterr().out
        assert "144" not in ""  # smoke: runs without error
        assert "Optimal engine designs" in out


class TestCompare:
    def test_summary(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "WSA-E" in out
        assert "12x faster" in out


class TestSimulate:
    def test_reference_run_conserves(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--rows",
                    "16",
                    "--cols",
                    "16",
                    "--steps",
                    "10",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "momentum drift" in out
        # conserved up to float accumulation on the periodic default
        drift_line = next(l for l in out.splitlines() if "momentum drift" in l)
        drift = float(drift_line.split()[-1])
        assert drift < 1e-9

    @pytest.mark.parametrize("engine", ["serial", "wsa", "spa", "wsa-e"])
    def test_engines_match(self, capsys, engine):
        code = main(
            [
                "simulate",
                "--engine",
                engine,
                "--rows",
                "12",
                "--cols",
                "12",
                "--steps",
                "4",
                "--depth",
                "2",
                "--slice-width",
                "6",
            ]
        )
        assert code == 0
        assert "bit-exact" in capsys.readouterr().out

    def test_hpp_model(self, capsys):
        assert main(["simulate", "--model", "hpp", "--steps", "5"]) == 0

    def test_saturated_model(self, capsys):
        assert main(["simulate", "--model", "fhp-sat", "--steps", "5"]) == 0

    def test_bitplane_backend(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--model",
                    "fhp6",
                    "--rows",
                    "16",
                    "--cols",
                    "70",
                    "--steps",
                    "8",
                    "--backend",
                    "bitplane",
                ]
            )
            == 0
        )

    def test_bitplane_backend_engine_bit_exact(self, capsys):
        code = main(
            [
                "simulate",
                "--model",
                "hpp",
                "--rows",
                "12",
                "--cols",
                "66",
                "--steps",
                "6",
                "--engine",
                "serial",
                "--backend",
                "bitplane",
            ]
        )
        assert code == 0
        assert "bit-exact" in capsys.readouterr().out

    def test_parallel_backend(self, capsys):
        args = [
            "simulate", "--model", "fhp7", "--rows", "16", "--cols", "70",
            "--steps", "8", "--backend", "parallel", "--workers", "2",
        ]
        assert main(args) == 0

    def test_parallel_backend_engine_bit_exact(self, capsys):
        args = [
            "simulate", "--model", "hpp", "--rows", "12", "--cols", "66",
            "--steps", "6", "--engine", "wsa", "--backend", "parallel",
            "--workers", "3",
        ]
        assert main(args) == 0
        assert "bit-exact" in capsys.readouterr().out

    def test_workers_without_parallel_backend_is_uniform_error(self, capsys):
        args = [
            "simulate", "--backend", "bitplane", "--workers", "2", "--steps", "2",
        ]
        assert main(args) == 2
        assert "does not accept option" in capsys.readouterr().err

    def test_bad_workers_value_is_usage_error(self, capsys):
        args = [
            "simulate", "--backend", "parallel", "--workers", "zero", "--steps", "2",
        ]
        assert main(args) == 2
        assert "workers" in capsys.readouterr().err


class TestBounds:
    def test_ceiling(self, capsys):
        assert main(["bounds", "--storage", "1600", "--bandwidth", "1e6"]) == 0
        assert "320 Mupdates/s" in capsys.readouterr().out

    def test_inversions(self, capsys):
        assert main(["bounds", "--target-rate", "2e7"]) == 0
        out = capsys.readouterr().out
        assert "S needed" in out and "B needed" in out


class TestMachines:
    def test_table(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "CRAY X-MP/1" in out
        assert "Connection Machine" in out

    def test_prototype_row_matches_section8(self, capsys):
        main(["machines"])
        out = capsys.readouterr().out
        line = next(l for l in out.splitlines() if "prototype" in l)
        assert "1 Mupdates/s" in line and "5%" in line


class TestMachinesRegistry:
    def test_list_table(self, capsys):
        assert main(["machines", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("serial", "wsa", "spa", "wsa-e"):
            assert name in out
        assert "PartitionedEngine" in out

    def test_list_json_is_schema_versioned(self, capsys):
        assert main(["machines", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-machine"
        assert payload["version"] == 1
        assert [m["name"] for m in payload["machines"]] == [
            "serial",
            "wsa",
            "spa",
            "wsa-e",
        ]

    def test_describe_table(self, capsys):
        assert main(["machines", "describe", "wsa"]) == 0
        out = capsys.readouterr().out
        assert "WideSerialEngine" in out
        assert "lanes" in out

    def test_describe_json(self, capsys):
        assert main(["machines", "describe", "spa", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-machine"
        assert payload["name"] == "spa"
        assert payload["capabilities"]["side_channel"] is True
        assert payload["parameters"]["defaults"] == {"slice_width": 8}
        assert "design" in payload

    def test_describe_unknown_machine_exits_2(self, capsys):
        assert main(["machines", "describe", "cray"]) == 2
        err = capsys.readouterr().err
        assert "unknown machine 'cray'" in err

    def test_legacy_bare_machines_still_works(self, capsys):
        assert main(["machines"]) == 0
        assert "CRAY X-MP/1" in capsys.readouterr().out


class TestViscosity:
    def test_measurement(self, capsys):
        assert main(["viscosity", "--size", "64", "--steps", "120"]) == 0
        out = capsys.readouterr().out
        assert "measured ν" in out and "Boltzmann" in out


class TestRegimes:
    def test_unconstrained(self, capsys):
        assert main(["regimes"]) == 0
        out = capsys.readouterr().out
        assert "SPA" in out

    def test_budget_produces_three_regimes(self, capsys):
        assert main(["regimes", "--bandwidth-budget", "64"]) == 0
        out = capsys.readouterr().out
        assert "WSA-E" in out and "WSA" in out and "SPA" in out


class TestPebble:
    def test_schedule_table(self, capsys):
        assert main(["pebble", "--side", "8", "--generations", "3"]) == 0
        out = capsys.readouterr().out
        assert "per-site" in out
        assert "pipeline k=1" in out
        assert "trapezoid" in out
        assert "LRU" in out

    def test_1d(self, capsys):
        assert main(["pebble", "--dimension", "1", "--side", "24"]) == 0
        assert "C_1" in capsys.readouterr().out


class TestLint:
    def test_repo_sources_are_clean(self, capsys):
        import repro

        src = str(__import__("pathlib").Path(repro.__file__).parent)
        assert main(["lint", src]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_violation_exits_nonzero(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:1:" in out
        assert "RPR001" in out

    def test_json_format(self, capsys, tmp_path):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text("try:\n    pass\nexcept:\n    pass\n")
        assert main(["lint", "--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 1
        assert payload["diagnostics"][0]["rule"] == "RPR005"

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "RPR006" in out

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "no/such/path.py"]) == 2
        assert "no/such/path.py" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, capsys):
        assert main(["lint", "--select", "RPR999", "src/repro"]) == 2
        assert "RPR999" in capsys.readouterr().err

    def test_explain_known_rule(self, capsys):
        assert main(["lint", "--explain", "RPR110"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("RPR110:")
        assert "double" in out  # the double-buffer discipline

    def test_explain_unknown_rule_is_usage_error(self, capsys):
        assert main(["lint", "--explain", "RPR999"]) == 2
        err = capsys.readouterr().err
        assert "RPR999" in err
        assert "RPR110" in err  # the valid ids are listed

    def test_github_format(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        assert main(["lint", "--format", "github", str(bad)]) == 1
        out = capsys.readouterr().out
        assert f"::error file={bad},line=1," in out
        assert "title=RPR001::" in out

    def test_github_format_clean_tree_prints_nothing(self, capsys, tmp_path):
        (tmp_path / "ok.py").write_text("X = 1\n")
        assert main(["lint", "--format", "github", str(tmp_path)]) == 0
        assert capsys.readouterr().out == ""

    def test_noqa_suppresses_and_is_counted(self, capsys, tmp_path):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):  # repro: noqa[RPR001]\n    return x\n")
        assert main(["lint", "--format", "json", str(bad)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0
        assert payload["summary"]["suppressed"] == 1

    def test_noqa_other_rule_does_not_suppress(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):  # repro: noqa[RPR005]\n    return x\n")
        assert main(["lint", str(bad)]) == 1

    def test_project_cache_round_trip(self, capsys, tmp_path):
        import json

        (tmp_path / "ok.py").write_text("X = 1\n")
        cache = tmp_path / "graph.json"
        args = ["lint", "--project-cache", str(cache), str(tmp_path / "ok.py")]
        assert main(args) == 0
        assert cache.is_file()
        payload = json.loads(cache.read_text())
        assert payload["schema"] == "repro-lint-project"
        assert main(args) == 0  # second run reuses the cache


class TestSanitize:
    def test_all_checks_pass(self, capsys):
        assert main(["sanitize"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert "FAIL" not in out
        assert "checks passed" in out

    def test_single_group(self, capsys):
        assert main(["sanitize", "--check", "hpp"]) == 0
        out = capsys.readouterr().out
        assert "hpp/conservation" in out
        assert "16/16" in out

    def test_json_format(self, capsys):
        import json

        assert main(["sanitize", "--check", "design", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["failed"] == 0

    def test_list_checks(self, capsys):
        assert main(["sanitize", "--list-checks"]) == 0
        out = capsys.readouterr().out
        assert "hpp" in out
        assert "design" in out

    def test_unknown_group_is_usage_error(self, capsys):
        assert main(["sanitize", "--check", "warp-drive"]) == 2
        assert "warp-drive" in capsys.readouterr().err


class TestRun:
    def test_direct_run(self, capsys):
        assert main(["run", "--rows", "16", "--cols", "16", "--generations", "4"]) == 0
        out = capsys.readouterr().out
        assert "Direct run" in out
        assert "final particles" in out

    def test_supervised_run_with_kill_is_bit_identical(self, capsys):
        import json

        args = [
            "run",
            "--supervised",
            "--rows", "16",
            "--cols", "16",
            "--generations", "8",
            "--workers", "2",
            "--checkpoint-interval", "4",
            "--restart-delay", "0.05",
            "--induce", "kill:0@5",
            "--verify",
            "--json",
        ]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["outcome"] == "complete"
        assert payload["num_restarts"] == 1
        assert payload["bit_identical"] is True

    def test_bad_induce_spec_is_usage_error(self, capsys):
        args = ["run", "--supervised", "--induce", "meteor:0@5"]
        assert main(args) == 2
        assert "meteor" in capsys.readouterr().err

    def test_direct_run_parallel_backend(self, capsys):
        args = [
            "run", "--rows", "32", "--cols", "32", "--generations", "4",
            "--backend", "parallel", "--workers", "2",
        ]
        assert main(args) == 0
        assert "Direct run" in capsys.readouterr().out

    def test_supervised_rejects_parallel_backend(self, capsys):
        args = ["run", "--supervised", "--backend", "parallel"]
        assert main(args) == 2
        assert "parallel" in capsys.readouterr().err

    def test_supervised_rejects_non_integer_workers(self, capsys):
        args = ["run", "--supervised", "--workers", "auto"]
        assert main(args) == 2
        assert "integer" in capsys.readouterr().err

    def test_faults_rejects_workers_with_wrong_backend(self, capsys):
        args = ["faults", "--backend", "bitplane", "--workers", "2"]
        assert main(args) == 2
        assert "does not accept option" in capsys.readouterr().err

    def test_faults_rejects_non_reference_backend(self, capsys):
        args = ["faults", "--backend", "parallel", "--workers", "2"]
        assert main(args) == 2
        assert "reference" in capsys.readouterr().err

    def test_bad_induce_generation_is_usage_error(self, capsys):
        args = ["run", "--supervised", "--induce", "kill:0@notanumber"]
        assert main(args) == 2

    def test_degraded_run_exits_3(self, capsys):
        args = [
            "run",
            "--supervised",
            "--rows", "16",
            "--cols", "16",
            "--generations", "8",
            "--checkpoint-interval", "4",
            "--restart-delay", "0.05",
            "--max-worker-restarts", "1",
            "--induce", "kill:1@5:lives=99",
            "--allow-degraded",
            "--json",
        ]
        assert main(args) == 3
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["outcome"] == "degraded"
        assert payload["degraded_shards"]


class TestTelemetry:
    def write_report(self, tmp_path, name="base.json"):
        path = tmp_path / name
        args = [
            "simulate", "--rows", "16", "--cols", "16", "--steps", "8",
            "--backend", "bitplane", "--telemetry", str(path),
        ]
        assert main(args) == 0
        return path

    def test_summarize_text(self, tmp_path, capsys):
        path = self.write_report(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "kernel.bitplane.generations = 8" in out
        assert "run: " in out

    def test_summarize_json(self, tmp_path, capsys):
        path = self.write_report(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", "summarize", "--json", str(path)]) == 0
        digest = json.loads(capsys.readouterr().out)
        assert digest["schema"] == "repro-telemetry"
        assert digest["counters"]["kernel.bitplane.generations"] == 8
        assert "buckets" not in next(iter(digest["timers"].values()))

    def test_supervised_run_writes_merged_v2_report(self, tmp_path, capsys):
        from repro.telemetry import TelemetryReport, validate_report

        path = tmp_path / "run.json"
        args = [
            "run", "--supervised",
            "--rows", "16", "--cols", "16", "--generations", "8",
            "--workers", "2", "--checkpoint-interval", "4",
            "--restart-delay", "0.05",
            "--telemetry", str(path), "--json",
        ]
        assert main(args) == 0
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == 2
        assert validate_report(payload) == []
        report = TelemetryReport.load(path)
        names = [p["name"] for p in report.processes]
        assert names == ["coordinator", "worker-0.0", "worker-1.0"]
        assert report.meta["command"] == "run"
        assert report.counters["shard.generations"] == 16

    def test_trace_default_output_path(self, tmp_path, capsys):
        path = self.write_report(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", "trace", str(path)]) == 0
        out = capsys.readouterr().out
        trace_path = tmp_path / "base.trace.json"
        assert str(trace_path) in out
        payload = json.loads(trace_path.read_text())
        assert payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ms"

    def test_trace_explicit_output(self, tmp_path, capsys):
        path = self.write_report(tmp_path)
        out_path = tmp_path / "custom.json"
        assert main(["telemetry", "trace", str(path), "-o", str(out_path)]) == 0
        assert json.loads(out_path.read_text())["traceEvents"]

    def test_diff_identical_reports_exits_zero(self, tmp_path, capsys):
        path = self.write_report(tmp_path)
        capsys.readouterr()
        assert main(["telemetry", "diff", str(path), str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_diff_flags_injected_slowdown(self, tmp_path, capsys):
        base = self.write_report(tmp_path)
        head = tmp_path / "head.json"
        payload = json.loads(base.read_text())
        for t in payload["timers"].values():
            t["mean_seconds"] *= 1.2
            t["total_seconds"] *= 1.2
        head.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main([
            "telemetry", "diff", str(base), str(head),
            "--fail-on-regression", "10",
        ]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_diff_threshold_above_slowdown_passes(self, tmp_path, capsys):
        base = self.write_report(tmp_path)
        head = tmp_path / "head.json"
        payload = json.loads(base.read_text())
        for t in payload["timers"].values():
            t["mean_seconds"] *= 1.2
            t["total_seconds"] *= 1.2
        head.write_text(json.dumps(payload))
        assert main([
            "telemetry", "diff", str(base), str(head),
            "--fail-on-regression", "30",
        ]) == 0

    def test_diff_missing_file_is_usage_error(self, tmp_path, capsys):
        path = self.write_report(tmp_path)
        assert main(["telemetry", "diff", str(path), str(tmp_path / "no.json")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro 1.0.0" in capsys.readouterr().out
