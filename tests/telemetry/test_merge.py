"""Tests for the multi-process telemetry merger.

The merged report must preserve every invariant the validator checks on
single-process reports (span parent < index, timer key sets) while
adding process attribution and clock alignment — so most tests build
real recorders, snapshot them, and validate the merged result.
"""

import pytest

from repro.telemetry import (
    InMemoryRecorder,
    SpoolWriter,
    StepClock,
    WorkerSpool,
    coordinator_process,
    load_worker_spools,
    merge_processes,
    merge_timers,
    spool_process,
    validate_report,
    worker_spool_path,
)
from repro.telemetry.merge import ProcessTelemetry


def worker_snapshot(start: float = 0.0) -> dict:
    rec = InMemoryRecorder(clock=StepClock(start=start, step=0.25))
    rec.counter("shard.generations").add(4)
    rec.timer("shard.step_seconds").record(0.004)
    rec.timer("shard.step_seconds").record(0.008)
    with rec.span("worker.run", generation=0):
        with rec.span("worker.step"):
            pass
    rec.event("worker.note", generation=4)
    return rec.snapshot()


def proc(name: str, *, offset: float = 0.0, start: float = 0.0) -> ProcessTelemetry:
    return ProcessTelemetry(
        name=name,
        kind="worker",
        snapshot=worker_snapshot(start),
        pid=100,
        worker=0,
        incarnation=0,
        backend="reference",
        clock_offset=offset,
    )


class TestMergeTimers:
    def test_counts_and_totals_sum(self):
        rec_a = InMemoryRecorder(clock=StepClock())
        rec_b = InMemoryRecorder(clock=StepClock())
        rec_a.timer("t").record(0.002)
        rec_b.timer("t").record(0.004)
        rec_b.timer("t").record(0.006)
        a = rec_a.snapshot()["timers"]["t"]
        b = rec_b.snapshot()["timers"]["t"]
        merged = merge_timers([a, b])
        assert merged["count"] == 3
        assert merged["total_seconds"] == pytest.approx(0.012)
        assert merged["min_seconds"] == pytest.approx(0.002)
        assert merged["max_seconds"] == pytest.approx(0.006)
        # mean is recomputed from the merged totals, never averaged
        assert merged["mean_seconds"] == pytest.approx(0.004)

    def test_buckets_add_elementwise(self):
        rec_a = InMemoryRecorder(clock=StepClock())
        rec_b = InMemoryRecorder(clock=StepClock())
        rec_a.timer("t").record(0.002)
        rec_b.timer("t").record(0.002)
        a = rec_a.snapshot()["timers"]["t"]
        b = rec_b.snapshot()["timers"]["t"]
        merged = merge_timers([a, b])
        assert sum(merged["buckets"].values()) == 2
        (bucket,) = set(a["buckets"]) | set(b["buckets"])
        assert merged["buckets"][bucket] == 2

    def test_single_input_is_identity(self):
        rec = InMemoryRecorder(clock=StepClock())
        rec.timer("t").record(0.003)
        t = rec.snapshot()["timers"]["t"]
        assert merge_timers([t]) == t


class TestMergeProcesses:
    def test_counters_sum_across_processes(self):
        report = merge_processes([proc("w0"), proc("w1")])
        assert report.counters["shard.generations"] == 8

    def test_merged_report_validates(self):
        report = merge_processes([proc("w0"), proc("w1")])
        assert validate_report(report.to_dict()) == []

    def test_spans_keep_parent_before_index(self):
        report = merge_processes([proc("w0"), proc("w1")])
        assert len(report.spans) == 4
        for span in report.spans:
            assert span["parent"] < span["index"]
            if span["parent"] >= 0:
                parent = report.spans[span["parent"]]
                assert parent["process"] == span["process"]

    def test_spans_carry_process_attribution(self):
        report = merge_processes([proc("w0"), proc("w1")])
        assert {s["process"] for s in report.spans} == {"w0", "w1"}

    def test_clock_offset_shifts_spans_and_events(self):
        plain = merge_processes([proc("w0")])
        shifted = merge_processes([proc("w0", offset=10.0)])
        for before, after in zip(plain.spans, shifted.spans):
            assert after["start"] == pytest.approx(before["start"] + 10.0)
            assert after["end"] == pytest.approx(before["end"] + 10.0)
        for before, after in zip(plain.events, shifted.events):
            assert after["time"] == pytest.approx(before["time"] + 10.0)

    def test_events_sort_by_aligned_time(self):
        # w1's raw clock starts earlier, but its offset pushes it later
        report = merge_processes(
            [proc("w0", offset=0.0, start=5.0), proc("w1", offset=100.0)]
        )
        times = [e["time"] for e in report.events]
        assert times == sorted(times)
        assert report.events[0]["process"] == "w0"

    def test_processes_entries_carry_identity_and_attribution(self):
        report = merge_processes([coordinator_process(InMemoryRecorder()), proc("w0")])
        names = [p["name"] for p in report.processes]
        assert names == ["coordinator", "w0"]
        worker = report.processes[1]
        assert worker["kind"] == "worker"
        assert worker["counters"]["shard.generations"] == 4
        assert worker["clock_offset_seconds"] == 0.0

    def test_meta_run_block_is_stamped(self):
        report = merge_processes([proc("w0")], meta={"command": "supervised_run"})
        assert report.meta["command"] == "supervised_run"
        assert "host" in report.meta["run"]


class TestSpoolRoundTrip:
    def write(self, directory, worker, incarnation, status="done"):
        path = worker_spool_path(directory, worker, incarnation)
        with SpoolWriter(path) as spool:
            spool.open_frame(
                worker=worker,
                incarnation=incarnation,
                pid=1000 + worker,
                backend="reference",
                shard={"index": worker, "row_start": 12 * worker,
                       "row_stop": 12 * (worker + 1),
                       "halo_top": 2 * min(worker, 1), "halo_bottom": 2},
                target_generation=12,
                restored_generation=None,
            )
            spool.snapshot_frame(worker_snapshot(), status=status, generation=12)
        return path

    def test_spool_process_identity(self, tmp_path):
        path = self.write(tmp_path, 1, 0)
        p = spool_process(WorkerSpool.load(path), clock_offset=0.25)
        assert p.name == "worker-1.0"
        assert p.worker == 1
        assert p.clock_offset == 0.25
        assert p.entry()["shard"]["row_start"] == 12

    def test_load_worker_spools_applies_offsets_by_incarnation(self, tmp_path):
        self.write(tmp_path, 0, 0)
        self.write(tmp_path, 1, 0)
        self.write(tmp_path, 1, 1)  # restarted worker: second spool file
        procs = load_worker_spools(tmp_path, {(0, 0): 0.5, (1, 1): 0.75})
        assert [p.name for p in procs] == ["worker-0.0", "worker-1.0", "worker-1.1"]
        assert [p.clock_offset for p in procs] == [0.5, 0.0, 0.75]

    def test_unreadable_spool_is_skipped(self, tmp_path):
        self.write(tmp_path, 0, 0)
        bad = worker_spool_path(tmp_path, 1, 0)
        bad.write_bytes(b"garbage, no open frame\n")
        procs = load_worker_spools(tmp_path)
        assert [p.name for p in procs] == ["worker-0.0"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_worker_spools(tmp_path / "absent") == []

    def test_end_to_end_spools_merge_and_validate(self, tmp_path):
        self.write(tmp_path, 0, 0)
        self.write(tmp_path, 1, 0)
        coordinator = InMemoryRecorder()
        coordinator.counter("supervisor.heartbeats").add(9)
        procs = [coordinator_process(coordinator)] + load_worker_spools(tmp_path)
        report = merge_processes(procs, meta={"command": "supervised_run"})
        assert validate_report(report.to_dict()) == []
        assert report.counters["shard.generations"] == 8
        assert report.counters["supervisor.heartbeats"] == 9
        assert len(report.processes) == 3
