"""Unit tests for the telemetry core: clocks, counters, timers, recorders."""

import pytest

from repro.telemetry import (
    MONOTONIC,
    NULL_RECORDER,
    PERF_COUNTER,
    Counter,
    InMemoryRecorder,
    NullRecorder,
    Recorder,
    StepClock,
    Timer,
)
from repro.telemetry.core import NUM_TIMER_BUCKETS


class TestStepClock:
    def test_starts_at_start_and_advances_per_read(self):
        clock = StepClock(start=10.0, step=0.5)
        assert clock() == 10.0
        assert clock() == 10.5
        assert clock() == 11.0

    def test_counts_reads(self):
        clock = StepClock(step=1.0)
        for _ in range(5):
            clock()
        assert clock.reads == 5

    def test_advance_jumps_without_counting_a_read(self):
        clock = StepClock(step=1.0)
        clock.advance(100.0)
        assert clock.reads == 0
        assert clock() == 100.0

    def test_zero_step_is_frozen_time(self):
        clock = StepClock(start=3.0)
        assert clock() == clock() == 3.0

    def test_real_clocks_are_callable_floats(self):
        assert isinstance(MONOTONIC(), float)
        assert isinstance(PERF_COUNTER(), float)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("x").value == 0

    def test_add_defaults_to_one(self):
        c = Counter("x")
        c.add()
        c.add()
        assert c.value == 2

    def test_add_n(self):
        c = Counter("x")
        c.add(5)
        c.add(37)
        assert c.value == 42

    def test_to_dict(self):
        c = Counter("engine.ticks")
        c.add(3)
        assert c.to_dict() == {"name": "engine.ticks", "value": 3}


class TestTimer:
    def test_scalar_accumulators(self):
        t = Timer("x")
        for s in (0.5, 0.25, 1.0):
            t.record(s)
        assert t.count == 3
        assert t.total == pytest.approx(1.75)
        assert t.min == pytest.approx(0.25)
        assert t.max == pytest.approx(1.0)
        assert t.mean == pytest.approx(1.75 / 3)

    def test_empty_timer_mean_is_zero(self):
        assert Timer("x").mean == 0.0

    def test_empty_timer_to_dict_min_is_zero(self):
        d = Timer("x").to_dict()
        assert d["count"] == 0
        assert d["min_seconds"] == 0.0
        assert d["buckets"] == {}

    def test_buckets_sum_to_count(self):
        t = Timer("x")
        for s in (1e-9, 1e-6, 1e-3, 1.0, 200.0):
            t.record(s)
        assert sum(t.buckets) == t.count == 5

    def test_huge_duration_lands_in_last_bucket(self):
        t = Timer("x")
        t.record(1e6)  # ~11 days; way past the ~134 s top bucket
        assert t.buckets[NUM_TIMER_BUCKETS - 1] == 1

    def test_to_dict_materializes_only_nonempty_buckets(self):
        t = Timer("x")
        t.record(1e-6)
        d = t.to_dict()
        assert len(d["buckets"]) == 1
        [(le_ns, n)] = d["buckets"].items()
        assert n == 1
        assert int(le_ns) >= 1_000  # upper bound covers the 1 µs sample


class TestNullRecorder:
    def test_satisfies_the_protocol(self):
        assert isinstance(NULL_RECORDER, Recorder)

    def test_clock_is_constant_zero(self):
        assert NULL_RECORDER.clock() == 0.0
        assert NULL_RECORDER.clock() == 0.0

    def test_counters_are_fresh_and_functional(self):
        a = NULL_RECORDER.counter("x")
        b = NULL_RECORDER.counter("x")
        assert a is not b  # unregistered handles
        a.add(3)
        assert a.value == 3  # derived statistics still work
        assert b.value == 0

    def test_timer_is_a_shared_noop(self):
        t = NULL_RECORDER.timer("x")
        assert t is NULL_RECORDER.timer("y")
        t.record(5.0)
        assert t.count == 0

    def test_span_is_a_noop_context_manager(self):
        with NULL_RECORDER.span("x", tick=1, generation=2):
            pass  # nothing recorded, nothing raised

    def test_event_is_discarded(self):
        NULL_RECORDER.event("x", detail="ignored")

    def test_not_enabled(self):
        assert NullRecorder.enabled is False
        assert InMemoryRecorder.enabled is True


class TestInMemoryRecorder:
    def test_satisfies_the_protocol(self):
        assert isinstance(InMemoryRecorder(), Recorder)

    def test_counters_register_by_name(self):
        rec = InMemoryRecorder()
        assert rec.counter("x") is rec.counter("x")
        rec.counter("x").add(2)
        assert rec.snapshot()["counters"] == {"x": 2}

    def test_timers_register_by_name(self):
        rec = InMemoryRecorder()
        assert rec.timer("x") is rec.timer("x")
        rec.timer("x").record(0.5)
        assert rec.snapshot()["timers"]["x"]["count"] == 1

    def test_clock_is_injectable(self):
        clock = StepClock(step=1.0)
        rec = InMemoryRecorder(clock=clock)
        with rec.span("x"):
            pass
        assert clock.reads == 2  # span start + span end
        assert rec.spans[0].seconds == pytest.approx(1.0)

    def test_span_nesting_tracks_parent_and_depth(self):
        rec = InMemoryRecorder(clock=StepClock(step=1.0))
        with rec.span("outer"):
            with rec.span("inner"):
                pass
            with rec.span("sibling"):
                pass
        outer, inner, sibling = rec.spans
        assert (outer.parent, outer.depth) == (-1, 0)
        assert (inner.parent, inner.depth) == (outer.index, 1)
        assert (sibling.parent, sibling.depth) == (outer.index, 1)
        assert list(rec.open_spans()) == []

    def test_span_attribution_round_trips(self):
        rec = InMemoryRecorder(clock=StepClock(step=1.0))
        with rec.span("x", tick=7, generation=3):
            pass
        d = rec.spans[0].to_dict()
        assert d["tick"] == 7
        assert d["generation"] == 3

    def test_open_span_has_zero_seconds(self):
        rec = InMemoryRecorder(clock=StepClock(step=1.0))
        cm = rec.span("x")
        cm.__enter__()
        assert rec.spans[0].seconds == 0.0
        assert list(rec.open_spans()) == [rec.spans[0]]
        cm.__exit__(None, None, None)

    def test_leaked_inner_span_does_not_corrupt_the_stack(self):
        rec = InMemoryRecorder(clock=StepClock(step=1.0))
        outer = rec.span("outer")
        inner = rec.span("inner")
        outer.__exit__(None, None, None)  # out of order: outer closed first
        inner.__exit__(None, None, None)
        assert list(rec.open_spans()) == []
        assert all(s.end is not None for s in rec.spans)

    def test_events_carry_name_time_and_fields(self):
        rec = InMemoryRecorder(clock=StepClock(start=5.0))
        rec.event("supervisor.restart", worker=1, reason="died")
        [event] = rec.events
        assert event["name"] == "supervisor.restart"
        assert event["time"] == 5.0
        assert event["worker"] == 1
        assert event["reason"] == "died"

    def test_snapshot_shape(self):
        snap = InMemoryRecorder().snapshot()
        assert sorted(snap) == ["counters", "events", "spans", "timers"]

    def test_snapshot_sorts_names(self):
        rec = InMemoryRecorder()
        rec.counter("b").add(1)
        rec.counter("a").add(1)
        assert list(rec.snapshot()["counters"]) == ["a", "b"]
