"""Property tests: span-tree invariants, attribution, histogram sums.

The span tree is the part of the telemetry spine with real structural
invariants (parent indices point backwards, depths chain, intervals
nest), so those are checked over random nesting programs rather than a
handful of hand-written shapes.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry import InMemoryRecorder, StepClock, validate_report
from repro.telemetry.report import TelemetryReport

#: A random nesting program: a tree of span names (each node opens a
#: span, children run inside it, then it closes).
span_trees = st.recursive(
    st.tuples(st.sampled_from(["run", "pass", "tick", "halo"]), st.just([])),
    lambda children: st.tuples(
        st.sampled_from(["run", "pass", "tick", "halo"]),
        st.lists(children, max_size=3),
    ),
    max_leaves=8,
)

attributions = st.one_of(st.none(), st.integers(min_value=0, max_value=10**6))


def execute(rec, tree, tick=None, generation=None):
    name, children = tree
    with rec.span(name, tick=tick, generation=generation):
        for child in children:
            execute(rec, child, tick=tick, generation=generation)


@given(forest=st.lists(span_trees, max_size=4))
def test_span_tree_invariants(forest):
    rec = InMemoryRecorder(clock=StepClock(step=1.0))
    for tree in forest:
        execute(rec, tree)

    assert list(rec.open_spans()) == []
    for span in rec.spans:
        # Parents precede children and depths chain through the parent.
        assert -1 <= span.parent < span.index
        if span.parent == -1:
            assert span.depth == 0
        else:
            parent = rec.spans[span.parent]
            assert span.depth == parent.depth + 1
            # Child intervals nest strictly inside the parent's interval
            # (strict because the StepClock advances on every read).
            assert parent.start < span.start
            assert span.end is not None and parent.end is not None
            assert span.end < parent.end

    # Sibling/descendant intervals never interleave: spans are entered in
    # index order, so starts are strictly increasing under a StepClock.
    starts = [s.start for s in rec.spans]
    assert starts == sorted(starts)
    assert len(set(starts)) == len(starts)


@given(forest=st.lists(span_trees, max_size=3))
def test_span_snapshot_always_validates(forest):
    rec = InMemoryRecorder(clock=StepClock(step=1.0))
    for tree in forest:
        execute(rec, tree)
    payload = TelemetryReport.from_recorder(rec).to_dict()
    assert validate_report(payload) == []


@given(tree=span_trees, tick=attributions, generation=attributions)
def test_attribution_is_preserved_verbatim(tree, tick, generation):
    rec = InMemoryRecorder(clock=StepClock(step=1.0))
    execute(rec, tree, tick=tick, generation=generation)
    for span in rec.spans:
        assert span.tick == tick
        assert span.generation == generation
        d = span.to_dict()
        assert d["tick"] == tick and d["generation"] == generation


@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=1
    )
)
def test_timer_histogram_matches_scalar_accumulators(values):
    rec = InMemoryRecorder(clock=StepClock())
    timer = rec.timer("t")
    for v in values:
        timer.record(v)
    assert timer.count == len(values)
    assert timer.min == min(values)
    assert timer.max == max(values)
    assert abs(timer.total - sum(values)) <= 1e-9 * max(1.0, sum(values))
    assert sum(timer.buckets) == len(values)
    d = timer.to_dict()
    assert sum(d["buckets"].values()) == len(values)


@given(increments=st.lists(st.integers(min_value=0, max_value=10**9)))
def test_counter_is_the_sum_of_increments(increments):
    rec = InMemoryRecorder(clock=StepClock())
    for n in increments:
        rec.counter("c").add(n)
    assert rec.counter("c").value == sum(increments)
