"""Tests for the repro.telemetry instrumentation spine."""
