"""Schema round-trip and validation tests for TelemetryReport v1/v2."""

import json

import pytest

from repro.telemetry import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    SUPPORTED_VERSIONS,
    InMemoryRecorder,
    StepClock,
    TelemetryError,
    TelemetryReport,
    check_report,
    run_metadata,
    validate_report,
)
from repro.util.errors import ReproError


def sample_recorder() -> InMemoryRecorder:
    rec = InMemoryRecorder(clock=StepClock(step=0.25))
    rec.counter("engine.ticks").add(128)
    rec.counter("engine.passes").add(4)
    rec.timer("kernel.bitplane.tick_seconds").record(0.001)
    rec.timer("kernel.bitplane.tick_seconds").record(0.002)
    with rec.span("engine.run"):
        with rec.span("engine.pass", tick=0, generation=0):
            pass
    rec.event("supervisor.spawn", worker=0)
    return rec


def sample_payload() -> dict:
    return TelemetryReport.from_recorder(
        sample_recorder(), meta={"command": "simulate"}
    ).to_dict()


class TestRoundTrip:
    def test_to_dict_carries_schema_identity(self):
        payload = sample_payload()
        assert payload["schema"] == SCHEMA_NAME
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_valid_by_construction(self):
        assert validate_report(sample_payload()) == []

    def test_write_json_load_round_trips(self, tmp_path):
        report = TelemetryReport.from_recorder(
            sample_recorder(), meta={"command": "simulate", "rows": 16}
        )
        path = tmp_path / "telemetry.json"
        report.write_json(path)
        loaded = TelemetryReport.load(path)
        assert loaded.to_dict() == report.to_dict()

    def test_written_file_is_stable_json(self, tmp_path):
        path = tmp_path / "telemetry.json"
        TelemetryReport.from_recorder(sample_recorder()).write_json(path)
        text = path.read_text()
        assert text.endswith("\n")
        payload = json.loads(text)
        assert payload == json.loads(json.dumps(payload, sort_keys=True))

    def test_from_dict_validates(self):
        with pytest.raises(TelemetryError, match="schema"):
            TelemetryReport.from_dict({"schema": "nope"})

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(TelemetryError, match="cannot read"):
            TelemetryReport.load(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(TelemetryError, match="cannot read"):
            TelemetryReport.load(tmp_path / "absent.json")


class TestValidation:
    def test_non_mapping_payload(self):
        assert validate_report([1, 2]) == ["report must be a mapping, got list"]

    def test_wrong_schema_name(self):
        payload = sample_payload()
        payload["schema"] = "other"
        assert any("schema is" in p for p in validate_report(payload))

    def test_wrong_schema_version(self):
        payload = sample_payload()
        payload["schema_version"] = 99
        assert any("schema_version" in p for p in validate_report(payload))

    @pytest.mark.parametrize("bad", [-1, 1.5, True, "3"])
    def test_bad_counter_values(self, bad):
        payload = sample_payload()
        payload["counters"]["engine.ticks"] = bad
        assert any("non-negative int" in p for p in validate_report(payload))

    def test_timer_missing_keys(self):
        payload = sample_payload()
        del payload["timers"]["kernel.bitplane.tick_seconds"]["buckets"]
        assert any("missing key(s): buckets" in p for p in validate_report(payload))

    def test_span_forward_parent_reference(self):
        payload = sample_payload()
        payload["spans"][0]["parent"] = 5  # must reference an earlier index
        assert any("earlier span" in p for p in validate_report(payload))

    def test_span_missing_keys(self):
        payload = sample_payload()
        del payload["spans"][0]["seconds"]
        assert any("missing key(s): seconds" in p for p in validate_report(payload))

    def test_event_without_name(self):
        payload = sample_payload()
        payload["events"].append({"worker": 1})
        assert any("event [1]" in p for p in validate_report(payload))

    def test_meta_must_be_mapping(self):
        payload = sample_payload()
        payload["meta"] = ["not", "a", "mapping"]
        assert "meta must be a mapping" in validate_report(payload)

    def test_all_problems_reported_at_once(self):
        payload = sample_payload()
        payload["schema_version"] = 99
        payload["counters"]["engine.ticks"] = -1
        payload["spans"] = "nope"
        problems = validate_report(payload)
        assert len(problems) == 3

    def test_check_report_raises_listing_problems(self):
        with pytest.raises(TelemetryError, match="schema.*; .*counters"):
            check_report({"schema": "x"})

    def test_telemetry_error_is_a_repro_error(self):
        assert issubclass(TelemetryError, ReproError)


class TestSummaries:
    def test_total_seconds_sums_by_prefix(self):
        rec = InMemoryRecorder(clock=StepClock())
        rec.timer("kernel.bitplane.tick_seconds").record(1.0)
        rec.timer("kernel.parallel.halo.tile00_seconds").record(2.0)
        rec.timer("bench.kernels.x.pass_seconds").record(4.0)
        report = TelemetryReport.from_recorder(rec)
        assert report.total_seconds("kernel.") == pytest.approx(3.0)
        assert report.total_seconds("bench.") == pytest.approx(4.0)
        assert report.total_seconds("nothing.") == 0.0

    def test_summary_lines_cover_every_section(self):
        report = TelemetryReport.from_recorder(
            sample_recorder(), meta={"command": "simulate"}
        )
        text = "\n".join(report.summary_lines())
        assert f"schema {SCHEMA_NAME} v{SCHEMA_VERSION}" in text
        assert "command=simulate" in text
        assert "engine.ticks = 128" in text
        assert "kernel.bitplane.tick_seconds: n=2" in text
        assert "spans: 2" in text
        assert "engine.run" in text
        assert "(1 nested)" in text
        assert "supervisor.spawn x1" in text

    def test_summary_of_empty_report_names_every_absent_section(self):
        report = TelemetryReport.from_recorder(InMemoryRecorder(clock=StepClock()))
        lines = report.summary_lines()
        assert lines[0].startswith("telemetry report")
        # No silent sections: zero spans render an explicit marker rather
        # than disappearing (the old rendering made "no spans" ambiguous
        # with "spans not recorded at this schema version").
        assert "  spans: none recorded" in lines
        # Run metadata is always stamped, so the empty report still
        # carries provenance.
        assert any(line.startswith("  run: ") for line in lines)
        assert len(lines) == 3

    def test_summary_json_digest(self):
        report = TelemetryReport.from_recorder(
            sample_recorder(), meta={"command": "simulate"}
        )
        digest = report.summary_json()
        assert digest["schema"] == SCHEMA_NAME
        assert digest["schema_version"] == SCHEMA_VERSION
        assert digest["counters"]["engine.ticks"] == 128
        timer = digest["timers"]["kernel.bitplane.tick_seconds"]
        assert timer["count"] == 2
        assert "buckets" not in timer
        roots = digest["spans"]["roots"]
        assert roots[0]["name"] == "engine.run"
        assert roots[0]["nested"] == 1
        assert digest["events"]["by_name"]["supervisor.spawn"] == 1
        assert json.dumps(digest)  # JSON-serializable end to end


class TestRunMetadata:
    def test_run_metadata_fields(self):
        meta = run_metadata(producer="test")
        assert set(meta) == {
            "host", "pid", "python", "cpu_count", "repro_version", "producer",
        }
        assert meta["cpu_count"] >= 1

    def test_every_report_is_stamped(self):
        payload = sample_payload()
        run = payload["meta"]["run"]
        for key in ("host", "pid", "python", "cpu_count", "repro_version"):
            assert key in run

    def test_explicit_run_meta_wins(self):
        rec = InMemoryRecorder(clock=StepClock())
        report = TelemetryReport.from_recorder(
            rec, meta={"run": {"host": "h", "pid": 1, "python": "3",
                               "cpu_count": 2, "repro_version": "0"}}
        )
        assert report.meta["run"]["host"] == "h"

    def test_v2_requires_run_block(self):
        payload = sample_payload()
        del payload["meta"]["run"]
        assert any("meta.run" in p for p in validate_report(payload))

    def test_v2_requires_complete_run_block(self):
        payload = sample_payload()
        del payload["meta"]["run"]["host"]
        assert any("missing key(s): host" in p for p in validate_report(payload))

    def test_v1_tolerates_absent_run_block(self):
        payload = sample_payload()
        payload["schema_version"] = 1
        del payload["meta"]["run"]
        del payload["processes"]
        assert validate_report(payload) == []

    def test_v1_payload_still_loads(self):
        payload = sample_payload()
        payload["schema_version"] = 1
        del payload["meta"]["run"]
        del payload["processes"]
        report = TelemetryReport.from_dict(payload)
        assert report.version == 1
        assert report.to_dict()["schema_version"] == 1
        assert "processes" not in report.to_dict()

    def test_supported_versions(self):
        assert SCHEMA_VERSION in SUPPORTED_VERSIONS
        assert 1 in SUPPORTED_VERSIONS


class TestProcessesValidation:
    def test_processes_must_be_a_list(self):
        payload = sample_payload()
        payload["processes"] = {"not": "a list"}
        assert any("processes" in p for p in validate_report(payload))

    def test_process_entries_need_a_name(self):
        payload = sample_payload()
        payload["processes"] = [{"kind": "worker"}]
        assert any("name" in p for p in validate_report(payload))

    def test_well_formed_process_entry_passes(self):
        payload = sample_payload()
        payload["processes"] = [
            {"name": "worker-0.0", "kind": "worker", "pid": 7,
             "counters": {"shard.generations": 4}, "timers": {}},
        ]
        assert validate_report(payload) == []
