"""Recording must never change the physics: bit-identity on vs off.

Every instrumented layer promises that attaching a collecting recorder
is a pure side channel.  These tests run each kernel backend and each
registered engine twice — once under the default null recorder, once
under an ``InMemoryRecorder`` — and require bit-identical final states,
while also checking that the instrumented run really did record
something (so the identity is not vacuous).
"""

import numpy as np
import pytest

from repro import machines
from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.flows import uniform_random_state
from repro.lgca.hpp import HPPModel
from repro.runtime import ModelSpec
from repro.telemetry import InMemoryRecorder

GENS = 8

BACKENDS = [
    ("reference", {}),
    ("bitplane", {}),
    ("parallel", {"workers": 2}),
]


def evolve(spec, backend, recorder=None, **kw):
    auto = LatticeGasAutomaton(
        spec.build(),
        spec.initial_state(0.3, 42),
        backend=backend,
        recorder=recorder,
        **kw,
    )
    auto.run(GENS)
    return auto.state


class TestKernelBackends:
    @pytest.mark.parametrize("kind", ["hpp", "fhp6"])
    @pytest.mark.parametrize(
        "backend,kw", BACKENDS, ids=[b for b, _ in BACKENDS]
    )
    def test_recording_is_bit_identical(self, kind, backend, kw):
        spec = ModelSpec(kind=kind, rows=24, cols=16, boundary="periodic")
        rec = InMemoryRecorder()
        silent = evolve(spec, backend, **kw)
        recorded = evolve(spec, backend, recorder=rec, **kw)
        assert np.array_equal(silent, recorded)
        # The instrumented run actually measured the kernel.
        assert rec.counter(f"kernel.{backend}.generations").value == GENS
        assert rec.timers  # at least one kernel timer collected

    def test_parallel_reports_per_tile_halo_timers(self):
        spec = ModelSpec(kind="hpp", rows=32, cols=16, boundary="periodic")
        rec = InMemoryRecorder()
        evolve(spec, "parallel", recorder=rec, workers=2)
        halo = [n for n in rec.timers if ".halo." in n]
        step = [n for n in rec.timers if ".step." in n]
        assert halo and step


class TestEngines:
    ROWS, COLS = 16, 16

    def frame(self):
        return uniform_random_state(
            self.ROWS, self.COLS, 4, 0.3, np.random.default_rng(7)
        )

    @pytest.mark.parametrize("name", machines.names())
    def test_recording_is_bit_identical(self, name):
        model = HPPModel(self.ROWS, self.COLS, boundary="null")
        frame = self.frame()
        rec = InMemoryRecorder()
        silent_state, silent_stats = machines.create(name, model).run(frame, GENS)
        state, stats = machines.create(name, model, recorder=rec).run(frame, GENS)
        assert np.array_equal(silent_state, state)
        assert stats.to_dict() == silent_stats.to_dict()
        # Stats were derived from the recorder's counters.
        assert rec.counter("engine.ticks").value == stats.ticks
        assert rec.counter("engine.site_updates").value == stats.site_updates
        spans = [s.name for s in rec.spans]
        assert "engine.run" in spans and "engine.pass" in spans
