"""Tests for the perf-regression differ.

The headline acceptance case from the subsystem spec: a synthetic 20%
timer slowdown must be detected and flagged past a 10% threshold, and
counters must never gate (heartbeats and restarts are timing-dependent
by design).
"""

import copy

import pytest

from repro.telemetry import (
    InMemoryRecorder,
    Metric,
    MetricDelta,
    StepClock,
    TelemetryError,
    TelemetryReport,
    diff_payloads,
    extract_metrics,
    format_deltas,
)
from repro.telemetry.diff import load_payload


def telemetry_payload() -> dict:
    rec = InMemoryRecorder(clock=StepClock(step=0.5))
    rec.counter("supervisor.heartbeats").add(36)
    for _ in range(8):
        rec.timer("shard.step_seconds").record(0.010)
    rec.timer("tiny.noise_seconds").record(0.000002)
    return TelemetryReport.from_recorder(rec, meta={"command": "run"}).to_dict()


def slowed(payload: dict, factor: float) -> dict:
    slow = copy.deepcopy(payload)
    for t in slow["timers"].values():
        t["mean_seconds"] *= factor
        t["total_seconds"] *= factor
    return slow


def bench_kernels_payload(rate: float) -> dict:
    return {
        "schema": "repro/bench-kernels/v3",
        "results": [
            {"model": "fhp6", "rows": 512, "cols": 512, "backend": "bitplane",
             "updates_per_second": rate},
            {"model": "fhp6", "rows": 512, "cols": 512, "backend": "parallel",
             "workers": 2, "updates_per_second": rate * 1.5},
        ],
    }


def bench_supervisor_payload(direct: float, supervised: float) -> dict:
    row = {"rows": 256, "cols": 256, "backend": "bitplane", "workers": 2,
           "direct_rate": direct, "supervised_rate": supervised}
    worse = dict(row, direct_rate=direct * 0.9, supervised_rate=supervised * 0.9)
    return {"schema": "repro/bench-supervisor/v1", "results": [worse, row]}


class TestChangeDirection:
    def test_timer_slowdown_is_positive_change(self):
        d = MetricDelta(name="t", base=1.0, head=1.2, unit="s",
                        higher_is_better=False, gates=True)
        assert d.change_percent == pytest.approx(20.0)
        assert d.regression(10.0)
        assert not d.regression(25.0)

    def test_rate_drop_is_positive_change(self):
        d = MetricDelta(name="r", base=100.0, head=80.0, unit="u/s",
                        higher_is_better=True, gates=True)
        assert d.change_percent == pytest.approx(20.0)
        assert d.regression(10.0)

    def test_improvement_never_regresses(self):
        d = MetricDelta(name="t", base=1.0, head=0.5, unit="s",
                        higher_is_better=False, gates=True)
        assert d.change_percent == pytest.approx(-50.0)
        assert not d.regression(0.0)

    def test_zero_base_is_not_a_regression(self):
        d = MetricDelta(name="t", base=0.0, head=5.0, unit="s",
                        higher_is_better=False, gates=True)
        assert d.change_percent == 0.0


class TestTelemetrySchema:
    def test_twenty_percent_slowdown_detected_at_ten(self):
        base = telemetry_payload()
        deltas = diff_payloads(base, slowed(base, 1.2))
        regressions = [d for d in deltas if d.regression(10.0)]
        assert any(d.name == "timer:shard.step_seconds" for d in regressions)

    def test_identical_reports_have_no_regressions(self):
        base = telemetry_payload()
        deltas = diff_payloads(base, copy.deepcopy(base))
        assert deltas
        assert not any(d.regression(0.0) for d in deltas)

    def test_counters_never_gate(self):
        base = telemetry_payload()
        head = copy.deepcopy(base)
        head["counters"]["supervisor.heartbeats"] = 360  # 10x: noisy, fine
        deltas = diff_payloads(base, head)
        counter = next(d for d in deltas if d.name.startswith("counter:"))
        assert not counter.gates
        assert not counter.regression(0.0)

    def test_min_seconds_filters_micro_timers_from_the_gate(self):
        base = telemetry_payload()
        head = slowed(base, 3.0)
        deltas = diff_payloads(base, head, min_seconds=0.001)
        tiny = next(d for d in deltas if d.name == "timer:tiny.noise_seconds")
        big = next(d for d in deltas if d.name == "timer:shard.step_seconds")
        assert not tiny.regression(10.0)
        assert big.regression(10.0)

    def test_zero_count_timers_are_skipped(self):
        base = telemetry_payload()
        base["timers"]["idle"] = {"name": "idle", "count": 0, "total_seconds": 0.0,
                                  "min_seconds": 0.0, "max_seconds": 0.0,
                                  "mean_seconds": 0.0, "buckets": {}}
        _, metrics = extract_metrics(base)
        assert "timer:idle" not in metrics


class TestBenchSchemas:
    def test_bench_kernels_rates_gate_on_throughput_loss(self):
        deltas = diff_payloads(
            bench_kernels_payload(1e6), bench_kernels_payload(0.8e6)
        )
        assert all(d.change_percent == pytest.approx(20.0) for d in deltas)
        assert all(d.regression(10.0) for d in deltas)

    def test_bench_kernels_keys_include_workers(self):
        _, metrics = extract_metrics(bench_kernels_payload(1e6))
        assert "rate:fhp6.512x512.parallel.w2" in metrics
        assert "rate:fhp6.512x512.bitplane" in metrics

    def test_bench_supervisor_takes_best_of_repeats(self):
        _, metrics = extract_metrics(bench_supervisor_payload(1e6, 0.9e6))
        assert metrics["rate:256x256.bitplane.w2.direct"].value == pytest.approx(1e6)
        assert metrics["rate:256x256.bitplane.w2.supervised"].value == pytest.approx(0.9e6)

    def test_cross_schema_family_diff_is_rejected(self):
        with pytest.raises(TelemetryError, match="cannot diff"):
            diff_payloads(bench_kernels_payload(1e6), telemetry_payload())

    def test_same_family_different_version_diffs(self):
        head = bench_kernels_payload(1e6)
        head["schema"] = "repro/bench-kernels/v4"
        assert diff_payloads(bench_kernels_payload(1e6), head)

    def test_unknown_schema_is_rejected(self):
        with pytest.raises(TelemetryError, match="schema"):
            extract_metrics({"schema": "mystery/v1"})
        with pytest.raises(TelemetryError, match="no 'schema'"):
            extract_metrics({"results": []})
        with pytest.raises(TelemetryError, match="JSON object"):
            extract_metrics([1, 2, 3])


class TestFormatting:
    def test_regressions_are_flagged_and_counted(self):
        base = telemetry_payload()
        deltas = diff_payloads(base, slowed(base, 1.5))
        lines = format_deltas(deltas, 10.0)
        text = "\n".join(lines)
        assert "REGRESSION" in text
        assert "(not gated)" in text  # counters
        assert lines[-1].startswith(f"{len(deltas)} metric(s) compared")

    def test_one_sided_metrics_are_listed(self):
        lines = format_deltas([], 10.0, base_only=["timer:gone"],
                              head_only=["timer:new"])
        text = "\n".join(lines)
        assert "timer:gone: only in BASE" in text
        assert "timer:new: only in HEAD" in text


class TestLoadPayload:
    def test_reads_json(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text('{"schema": "repro-telemetry"}')
        assert load_payload(path) == {"schema": "repro-telemetry"}

    def test_errors_are_telemetry_errors(self, tmp_path):
        with pytest.raises(TelemetryError, match="cannot read"):
            load_payload(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(TelemetryError, match="cannot read"):
            load_payload(bad)


def test_metric_defaults_gate():
    assert Metric(name="m", value=1.0, unit="s", higher_is_better=False).gates
