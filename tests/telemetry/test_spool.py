"""Crash-safety tests for the per-worker telemetry spool.

The spool follows the CheckpointStore discipline: append-only frames,
fsync on every write, and tolerance for the torn tail a killed process
leaves behind.  These tests corrupt spool files byte-by-byte and check
that every intact prefix still loads.
"""

import json

import pytest

from repro.telemetry import (
    InMemoryRecorder,
    SpoolWriter,
    StepClock,
    TelemetryError,
    WorkerSpool,
    read_frames,
    worker_spool_path,
)


def snapshot(generations: int = 4) -> dict:
    rec = InMemoryRecorder(clock=StepClock(step=0.5))
    rec.counter("shard.generations").add(generations)
    rec.timer("shard.step_seconds").record(0.002)
    with rec.span("worker.run", generation=0):
        pass
    rec.event("worker.note", generation=generations)
    return rec.snapshot()


def write_spool(path, *, frames: int = 2) -> None:
    with SpoolWriter(path) as spool:
        spool.open_frame(
            worker=0,
            incarnation=0,
            pid=1234,
            backend="reference",
            shard={"index": 0, "row_start": 0, "row_stop": 12,
                   "halo_top": 0, "halo_bottom": 2},
            target_generation=12,
            restored_generation=None,
        )
        for i in range(1, frames + 1):
            status = "done" if i == frames else "checkpoint"
            spool.snapshot_frame(snapshot(4 * i), status=status, generation=4 * i)


class TestSpoolWriter:
    def test_path_naming_is_per_incarnation(self, tmp_path):
        assert worker_spool_path(tmp_path, 3, 1).name == "worker-03.01.jsonl"
        assert (
            worker_spool_path(tmp_path, 3, 0).name
            != worker_spool_path(tmp_path, 3, 1).name
        )

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "spool.jsonl"
        write_spool(path)
        assert path.exists()

    def test_frames_are_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "spool.jsonl"
        write_spool(path, frames=2)
        lines = path.read_bytes().decode().splitlines()
        assert len(lines) == 3  # open + 2 snapshots
        for line in lines:
            frame = json.loads(line)
            assert {"kind", "crc", "body"} <= set(frame)

    def test_rejects_non_serializable_body(self, tmp_path):
        with SpoolWriter(tmp_path / "spool.jsonl") as spool:
            with pytest.raises(TelemetryError, match="serial"):
                spool.snapshot_frame({"bad": object()}, status="x", generation=0)


class TestReadFrames:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "spool.jsonl"
        write_spool(path, frames=2)
        frames, skipped = read_frames(path)
        assert skipped == 0
        assert [f.kind for f in frames] == ["open", "snapshot", "snapshot"]

    def test_torn_tail_is_dropped_silently(self, tmp_path):
        """A killed worker leaves a partial final line; every intact
        frame before it must still load, and the tear is not an error."""
        path = tmp_path / "spool.jsonl"
        write_spool(path, frames=2)
        whole = path.read_bytes()
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "snapshot", "crc": 1, "bo')
        frames, skipped = read_frames(path)
        assert [f.kind for f in frames] == ["open", "snapshot", "snapshot"]
        assert path.read_bytes().startswith(whole)
        assert skipped == 0

    def test_every_truncation_point_yields_an_intact_prefix(self, tmp_path):
        path = tmp_path / "spool.jsonl"
        write_spool(path, frames=2)
        data = path.read_bytes()
        complete = data.count(b"\n")
        for cut in range(len(data)):
            torn = tmp_path / "torn.jsonl"
            torn.write_bytes(data[:cut])
            frames, _ = read_frames(torn)
            assert len(frames) == data[:cut].count(b"\n")
        assert complete == 3

    def test_interior_corruption_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "spool.jsonl"
        write_spool(path, frames=3)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = b'{"kind": "snapshot", "crc": 0, "body": {}}\n'  # bad crc
        path.write_bytes(b"".join(lines))
        frames, skipped = read_frames(path)
        assert skipped == 1
        assert [f.kind for f in frames] == ["open", "snapshot", "snapshot"]

    def test_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(TelemetryError):
            read_frames(tmp_path / "absent.jsonl")


class TestWorkerSpool:
    def test_load_takes_the_last_snapshot(self, tmp_path):
        path = tmp_path / "spool.jsonl"
        write_spool(path, frames=3)
        spool = WorkerSpool.load(path)
        assert spool.status == "done"
        assert spool.generation == 12
        assert spool.meta["worker"] == 0
        assert spool.meta["backend"] == "reference"
        assert spool.snapshot["counters"]["shard.generations"] == 12

    def test_load_survives_torn_final_snapshot(self, tmp_path):
        """Mid-write kill: the previous snapshot (the last checkpoint's)
        wins — exactly the state the restarted worker resumes from."""
        path = tmp_path / "spool.jsonl"
        write_spool(path, frames=2)
        data = path.read_bytes()
        lines = data.splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        spool = WorkerSpool.load(path)
        assert spool.status == "checkpoint"
        assert spool.generation == 4

    def test_load_without_open_frame_is_an_error(self, tmp_path):
        path = tmp_path / "spool.jsonl"
        write_spool(path)
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[1:]))
        with pytest.raises(TelemetryError, match="open"):
            WorkerSpool.load(path)

    def test_open_frame_only_spool_has_no_snapshot(self, tmp_path):
        """A worker killed before its first checkpoint leaves identity
        but no data — loadable, with an empty snapshot."""
        path = tmp_path / "spool.jsonl"
        with SpoolWriter(path) as spool:
            spool.open_frame(worker=1, incarnation=0, pid=1, backend="bitplane",
                             shard={}, target_generation=8,
                             restored_generation=None)
        loaded = WorkerSpool.load(path)
        assert loaded.meta["worker"] == 1
        assert loaded.snapshot is None
        assert loaded.status is None
