"""Tests for the Chrome trace-event exporter.

The contract: every generated trace is loadable by chrome://tracing and
Perfetto, which in practice means balanced ``B``/``E`` pairs per
process/thread in document order, microsecond timestamps, and the JSON
object form with ``traceEvents``.
"""

import json

import pytest

from repro.telemetry import (
    InMemoryRecorder,
    StepClock,
    TelemetryReport,
    merge_processes,
    trace_dict,
    trace_events,
    write_trace,
)
from repro.telemetry.merge import ProcessTelemetry


def single_process_report() -> TelemetryReport:
    rec = InMemoryRecorder(clock=StepClock(step=0.001))
    rec.counter("engine.ticks").add(7)
    with rec.span("outer", tick=0):
        with rec.span("inner"):
            pass
        with rec.span("inner"):
            pass
    rec.event("marker", worker=1)
    return TelemetryReport.from_recorder(rec, meta={"command": "test"})


def merged_report() -> TelemetryReport:
    procs = []
    for i in range(2):
        rec = InMemoryRecorder(clock=StepClock(step=0.001))
        with rec.span("worker.run", generation=0):
            with rec.span("worker.step"):
                pass
        rec.event("worker.note", generation=4)
        procs.append(
            ProcessTelemetry(
                name=f"worker-{i}.0",
                kind="worker",
                snapshot=rec.snapshot(),
                pid=100 + i,
                worker=i,
                incarnation=0,
                backend="reference",
                clock_offset=float(i),
            )
        )
    return merge_processes(procs, meta={"command": "supervised_run"})


def balanced(events) -> bool:
    """B/E balance with LIFO name matching, per (pid, tid) track."""
    stacks: dict[tuple, list] = {}
    for e in events:
        stack = stacks.setdefault((e.get("pid"), e.get("tid")), [])
        if e["ph"] == "B":
            stack.append(e["name"])
        elif e["ph"] == "E":
            if not stack or stack.pop() != e["name"]:
                return False
    return all(not s for s in stacks.values())


class TestTraceEvents:
    def test_duration_events_balance(self):
        events = trace_events(single_process_report())
        assert balanced(events)
        assert sum(1 for e in events if e["ph"] == "B") == 3

    def test_zero_length_spans_stay_balanced_in_document_order(self):
        rec = InMemoryRecorder(clock=StepClock(step=0.0))
        with rec.span("zero"):
            pass
        events = trace_events(TelemetryReport.from_recorder(rec))
        assert balanced(events)

    def test_open_span_closes_for_viewers_and_is_flagged(self):
        rec = InMemoryRecorder(clock=StepClock(step=0.001))
        rec.span("never.exited").__enter__()
        events = trace_events(TelemetryReport.from_recorder(rec))
        assert balanced(events)
        b = next(e for e in events if e["ph"] == "B" and e["name"] == "never.exited")
        assert b["args"].get("open") is True

    def test_timestamps_are_microseconds(self):
        events = trace_events(single_process_report())
        starts = [e["ts"] for e in events if e["ph"] == "B"]
        # StepClock ticks in ms steps, so span starts land on whole µs
        assert all(ts == int(ts) for ts in starts)
        outer = next(e for e in events if e["name"] == "outer")
        inner = next(e for e in events if e["name"] == "inner")
        assert inner["ts"] > outer["ts"]

    def test_counters_become_counter_samples(self):
        events = trace_events(single_process_report())
        samples = [e for e in events if e["ph"] == "C"]
        assert any(e["name"] == "engine.ticks" for e in samples)
        sample = next(e for e in samples if e["name"] == "engine.ticks")
        assert sample["args"] == {"value": 7}

    def test_events_become_instants(self):
        events = trace_events(single_process_report())
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["name"] == "marker"
        assert instant["s"] == "p"
        assert instant["args"]["worker"] == 1


class TestMultiProcessTraces:
    def test_each_process_gets_its_own_synthetic_pid(self):
        events = trace_events(merged_report())
        names = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        pids = sorted(names.values())
        assert len(pids) == len(set(pids)) == len(names)
        assert all(isinstance(p, int) and p >= 1 for p in pids)

    def test_spans_land_on_their_process_track(self):
        report = merged_report()
        events = trace_events(report)
        name_to_pid = {
            e["args"]["name"]: e["pid"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        run_pids = {e["pid"] for e in events if e["ph"] == "B"}
        worker_pids = {
            pid for label, pid in name_to_pid.items() if "worker-" in label
        }
        assert run_pids <= worker_pids
        assert balanced(events)

    def test_clock_offset_separates_worker_timelines(self):
        events = trace_events(merged_report())
        b_by_pid: dict[int, float] = {}
        for e in events:
            if e["ph"] == "B" and e["name"] == "worker.run":
                b_by_pid[e["pid"]] = e["ts"]
        ts = sorted(b_by_pid.values())
        assert ts[1] - ts[0] == pytest.approx(1_000_000.0)  # the 1s offset


class TestTraceDict:
    def test_object_form_with_trace_events(self):
        payload = trace_dict(single_process_report())
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["schema"] == "repro-telemetry-trace"

    def test_write_trace_is_valid_json(self, tmp_path):
        out = tmp_path / "t.trace.json"
        count = write_trace(single_process_report(), out)
        payload = json.loads(out.read_text())
        assert len(payload["traceEvents"]) == count
        assert count > 0
