"""Property tests: the simulators honor their specs' design models.

Every :class:`~repro.machines.spec.MachineSpec` carries two closed
forms — ``predicted_ticks`` (the machine's major-cycle count) and
``steady_updates_per_tick`` (the architectural peak, one update per PE
per tick).  The measured run statistics must match the first exactly
and never exceed the second, for every machine, over random lattice
shapes, depths, and generation counts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import machines
from repro.lgca.flows import uniform_random_state
from repro.lgca.hpp import HPPModel


def _run(name, rows, cols, generations, depth, seed, **params):
    model = HPPModel(rows, cols, boundary="null")
    frame = uniform_random_state(rows, cols, 4, 0.3, np.random.default_rng(seed))
    spec = machines.get(name)
    engine = spec.create(model, pipeline_depth=depth, **params)
    _, stats = engine.run(frame, generations)
    return spec, engine, stats


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(4, 12),
    cols=st.integers(4, 12),
    generations=st.integers(1, 7),
    depth=st.integers(1, 4),
)
def test_serial_measured_ticks_match_design_model(
    seed, rows, cols, generations, depth
):
    spec, engine, stats = _run("serial", rows, cols, generations, depth, seed)
    assert stats.ticks == spec.predicted_ticks(engine, generations)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(4, 12),
    cols=st.integers(4, 12),
    generations=st.integers(1, 7),
    depth=st.integers(1, 4),
    lanes=st.integers(1, 5),
)
def test_wsa_measured_ticks_match_design_model(
    seed, rows, cols, generations, depth, lanes
):
    spec, engine, stats = _run(
        "wsa", rows, cols, generations, depth, seed, lanes=lanes
    )
    assert stats.ticks == spec.predicted_ticks(engine, generations)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(4, 10),
    cols=st.integers(4, 14),
    generations=st.integers(1, 6),
    depth=st.integers(1, 3),
    slice_width=st.integers(2, 14),
)
def test_spa_measured_ticks_match_design_model(
    seed, rows, cols, generations, depth, slice_width
):
    spec, engine, stats = _run(
        "spa", rows, cols, generations, depth, seed,
        slice_width=min(slice_width, cols),
    )
    assert stats.ticks == spec.predicted_ticks(engine, generations)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(4, 12),
    cols=st.integers(4, 12),
    generations=st.integers(1, 7),
    depth=st.integers(1, 4),
)
def test_wsa_e_measured_ticks_match_design_model(
    seed, rows, cols, generations, depth
):
    spec, engine, stats = _run("wsa-e", rows, cols, generations, depth, seed)
    assert stats.ticks == spec.predicted_ticks(engine, generations)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(4, 10),
    cols=st.integers(8, 12),
    generations=st.integers(1, 5),
    depth=st.integers(1, 3),
)
def test_throughput_never_exceeds_architectural_peak(
    seed, rows, cols, generations, depth
):
    """One update per PE per tick — uniform across every machine."""
    for name in machines.names():
        spec, engine, stats = _run(name, rows, cols, generations, depth, seed)
        peak = spec.steady_updates_per_tick(engine)
        assert stats.updates_per_tick <= peak + 1e-9
        assert peak == engine.num_pes
