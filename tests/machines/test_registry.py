"""The machine registry: lookup, construction, and completeness."""

import numpy as np
import pytest

from repro import machines
from repro.engines.extensible import ExtensibleSerialEngine
from repro.engines.partitioned import PartitionedEngine
from repro.engines.pipeline import SerialPipelineEngine
from repro.engines.streaming_core import StreamingEngineCore
from repro.engines.wide_serial import WideSerialEngine
from repro.lgca.flows import uniform_random_state
from repro.lgca.hpp import HPPModel
from repro.util.errors import ConfigError

ROWS, COLS, GENS = 16, 16, 3


def _model():
    return HPPModel(ROWS, COLS, boundary="null")


def _frame(seed=7):
    return uniform_random_state(ROWS, COLS, 4, 0.3, np.random.default_rng(seed))


#: direct-construction twin of every registered machine, used to prove
#: the registry path is purely a lookup, not a behavioral layer.
DIRECT = {
    "serial": lambda model: SerialPipelineEngine(model, pipeline_depth=2),
    "wsa": lambda model: WideSerialEngine(model, lanes=2, pipeline_depth=2),
    "spa": lambda model: PartitionedEngine(model, slice_width=8, pipeline_depth=2),
    "wsa-e": lambda model: ExtensibleSerialEngine(model, pipeline_depth=2),
}

PARAMS = {
    "serial": {"pipeline_depth": 2},
    "wsa": {"lanes": 2, "pipeline_depth": 2},
    "spa": {"slice_width": 8, "pipeline_depth": 2},
    "wsa-e": {"pipeline_depth": 2},
}


class TestLookup:
    def test_names_in_registration_order(self):
        assert machines.names() == ["serial", "wsa", "spa", "wsa-e"]

    def test_get_returns_spec_with_matching_name(self):
        for name in machines.names():
            assert machines.get(name).name == name

    def test_unknown_machine_is_config_error(self):
        with pytest.raises(ConfigError, match="unknown machine 'cray'"):
            machines.get("cray")

    def test_unknown_machine_error_lists_registry(self):
        with pytest.raises(ConfigError, match="serial, wsa, spa, wsa-e"):
            machines.get("nope")

    def test_duplicate_registration_rejected(self):
        spec = machines.get("serial")
        with pytest.raises(ConfigError, match="already registered"):
            machines.register(spec)


class TestCreate:
    def test_create_builds_the_registered_engine_class(self):
        model = _model()
        for spec in machines.specs():
            engine = spec.create(model)
            assert type(engine) is spec.engine_cls
            assert isinstance(engine, StreamingEngineCore)

    def test_unknown_parameter_is_config_error_naming_the_machine(self):
        with pytest.raises(
            ConfigError, match="machine 'serial' does not accept parameter"
        ):
            machines.create("serial", _model(), warp_factor=9)

    def test_unknown_parameter_error_lists_accepted(self):
        with pytest.raises(ConfigError, match="accepted:.*pipeline_depth"):
            machines.create("wsa", _model(), warp_factor=9)

    def test_every_machine_rejects_unknown_parameters_uniformly(self):
        for name in machines.names():
            with pytest.raises(ConfigError, match=f"machine {name!r}"):
                machines.create(name, _model(), bogus=1)

    def test_caller_params_override_defaults(self):
        engine = machines.create("spa", _model(), slice_width=4)
        assert engine.slice_width == 4

    def test_spa_default_slice_width_applied(self):
        engine = machines.create("spa", _model())
        assert engine.slice_width == 8


class TestRoundTrip:
    """Registry-constructed engines are bit-for-bit the direct ones."""

    @pytest.mark.parametrize("name", ["serial", "wsa", "spa", "wsa-e"])
    def test_stats_and_frames_match_direct_construction(self, name):
        model = _model()
        frame = _frame()
        via_registry = machines.create(name, model, **PARAMS[name])
        direct = DIRECT[name](model)
        out_reg, stats_reg = via_registry.run(frame.copy(), GENS)
        out_dir, stats_dir = direct.run(frame.copy(), GENS)
        np.testing.assert_array_equal(out_reg, out_dir)
        assert stats_reg == stats_dir

    def test_all_machines_agree_on_the_evolution(self):
        model = _model()
        frame = _frame()
        outputs = [
            machines.create(name, model, **PARAMS[name]).run(frame.copy(), GENS)[0]
            for name in machines.names()
        ]
        for other in outputs[1:]:
            np.testing.assert_array_equal(outputs[0], other)


class TestCapabilities:
    def test_tickwise_flag_matches_engine_class(self):
        for spec in machines.specs():
            assert spec.capabilities.tickwise == spec.engine_cls.supports_tickwise

    def test_reference_backend_always_supported(self):
        for spec in machines.specs():
            assert "reference" in spec.capabilities.backends

    def test_declared_backends_actually_construct(self):
        model = _model()
        for spec in machines.specs():
            for backend in spec.capabilities.backends:
                engine = spec.create(model, backend=backend)
                assert engine.backend == backend

    def test_side_channel_and_degradable_only_on_spa(self):
        flags = {
            spec.name: (spec.capabilities.side_channel, spec.capabilities.degradable)
            for spec in machines.specs()
        }
        assert flags["spa"] == (True, True)
        for name in ("serial", "wsa", "wsa-e"):
            assert flags[name] == (False, False)


class TestCompleteness:
    def test_builtin_catalog_is_complete(self):
        assert machines.unregistered_engines() == []

    def test_unregistered_engine_is_detected(self, monkeypatch):
        import repro.engines as engines_pkg

        class RogueEngine(SerialPipelineEngine):
            pass

        monkeypatch.setattr(engines_pkg, "RogueEngine", RogueEngine, raising=False)
        monkeypatch.setattr(
            engines_pkg, "__all__", [*engines_pkg.__all__, "RogueEngine"]
        )
        assert machines.unregistered_engines() == ["RogueEngine"]


class TestDescribe:
    def test_payload_is_schema_versioned(self):
        for spec in machines.specs():
            payload = spec.describe()
            assert payload["schema"] == machines.SCHEMA_NAME == "repro-machine"
            assert payload["version"] == machines.SCHEMA_VERSION == 1

    def test_payload_shape(self):
        payload = machines.get("wsa").describe()
        assert payload["name"] == "wsa"
        assert payload["engine"] == "WideSerialEngine"
        assert set(payload["parameters"]) == {"accepted", "defaults"}
        assert "lanes" in payload["parameters"]["accepted"]
        assert set(payload["capabilities"]) == {
            "backends",
            "backend_options",
            "fault_hooks",
            "tickwise",
            "side_channel",
            "degradable",
        }
        assert payload["design"]  # non-empty design-model summary

    def test_backend_options_reflect_registry(self):
        """The payload's per-backend options come from the live backend
        registry, so they can never drift from what make_stepper enforces."""
        for spec in machines.specs():
            caps = spec.describe()["capabilities"]
            assert caps["backend_options"] == {"parallel": ["workers"]}
            assert "workers" in spec.parameters

    def test_payload_is_json_serializable(self):
        import json

        for spec in machines.specs():
            json.dumps(spec.describe(), sort_keys=True)
