"""Package-level contracts: version, exports, subpackage imports."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.lattice",
    "repro.lgca",
    "repro.engines",
    "repro.pebbling",
    "repro.util",
]


class TestPackage:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_exports_resolve(self, name):
        """Every name in __all__ actually exists — no stale exports."""
        module = importlib.import_module(name)
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"{name}.{symbol} missing"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_exports_documented(self, name):
        """Every exported callable/class has a docstring."""
        module = importlib.import_module(name)
        for symbol in module.__all__:
            obj = getattr(module, symbol)
            if callable(obj):
                assert obj.__doc__, f"{name}.{symbol} lacks a docstring"

    def test_cli_importable(self):
        from repro.cli import build_parser

        assert build_parser().prog == "repro"

    def test_no_circular_imports(self):
        """core, engines, pebbling import cleanly in any order."""
        for order in (
            ["repro.pebbling", "repro.core", "repro.engines"],
            ["repro.engines", "repro.pebbling", "repro.core"],
        ):
            for name in order:
                importlib.reload(importlib.import_module(name))
