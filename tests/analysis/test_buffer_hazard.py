"""Tests for RPR110 — the streaming buffer-hazard checker."""

import ast
from pathlib import Path

from repro.analysis.dataflow.project import ProjectGraph
from repro.analysis.engine import LintEngine, lint_paths
from repro.analysis.rules.base import ModuleUnderCheck
from repro.analysis.rules.bufferhazard import BufferHazardRule

FIXTURES = Path(__file__).parent / "fixtures" / "engines"


def findings(source: str, project: ProjectGraph | None = None):
    tree = ast.parse(source)
    module = ModuleUnderCheck(
        path="snippet.py", source=source, tree=tree, project=project
    )
    return list(BufferHazardRule().check(module))


class TestFixtures:
    def test_bad_fixture_flags_both_hazard_shapes(self):
        report = lint_paths(
            [FIXTURES / "bad_buffer_hazard.py"], select=["RPR110"]
        )
        lines = sorted(d.line for d in report.diagnostics)
        # line 20: the same-statement in-place update; 25-27: the split
        # form where reads follow in-place writes across statements
        assert lines == [20, 25, 26, 27]
        assert all(d.rule == "RPR110" for d in report.diagnostics)

    def test_clean_double_buffer_passes(self):
        report = lint_paths(
            [FIXTURES / "clean_double_buffer.py"], select=["RPR110"]
        )
        assert report.diagnostics == ()


ENGINE = "class E(StreamingEngineCore):\n"


class TestHazardShapes:
    def test_same_statement_store_and_read(self):
        src = ENGINE + (
            "    def run(self, front, steps):\n"
            "        for _ in range(steps):\n"
            "            front[1:-1] = front[:-2]\n"
        )
        assert len(findings(src)) == 1

    def test_swap_discipline_is_clean(self):
        src = ENGINE + (
            "    def run(self, front, back, steps):\n"
            "        for _ in range(steps):\n"
            "            back[1:-1] = front[:-2]\n"
            "            front, back = back, front\n"
        )
        assert findings(src) == []

    def test_missing_swap_flags_via_back_edge(self):
        # without the swap, last iteration's write reaches this
        # iteration's read — only the loop back edge reveals it
        src = ENGINE + (
            "    def run(self, front, back, steps):\n"
            "        for _ in range(steps):\n"
            "            back[1:-1] = front[:-2]\n"
            "            front[0] = back[0]\n"
        )
        found = findings(src)
        # line 4 reads `front`, mutated at line 5 on the previous
        # iteration — visible only through the loop back edge — and
        # line 5 reads `back`, mutated at line 4 in the same pass.
        assert sorted(d.line for d in found) == [4, 5]

    def test_aug_accumulation_exempt(self):
        src = ENGINE + (
            "    def run(self, cells, steps):\n"
            "        for _ in range(steps):\n"
            "            cells[1:-1] |= cells[:-2]\n"
        )
        assert findings(src) == []

    def test_out_kwarg_mutation_then_read(self):
        src = ENGINE + (
            "    def run(self, buf, scratch, steps):\n"
            "        import numpy as np\n"
            "        for _ in range(steps):\n"
            "            np.left_shift(buf, 1, out=buf)\n"
            "            total = buf.sum()\n"
            "            scratch[0] = total + buf[0]\n"
        )
        found = findings(src)
        assert found  # buf read after in-place write in the same tick

    def test_non_engine_class_not_checked(self):
        src = (
            "class NotAnEngine:\n"
            "    def run(self, front, steps):\n"
            "        for _ in range(steps):\n"
            "            front[1:-1] = front[:-2]\n"
        )
        assert findings(src) == []


class TestProjectGraphResolution:
    def test_transitive_base_found_through_graph(self):
        core = "class StreamingEngineCore:\n    pass\n"
        mid = (
            "from repro.engines.streaming_core import StreamingEngineCore\n"
            "class MidEngine(StreamingEngineCore):\n    pass\n"
        )
        leaf = (
            "from repro.engines.mid import MidEngine\n"
            "class LeafEngine(MidEngine):\n"
            "    def run(self, front, steps):\n"
            "        for _ in range(steps):\n"
            "            front[1:-1] = front[:-2]\n"
        )
        files = {
            "src/repro/engines/streaming_core.py": core,
            "src/repro/engines/mid.py": mid,
            "src/repro/engines/leaf.py": leaf,
        }
        graph = ProjectGraph.from_sources(
            [(p, s, ast.parse(s)) for p, s in files.items()]
        )
        # LeafEngine's direct base is MidEngine — only the project
        # graph knows MidEngine derives from StreamingEngineCore
        assert len(findings(leaf, project=graph)) == 1

    def test_without_graph_indirect_base_unseen(self):
        leaf = (
            "class LeafEngine(MidEngine):\n"
            "    def run(self, front, steps):\n"
            "        for _ in range(steps):\n"
            "            front[1:-1] = front[:-2]\n"
        )
        assert findings(leaf, project=None) == []


class TestEngineIntegration:
    def test_lint_paths_supplies_project_graph(self, tmp_path):
        # Two files: the base chain lives in a different file than the
        # offending engine — lint_paths must connect them.
        (tmp_path / "streaming_core.py").write_text(
            "class StreamingEngineCore:\n    pass\n"
        )
        (tmp_path / "mid.py").write_text(
            "from streaming_core import StreamingEngineCore\n"
            "class MidEngine(StreamingEngineCore):\n    pass\n"
        )
        (tmp_path / "leaf.py").write_text(
            "from mid import MidEngine\n"
            "class LeafEngine(MidEngine):\n"
            "    def run(self, front, steps):\n"
            "        for _ in range(steps):\n"
            "            front[1:-1] = front[:-2]\n"
        )
        engine = LintEngine(rules=[BufferHazardRule()])
        report = engine.lint_paths([tmp_path])
        assert [d.rule for d in report.diagnostics] == ["RPR110"]
        assert report.diagnostics[0].path.endswith("leaf.py")
