"""Per-rule tests: each rule fires on its negative fixture at the right
lines and stays silent on clean code (and out of scope)."""

from pathlib import Path

from repro.analysis.engine import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"


def findings(path, rule):
    report = lint_paths([path], select=[rule])
    return [(d.line, d.message) for d in report.diagnostics]


class TestRPR001MutableDefaults:
    def test_flags_all_three_defaults(self):
        hits = findings(FIXTURES / "bad_defaults.py", "RPR001")
        assert [line for line, _ in hits] == [4, 9, 14]

    def test_none_default_is_fine(self):
        hits = findings(FIXTURES / "bad_defaults.py", "RPR001")
        assert not any("fine" in msg for _, msg in hits)

    def test_applies_everywhere(self):
        source = "def f(x=[]):\n    return x\n"
        from repro.analysis.engine import LintEngine
        from repro.analysis.rules import get_rules

        engine = LintEngine(rules=get_rules(select=["RPR001"]))
        assert engine.lint_source(source, "anywhere/util.py")


class TestRPR002FloatEquality:
    def test_flags_float_comparisons(self):
        hits = findings(FIXTURES / "core" / "bad_float_eq.py", "RPR002")
        assert [line for line, _ in hits] == [5, 9, 13]

    def test_integer_equality_not_flagged(self):
        hits = findings(FIXTURES / "core" / "bad_float_eq.py", "RPR002")
        assert len(hits) == 3  # the int identity on line 17 is untouched

    def test_scoped_to_core(self):
        from repro.analysis.engine import LintEngine
        from repro.analysis.rules import get_rules

        engine = LintEngine(rules=get_rules(select=["RPR002"]))
        source = "def f(x):\n    return x == 1.5\n"
        assert engine.lint_source(source, "core/model.py")
        assert not engine.lint_source(source, "lgca/kernel.py")


class TestRPR003Annotations:
    def test_flags_each_gap(self):
        hits = findings(FIXTURES / "core" / "bad_annotations.py", "RPR003")
        lines = [line for line, _ in hits]
        assert 4 in lines  # missing docstring
        assert 8 in lines  # missing return annotation
        assert 13 in lines  # missing parameter annotation
        assert 21 in lines  # method missing everything

    def test_method_reports_three_findings(self):
        hits = findings(FIXTURES / "core" / "bad_annotations.py", "RPR003")
        assert sum(1 for line, _ in hits if line == 21) == 3

    def test_private_names_exempt(self):
        hits = findings(FIXTURES / "core" / "bad_annotations.py", "RPR003")
        assert not any("private" in msg for _, msg in hits)


class TestRPR004Dtype:
    def test_flags_implicit_float64(self):
        hits = findings(FIXTURES / "lgca" / "bad_dtype.py", "RPR004")
        assert [line for line, _ in hits] == [7, 8, 9]

    def test_zeros_like_exempt(self):
        hits = findings(FIXTURES / "lgca" / "bad_dtype.py", "RPR004")
        assert not any("zeros_like" in msg for _, msg in hits)

    def test_scoped_to_lgca(self):
        from repro.analysis.engine import LintEngine
        from repro.analysis.rules import get_rules

        engine = LintEngine(rules=get_rules(select=["RPR004"]))
        source = "import numpy as np\nx = np.zeros((3, 3))\n"
        assert engine.lint_source(source, "lgca/kernel.py")
        assert not engine.lint_source(source, "core/model.py")


class TestRPR005BareExcept:
    def test_flags_bare_except(self):
        hits = findings(FIXTURES / "bad_except.py", "RPR005")
        assert [line for line, _ in hits] == [7]


class TestRPR006Exports:
    def test_flags_ghost_and_duplicate(self):
        hits = findings(FIXTURES / "bad_exports.py", "RPR006")
        messages = " ".join(msg for _, msg in hits)
        assert "ghost_function" in messages
        assert "duplicate" in messages
        assert len(hits) == 2

    def test_repo_modules_resolve(self):
        # The real package must satisfy its own export contract.
        import repro

        src = Path(repro.__file__).parent
        report = lint_paths([src], select=["RPR006"])
        assert report.diagnostics == ()
