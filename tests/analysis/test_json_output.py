"""Regression tests pinning the ``repro lint --format json`` schema.

CI and editor tooling parse this output; any key rename or reordering
is a breaking change and must fail here first.
"""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def lint_json(capsys, *args):
    code = main(["lint", "--format", "json", *args])
    return code, json.loads(capsys.readouterr().out)


class TestJsonSchema:
    def test_top_level_keys(self, capsys):
        _, payload = lint_json(capsys, str(FIXTURES / "core" / "clean.py"))
        assert set(payload) == {
            "version",
            "files_checked",
            "summary",
            "diagnostics",
        }
        assert payload["version"] == 2

    def test_clean_file_exits_zero(self, capsys):
        code, payload = lint_json(capsys, str(FIXTURES / "core" / "clean.py"))
        assert code == 0
        assert payload["summary"] == {
            "errors": 0,
            "warnings": 0,
            "suppressed": 0,
            "total": 0,
        }
        assert payload["diagnostics"] == []

    def test_diagnostic_record_shape(self, capsys):
        code, payload = lint_json(capsys, str(FIXTURES / "bad_except.py"))
        assert code == 1
        (diag,) = payload["diagnostics"]
        assert set(diag) == {"path", "line", "col", "rule", "severity", "message"}
        assert diag["rule"] == "RPR005"
        assert diag["severity"] == "error"
        assert diag["line"] == 7
        assert diag["path"].endswith("bad_except.py")

    def test_summary_totals_match_diagnostics(self, capsys):
        _, payload = lint_json(capsys, str(FIXTURES))
        assert payload["summary"]["total"] == len(payload["diagnostics"])
        assert payload["summary"]["total"] == (
            payload["summary"]["errors"] + payload["summary"]["warnings"]
        )

    def test_output_is_stable_across_runs(self, capsys):
        _, first = lint_json(capsys, str(FIXTURES))
        _, second = lint_json(capsys, str(FIXTURES))
        assert first == second

    def test_repo_sources_lint_clean(self, capsys):
        import repro

        src = str(Path(repro.__file__).parent)
        code, payload = lint_json(capsys, src)
        assert code == 0, payload["diagnostics"]
        assert payload["summary"]["errors"] == 0
