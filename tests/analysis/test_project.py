"""Tests for the cross-file project graph and its digest-keyed cache."""

import ast
import json

import pytest

from repro.analysis.dataflow.project import (
    PROJECT_GRAPH_VERSION,
    ProjectGraph,
    module_name_for_path,
    source_digest,
)


def graph_from(files: dict[str, str]) -> ProjectGraph:
    return ProjectGraph.from_sources(
        [(path, src, ast.parse(src)) for path, src in files.items()]
    )


CORE = "class StreamingEngineCore:\n    def run(self):\n        pass\n"
MID = (
    "from repro.engines.streaming_core import StreamingEngineCore\n"
    "class MidEngine(StreamingEngineCore):\n    pass\n"
)
LEAF = (
    "from repro.engines.mid import MidEngine\n"
    "class LeafEngine(MidEngine):\n    pass\n"
)

THREE_HOPS = {
    "src/repro/engines/streaming_core.py": CORE,
    "src/repro/engines/mid.py": MID,
    "src/repro/engines/leaf.py": LEAF,
}


class TestModuleNaming:
    def test_repro_package_paths(self):
        assert (
            module_name_for_path("src/repro/lgca/hpp.py") == "repro.lgca.hpp"
        )

    def test_package_init(self):
        assert module_name_for_path("src/repro/lgca/__init__.py") == "repro.lgca"

    def test_non_package_path_uses_stem(self):
        assert module_name_for_path("tests/fixtures/thing.py") == "thing"


class TestGraphFacts:
    def test_imports_resolved(self):
        graph = graph_from(THREE_HOPS)
        mid = graph.modules["repro.engines.mid"]
        assert (
            mid.imports["StreamingEngineCore"]
            == "repro.engines.streaming_core.StreamingEngineCore"
        )

    def test_bases_resolved_across_files(self):
        graph = graph_from(THREE_HOPS)
        leaf = graph.modules["repro.engines.leaf"].classes["LeafEngine"]
        assert leaf.bases == ("repro.engines.mid.MidEngine",)

    def test_transitive_derives_from(self):
        graph = graph_from(THREE_HOPS)
        leaf = graph.modules["repro.engines.leaf"].classes["LeafEngine"]
        assert graph.derives_from(leaf, "StreamingEngineCore")
        assert not graph.derives_from(leaf, "SomethingElse")

    def test_resolve_class_by_bare_name(self):
        graph = graph_from(THREE_HOPS)
        cls = graph.resolve_class("LeafEngine")
        assert cls is not None
        assert cls.module == "repro.engines.leaf"

    def test_self_method_call_edges(self):
        src = (
            "class K:\n"
            "    def outer(self):\n"
            "        self.inner()\n"
            "        helper()\n"
            "    def inner(self):\n"
            "        pass\n"
            "def helper():\n"
            "    pass\n"
        )
        graph = graph_from({"src/repro/k.py": src})
        outer = graph.modules["repro.k"].functions["K.outer"]
        assert "repro.k.K.inner" in outer.calls
        assert "repro.k.helper" in outer.calls


class TestSerialization:
    def test_round_trip(self):
        graph = graph_from(THREE_HOPS)
        clone = ProjectGraph.from_dict(graph.to_dict())
        assert clone.to_dict() == graph.to_dict()
        leaf = clone.modules["repro.engines.leaf"].classes["LeafEngine"]
        assert clone.derives_from(leaf, "StreamingEngineCore")

    def test_unknown_version_rejected(self):
        payload = graph_from(THREE_HOPS).to_dict()
        payload["version"] = PROJECT_GRAPH_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            ProjectGraph.from_dict(payload)

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="repro-lint-project"):
            ProjectGraph.from_dict({"schema": "something-else", "version": 1})


class TestCache:
    def items(self, files):
        return [(path, src, ast.parse(src)) for path, src in files.items()]

    def test_cache_written_and_reused(self, tmp_path):
        cache = tmp_path / "graph.json"
        items = self.items(THREE_HOPS)
        first = ProjectGraph.load_or_build(cache, items)
        assert cache.is_file()
        payload = json.loads(cache.read_text())
        assert payload["schema"] == "repro-lint-project"
        second = ProjectGraph.load_or_build(cache, items)
        assert second.to_dict() == first.to_dict()

    def test_stale_digest_rebuilds(self, tmp_path):
        cache = tmp_path / "graph.json"
        ProjectGraph.load_or_build(cache, self.items(THREE_HOPS))
        changed = dict(THREE_HOPS)
        changed["src/repro/engines/leaf.py"] = LEAF + "\nX = 1\n"
        graph = ProjectGraph.load_or_build(cache, self.items(changed))
        leaf_mod = graph.modules["repro.engines.leaf"]
        assert leaf_mod.digest == source_digest(changed["src/repro/engines/leaf.py"])
        # and the cache file was refreshed to match
        payload = json.loads(cache.read_text())
        assert (
            payload["modules"]["repro.engines.leaf"]["digest"] == leaf_mod.digest
        )

    def test_corrupt_cache_is_ignored(self, tmp_path):
        cache = tmp_path / "graph.json"
        cache.write_text("{not json")
        graph = ProjectGraph.load_or_build(cache, self.items(THREE_HOPS))
        assert "repro.engines.leaf" in graph.modules

    def test_no_cache_path_builds_directly(self):
        graph = ProjectGraph.load_or_build(None, self.items(THREE_HOPS))
        assert "repro.engines.mid" in graph.modules
