"""Negative fixture: RPR004 numpy creation without an explicit dtype."""

import numpy as np


def make_state(rows, cols):
    state = np.zeros((rows, cols))  # line 7: implicit float64
    probs = np.empty((4, rows, cols))  # line 8: implicit float64
    mask = np.ones((rows, cols))  # line 9: implicit float64
    return state, probs, mask


def explicit_is_fine(rows, cols):
    state = np.zeros((rows, cols), dtype=np.uint8)
    like = np.zeros_like(state)
    return state, like
