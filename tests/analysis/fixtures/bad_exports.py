"""Negative fixture: RPR006 stale and duplicated __all__ entries."""

__all__ = [
    "real_function",
    "ghost_function",  # line 5: not defined anywhere
    "real_function",  # line 6: duplicate
]


def real_function():
    """Exists, exported, fine."""
    return 1
