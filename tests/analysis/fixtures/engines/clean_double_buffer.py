"""Seeded RPR110-clean fixture: the double-buffer swap discipline.

The back buffer is written, the front buffer is read, and the bindings
swap between ticks — the rebinding kills the in-place definitions, so
reaching definitions prove no read ever sees half-updated state.
"""

import numpy as np

from repro.engines.streaming_core import StreamingEngineCore

__all__ = ["SwapEngine"]


class SwapEngine(StreamingEngineCore):
    def run_ticks(self, front: np.ndarray, back: np.ndarray, steps: int) -> np.ndarray:
        for _ in range(steps):
            back[1:-1] = front[:-2] | front[2:]
            front, back = back, front
        return front

    def accumulate(self, cells: np.ndarray, steps: int) -> np.ndarray:
        for _ in range(steps):
            cells[1:-1] |= cells[:-2]  # in-place accumulation is exempt
        return cells
