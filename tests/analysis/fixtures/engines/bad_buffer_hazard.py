"""Seeded RPR110 fixture: an engine mutating the buffer it reads mid-tick.

Both hazard shapes are present: the single-statement in-place update
(``front[...] = f(front)``) and the split two-statement form where the
read happens at a different statement than the in-place write.
"""

import numpy as np

from repro.engines.streaming_core import StreamingEngineCore

__all__ = ["InPlaceEngine"]


class InPlaceEngine(StreamingEngineCore):
    def run_ticks(self, front: np.ndarray, steps: int) -> np.ndarray:
        for _ in range(steps):
            # Reads front while storing into it: sites updated earlier in
            # the sweep contaminate the neighborhoods of later sites.
            front[1:-1] = front[:-2] | front[2:]
        return front

    def run_ticks_split(self, front: np.ndarray, back: np.ndarray, steps: int) -> np.ndarray:
        for _ in range(steps):
            back[...] = front[:]
            front[1:-1] = back[:-2]
            total = front.sum()  # reads the half-updated buffer
            back[0] = total
        return front
