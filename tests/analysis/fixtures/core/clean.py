"""Positive fixture: passes every rule even under core/ scoping."""

import math

__all__ = ["pin_limit", "rates_close"]


def pin_limit(pins: int, bits: int) -> float:
    """Largest continuous P the pin constraint allows: Π / 2D."""
    return pins / (2.0 * bits)


def rates_close(a: float, b: float) -> bool:
    """Tolerant float comparison, the way RPR002 wants it."""
    return math.isclose(a, b, rel_tol=1e-9)
