"""Negative fixture: RPR003 missing annotations/docstrings on public API."""


def no_docstring() -> int:  # line 4: docstring missing
    return 1


def no_return_annotation(x: int):  # line 8: return annotation missing
    """Documented but unannotated."""
    return x


def bare_param(x) -> int:  # line 13: parameter annotation missing
    """Documented, return annotated, parameter not."""
    return x


class Design:
    """A public class with one offending method."""

    def rate(self, clock):  # line 21: no docstring, no annotations
        return clock * 2

    def _private_is_exempt(self, anything):
        return anything


def _private_function_is_exempt(x):
    return x
