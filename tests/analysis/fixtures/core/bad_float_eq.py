"""Negative fixture: RPR002 float equality in design-model code."""


def corner_matches(p: float) -> bool:
    return p == 4.01  # line 5: == against a float literal


def rate_differs(rate: float, clock: float, pes: int) -> bool:
    return rate != clock * float(pes)  # line 9: != against float()


def area_exhausted(used: float, total: float) -> bool:
    return used / total == 1  # line 13: == on a true-division result


def integer_identity_is_fine(n: int) -> bool:
    return n == 4
