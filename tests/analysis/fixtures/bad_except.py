"""Negative fixture: RPR005 bare except clauses."""


def swallow_everything(fn):
    try:
        return fn()
    except:  # line 7: bare except
        return None


def named_exception_is_fine(fn):
    try:
        return fn()
    except ValueError:
        return None
