"""Seeded RPR101 fixture: a hot-path kernel that secretly allocates.

Every pattern here must be flagged: the direct ``np.zeros``, the
out=-less ufunc, the ``.astype`` copy, the array binary operator, and —
the sneaky one — the allocation hidden two calls deep in a same-module
helper.
"""

import numpy as np

from repro.util.hotpath import hot_path

__all__ = ["HiddenAllocKernel"]


def _make_scratch(n: int) -> np.ndarray:
    """The hidden allocation: looks like plumbing, allocates every call."""
    return np.zeros(n, dtype=np.uint64)


def _prepare(field: np.ndarray) -> np.ndarray:
    """One more hop: hot callers must be flagged through the chain."""
    scratch = _make_scratch(field.size)
    return scratch


class HiddenAllocKernel:
    def __init__(self, n: int) -> None:
        self._buf = np.zeros(n, dtype=np.uint64)

    @hot_path
    def step_into(self, src: np.ndarray, dst: np.ndarray) -> None:
        tmp = np.zeros(src.size, dtype=np.uint64)  # direct constructor
        shifted = np.left_shift(src, 1)  # ufunc without out=
        masked = src & dst  # array binary operator
        widened = src.astype(np.uint64)  # copying conversion
        helper = _prepare(src)  # allocation hidden in the call chain
        np.bitwise_or(tmp, shifted, out=dst)
        np.bitwise_or(dst, masked, out=dst)
        np.bitwise_or(dst, widened, out=dst)
        np.bitwise_or(dst, helper, out=dst)
