"""Seeded RPR101/RPR102-clean fixture: the allocation-free discipline.

Everything runs through preallocated buffers and ``out=`` forms; the
one deliberate setup allocation is escaped with ``# repro: alloc-ok``.
"""

import numpy as np

from repro.util.hotpath import hot_path

__all__ = ["CleanKernel"]


class CleanKernel:
    def __init__(self, n: int) -> None:
        self._scratch = np.zeros(n, dtype=np.uint64)
        self._key: int | None = None

    def _ensure(self, src: np.ndarray) -> np.ndarray:
        if self._key != src.size:
            self._scratch = np.zeros(src.size, dtype=np.uint64)  # repro: alloc-ok
            self._key = src.size
        return self._scratch

    @hot_path
    def step_into(self, src: np.ndarray, dst: np.ndarray) -> None:
        scratch = self._ensure(src)
        np.left_shift(src, np.uint64(1), out=scratch)
        np.bitwise_and(scratch, src, out=scratch)
        np.bitwise_or(scratch, src, out=dst)
        dst[0] = 0
