"""Seeded RPR102 fixture: I/O and persistent-state growth in a hot path."""

import logging

import numpy as np

from repro.util.hotpath import hot_path

__all__ = ["ChattyKernel"]

logger = logging.getLogger(__name__)


class ChattyKernel:
    def __init__(self) -> None:
        self.history: list[int] = []

    def _note(self, t: int) -> None:
        logger.info("step %d", t)  # impure helper a hot path must not call

    @hot_path
    def step_into(self, src: np.ndarray, dst: np.ndarray, t: int) -> None:
        print("stepping", t)  # I/O in a hot path
        logger.debug("t=%d", t)  # logging in a hot path
        self.history.append(t)  # persistent container growth
        dst.flags.writeable = True  # attribute write through another object
        self._note(t)  # impurity via the call chain
        np.copyto(dst, src)
