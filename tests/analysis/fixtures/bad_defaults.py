"""Negative fixture: RPR001 mutable default arguments."""


def append_to(item, bucket=[]):  # line 4: list literal default
    bucket.append(item)
    return bucket


def tally(key, counts={}):  # line 9: dict literal default
    counts[key] = counts.get(key, 0) + 1
    return counts


def collect(item, seen=set()):  # line 14: set constructor default
    seen.add(item)
    return seen


def fine(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket
