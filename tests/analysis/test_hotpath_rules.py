"""Tests for RPR101 (hot-path allocation) and RPR102 (hot-path purity)."""

from pathlib import Path

from repro.analysis.engine import LintEngine, lint_paths
from repro.analysis.rules.hotpath import HotPathAllocationRule, HotPathPurityRule

FIXTURES = Path(__file__).parent / "fixtures" / "hotpath"


def findings(source: str, rule_cls):
    engine = LintEngine(rules=[rule_cls()])
    return engine.lint_source(source, "snippet.py")


HOT_PREFIX = "import numpy as np\nfrom repro.util.hotpath import hot_path\n"


class TestAllocationFixtures:
    def test_bad_fixture_flags_every_pattern(self):
        report = lint_paths(
            [FIXTURES / "bad_hot_alloc.py"], select=["RPR101"]
        )
        lines = sorted(d.line for d in report.diagnostics)
        # direct zeros, out=-less ufunc, array binop, astype, hidden
        # allocation two calls deep — one finding per offending line
        assert lines == [33, 34, 35, 36, 37]
        assert all(d.rule == "RPR101" for d in report.diagnostics)

    def test_interprocedural_message_names_the_chain(self):
        report = lint_paths(
            [FIXTURES / "bad_hot_alloc.py"], select=["RPR101"]
        )
        chained = [d for d in report.diagnostics if d.line == 37]
        assert len(chained) == 1
        assert "_prepare" in chained[0].message

    def test_clean_fixture_passes(self):
        report = lint_paths([FIXTURES / "clean_hot.py"], select=["RPR101"])
        assert report.diagnostics == ()


class TestAllocationSnippets:
    def test_unmarked_function_not_checked(self):
        src = HOT_PREFIX + (
            "def cold(n):\n"
            "    return np.zeros(n)\n"
        )
        assert findings(src, HotPathAllocationRule) == []

    def test_registry_hotness_without_decorator(self):
        # PipelineStage.process is hot by architecture (HOT_PATH_REGISTRY)
        src = "import numpy as np\n" + (
            "class PipelineStage:\n"
            "    def process(self, stream):\n"
            "        return np.zeros(stream.size)\n"
        )
        found = findings(src, HotPathAllocationRule)
        assert len(found) == 1
        assert "np.zeros" in found[0].message

    def test_setup_methods_never_hot(self):
        src = "import numpy as np\n" + (
            "class PipelineStage:\n"
            "    def __init__(self, n):\n"
            "        self._buf = np.zeros(n)\n"
            "    def process(self, stream):\n"
            "        return stream\n"
        )
        assert findings(src, HotPathAllocationRule) == []

    def test_alloc_ok_escape_hatch(self):
        src = HOT_PREFIX + (
            "@hot_path\n"
            "def lazy_init(n):\n"
            "    buf = np.zeros(n)  # repro: alloc-ok\n"
            "    return buf\n"
        )
        assert findings(src, HotPathAllocationRule) == []

    def test_out_ufunc_is_clean(self):
        src = HOT_PREFIX + (
            "@hot_path\n"
            "def step(src, dst):\n"
            "    np.bitwise_or(src, src, out=dst)\n"
        )
        assert findings(src, HotPathAllocationRule) == []

    def test_binop_on_scalars_is_clean(self):
        src = HOT_PREFIX + (
            "@hot_path\n"
            "def step(n: int, k: int):\n"
            "    return n + k\n"
        )
        assert findings(src, HotPathAllocationRule) == []

    def test_binop_flagged_only_when_array_def_reaches(self):
        # `v` is an int on one path, an array on the other — the
        # dataflow pass flags the use because an array def reaches it.
        src = HOT_PREFIX + (
            "@hot_path\n"
            "def step(src: np.ndarray, flag):\n"
            "    if flag:\n"
            "        v = src\n"
            "    else:\n"
            "        v = 0\n"
            "    return v & v\n"
        )
        found = findings(src, HotPathAllocationRule)
        assert len(found) == 1

    def test_rebind_to_scalar_kills_arrayness(self):
        src = HOT_PREFIX + (
            "@hot_path\n"
            "def step(src: np.ndarray):\n"
            "    v = int(src.sum())\n"
            "    v = 0\n"
            "    return v + 1\n"
        )
        assert findings(src, HotPathAllocationRule) == []


class TestPurity:
    def test_bad_fixture_flags_every_pattern(self):
        report = lint_paths(
            [FIXTURES / "bad_hot_purity.py"], select=["RPR102"]
        )
        lines = sorted(d.line for d in report.diagnostics)
        # print, logger call, container growth, foreign attribute
        # write, and the impure same-module helper
        assert lines == [23, 24, 25, 26, 27]
        assert all(d.rule == "RPR102" for d in report.diagnostics)

    def test_self_attribute_write_allowed(self):
        src = HOT_PREFIX + (
            "class K:\n"
            "    @hot_path\n"
            "    def step(self):\n"
            "        self._tick += 1\n"
        )
        assert findings(src, HotPathPurityRule) == []

    def test_print_in_cold_function_allowed(self):
        src = "def report():\n    print('fine')\n"
        assert findings(src, HotPathPurityRule) == []


class TestExplanations:
    def test_rules_carry_explanations(self):
        for rule_cls in (HotPathAllocationRule, HotPathPurityRule):
            rule = rule_cls()
            assert len(rule.explanation) > 100
