"""Property-based conservation tests for the collision operators.

The sanitizer proves conservation exhaustively over single-site states;
these tests attack from the other side with hypothesis-generated random
*fields*, asserting that applying a collision table to an arbitrary
packed lattice never changes the total particle count or the per-axis
momentum.  Together they pin the operators from both directions.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lgca.fhp import (
    FHP7_VELOCITIES,
    FHP_VELOCITIES,
    fhp6_collision_tables,
    fhp7_collision_tables,
    fhp_saturated_tables,
)
from repro.lgca.hpp import HPP_VELOCITIES, hpp_collision_table

_POPCOUNT = {}


def popcounts(num_states):
    if num_states not in _POPCOUNT:
        counts = np.array(
            [bin(s).count("1") for s in range(num_states)], dtype=np.int64
        )
        _POPCOUNT[num_states] = counts
    return _POPCOUNT[num_states]


def momentum(field, velocities):
    """Total (px, py) of a packed lattice field."""
    num_channels = velocities.shape[0]
    total = np.zeros(2)
    for channel in range(num_channels):
        occupied = (field >> channel) & 1
        total += occupied.sum() * velocities[channel]
    return total


def field_strategy(num_states):
    shapes = st.tuples(st.integers(1, 6), st.integers(1, 6))
    return shapes.flatmap(
        lambda shape: st.lists(
            st.integers(0, num_states - 1),
            min_size=shape[0] * shape[1],
            max_size=shape[0] * shape[1],
        ).map(lambda flat: np.array(flat, dtype=np.uint16).reshape(shape))
    )


def assert_conserves(table, velocities, field):
    out = np.asarray(table.table, dtype=np.uint16)[field]
    counts = popcounts(len(table.table))
    assert counts[field].sum() == counts[out].sum(), "particle count changed"
    np.testing.assert_allclose(
        momentum(out, velocities),
        momentum(field, velocities),
        atol=1e-9,
        err_msg="momentum changed",
    )


@settings(max_examples=200, deadline=None)
@given(field=field_strategy(16))
def test_hpp_conserves_on_random_fields(field):
    assert_conserves(hpp_collision_table(), HPP_VELOCITIES, field)


@settings(max_examples=100, deadline=None)
@given(field=field_strategy(64))
def test_fhp6_conserves_on_random_fields(field):
    left, right = fhp6_collision_tables()
    assert_conserves(left, FHP_VELOCITIES, field)
    assert_conserves(right, FHP_VELOCITIES, field)


@settings(max_examples=100, deadline=None)
@given(field=field_strategy(128))
def test_fhp7_conserves_on_random_fields(field):
    left, right = fhp7_collision_tables()
    assert_conserves(left, FHP7_VELOCITIES, field)
    assert_conserves(right, FHP7_VELOCITIES, field)


@settings(max_examples=100, deadline=None)
@given(field=field_strategy(128))
def test_fhp_saturated_conserves_on_random_fields(field):
    left, right = fhp_saturated_tables()
    assert_conserves(left, FHP7_VELOCITIES, field)
    assert_conserves(right, FHP7_VELOCITIES, field)


@settings(max_examples=100, deadline=None)
@given(field=field_strategy(16))
def test_hpp_double_collision_is_identity(field):
    # The HPP rule is an involution; two applications restore the field.
    table = np.asarray(hpp_collision_table().table, dtype=np.uint16)
    np.testing.assert_array_equal(table[table[field]], field)
