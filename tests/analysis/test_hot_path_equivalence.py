"""Hot-path markers must not change runtime behavior.

RPR101/RPR102 are *static* contracts: :func:`hot_path` sets one
attribute and returns the same function object, so decorating the
kernels (and rewriting them allocation-free to satisfy the rule) must
leave every trajectory bit-identical.  These tests pin that — first the
decorator mechanics, then registry integrity, then seeded bit-exact
equivalence across backends and through the streaming pipeline stage.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.pe import make_rule
from repro.engines.pipeline import PipelineStage, SerialPipelineEngine
from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.backends import BitplaneStepper, ReferenceStepper
from repro.lgca.bitplane import BitplaneKernel
from repro.lgca.fhp import FHPModel
from repro.lgca.parallel import ParallelStepper
from repro.lgca.flows import uniform_random_state
from repro.lgca.hpp import HPPModel
from repro.util.hotpath import HOT_PATH_REGISTRY, hot_path, is_hot_path


class TestDecoratorMechanics:
    def test_identity(self):
        def f(x):
            return x + 1

        g = hot_path(f)
        assert g is f  # the SAME object — no wrapper, no indirection
        assert g(2) == 3

    def test_is_hot_path(self):
        @hot_path
        def hot():
            pass

        def cold():
            pass

        assert is_hot_path(hot)
        assert not is_hot_path(cold)

    def test_preserves_metadata(self):
        @hot_path
        def documented():
            """Docstring survives."""

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "Docstring survives."


class TestRegistryIntegrity:
    CLASSES = {
        "BitplaneKernel": BitplaneKernel,
        "BitplaneStepper": BitplaneStepper,
        "ParallelStepper": ParallelStepper,
        "ReferenceStepper": ReferenceStepper,
        "PipelineStage": PipelineStage,
    }

    def test_every_registry_method_exists_and_is_marked(self):
        from repro.engines import streaming_core

        classes = dict(self.CLASSES)
        classes["StreamingEngineCore"] = streaming_core.StreamingEngineCore
        for qualname in sorted(HOT_PATH_REGISTRY):
            cls_name, _, method = qualname.partition(".")
            assert cls_name in classes, f"unknown registry class {cls_name}"
            func = getattr(classes[cls_name], method, None)
            assert func is not None, f"{qualname} names a missing method"
            assert is_hot_path(func), f"{qualname} lost its @hot_path marker"


def _state(seed, rows, cols, channels, density=0.4):
    return uniform_random_state(
        rows, cols, channels, density, np.random.default_rng(seed)
    )


class TestTrajectoryEquivalence:
    """Seeded bit-identity across backends (the runtime ground truth)."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_hpp_backends_bit_identical(self, seed):
        model = HPPModel(6, 70, boundary="periodic")
        state = _state(seed, 6, 70, 4)
        ref = LatticeGasAutomaton(model, state)
        bit = LatticeGasAutomaton(model, state, backend="bitplane")
        for t in range(6):
            np.testing.assert_array_equal(
                ref.step(), bit.step(), err_msg=f"diverged at generation {t}"
            )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_fhp_backends_bit_identical(self, seed):
        model = FHPModel(6, 65, boundary="null")
        state = _state(seed, 6, 65, 6)
        ref = LatticeGasAutomaton(model, state)
        bit = LatticeGasAutomaton(model, state, backend="bitplane")
        np.testing.assert_array_equal(ref.run(6), bit.run(6))


class TestPipelineStageBuffering:
    """The allocation-free stage must stay bit-exact call after call."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_stage_matches_model_step_over_generations(self, seed):
        model = FHPModel(8, 10, boundary="null", chirality="alternate")
        stage = PipelineStage(make_rule(model))
        frame = _state(seed, 8, 10, 6)
        stream = frame.ravel()
        expected = frame
        # Repeated calls exercise the internal double buffer: each
        # result is consumed (copied) before the buffer cycles back.
        for t in range(5):
            out = stage.process(stream, t).copy()
            expected = model.step(expected, t)
            np.testing.assert_array_equal(out.reshape(8, 10), expected)
            stream = out

    def test_consecutive_results_use_distinct_buffers(self):
        # The documented aliasing contract: a result stays valid until
        # the next-but-one call, because process ping-pongs two buffers.
        model = HPPModel(6, 6, boundary="null")
        stage = PipelineStage(make_rule(model))
        frame = _state(0, 6, 6, 4)
        first = stage.process(frame.ravel(), 0)
        second = stage.process(first.copy(), 1)
        assert not np.shares_memory(first, second)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_engine_run_matches_automaton(self, seed):
        # streamed engines implement null boundaries only
        model = HPPModel(8, 8, boundary="null")
        frame = _state(seed, 8, 8, 4)
        engine = SerialPipelineEngine(model)
        result, _ = engine.run(frame, 6)
        expected = LatticeGasAutomaton(model, frame).run(6)
        np.testing.assert_array_equal(result, expected)
