"""Tests for the CFG and reaching-definitions framework.

These pin the *semantics* the rules rely on: loop back edges exist,
``break``/``continue`` route correctly, binds kill and mutations don't,
and the double-buffer swap kills in-place definitions.
"""

import ast

from repro.analysis.dataflow import (
    ReachingDefinitions,
    build_cfg,
    stmt_defs,
    stmt_uses,
)


def cfg_of(src: str):
    tree = ast.parse(src)
    return build_cfg(tree.body), tree


def rd_of(src: str, params=()):
    cfg, tree = cfg_of(src)
    return ReachingDefinitions(cfg, params), cfg, tree


class TestCFG:
    def test_straight_line(self):
        cfg, _ = cfg_of("a = 1\nb = 2\nc = 3\n")
        stmts = cfg.statement_nodes()
        assert len(stmts) == 3
        assert stmts[0].succ == {stmts[1].index}
        assert stmts[1].succ == {stmts[2].index}
        assert cfg.exit in stmts[2].succ

    def test_if_branches_rejoin(self):
        cfg, tree = cfg_of("if c:\n    a = 1\nelse:\n    a = 2\nb = a\n")
        join = cfg.node_of(tree.body[1])
        assert len(join.pred) == 2

    def test_if_without_else_falls_through(self):
        cfg, tree = cfg_of("if c:\n    a = 1\nb = 2\n")
        join = cfg.node_of(tree.body[1])
        header = cfg.node_of(tree.body[0])
        assert header.index in join.pred  # the test-false path

    def test_loop_has_back_edge(self):
        cfg, tree = cfg_of("for i in xs:\n    a = i\n")
        header = cfg.node_of(tree.body[0])
        body = cfg.node_of(tree.body[0].body[0])
        assert header.index in body.succ  # back edge
        assert body.index in header.succ

    def test_break_exits_loop(self):
        src = "while c:\n    if d:\n        break\n    a = 1\nb = 2\n"
        cfg, tree = cfg_of(src)
        brk = cfg.node_of(tree.body[0].body[0].body[0])
        after = cfg.node_of(tree.body[1])
        assert after.index in brk.succ
        header = cfg.node_of(tree.body[0])
        assert header.index not in brk.succ

    def test_continue_targets_header(self):
        src = "while c:\n    if d:\n        continue\n    a = 1\n"
        cfg, tree = cfg_of(src)
        cont = cfg.node_of(tree.body[0].body[0].body[0])
        header = cfg.node_of(tree.body[0])
        assert cont.succ == {header.index}

    def test_return_goes_to_exit(self):
        cfg, tree = cfg_of("def f():\n    return 1\n")
        inner = build_cfg(tree.body[0].body)
        ret = inner.node_of(tree.body[0].body[0])
        assert ret.succ == {inner.exit}

    def test_try_handler_reachable_from_body(self):
        src = "try:\n    a = 1\n    b = 2\nexcept ValueError:\n    c = 3\n"
        cfg, tree = cfg_of(src)
        handler = cfg.node_of(tree.body[0].handlers[0].body[0])
        body_a = cfg.node_of(tree.body[0].body[0])
        body_b = cfg.node_of(tree.body[0].body[1])
        assert body_a.index in handler.pred
        assert body_b.index in handler.pred


class TestDefsAndUses:
    def defs(self, src):
        return stmt_defs(ast.parse(src).body[0])

    def uses(self, src):
        return stmt_uses(ast.parse(src).body[0])

    def test_simple_bind(self):
        assert self.defs("x = 1") == [("x", "bind")]

    def test_tuple_unpack_binds_each(self):
        assert set(self.defs("a, b = b, a")) == {("a", "bind"), ("b", "bind")}

    def test_subscript_store_is_mutate(self):
        assert self.defs("x[0] = 1") == [("x", "mutate")]

    def test_self_attribute_subscript_is_mutate(self):
        assert self.defs("self.buf[...] = v") == [("self.buf", "mutate")]

    def test_out_kwarg_is_mutate(self):
        assert ("dst", "mutate") in self.defs("np.add(a, b, out=dst)")

    def test_copyto_first_arg_is_mutate(self):
        assert ("dst", "mutate") in self.defs("np.copyto(dst, src)")

    def test_augassign_is_aug(self):
        assert self.defs("x[0] |= 1") == [("x", "aug")]

    def test_store_target_base_not_a_use(self):
        assert "x" not in self.uses("x[0] = y")
        assert "y" in self.uses("x[0] = y")

    def test_subscript_index_is_a_use(self):
        assert "i" in self.uses("x[i] = 1")

    def test_out_kwarg_not_a_use(self):
        uses = self.uses("np.add(a, b, out=dst)")
        assert "dst" not in uses
        assert {"a", "b"} <= uses


class TestReachingDefinitions:
    def test_bind_kills_previous(self):
        rd, cfg, tree = rd_of("x = 1\nx = 2\ny = x\n")
        node = cfg.node_of(tree.body[2])
        reaching = [d for d in rd.reaching_in(node.index) if d.name == "x"]
        assert len(reaching) == 1
        assert rd.def_stmt(reaching[0]) is tree.body[1]

    def test_mutate_does_not_kill(self):
        rd, cfg, tree = rd_of("x = mk()\nx[0] = 1\ny = x\n")
        node = cfg.node_of(tree.body[2])
        kinds = {d.kind for d in rd.reaching_in(node.index) if d.name == "x"}
        assert kinds == {"bind", "mutate"}

    def test_loop_mutation_reaches_top_of_body(self):
        src = "while c:\n    y = x[0]\n    x[0] = y\n"
        rd, cfg, tree = rd_of(src)
        read = cfg.node_of(tree.body[0].body[0])
        mutates = [
            d
            for d in rd.reaching_in(read.index)
            if d.name == "x" and d.kind == "mutate"
        ]
        assert mutates  # via the back edge

    def test_swap_kills_mutations(self):
        src = (
            "while c:\n"
            "    dst[...] = f(src)\n"
            "    src, dst = dst, src\n"
        )
        rd, cfg, tree = rd_of(src, params=["src", "dst"])
        write = cfg.node_of(tree.body[0].body[0])
        mutates = [
            d
            for d in rd.reaching_in(write.index)
            if d.kind == "mutate"
        ]
        assert mutates == []  # the swap's binds killed them

    def test_params_reach_entry_statements(self):
        rd, cfg, tree = rd_of("y = x\n", params=["x"])
        node = cfg.node_of(tree.body[0])
        kinds = {d.kind for d in rd.reaching_in(node.index) if d.name == "x"}
        assert kinds == {"param"}

    def test_branch_merges_both_defs(self):
        src = "if c:\n    x = 1\nelse:\n    x = 2\ny = x\n"
        rd, cfg, tree = rd_of(src)
        node = cfg.node_of(tree.body[1])
        defs = [d for d in rd.reaching_in(node.index) if d.name == "x"]
        assert len(defs) == 2
