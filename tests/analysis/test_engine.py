"""Engine-level tests: discovery, parsing, aggregation, rule selection."""

from pathlib import Path

import pytest

from repro.analysis.diagnostics import Severity
from repro.analysis.engine import LintEngine, iter_python_files, lint_paths
from repro.analysis.rules import ALL_RULES, get_rules

FIXTURES = Path(__file__).parent / "fixtures"


class TestDiscovery:
    def test_finds_fixture_files(self):
        files = iter_python_files([FIXTURES])
        names = {f.name for f in files}
        assert "bad_defaults.py" in names
        assert "bad_float_eq.py" in names
        assert "clean.py" in names

    def test_single_file(self):
        files = iter_python_files([FIXTURES / "bad_except.py"])
        assert len(files) == 1

    def test_deduplicates_overlapping_paths(self):
        files = iter_python_files([FIXTURES, FIXTURES / "bad_except.py"])
        assert len(files) == len(set(files))

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            iter_python_files([FIXTURES / "no_such_dir"])

    def test_deterministic_order(self):
        assert iter_python_files([FIXTURES]) == iter_python_files([FIXTURES])


class TestEngine:
    def test_syntax_error_becomes_rpr000(self):
        engine = LintEngine()
        found = engine.lint_source("def broken(:\n", "oops.py")
        assert len(found) == 1
        assert found[0].rule == "RPR000"
        assert found[0].severity is Severity.ERROR

    def test_clean_fixture_has_no_findings(self):
        report = lint_paths([FIXTURES / "core" / "clean.py"])
        assert report.diagnostics == ()
        assert report.exit_code == 0

    def test_fixture_tree_fails(self):
        report = lint_paths([FIXTURES])
        assert report.exit_code == 1
        assert report.error_count > 0

    def test_diagnostics_sorted(self):
        report = lint_paths([FIXTURES])
        keys = [d.sort_key() for d in report.diagnostics]
        assert keys == sorted(keys)

    def test_files_checked_counts_all(self):
        report = lint_paths([FIXTURES])
        assert report.files_checked == len(iter_python_files([FIXTURES]))


class TestRuleRegistry:
    def test_ids_unique_and_ordered(self):
        # Ids are unique and sorted but not contiguous: the 0xx block is
        # the syntactic rules, the 1xx block the dataflow rule families.
        ids = [r.id for r in ALL_RULES]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))
        assert {"RPR001", "RPR101", "RPR102", "RPR110"} <= set(ids)

    def test_select_subset(self):
        rules = get_rules(select=["RPR001", "RPR005"])
        assert [r.id for r in rules] == ["RPR001", "RPR005"]

    def test_ignore_subset(self):
        rules = get_rules(ignore=["RPR003"])
        assert "RPR003" not in [r.id for r in rules]

    def test_unknown_id_raises(self):
        with pytest.raises(ValueError, match="unknown rule id"):
            get_rules(select=["RPR999"])

    def test_select_flows_through_lint_paths(self):
        report = lint_paths([FIXTURES], select=["RPR005"])
        assert {d.rule for d in report.diagnostics} == {"RPR005"}
