"""Sanitizer tests: every registered check passes on the real code, and
a deliberately corrupted rule table is caught with a state-level detail."""

import json

import numpy as np
import pytest

from repro.analysis.invariants import (
    check_design_algebra,
    check_fhp_tables,
    check_hpp_table,
    check_ndim_tables,
    check_pebble_legality,
    check_spa_engine_formulas,
    check_table_exhaustive,
    check_wsa_engine_formulas,
)
from repro.analysis.sanitizer import (
    available_checks,
    format_results_json,
    run_checks,
)
from repro.lgca.hpp import HPP_VELOCITIES, hpp_collision_table


class TestRunAll:
    def test_all_checks_pass_on_the_repo(self):
        results = run_checks()
        failed = [r for r in results if not r.passed]
        assert not failed, [f"{r.name}: {r.detail}" for r in failed]

    def test_hpp_is_exhaustive_over_16_states(self):
        (result,) = check_hpp_table()
        assert result.passed
        assert "16/16" in result.detail

    def test_fhp_is_exhaustive_over_64_and_128_states(self):
        details = {r.name: r.detail for r in check_fhp_tables()}
        assert "64/64" in details["fhp6/left/conservation"]
        assert "128/128" in details["fhp7/left/conservation"]
        assert "128/128" in details["fhp-sat/right/conservation"]

    def test_chirality_tables_are_mutual_inverses(self):
        byname = {r.name: r for r in check_fhp_tables()}
        for label in ("fhp6", "fhp7", "fhp-sat"):
            assert byname[f"{label}/chirality-inverse"].passed

    def test_subset_selection(self):
        results = run_checks(["hpp"])
        assert [r.name for r in results] == ["hpp/conservation"]

    def test_unknown_group_raises(self):
        with pytest.raises(ValueError, match="unknown check group"):
            run_checks(["warp-drive"])

    def test_registry_lists_all_groups(self):
        assert available_checks() == [
            "hpp",
            "fhp",
            "ndim",
            "pebble",
            "wsa",
            "spa",
            "machines",
            "design",
        ]

    def test_json_rendering_parses(self):
        results = run_checks(["hpp", "design"])
        payload = json.loads(format_results_json(results))
        assert payload["version"] == 1
        assert payload["summary"]["failed"] == 0
        assert all({"name", "status", "detail"} <= set(c) for c in payload["checks"])


class TestCorruptedTables:
    def test_mass_violation_caught(self):
        table = np.asarray(hpp_collision_table().table).copy()
        table[0b0001] = 0b0011  # one particle in, two out
        result = check_table_exhaustive("hpp-corrupt", table, HPP_VELOCITIES)
        assert not result.passed
        assert "mass broken at state 0x1" in result.detail

    def test_momentum_violation_caught(self):
        table = np.asarray(hpp_collision_table().table).copy()
        # +x particle turned into +y particle: mass fine, momentum rotated.
        table[0b0001] = 0b0010
        result = check_table_exhaustive("hpp-corrupt", table, HPP_VELOCITIES)
        assert not result.passed
        assert "momentum broken" in result.detail

    def test_non_bijective_table_caught(self):
        table = np.asarray(hpp_collision_table().table).copy()
        # Merge two distinct head-on states; conservation holds, but the
        # deterministic microdynamics loses information.
        table[0b0101] = 0b0101
        result = check_table_exhaustive("hpp-corrupt", table, HPP_VELOCITIES)
        assert not result.passed
        assert "not a permutation" in result.detail

    def test_out_of_range_table_caught(self):
        table = np.asarray(hpp_collision_table().table).copy()
        table[3] = 99
        result = check_table_exhaustive("hpp-corrupt", table, HPP_VELOCITIES)
        assert not result.passed

    def test_crashing_group_reports_instead_of_raising(self, monkeypatch):
        import repro.analysis.sanitizer as sanitizer

        def boom():
            raise RuntimeError("kaput")

        monkeypatch.setitem(sanitizer.CHECK_GROUPS, "hpp", boom)
        results = run_checks(["hpp"])
        assert len(results) == 1
        assert not results[0].passed
        assert "kaput" in results[0].detail


class TestIndividualGroups:
    def test_ndim_covers_d_1_through_4(self):
        names = [r.name for r in check_ndim_tables()]
        assert names == [f"ndim/d={d}/conservation" for d in (1, 2, 3, 4)]

    def test_pebble_schedules_all_legal(self):
        results = check_pebble_legality()
        assert {r.name for r in results} == {
            "pebble/per-site",
            "pebble/row-cache",
            "pebble/trapezoid",
            "pebble/lru",
        }
        assert all(r.passed for r in results)

    def test_wsa_formulas_within_fill_latency(self):
        assert all(r.passed for r in check_wsa_engine_formulas())

    def test_spa_formulas_within_fill_latency(self):
        assert all(r.passed for r in check_spa_engine_formulas())

    def test_design_algebra_tight_at_paper_point(self):
        byname = {r.name: r for r in check_design_algebra()}
        assert byname["design/wsa-feasible"].passed
        assert "P=4, L=785" in byname["design/wsa-feasible"].detail
        assert byname["design/spa-feasible"].passed
