"""Tests for the lint baseline ratchet and the ``--strict`` CLI mode."""

import json

import pytest

from repro.analysis.baseline import (
    BASELINE_SCHEMA,
    BASELINE_VERSION,
    Baseline,
    BaselineEntry,
    baseline_from_diagnostics,
    load_baseline,
    save_baseline,
)
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.cli import main


def diag(path="src/x.py", line=3, rule="RPR101"):
    return Diagnostic(
        path=path,
        line=line,
        col=0,
        rule=rule,
        severity=Severity.ERROR,
        message="m",
    )


class TestBaselineModel:
    def test_covers_by_path_and_rule(self):
        base = Baseline(entries=(BaselineEntry("src/x.py", "RPR101"),))
        assert base.covers(diag())
        assert not base.covers(diag(rule="RPR102"))
        assert not base.covers(diag(path="src/y.py"))

    def test_fresh_findings(self):
        base = Baseline(entries=(BaselineEntry("src/x.py", "RPR101"),))
        fresh = base.fresh_findings([diag(), diag(rule="RPR110")])
        assert [d.rule for d in fresh] == ["RPR110"]

    def test_stale_entries(self):
        base = Baseline(
            entries=(
                BaselineEntry("src/x.py", "RPR101"),
                BaselineEntry("src/gone.py", "RPR102"),
            )
        )
        stale = base.stale_entries([diag()])
        assert stale == [BaselineEntry("src/gone.py", "RPR102")]

    def test_from_diagnostics_dedupes(self):
        base = baseline_from_diagnostics([diag(line=3), diag(line=9)])
        assert len(base.entries) == 1


class TestBaselineIO:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        base = baseline_from_diagnostics([diag()])
        save_baseline(path, base)
        loaded = load_baseline(path)
        assert loaded.entries == base.entries
        payload = json.loads(path.read_text())
        assert payload["schema"] == BASELINE_SCHEMA
        assert payload["version"] == BASELINE_VERSION

    def test_missing_file_is_empty(self, tmp_path):
        base = load_baseline(tmp_path / "nope.json")
        assert base.entries == ()

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "schema": BASELINE_SCHEMA,
                    "version": BASELINE_VERSION + 1,
                    "entries": [],
                }
            )
        )
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": "other", "version": 1}))
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{broken")
        with pytest.raises(ValueError):
            load_baseline(path)


CLEAN = "X = 1\n"
# A buffer hazard RPR110 will flag (engine class + in-place tick update).
DIRTY = (
    "class SerialPipelineEngine:\n"
    "    def run(self, front, steps):\n"
    "        for _ in range(steps):\n"
    "            front[1:-1] = front[:-2]\n"
)


class TestStrictCLI:
    def lint(self, *argv):
        return main(["lint", *argv])

    def test_strict_clean_tree_passes(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, Baseline(entries=()))
        code = self.lint("--strict", "--baseline", str(baseline), str(tmp_path))
        assert code == 0

    def test_strict_fails_on_fresh_finding(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(DIRTY)
        baseline = tmp_path / "baseline.json"
        save_baseline(baseline, Baseline(entries=()))
        code = self.lint("--strict", "--baseline", str(baseline), str(tmp_path))
        assert code == 1
        err = capsys.readouterr().err
        assert "not in baseline" in err

    def test_strict_baselined_finding_passes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(DIRTY)
        baseline = tmp_path / "baseline.json"
        save_baseline(
            baseline, Baseline(entries=(BaselineEntry(str(bad), "RPR110"),))
        )
        code = self.lint("--strict", "--baseline", str(baseline), str(tmp_path))
        assert code == 0

    def test_strict_fails_on_stale_entry(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        baseline = tmp_path / "baseline.json"
        save_baseline(
            baseline,
            Baseline(entries=(BaselineEntry("src/gone.py", "RPR110"),)),
        )
        code = self.lint("--strict", "--baseline", str(baseline), str(tmp_path))
        assert code == 1
        err = capsys.readouterr().err
        assert "stale baseline entry" in err

    def test_unreadable_baseline_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{broken")
        code = self.lint("--strict", "--baseline", str(baseline), str(tmp_path))
        assert code == 2

    def test_write_baseline(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(DIRTY)
        baseline = tmp_path / "baseline.json"
        code = self.lint(
            "--write-baseline", "--baseline", str(baseline), str(tmp_path)
        )
        assert code == 0
        loaded = load_baseline(baseline)
        assert BaselineEntry(str(bad), "RPR110") in loaded.entries
        # and the written baseline makes a subsequent strict run pass
        assert (
            self.lint("--strict", "--baseline", str(baseline), str(tmp_path))
            == 0
        )

    def test_repo_baseline_is_empty_and_strict_passes_on_src(self, capsys):
        # The committed ratchet: the tree is clean, the baseline empty.
        from pathlib import Path

        repo_baseline = Path(".repro-lint-baseline.json")
        assert repo_baseline.is_file()
        payload = json.loads(repo_baseline.read_text())
        assert payload["entries"] == []
        assert self.lint("--strict", "src") == 0
