"""Unit + property tests for embeddings and Theorem 1 (span >= n)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lattice.embedding import (
    Embedding,
    hex_diagonal_pair_distance,
    hex_neighborhood_stream_diameter,
    array_span,
    block_embedding,
    column_major_embedding,
    diagonal_embedding,
    minimum_span_lower_bound,
    neighborhood_stream_diameter,
    row_major_embedding,
    snake_embedding,
)

ALL_EMBEDDINGS = [
    row_major_embedding,
    column_major_embedding,
    snake_embedding,
    block_embedding,
    diagonal_embedding,
]


class TestEmbeddingValidation:
    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError, match="permutation"):
            Embedding("bad", np.zeros((2, 2), dtype=int))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            Embedding("bad", np.arange(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Embedding("bad", np.empty((0, 0), dtype=int))

    def test_stream_order_is_inverse(self):
        emb = snake_embedding(3, 3)
        order = emb.stream_order()
        for pos, (r, c) in enumerate(order):
            assert emb.positions[r, c] == pos


class TestArraySpan:
    def test_row_major_span_is_cols(self):
        emb = row_major_embedding(5, 7)
        assert emb.span() == 7  # vertical neighbors are `cols` apart

    def test_square_row_major_span(self):
        assert row_major_embedding(6).span() == 6

    def test_column_major_span(self):
        assert column_major_embedding(5, 7).span() == 5

    def test_snake_span(self):
        # Within-row steps are 1; the worst vertical neighbor pair sits
        # at the column where consecutive reversed rows are farthest
        # apart: 2*cols - 1.
        assert snake_embedding(4, 5).span() == 2 * 5 - 1

    def test_snake_span_explicit(self):
        emb = snake_embedding(3, 4)
        # rows: [0 1 2 3], [7 6 5 4], [8 9 10 11]
        assert emb.span() == array_span(emb.positions)
        assert emb.span() == 7  # |0-7| = 7 at column 0

    def test_single_row(self):
        assert row_major_embedding(1, 8).span() == 1

    def test_single_site(self):
        assert Embedding("one", np.array([[0]])).span() == 0

    def test_array_span_rejects_1d(self):
        with pytest.raises(ValueError):
            array_span(np.arange(5))

    @pytest.mark.parametrize("make", ALL_EMBEDDINGS)
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_theorem1_all_embeddings(self, make, n):
        """Theorem 1: any n x n placement has span >= n."""
        emb = make(n)
        assert emb.span() >= minimum_span_lower_bound(n)

    @given(st.integers(2, 6), st.randoms(use_true_random=False))
    def test_theorem1_random_placements(self, n, rnd):
        """Property: random permutation placements obey span >= n."""
        perm = list(range(n * n))
        rnd.shuffle(perm)
        emb = Embedding("random", np.array(perm).reshape(n, n))
        assert emb.span() >= n

    def test_row_major_is_span_optimal_up_to_constant(self):
        """Row-major's span equals the Theorem 1 lower bound exactly."""
        for n in (2, 4, 9):
            assert row_major_embedding(n).span() == n


class TestNeighborhoodStreamDiameter:
    def test_row_major_radius_ball_diameter_is_rn(self):
        """Radius-r Manhattan ball spans r·n stream positions row-major."""
        for n in (4, 7, 10):
            emb = row_major_embedding(n)
            assert emb.neighborhood_diameter(radius=2) == 2 * n

    def test_radius_one_diameter_row_major(self):
        emb = row_major_embedding(6)
        assert emb.neighborhood_diameter(radius=1) == 6

    def test_rectangular(self):
        emb = row_major_embedding(5, 9)
        assert emb.neighborhood_diameter(radius=2) == 2 * 9

    def test_hex_neighborhood_diameter_is_2n(self):
        """Full axial hex update neighborhood spans exactly 2n."""
        for n in (4, 7, 10):
            emb = row_major_embedding(n)
            assert hex_neighborhood_stream_diameter(emb.positions) == 2 * n

    def test_hex_diagonal_pair_is_2n_minus_2(self):
        """The paper's quoted figure: the extreme short-diagonal pair of
        one neighborhood sits 2n - 2 stream positions apart."""
        for n in (4, 7, 10):
            emb = row_major_embedding(n)
            assert hex_diagonal_pair_distance(emb.positions) == 2 * n - 2

    def test_hex_diagonal_small_grids(self):
        assert hex_diagonal_pair_distance(row_major_embedding(2).positions) == 0

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            neighborhood_stream_diameter(row_major_embedding(4).positions, radius=0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            neighborhood_stream_diameter(np.arange(6), radius=2)

    @pytest.mark.parametrize("make", ALL_EMBEDDINGS)
    def test_diameter_at_least_span(self, make):
        emb = make(6)
        assert emb.neighborhood_diameter(radius=2) >= emb.span()

    def test_n1000_magnitude_matches_paper(self):
        """Paper: 'If n = 1000, then each PE would require about 2000
        sites worth of memory.'"""
        emb = row_major_embedding(1000)
        assert hex_neighborhood_stream_diameter(emb.positions) == 2000
        assert hex_diagonal_pair_distance(emb.positions) == 1998


class TestBlockEmbedding:
    def test_block_2_structure(self):
        emb = block_embedding(4, 4, block=2)
        assert emb.positions[0, 0] == 0
        assert emb.positions[0, 1] == 1
        assert emb.positions[1, 0] == 2
        assert emb.positions[1, 1] == 3
        assert emb.positions[0, 2] == 4

    def test_block_non_dividing(self):
        emb = block_embedding(5, 5, block=2)
        assert sorted(emb.positions.ravel()) == list(range(25))

    def test_block_span_still_at_least_n(self):
        assert block_embedding(6, 6, block=3).span() >= 6


class TestDiagonalEmbedding:
    def test_is_permutation(self):
        emb = diagonal_embedding(4, 6)
        assert sorted(emb.positions.ravel()) == list(range(24))

    def test_antidiagonal_order(self):
        emb = diagonal_embedding(3, 3)
        assert emb.positions[0, 0] == 0
        # second anti-diagonal: (0,1), (1,0)
        assert {emb.positions[0, 1], emb.positions[1, 0]} == {1, 2}

    def test_span_theta_n(self):
        emb = diagonal_embedding(8, 8)
        assert 8 <= emb.span() <= 2 * 8
