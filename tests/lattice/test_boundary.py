"""Unit tests for repro.lattice.boundary."""

import numpy as np
import pytest

from repro.lattice.boundary import (
    NullBoundary,
    PeriodicBoundary,
    ReflectingBoundary,
    TruncatedBoundary,
    make_boundary,
)


class TestMakeBoundary:
    @pytest.mark.parametrize("name", ["null", "periodic", "reflecting", "truncated"])
    def test_registry(self, name):
        assert make_boundary(name).name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown boundary"):
            make_boundary("toroidal")

    def test_kwargs_forwarded(self):
        b = make_boundary("null", fill_value=7)
        assert b.fill_value == 7


class TestNullBoundary:
    def test_resolve_inside(self):
        assert NullBoundary().resolve(3, 10) == 3

    def test_resolve_outside_is_none(self):
        b = NullBoundary()
        assert b.resolve(-1, 10) is None
        assert b.resolve(10, 10) is None

    def test_exists(self):
        b = NullBoundary()
        assert b.exists(0, 5)
        assert not b.exists(5, 5)

    def test_pad_fills_constant(self):
        field = np.ones((2, 2))
        padded = NullBoundary(fill_value=0).pad(field, 1)
        assert padded.shape == (4, 4)
        assert padded[0, 0] == 0
        assert padded[1, 1] == 1


class TestPeriodicBoundary:
    def test_wraps(self):
        b = PeriodicBoundary()
        assert b.resolve(-1, 10) == 9
        assert b.resolve(10, 10) == 0
        assert b.resolve(-11, 10) == 9

    def test_pad_wraps_values(self):
        field = np.arange(4).reshape(2, 2)
        padded = b = PeriodicBoundary().pad(field, 1)
        assert padded[0, 1] == field[-1, 0]


class TestReflectingBoundary:
    def test_mirror(self):
        b = ReflectingBoundary()
        assert b.resolve(-1, 10) == 1
        assert b.resolve(10, 10) == 8
        assert b.resolve(-2, 10) == 2

    def test_size_one(self):
        assert ReflectingBoundary().resolve(5, 1) == 0

    def test_pad_reflects(self):
        field = np.array([[1, 2], [3, 4]])
        padded = ReflectingBoundary().pad(field, 1)
        assert padded[0, 1] == 3  # reflection of row 1

    def test_round_trip_period(self):
        b = ReflectingBoundary()
        # reflect(x) is periodic with period 2(n-1)
        n = 6
        assert b.resolve(3 + 2 * (n - 1), n) == 3


class TestTruncatedBoundary:
    def test_outside_is_none(self):
        b = TruncatedBoundary()
        assert b.resolve(-1, 4) is None
        assert b.resolve(4, 4) is None

    def test_inside_identity(self):
        assert TruncatedBoundary().resolve(2, 4) == 2

    def test_pad_replicates_edge(self):
        field = np.array([[1, 2], [3, 4]])
        padded = TruncatedBoundary().pad(field, 1)
        assert padded[0, 1] == 1
