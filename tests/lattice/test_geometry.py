"""Unit + property tests for repro.lattice.geometry."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lattice.geometry import (
    HexagonalLattice,
    OrthogonalLattice,
    manhattan_ball_size,
)


class TestManhattanBallSize:
    def test_orthant_closed_form(self):
        # C(j + d, d)
        assert manhattan_ball_size(2, 3) == math.comb(5, 2)
        assert manhattan_ball_size(3, 4) == math.comb(7, 3)

    def test_d1_orthant(self):
        assert manhattan_ball_size(1, 5) == 6  # 0..5

    def test_d1_full(self):
        assert manhattan_ball_size(1, 5, orthant=False) == 11  # -5..5

    def test_d2_full_diamond(self):
        # |x| + |y| <= 2: 13 points
        assert manhattan_ball_size(2, 2, orthant=False) == 13

    def test_zero_radius(self):
        assert manhattan_ball_size(4, 0) == 1
        assert manhattan_ball_size(4, 0, orthant=False) == 1

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            manhattan_ball_size(2, -1)

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            manhattan_ball_size(0, 3)

    @given(st.integers(1, 4), st.integers(0, 12))
    def test_orthant_exceeds_lemma8_bound(self, d, j):
        """The exact ball strictly exceeds j^d / d! (Lemma 8's RHS)."""
        assert manhattan_ball_size(d, j) > (j**d) / math.factorial(d)

    @given(st.integers(1, 3), st.integers(0, 10))
    def test_full_ball_at_least_orthant(self, d, j):
        assert manhattan_ball_size(d, j, orthant=False) >= manhattan_ball_size(d, j)


class TestOrthogonalLattice:
    def test_cube_constructor(self):
        lat = OrthogonalLattice.cube(3, 4)
        assert lat.shape == (4, 4, 4)
        assert lat.num_sites == 64
        assert lat.d == 3

    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError):
            OrthogonalLattice(())

    def test_rejects_zero_side(self):
        with pytest.raises(ValueError):
            OrthogonalLattice((4, 0))

    def test_index_site_roundtrip(self):
        lat = OrthogonalLattice((3, 5, 2))
        for i in range(lat.num_sites):
            assert lat.index(lat.site(i)) == i

    def test_index_is_row_major(self):
        lat = OrthogonalLattice((3, 4))
        assert lat.index((0, 0)) == 0
        assert lat.index((0, 3)) == 3
        assert lat.index((1, 0)) == 4
        assert lat.index((2, 3)) == 11

    def test_index_rejects_outside(self):
        lat = OrthogonalLattice((3, 3))
        with pytest.raises(ValueError):
            lat.index((3, 0))

    def test_site_rejects_out_of_range(self):
        lat = OrthogonalLattice((2, 2))
        with pytest.raises(ValueError):
            lat.site(4)

    def test_neighborhood_includes_self(self):
        lat = OrthogonalLattice((5, 5))
        nbhd = lat.neighborhood((2, 2))
        assert (2, 2) in nbhd
        assert len(nbhd) == 5  # self + 4 neighbors

    def test_corner_neighborhood(self):
        lat = OrthogonalLattice((5, 5))
        assert len(lat.neighborhood((0, 0))) == 3  # self + 2

    def test_degree(self):
        lat = OrthogonalLattice.cube(3, 5)
        assert lat.degree((2, 2, 2)) == 6
        assert lat.degree((0, 0, 0)) == 3

    def test_distance_is_manhattan(self):
        lat = OrthogonalLattice((10, 10))
        assert lat.distance((0, 0), (3, 4)) == 7
        assert lat.distance((5, 5), (5, 5)) == 0

    def test_distance_rejects_outside(self):
        lat = OrthogonalLattice((4, 4))
        with pytest.raises(ValueError):
            lat.distance((0, 0), (4, 4))

    def test_reachable_within_interior_vs_corner(self):
        lat = OrthogonalLattice((21, 21))
        corner = lat.reachable_within((0, 0), 3)
        center = lat.reachable_within((10, 10), 3)
        assert corner == manhattan_ball_size(2, 3)
        assert center == manhattan_ball_size(2, 3, orthant=False)
        assert corner < center

    def test_reachable_within_radius_zero(self):
        lat = OrthogonalLattice((4, 4))
        assert lat.reachable_within((1, 1), 0) == 1

    def test_reachable_within_caps_at_lattice(self):
        lat = OrthogonalLattice((3, 3))
        assert lat.reachable_within((1, 1), 100) == 9

    def test_min_reachable_is_corner(self):
        lat = OrthogonalLattice((9, 9))
        assert lat.min_reachable_within(4) == lat.reachable_within((0, 0), 4)

    @given(st.integers(1, 3), st.integers(2, 6), st.integers(0, 5))
    def test_reachable_within_matches_bruteforce(self, d, side, j):
        lat = OrthogonalLattice.cube(d, side)
        origin = (0,) * d
        brute = sum(
            1 for s in lat.sites() if lat.distance(origin, s) <= j
        )
        assert lat.reachable_within(origin, j) == brute

    def test_sites_enumeration_count(self):
        lat = OrthogonalLattice((3, 4))
        assert len(list(lat.sites())) == 12

    def test_contains(self):
        lat = OrthogonalLattice((2, 2))
        assert lat.contains((1, 1))
        assert not lat.contains((2, 0))
        assert not lat.contains((0,))  # wrong dimension


class TestHexagonalLattice:
    def test_sizes(self):
        hex_ = HexagonalLattice(4, 6)
        assert hex_.num_sites == 24
        assert hex_.num_directions == 6

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            HexagonalLattice(0, 5)

    def test_opposite(self):
        for i in range(6):
            assert HexagonalLattice.opposite(HexagonalLattice.opposite(i)) == i
            assert HexagonalLattice.opposite(i) == (i + 3) % 6

    def test_opposite_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            HexagonalLattice.opposite(6)

    def test_neighbor_even_row(self):
        hex_ = HexagonalLattice(6, 6)
        assert hex_.neighbor((2, 3), 0) == (2, 4)
        assert hex_.neighbor((2, 3), 1) == (1, 3)
        assert hex_.neighbor((2, 3), 2) == (1, 2)

    def test_neighbor_odd_row(self):
        hex_ = HexagonalLattice(6, 6)
        assert hex_.neighbor((3, 3), 1) == (2, 4)
        assert hex_.neighbor((3, 3), 2) == (2, 3)

    def test_neighbor_off_grid_is_none(self):
        hex_ = HexagonalLattice(4, 4)
        assert hex_.neighbor((0, 0), 2) is None

    def test_neighbor_rejects_bad_direction(self):
        hex_ = HexagonalLattice(4, 4)
        with pytest.raises(ValueError):
            hex_.neighbor((0, 0), -1)

    def test_neighbor_rejects_bad_site(self):
        hex_ = HexagonalLattice(4, 4)
        with pytest.raises(ValueError):
            hex_.neighbor((4, 0), 0)

    def test_interior_neighborhood_has_seven(self):
        hex_ = HexagonalLattice(6, 6)
        assert len(hex_.neighborhood((3, 3))) == 7

    def test_neighbor_reciprocity(self):
        """x's direction-i neighbor has x as its direction-(i+3) neighbor."""
        hex_ = HexagonalLattice(8, 8)
        for r in range(8):
            for c in range(8):
                for i in range(6):
                    n = hex_.neighbor((r, c), i)
                    if n is not None:
                        assert hex_.neighbor(n, (i + 3) % 6) == (r, c)

    def test_direction_vectors_unit_norm(self):
        vecs = HexagonalLattice(2, 2).direction_vectors()
        assert np.allclose(np.linalg.norm(vecs, axis=1), 1.0)

    def test_direction_vectors_sum_to_zero(self):
        vecs = HexagonalLattice(2, 2).direction_vectors()
        assert np.allclose(vecs.sum(axis=0), 0.0)

    def test_opposite_vectors_negate(self):
        vecs = HexagonalLattice(2, 2).direction_vectors()
        for i in range(6):
            assert np.allclose(vecs[i], -vecs[(i + 3) % 6])
