"""Unit + property tests for the 1-D CA substrate (reference [16] workload)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lgca.wolfram import ElementaryCA, ParityCA


class TestElementaryCA:
    def test_rejects_bad_rule(self):
        with pytest.raises(ValueError):
            ElementaryCA(256)
        with pytest.raises(ValueError):
            ElementaryCA(90.5)

    def test_rejects_bad_boundary(self):
        with pytest.raises(ValueError):
            ElementaryCA(90, boundary="reflect")

    def test_rule_table_bits(self):
        table = ElementaryCA(110).rule_table()
        assert table.tolist() == [(110 >> i) & 1 for i in range(8)]

    def test_rule90_is_xor_of_neighbors(self):
        ca = ElementaryCA(90)
        tape = np.array([0, 1, 1, 0, 1], dtype=np.uint8)
        out = ca.step(tape)
        expected = np.roll(tape, 1) ^ np.roll(tape, -1)
        assert np.array_equal(out, expected)

    def test_rule254_spreads(self):
        ca = ElementaryCA(254, boundary="null")
        tape = np.zeros(9, dtype=np.uint8)
        tape[4] = 1
        out = ca.run(tape, 3)
        assert out[1:8].all() and out[0] == 0

    def test_rule0_dies(self):
        ca = ElementaryCA(0)
        tape = np.ones(8, dtype=np.uint8)
        assert ca.step(tape).sum() == 0

    def test_sierpinski_row_counts(self):
        """Rule 90 from a point: row t has 2^(popcount t) ones."""
        ca = ElementaryCA(90, boundary="null")
        tape = np.zeros(65, dtype=np.uint8)
        tape[32] = 1
        h = ca.history(tape, 16)
        for t in range(17):
            assert h[t].sum() == 2 ** bin(t).count("1")

    def test_history_first_row_is_input(self):
        ca = ElementaryCA(30)
        tape = np.array([1, 0, 0, 1], dtype=np.uint8)
        assert np.array_equal(ca.history(tape, 3)[0], tape)

    def test_rejects_non_binary_tape(self):
        with pytest.raises(ValueError, match="0 or 1"):
            ElementaryCA(30).step(np.array([0, 2, 1]))

    def test_rejects_empty_tape(self):
        with pytest.raises(ValueError):
            ElementaryCA(30).step(np.array([], dtype=np.uint8))

    def test_null_boundary_edges_read_zero(self):
        ca = ElementaryCA(90, boundary="null")
        tape = np.array([1, 0, 0, 0], dtype=np.uint8)
        out = ca.step(tape)
        # cell 0 reads left=0, right=0 -> 0 XOR 0 = 0; cell 1 reads 1
        assert out.tolist() == [0, 1, 0, 0]

    @given(st.integers(0, 255), st.lists(st.integers(0, 1), min_size=3, max_size=24))
    def test_shift_invariance_periodic(self, rule, cells):
        """Periodic CA commutes with tape rotation."""
        ca = ElementaryCA(rule)
        tape = np.array(cells, dtype=np.uint8)
        a = np.roll(ca.step(tape), 3)
        b = ca.step(np.roll(tape, 3))
        assert np.array_equal(a, b)


class TestParityCA:
    def test_rejects_empty_taps(self):
        with pytest.raises(ValueError):
            ParityCA(taps=())

    def test_rejects_duplicate_taps(self):
        with pytest.raises(ValueError, match="duplicates"):
            ParityCA(taps=(1, 1))

    def test_radius(self):
        assert ParityCA(taps=(-3, 0, 2)).radius == 3

    def test_default_is_rule90(self):
        p = ParityCA()
        e = ElementaryCA(90)
        tape = np.array([1, 0, 1, 1, 0, 0, 1], dtype=np.uint8)
        assert np.array_equal(p.step(tape), e.step(tape))

    @given(
        st.lists(st.integers(0, 1), min_size=4, max_size=16),
        st.lists(st.integers(0, 1), min_size=4, max_size=16),
        st.integers(1, 5),
    )
    def test_linearity(self, a_cells, b_cells, gens):
        """Evolution distributes over XOR of initial tapes."""
        n = min(len(a_cells), len(b_cells))
        a = np.array(a_cells[:n], dtype=np.uint8)
        b = np.array(b_cells[:n], dtype=np.uint8)
        ca = ParityCA(taps=(-1, 0, 1))
        lhs = ca.run(a ^ b, gens)
        rhs = ca.run(a, gens) ^ ca.run(b, gens)
        assert np.array_equal(lhs, rhs)

    def test_null_boundary_shift(self):
        ca = ParityCA(taps=(1,), boundary="null")
        tape = np.array([0, 0, 1, 0], dtype=np.uint8)
        # each cell reads its right neighbor: the pattern shifts left
        assert ca.step(tape).tolist() == [0, 1, 0, 0]
