"""Unit tests for collision tables and conservation verification."""

import numpy as np
import pytest

from repro.lgca.collision import (
    CollisionTable,
    ConservationError,
    verify_conservation,
)
from repro.lgca.collision import identity_table
from repro.lgca.hpp import HPP_VELOCITIES


def _id_table(bits: int) -> np.ndarray:
    return np.arange(1 << bits, dtype=np.uint16)


class TestVerifyConservation:
    def test_identity_conserves(self):
        verify_conservation(_id_table(4), HPP_VELOCITIES)

    def test_mass_violation_detected(self):
        table = _id_table(4)
        table[0b0001] = 0b0011  # creates a particle
        with pytest.raises(ConservationError, match="mass"):
            verify_conservation(table, HPP_VELOCITIES)

    def test_momentum_violation_detected(self):
        table = _id_table(4)
        # Swap +x particle for +y particle: mass ok, momentum broken.
        table[0b0001] = 0b0010
        with pytest.raises(ConservationError, match="momentum"):
            verify_conservation(table, HPP_VELOCITIES)

    def test_momentum_check_can_be_disabled(self):
        table = _id_table(4)
        table[0b0001] = 0b0010
        verify_conservation(table, HPP_VELOCITIES, check_momentum=False)

    def test_out_of_range_output(self):
        table = _id_table(4)
        table[3] = 16
        with pytest.raises(ConservationError, match="outside"):
            verify_conservation(table, HPP_VELOCITIES)

    def test_wrong_table_size(self):
        with pytest.raises(ValueError, match="shape"):
            verify_conservation(_id_table(3), HPP_VELOCITIES)

    def test_bad_velocity_shape(self):
        with pytest.raises(ValueError, match=r"\(C, 2\)"):
            verify_conservation(_id_table(2), np.zeros((2, 3)))

    def test_ignore_mask_excludes_flag_bits(self):
        # 5-bit states: 4 velocity channels + 1 flag bit the rule toggles.
        velocities = np.vstack([HPP_VELOCITIES, [(0.0, 0.0)]])
        table = np.arange(32, dtype=np.uint16)
        table[0b00001] = 0b10001  # sets the flag bit: mass changes unless masked
        with pytest.raises(ConservationError):
            verify_conservation(table, velocities)
        verify_conservation(table, velocities, ignore_mask=0b10000)


class TestCollisionTable:
    def test_construction_verifies(self):
        bad = _id_table(4)
        bad[1] = 3
        with pytest.raises(ConservationError):
            CollisionTable(name="bad", table=bad, velocities=HPP_VELOCITIES)

    def test_callable_scalar_and_array(self):
        t = identity_table(4, HPP_VELOCITIES)
        assert t(5) == 5
        arr = np.array([1, 2, 3], dtype=np.uint8)
        assert np.array_equal(t(arr), arr)

    def test_table_is_readonly(self):
        t = identity_table(4, HPP_VELOCITIES)
        with pytest.raises(ValueError):
            t.table[0] = 1

    def test_is_identity_and_fixed_points(self):
        t = identity_table(4, HPP_VELOCITIES)
        assert t.is_identity()
        assert t.fixed_points().size == 16

    def test_is_involution(self):
        # A swap of two momentum-equivalent states is an involution.
        table = _id_table(4)
        table[0b0101], table[0b1010] = 0b1010, 0b0101
        t = CollisionTable(name="swap", table=table, velocities=HPP_VELOCITIES)
        assert t.is_involution()
        assert not t.is_identity()

    def test_compose(self):
        table = _id_table(4)
        table[0b0101], table[0b1010] = 0b1010, 0b0101
        t = CollisionTable(name="swap", table=table, velocities=HPP_VELOCITIES)
        composed = t.compose(t)
        assert composed.is_identity()
        assert "∘" in composed.name

    def test_compose_rejects_mismatched_channels(self):
        t4 = identity_table(4, HPP_VELOCITIES)
        t6 = identity_table(6, np.zeros((6, 2)))
        with pytest.raises(ValueError):
            t4.compose(t6)

    def test_num_properties(self):
        t = identity_table(4, HPP_VELOCITIES)
        assert t.num_channels == 4
        assert t.num_states == 16
