"""Unit tests for the reference LGCA driver and obstacle handling."""

import numpy as np
import pytest

from repro.lgca.automaton import (
    LatticeGasAutomaton,
    ObstacleMap,
    bounce_back_table,
)
from repro.lgca.fhp import FHPModel
from repro.lgca.hpp import HPPModel
from repro.lgca.flows import cylinder_obstacle, uniform_random_state


class TestBounceBackTable:
    @pytest.mark.parametrize("channels", [4, 6, 7])
    def test_involution(self, channels):
        t = bounce_back_table(channels)
        assert np.array_equal(t[t], np.arange(1 << channels))

    def test_hpp_reverses(self):
        t = bounce_back_table(4)
        assert t[0b0001] == 0b0100
        assert t[0b0011] == 0b1100

    def test_fhp_reverses(self):
        t = bounce_back_table(6)
        assert t[1 << 0] == 1 << 3
        assert t[1 << 2] == 1 << 5

    def test_rest_particle_unaffected(self):
        t = bounce_back_table(7)
        assert t[1 << 6] == 1 << 6

    def test_mass_conserved(self):
        t = bounce_back_table(6)
        pc = lambda x: bin(int(x)).count("1")
        for s in range(64):
            assert pc(t[s]) == pc(s)

    def test_unknown_channel_count(self):
        with pytest.raises(ValueError):
            bounce_back_table(5)


class TestObstacleMap:
    def test_empty(self):
        om = ObstacleMap.empty(3, 4)
        assert om.shape == (3, 4)
        assert om.num_solid == 0

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ObstacleMap(np.zeros(5, dtype=bool))

    def test_union(self):
        a = ObstacleMap.empty(2, 2)
        m = np.zeros((2, 2), dtype=bool)
        m[0, 0] = True
        b = ObstacleMap(m)
        assert (a | b).num_solid == 1

    def test_union_shape_mismatch(self):
        with pytest.raises(ValueError):
            ObstacleMap.empty(2, 2) | ObstacleMap.empty(3, 3)


class TestLatticeGasAutomaton:
    def test_state_copied(self, rng):
        m = FHPModel(4, 4)
        s = uniform_random_state(4, 4, 6, 0.5, rng)
        a = LatticeGasAutomaton(m, s)
        a.step()
        assert not np.shares_memory(a.state, s)

    def test_rejects_mismatched_obstacles(self, rng):
        m = FHPModel(4, 4)
        s = uniform_random_state(4, 4, 6, 0.5, rng)
        with pytest.raises(ValueError, match="obstacle"):
            LatticeGasAutomaton(m, s, obstacles=ObstacleMap.empty(5, 5))

    def test_time_advances(self, rng):
        m = FHPModel(4, 4)
        a = LatticeGasAutomaton(m, uniform_random_state(4, 4, 6, 0.3, rng))
        a.run(7)
        assert a.time == 7

    def test_run_zero_is_noop(self, rng):
        m = FHPModel(4, 4)
        a = LatticeGasAutomaton(m, uniform_random_state(4, 4, 6, 0.3, rng))
        before = a.state.copy()
        a.run(0)
        assert np.array_equal(a.state, before)

    def test_history_shape_and_consistency(self, rng):
        m = HPPModel(4, 4)
        a = LatticeGasAutomaton(m, uniform_random_state(4, 4, 4, 0.3, rng))
        h = a.history(5)
        assert h.shape == (6, 4, 4)
        # history[t] is reproducible by stepping a fresh automaton
        b = LatticeGasAutomaton(m, h[0])
        b.run(5)
        assert np.array_equal(b.state, h[5])

    def test_site_update_count(self, rng):
        m = FHPModel(4, 6)
        a = LatticeGasAutomaton(m, uniform_random_state(4, 6, 6, 0.3, rng))
        assert a.site_update_count(10) == 240

    def test_obstacle_conserves_mass(self, rng):
        m = FHPModel(16, 16)
        s = uniform_random_state(16, 16, 6, 0.4, rng)
        obs = cylinder_obstacle(16, 16, center=(8, 8), radius=3)
        a = LatticeGasAutomaton(m, s, obstacles=obs)
        mass0 = a.particle_count()
        a.run(20)
        assert a.particle_count() == mass0

    def test_obstacle_reverses_incident_particle(self):
        m = FHPModel(6, 6)
        s = np.zeros((6, 6), dtype=np.uint8)
        s[2, 2] = 1 << 0  # +x particle sitting ON a solid site
        mask = np.zeros((6, 6), dtype=bool)
        mask[2, 2] = True
        a = LatticeGasAutomaton(m, s, obstacles=ObstacleMap(mask))
        a.step()
        # bounce-back: now a -x particle moved to (2, 1)
        assert a.state[2, 1] == 1 << 3

    def test_obstacle_blocks_momentum_conservation(self, rng):
        """Drag: a body exchanges momentum with the gas."""
        m = FHPModel(16, 16)
        from repro.lgca.flows import channel_flow_state

        s = channel_flow_state(16, 16, m.velocities, 0.3, 0.2, rng)
        obs = cylinder_obstacle(16, 16, center=(8, 8), radius=3)
        a = LatticeGasAutomaton(m, s, obstacles=obs)
        p0 = a.momentum()
        a.run(10)
        assert not np.allclose(a.momentum(), p0, atol=1e-6)

    def test_empty_gas_stays_empty(self):
        m = HPPModel(4, 4)
        a = LatticeGasAutomaton(m, np.zeros((4, 4), dtype=np.uint8))
        a.run(5)
        assert a.state.sum() == 0

    def test_full_lattice_is_fixed_point_of_mass(self, rng):
        """A completely full FHP lattice stays full (exclusion ceiling)."""
        m = FHPModel(6, 6)
        s = np.full((6, 6), 0b111111, dtype=np.uint8)
        a = LatticeGasAutomaton(m, s)
        a.run(3)
        assert (a.state == 0b111111).all()
