"""Tests for the sound-speed measurement (FHP hydrodynamics check)."""

import math

import pytest

from repro.lgca.diagnostics import measure_sound_speed
from repro.lgca.fhp import FHPModel


class TestSoundSpeed:
    def test_fhp6_near_one_over_sqrt2(self, rng):
        model = FHPModel(64, 64, chirality="alternate")
        res = measure_sound_speed(model, density=0.2, amplitude=0.3, steps=400, rng=rng)
        assert res.predicted == pytest.approx(1 / math.sqrt(2))
        assert res.relative_error < 0.15

    def test_fhp7_prediction_smaller(self, rng):
        """The rest particle lowers the sound speed to √(3/7)."""
        model = FHPModel(64, 64, rest_particles=True)
        res = measure_sound_speed(model, density=0.15, amplitude=0.3, steps=400, rng=rng)
        assert res.predicted == pytest.approx(math.sqrt(3 / 7))
        assert res.relative_error < 0.15

    def test_series_recorded(self, rng):
        model = FHPModel(32, 32)
        res = measure_sound_speed(model, 0.2, 0.3, 64, rng)
        assert res.amplitudes.shape == (65,)

    def test_wave_oscillates(self, rng):
        """The density mode must actually change sign (it is a wave,
        not a diffusing bump)."""
        model = FHPModel(64, 64)
        res = measure_sound_speed(model, 0.2, 0.3, 300, rng)
        a = res.amplitudes
        assert (a[:150] > 0).any() and (a[:150] < 0).any()

    def test_validates(self, rng):
        model = FHPModel(16, 16)
        with pytest.raises(ValueError):
            measure_sound_speed(model, 0.2, 0.3, 0, rng)
