"""Backend registry tests and the bitplane/reference equivalence properties.

The load-bearing guarantee of the backend system is that every backend
computes the *same evolution* — the hypothesis properties here drive
both backends for several generations over random states, every
boundary condition, obstacle maps, and every chirality policy, and
require bit-identical trajectories.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lgca.automaton import LatticeGasAutomaton, ObstacleMap
from repro.lgca.backends import (
    Backend,
    BitplaneStepper,
    KernelStepper,
    ReferenceStepper,
    available_backends,
    check_backend_options,
    get_backend,
    make_stepper,
    register_backend,
)
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.lgca.hpp import HPPModel
from repro.util.errors import ConfigError

GENERATIONS = 8  # enough for propagation to wrap small lattices


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = [b.name for b in available_backends()]
        assert names == ["bitplane", "parallel", "reference"]

    def test_get_backend(self):
        assert get_backend("reference").factory is ReferenceStepper
        assert get_backend("bitplane").factory is BitplaneStepper
        assert get_backend("parallel").options == ("workers",)

    def test_unknown_backend_lists_choices_sorted(self):
        with pytest.raises(ConfigError, match="bitplane, parallel, reference"):
            get_backend("vectorized")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered") as exc:
            register_backend(
                Backend(name="reference", description="dup", factory=ReferenceStepper)
            )
        # the error names the existing choices, sorted
        assert "bitplane, parallel, reference" in str(exc.value)

    def test_make_stepper_satisfies_protocol(self):
        model = HPPModel(4, 4)
        for name in ("reference", "bitplane", "parallel"):
            assert isinstance(make_stepper(model, backend=name), KernelStepper)

    def test_automaton_rejects_unknown_backend(self):
        model = HPPModel(4, 4)
        state = np.zeros((4, 4), dtype=np.uint8)
        with pytest.raises(ValueError, match="unknown backend"):
            LatticeGasAutomaton(model, state, backend="nope")

    def test_unknown_option_rejected_uniformly(self):
        for name in ("reference", "bitplane"):
            with pytest.raises(ConfigError, match="does not accept option"):
                check_backend_options(name, {"workers": 2})
        with pytest.raises(ConfigError, match="does not accept option"):
            make_stepper(HPPModel(4, 4), backend="bitplane", workers=2)

    def test_none_options_are_ignored(self):
        assert check_backend_options("reference", {"workers": None}) == {}
        assert check_backend_options("parallel", {"workers": 2}) == {"workers": 2}


def _trajectories_equal(model, state, *, obstacles=None, seed=None):
    """Step both backends side by side; assert bit-identity each generation."""

    def rng():
        return np.random.default_rng(seed) if seed is not None else None

    ref = LatticeGasAutomaton(model, state, obstacles=obstacles, rng=rng())
    bit = LatticeGasAutomaton(
        model, state, obstacles=obstacles, rng=rng(), backend="bitplane"
    )
    for t in range(GENERATIONS):
        np.testing.assert_array_equal(
            ref.step(), bit.step(), err_msg=f"diverged at generation {t}"
        )
    # the block-run path packs once and steps in plane space throughout
    ref2 = LatticeGasAutomaton(model, state, obstacles=obstacles, rng=rng())
    bit2 = LatticeGasAutomaton(
        model, state, obstacles=obstacles, rng=rng(), backend="bitplane"
    )
    np.testing.assert_array_equal(ref2.run(GENERATIONS), bit2.run(GENERATIONS))


def _state(seed, rows, cols, channels, density=0.35):
    return uniform_random_state(
        rows, cols, channels, density, np.random.default_rng(seed)
    )


# Sizes straddle the 64-column word boundary: below one word, exact,
# one over, and multi-word with a partial tail.
col_strategy = st.sampled_from([3, 17, 63, 64, 65, 100, 130])
boundary_strategy = st.sampled_from(["periodic", "null", "reflecting"])


class TestBitplaneEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        rows=st.integers(2, 12),
        cols=col_strategy,
        boundary=boundary_strategy,
    )
    def test_hpp(self, seed, rows, cols, boundary):
        model = HPPModel(rows, cols, boundary=boundary)
        _trajectories_equal(model, _state(seed, rows, cols, 4))

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        rows=st.sampled_from([2, 4, 6, 10]),
        cols=col_strategy,
        boundary=boundary_strategy,
        rest=st.booleans(),
    )
    def test_fhp_alternate(self, seed, rows, cols, boundary, rest):
        model = FHPModel(rows, cols, boundary=boundary, rest_particles=rest)
        _trajectories_equal(model, _state(seed, rows, cols, model.num_channels))

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        chirality=st.sampled_from(["left", "right"]),
    )
    def test_fhp_fixed_chirality(self, seed, chirality):
        model = FHPModel(6, 65, chirality=chirality)
        _trajectories_equal(model, _state(seed, 6, 65, 6))

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        rng_seed=st.integers(0, 2**31 - 1),
    )
    def test_fhp_random_chirality(self, seed, rng_seed):
        """Both backends must consume the RNG stream identically."""
        model = FHPModel(6, 70, chirality="random")
        _trajectories_equal(model, _state(seed, 6, 70, 6), seed=rng_seed)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_fhp_saturated(self, seed):
        model = FHPModel(6, 66, rest_particles=True, saturated=True)
        _trajectories_equal(model, _state(seed, 6, 66, 7))

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        obstacle_seed=st.integers(0, 2**31 - 1),
        boundary=boundary_strategy,
    )
    def test_obstacles(self, seed, obstacle_seed, boundary):
        rows, cols = 8, 67
        mask = np.random.default_rng(obstacle_seed).random((rows, cols)) < 0.15
        model = HPPModel(rows, cols, boundary=boundary)
        _trajectories_equal(model, _state(seed, rows, cols, 4),
                            obstacles=ObstacleMap(mask))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_fhp_obstacles(self, seed):
        rows, cols = 8, 64
        mask = np.random.default_rng(seed + 1).random((rows, cols)) < 0.15
        model = FHPModel(rows, cols, rest_particles=True)
        _trajectories_equal(model, _state(seed, rows, cols, 7),
                            obstacles=ObstacleMap(mask))


class TestStepperContracts:
    def test_reference_run_does_not_mutate_input(self):
        model = HPPModel(6, 6)
        state = _state(0, 6, 6, 4)
        before = state.copy()
        make_stepper(model).run(state, 5)
        np.testing.assert_array_equal(state, before)

    def test_bitplane_run_does_not_mutate_input(self):
        model = HPPModel(6, 6)
        state = _state(0, 6, 6, 4)
        before = state.copy()
        make_stepper(model, backend="bitplane").run(state, 5)
        np.testing.assert_array_equal(state, before)

    def test_run_equals_repeated_step(self):
        for backend in ("reference", "bitplane"):
            model = FHPModel(6, 20)
            state = _state(3, 6, 20, 6)
            stepper = make_stepper(model, backend=backend)
            stepped = state
            for t in range(5):
                stepped = stepper.step(stepped, t).copy()
            ran = make_stepper(model, backend=backend).run(state, 5)
            np.testing.assert_array_equal(ran, stepped, err_msg=backend)

    def test_reference_step_never_returns_its_input_buffer(self):
        """The ping-pong pair must never collide output into the input.

        Chained calls feed the previous return (a view of one internal
        buffer) straight back in; ``_next_buffer`` must then select the
        *other* buffer, or the stage would read rows it already
        overwrote.
        """
        model = HPPModel(6, 6)
        stepper = make_stepper(model)
        out = stepper.step(_state(0, 6, 6, 4), 0)
        for t in range(1, 6):
            nxt = stepper.step(out, t)
            assert nxt is not out
            assert not np.shares_memory(nxt, out)
            out = nxt

    def test_reference_chained_steps_match_fresh_stepper(self):
        model = FHPModel(6, 20)
        state = _state(7, 6, 20, 6)
        chained = make_stepper(model)
        cur = state
        for t in range(6):
            cur = chained.step(cur, t)  # no defensive copies
        expected = make_stepper(model).run(state, 6)
        np.testing.assert_array_equal(cur, expected)

    def test_automaton_time_advances_once_per_run(self):
        model = HPPModel(6, 6)
        auto = LatticeGasAutomaton(model, _state(0, 6, 6, 4), backend="bitplane")
        auto.run(7)
        assert auto.time == 7

    def test_mass_conserved_periodic(self):
        from repro.lgca.observables import total_mass

        model = FHPModel(8, 65)
        auto = LatticeGasAutomaton(model, _state(5, 8, 65, 6), backend="bitplane")
        mass0 = auto.particle_count()
        auto.run(20)
        assert total_mass(auto.state, 6) == mass0
