"""Unit + property tests for the HPP lattice gas."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lgca.bits import popcount
from repro.lgca.hpp import HPPModel, hpp_collision_table
from repro.lgca.observables import total_mass, total_momentum


class TestHPPCollisionTable:
    def test_head_on_pairs_swap(self):
        t = hpp_collision_table()
        assert t(0b0101) == 0b1010
        assert t(0b1010) == 0b0101

    def test_everything_else_identity(self):
        t = hpp_collision_table()
        for s in range(16):
            if s not in (0b0101, 0b1010):
                assert t(s) == s

    def test_involution(self):
        assert hpp_collision_table().is_involution()

    def test_exactly_two_non_fixed_points(self):
        assert hpp_collision_table().fixed_points().size == 14


class TestHPPModel:
    def test_rejects_bad_boundary(self):
        with pytest.raises(ValueError, match="boundary"):
            HPPModel(4, 4, boundary="weird")

    def test_rejects_bad_state_shape(self):
        m = HPPModel(4, 4)
        with pytest.raises(ValueError, match="shape"):
            m.check_state(np.zeros((3, 4), dtype=np.uint8))

    def test_rejects_out_of_range_state(self):
        m = HPPModel(2, 2)
        with pytest.raises(ValueError, match="4 bits"):
            m.check_state(np.full((2, 2), 16, dtype=np.uint8))

    def test_metadata(self):
        m = HPPModel(4, 6)
        assert m.num_channels == 4
        assert m.bits_per_site == 4
        assert m.velocities.shape == (4, 2)

    def test_single_particle_moves_right(self):
        m = HPPModel(5, 5)
        s = np.zeros((5, 5), dtype=np.uint8)
        s[2, 2] = 0b0001  # +x
        out = m.propagate(s)
        assert out[2, 3] == 0b0001
        assert out.sum() == 1

    def test_single_particle_moves_up(self):
        m = HPPModel(5, 5)
        s = np.zeros((5, 5), dtype=np.uint8)
        s[2, 2] = 0b0010  # +y = row-1
        out = m.propagate(s)
        assert out[1, 2] == 0b0010

    def test_periodic_wraparound(self):
        m = HPPModel(3, 3)
        s = np.zeros((3, 3), dtype=np.uint8)
        s[0, 2] = 0b0001
        out = m.propagate(s)
        assert out[0, 0] == 0b0001

    def test_null_boundary_loses_particle(self):
        m = HPPModel(3, 3, boundary="null")
        s = np.zeros((3, 3), dtype=np.uint8)
        s[0, 2] = 0b0001
        out = m.propagate(s)
        assert out.sum() == 0

    def test_reflecting_boundary_reverses(self):
        m = HPPModel(3, 3, boundary="reflecting")
        s = np.zeros((3, 3), dtype=np.uint8)
        s[1, 2] = 0b0001  # +x at right wall
        out = m.propagate(s)
        assert out[1, 2] == 0b0100  # now -x at the same site

    def test_head_on_collision_dynamics(self):
        """Two particles meeting head-on scatter perpendicular."""
        m = HPPModel(5, 5)
        s = np.zeros((5, 5), dtype=np.uint8)
        s[2, 1] = 0b0001  # +x at (2,1)
        s[2, 3] = 0b0100  # -x at (2,3)
        s = m.step(s)  # both move to (2,2)? no: propagate first puts them adjacent
        # After one step they are at (2,2)-adjacent positions; step again
        s = m.step(s)
        # they met at (2,2) and scattered into ±y
        total = int(popcount(s, 4).sum())
        assert total == 2
        occupied = np.argwhere(s != 0)
        assert {tuple(x) for x in occupied} == {(1, 2), (3, 2)}

    def test_collide_is_pointwise_table(self):
        m = HPPModel(2, 2)
        s = np.array([[0b0101, 0], [3, 0b1010]], dtype=np.uint8)
        out = m.collide(s)
        assert out[0, 0] == 0b1010
        assert out[1, 1] == 0b0101
        assert out[1, 0] == 3

    @given(st.integers(0, 2**32 - 1))
    def test_mass_momentum_conserved_periodic(self, seed):
        rng = np.random.default_rng(seed)
        m = HPPModel(8, 8)
        s = rng.integers(0, 16, size=(8, 8)).astype(np.uint8)
        mass0 = total_mass(s, 4)
        mom0 = total_momentum(s, m.velocities)
        for t in range(5):
            s = m.step(s, t)
        assert total_mass(s, 4) == mass0
        assert np.allclose(total_momentum(s, m.velocities), mom0)

    def test_propagation_is_permutation_periodic(self):
        """Periodic propagation permutes particles (mass per channel)."""
        rng = np.random.default_rng(3)
        m = HPPModel(6, 7)
        s = rng.integers(0, 16, size=(6, 7)).astype(np.uint8)
        out = m.propagate(s)
        for ch in range(4):
            in_ch = int(((s >> ch) & 1).sum())
            out_ch = int(((out >> ch) & 1).sum())
            assert in_ch == out_ch

    def test_reflecting_conserves_mass(self):
        rng = np.random.default_rng(4)
        m = HPPModel(5, 6, boundary="reflecting")
        s = rng.integers(0, 16, size=(5, 6)).astype(np.uint8)
        mass0 = total_mass(s, 4)
        for t in range(10):
            s = m.step(s, t)
        assert total_mass(s, 4) == mass0
