"""Parallel-backend equivalence: thread-tiled stepping is bit-identical.

The load-bearing guarantee of ``backend="parallel"`` is that tiling the
lattice into row slabs on a thread pool changes *nothing* about the
evolution: for every model, boundary, chirality policy, obstacle map,
and worker count, the trajectory must be bit-identical to the
single-slab ``"bitplane"`` backend (and therefore, by the equivalence
suite in ``test_backends``, to the reference kernels).  The hypothesis
properties here drive exactly that comparison, including the awkward
geometries — odd slab splits, ``rows < workers``, lattices too short to
split at all.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lgca.automaton import ObstacleMap
from repro.lgca.backends import BitplaneStepper, make_stepper
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.lgca.hpp import HPPModel
from repro.lgca.parallel import (
    MIN_AUTO_SLAB_ROWS,
    ParallelStepper,
    resolve_workers,
)
from repro.util.errors import ConfigError

GENERATIONS = 6  # enough for halo artifacts to reach slab interiors if wrong


def _state(seed, rows, cols, channels, density=0.35):
    return uniform_random_state(
        rows, cols, channels, density, np.random.default_rng(seed)
    )


def _assert_matches_bitplane(model, state, *, workers, obstacles=None, seed=None):
    """Run and step both backends side by side; require bit-identity."""

    def rng():
        return np.random.default_rng(seed) if seed is not None else None

    serial = make_stepper(model, obstacles=obstacles, backend="bitplane")
    tiled = make_stepper(
        model, obstacles=obstacles, backend="parallel", workers=workers
    )
    np.testing.assert_array_equal(
        serial.run(state.copy(), GENERATIONS, 0, rng()),
        tiled.run(state.copy(), GENERATIONS, 0, rng()),
        err_msg=f"run() diverged at workers={workers}",
    )
    # step-by-step (re-pack each generation) must agree too
    serial_rng, tiled_rng = rng(), rng()
    a, b = state.copy(), state.copy()
    for t in range(GENERATIONS):
        a = serial.step(a, t, serial_rng).copy()
        b = tiled.step(b, t, tiled_rng).copy()
        np.testing.assert_array_equal(
            a, b, err_msg=f"step() diverged at t={t}, workers={workers}"
        )


worker_strategy = st.sampled_from([1, 2, 3, 5, 100])  # 100 > rows: clamps
boundary_strategy = st.sampled_from(["periodic", "null", "reflecting"])


class TestParallelEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        rows=st.sampled_from([4, 7, 11, 16]),
        cols=st.sampled_from([17, 63, 65, 130]),
        boundary=boundary_strategy,
        workers=worker_strategy,
    )
    def test_hpp(self, seed, rows, cols, boundary, workers):
        model = HPPModel(rows, cols, boundary=boundary)
        _assert_matches_bitplane(
            model, _state(seed, rows, cols, 4), workers=workers
        )

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        rows=st.sampled_from([4, 6, 10, 12]),
        boundary=boundary_strategy,
        chirality=st.sampled_from(["alternate", "left", "right"]),
        rest=st.booleans(),
        workers=worker_strategy,
    )
    def test_fhp_deterministic_chirality(
        self, seed, rows, boundary, chirality, rest, workers
    ):
        model = FHPModel(
            rows, 67, boundary=boundary, chirality=chirality, rest_particles=rest
        )
        _assert_matches_bitplane(
            model, _state(seed, rows, 67, model.num_channels), workers=workers
        )

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        rng_seed=st.integers(0, 2**31 - 1),
        boundary=boundary_strategy,
        workers=worker_strategy,
    )
    def test_fhp_random_chirality(self, seed, rng_seed, boundary, workers):
        """The coordinator must consume the caller's RNG stream exactly
        as the serial kernel does — one whole-lattice draw per tick."""
        model = FHPModel(8, 70, boundary=boundary, chirality="random")
        _assert_matches_bitplane(
            model, _state(seed, 8, 70, 6), workers=workers, seed=rng_seed
        )

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        obstacle_seed=st.integers(0, 2**31 - 1),
        boundary=boundary_strategy,
        workers=worker_strategy,
    )
    def test_obstacles(self, seed, obstacle_seed, boundary, workers):
        rows, cols = 10, 67
        mask = np.random.default_rng(obstacle_seed).random((rows, cols)) < 0.15
        model = HPPModel(rows, cols, boundary=boundary)
        _assert_matches_bitplane(
            model,
            _state(seed, rows, cols, 4),
            workers=workers,
            obstacles=ObstacleMap(mask),
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), workers=st.sampled_from([2, 3]))
    def test_fhp_saturated_with_obstacles(self, seed, workers):
        rows, cols = 8, 64
        mask = np.random.default_rng(seed + 1).random((rows, cols)) < 0.15
        model = FHPModel(rows, cols, rest_particles=True, saturated=True)
        _assert_matches_bitplane(
            model,
            _state(seed, rows, cols, 7),
            workers=workers,
            obstacles=ObstacleMap(mask),
        )

    def test_odd_slab_split(self):
        """13 rows / 3 workers: 5 + 4 + 4, uneven and odd-sized slabs."""
        model = HPPModel(13, 40, boundary="null")
        _assert_matches_bitplane(model, _state(0, 13, 40, 4), workers=3)

    def test_determinism_across_worker_counts(self):
        """Same seed, different worker counts: identical trajectories."""
        model = FHPModel(12, 50, chirality="random")
        state = _state(9, 12, 50, 6)
        outputs = []
        for workers in (1, 2, 3, 4, 6):
            stepper = make_stepper(model, backend="parallel", workers=workers)
            rng = np.random.default_rng(1234)
            outputs.append(stepper.run(state.copy(), GENERATIONS, 0, rng).copy())
        for other in outputs[1:]:
            np.testing.assert_array_equal(outputs[0], other)


class TestWorkerResolution:
    def test_auto_degrades_to_one_for_small_lattices(self):
        assert resolve_workers("auto", MIN_AUTO_SLAB_ROWS - 1) == 1
        assert resolve_workers(None, 16) == 1

    def test_auto_is_cpu_bounded(self):
        import os

        rows = MIN_AUTO_SLAB_ROWS * 64
        assert resolve_workers("auto", rows) <= (os.cpu_count() or 1)

    def test_explicit_count_clamped_to_lattice(self):
        # every slab must keep BOUNDARY_ROWS rows: 7 rows -> at most 3 slabs
        assert resolve_workers(100, 7) == 3
        assert resolve_workers(2, 7) == 2

    def test_digit_strings_accepted(self):
        assert resolve_workers("3", 32) == 3

    def test_rejects_bad_values(self):
        for bad in (0, -1, True, 2.5, "two", ""):
            with pytest.raises(ConfigError, match="workers"):
                resolve_workers(bad, 32)

    def test_single_worker_is_plain_bitplane(self):
        """workers=1 must carry zero pool overhead: it IS the bitplane
        stepper, not a one-tile pool."""
        stepper = ParallelStepper(HPPModel(16, 32), workers=1)
        assert isinstance(stepper._single, BitplaneStepper)
        assert stepper._pool is None

    def test_close_is_idempotent_and_kills_run(self):
        stepper = ParallelStepper(HPPModel(16, 32), workers=2)
        state = _state(0, 16, 32, 4)
        stepper.run(state, 1)
        stepper.close()
        stepper.close()
        with pytest.raises(RuntimeError, match="closed"):
            stepper.run(state, 1)

    def test_rejects_unknown_model_type(self):
        class Fake:
            rows, cols = 16, 16

        with pytest.raises(ConfigError, match="no parallel kernel"):
            ParallelStepper(Fake(), workers=2)


class TestParallelContracts:
    def test_run_does_not_mutate_input(self):
        model = HPPModel(12, 40)
        state = _state(0, 12, 40, 4)
        before = state.copy()
        make_stepper(model, backend="parallel", workers=3).run(state, 5)
        np.testing.assert_array_equal(state, before)

    def test_run_equals_repeated_step(self):
        model = FHPModel(12, 40)
        state = _state(3, 12, 40, 6)
        stepper = make_stepper(model, backend="parallel", workers=3)
        stepped = state
        for t in range(5):
            stepped = stepper.step(stepped, t).copy()
        ran = make_stepper(model, backend="parallel", workers=3).run(state, 5)
        np.testing.assert_array_equal(ran, stepped)

    def test_zero_generations_is_identity(self):
        model = HPPModel(12, 40)
        state = _state(1, 12, 40, 4)
        stepper = make_stepper(model, backend="parallel", workers=3)
        np.testing.assert_array_equal(stepper.run(state, 0), state)

    def test_mass_conserved_periodic(self):
        from repro.lgca.observables import total_mass

        model = FHPModel(16, 65)
        state = _state(5, 16, 65, 6)
        mass0 = total_mass(state, 6)
        out = make_stepper(model, backend="parallel", workers=4).run(state, 20)
        assert total_mass(out, 6) == mass0
