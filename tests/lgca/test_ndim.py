"""Unit + property tests for the d-dimensional lattice gas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lgca.bits import popcount
from repro.lgca.ndim import NDHPPModel, ndhpp_collision_table, ndhpp_velocities


def total_momentum_nd(state, velocities, num_channels):
    occupancy = np.stack(
        [((state >> ch) & 1).astype(np.float64) for ch in range(num_channels)]
    )
    return np.tensordot(
        occupancy, velocities, axes=([0], [0])
    ).reshape(-1, velocities.shape[1]).sum(axis=0)


class TestVelocities:
    def test_shape_and_pairs(self):
        v = ndhpp_velocities(3)
        assert v.shape == (6, 3)
        for axis in range(3):
            assert np.array_equal(v[2 * axis], -v[2 * axis + 1])

    def test_unit_norm(self):
        v = ndhpp_velocities(4)
        assert np.allclose(np.linalg.norm(v, axis=1), 1.0)

    def test_d2_matches_axes(self):
        v = ndhpp_velocities(2)
        assert np.array_equal(v[0], [1, 0])
        assert np.array_equal(v[3], [0, -1])


class TestCollisionTable:
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_constructs_and_conserves(self, d):
        ndhpp_collision_table(d)  # raises on violation

    def test_d1_is_identity(self):
        t = ndhpp_collision_table(1)
        assert t.is_identity()

    def test_pair_cycles_axes(self):
        t = ndhpp_collision_table(3)
        pair_x = 0b000011
        pair_y = 0b001100
        pair_z = 0b110000
        assert t(pair_x) == pair_y
        assert t(pair_y) == pair_z
        assert t(pair_z) == pair_x

    def test_non_pair_states_fixed(self):
        t = ndhpp_collision_table(3)
        for s in (0b000001, 0b000111, 0b001111, 0b101010):
            assert t(s) == s

    def test_table_is_permutation(self):
        t = ndhpp_collision_table(3)
        assert sorted(t.table.tolist()) == list(range(64))

    def test_rejects_huge_dimension(self):
        with pytest.raises(ValueError):
            ndhpp_collision_table(9)


class TestNDHPPModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            NDHPPModel(())
        with pytest.raises(ValueError):
            NDHPPModel((4, 4), boundary="weird")
        with pytest.raises(ValueError):
            NDHPPModel((2,) * 9)

    def test_metadata_3d(self):
        m = NDHPPModel((4, 5, 6))
        assert m.d == 3
        assert m.num_channels == 6
        assert m.num_sites == 120
        assert m.velocities.shape == (6, 3)

    def test_single_particle_moves_3d(self):
        m = NDHPPModel((5, 5, 5))
        s = np.zeros((5, 5, 5), dtype=np.uint8)
        s[2, 2, 2] = 1 << 0  # +axis0
        out = m.propagate(s)
        assert out[3, 2, 2] == 1 << 0
        s[2, 2, 2] = 0
        s[2, 2, 2] = 1 << 3  # -axis1
        out = m.propagate(s)
        assert out[3, 1, 2] == 1 << 3 or out[2, 1, 2] == 1 << 3
        # precise: -axis1 moves index along axis 1 by -1
        s2 = np.zeros((5, 5, 5), dtype=np.uint8)
        s2[2, 2, 2] = 1 << 3
        out2 = m.propagate(s2)
        assert out2[2, 1, 2] == 1 << 3

    def test_periodic_wrap_3d(self):
        m = NDHPPModel((3, 3, 3))
        s = np.zeros((3, 3, 3), dtype=np.uint8)
        s[2, 0, 0] = 1 << 0
        out = m.propagate(s)
        assert out[0, 0, 0] == 1 << 0

    def test_null_boundary_drops(self):
        m = NDHPPModel((3, 3), boundary="null")
        s = np.zeros((3, 3), dtype=np.uint8)
        s[2, 1] = 1 << 0
        assert m.propagate(s).sum() == 0

    def test_reflecting_reverses(self):
        m = NDHPPModel((3, 3, 3), boundary="reflecting")
        s = np.zeros((3, 3, 3), dtype=np.uint8)
        s[2, 1, 1] = 1 << 0  # +axis0 at the wall
        out = m.propagate(s)
        assert out[2, 1, 1] == 1 << 1  # reversed in place

    def test_head_on_collision_scatters(self):
        m = NDHPPModel((5, 5, 5))
        s = np.zeros((5, 5, 5), dtype=np.uint8)
        s[2, 2, 2] = 0b000011  # +x and -x
        out = m.collide(s)
        assert out[2, 2, 2] == 0b001100  # becomes ±y pair

    @given(st.integers(0, 2**32 - 1), st.integers(2, 4))
    @settings(max_examples=15)
    def test_conservation_periodic(self, seed, d):
        rng = np.random.default_rng(seed)
        shape = (4,) * d
        m = NDHPPModel(shape)
        s = rng.integers(0, 1 << (2 * d), size=shape).astype(np.uint8)
        mass0 = int(popcount(s, 2 * d).sum())
        p0 = total_momentum_nd(s, m.velocities, 2 * d)
        for t in range(4):
            s = m.step(s, t)
        assert int(popcount(s, 2 * d).sum()) == mass0
        assert np.allclose(total_momentum_nd(s, m.velocities, 2 * d), p0)

    def test_reflecting_conserves_mass_3d(self, rng):
        m = NDHPPModel((4, 4, 4), boundary="reflecting")
        s = rng.integers(0, 64, size=(4, 4, 4)).astype(np.uint8)
        mass0 = int(popcount(s, 6).sum())
        for t in range(8):
            s = m.step(s, t)
        assert int(popcount(s, 6).sum()) == mass0

    def test_d2_matches_hpp_dynamics(self, rng):
        """The d=2 specialization's propagation must agree with the
        dedicated HPP model up to the channel-numbering map."""
        from repro.lgca.hpp import HPPModel

        nd = NDHPPModel((6, 6))
        hpp = HPPModel(6, 6)
        # channel map: nd(0)=+axis0=+row(down) -> hpp 3 (-y);
        # nd(1)=-axis0=up -> hpp 1; nd(2)=+axis1=+col -> hpp 0; nd(3) -> hpp 2
        nd_state = np.zeros((6, 6), dtype=np.uint8)
        nd_state[2, 3] = 1 << 2  # +col
        hpp_state = np.zeros((6, 6), dtype=np.uint8)
        hpp_state[2, 3] = 1 << 0  # +x
        nd_out = nd.propagate(nd_state)
        hpp_out = hpp.propagate(hpp_state)
        assert np.argwhere(nd_out).tolist() == np.argwhere(hpp_out).tolist()
