"""Unit tests for the multi-spin coded (bit-plane) kernels."""

import numpy as np
import pytest

from repro.lgca.bitplane import (
    WORD_BITS,
    BitplaneKernel,
    FlipTerm,
    flip_terms,
    num_words,
    pack_plane,
    pack_state,
    split_chirality_terms,
    unpack_plane,
    unpack_state,
    verify_plane_logic,
)
from repro.lgca.collision import CollisionTable
from repro.lgca.fhp import (
    FHPModel,
    fhp6_collision_tables,
    fhp7_collision_tables,
    fhp_saturated_tables,
)
from repro.lgca.flows import uniform_random_state
from repro.lgca.hpp import HPPModel, hpp_collision_table

# Column counts probing word boundaries: below one word, exactly one
# word, one bit over, mid-word tails, exact multiples.
EDGE_COLS = [1, 5, 63, 64, 65, 100, 128, 130]


def random_bits(rows, cols, seed=0):
    return np.random.default_rng(seed).integers(0, 2, size=(rows, cols)).astype(np.uint8)


class TestPackUnpack:
    def test_num_words(self):
        assert num_words(1) == 1
        assert num_words(64) == 1
        assert num_words(65) == 2
        assert num_words(128) == 2
        assert num_words(129) == 3
        with pytest.raises(ValueError):
            num_words(0)

    @pytest.mark.parametrize("cols", EDGE_COLS)
    def test_plane_roundtrip(self, cols):
        bits = random_bits(7, cols)
        words = pack_plane(bits)
        assert words.shape == (7, num_words(cols))
        assert words.dtype == np.uint64
        assert np.array_equal(unpack_plane(words, cols), bits)

    @pytest.mark.parametrize("cols", EDGE_COLS)
    def test_tail_padding_is_zero(self, cols):
        words = pack_plane(np.ones((3, cols), dtype=np.uint8))
        rem = cols % WORD_BITS
        if rem:
            tail = int(words[0, -1])
            assert tail == (1 << rem) - 1  # high bits clear

    def test_bit_layout(self):
        # bit j of word w is column 64*w + j
        bits = np.zeros((1, 130), dtype=np.uint8)
        bits[0, 0] = 1
        bits[0, 63] = 1
        bits[0, 64] = 1
        bits[0, 129] = 1
        words = pack_plane(bits)
        assert int(words[0, 0]) == 1 | (1 << 63)
        assert int(words[0, 1]) == 1
        assert int(words[0, 2]) == 1 << 1

    @pytest.mark.parametrize("cols", EDGE_COLS)
    @pytest.mark.parametrize("channels", [4, 6, 7])
    def test_state_roundtrip(self, cols, channels):
        rng = np.random.default_rng(cols * 31 + channels)
        state = rng.integers(0, 1 << channels, size=(9, cols)).astype(np.uint8)
        planes = pack_state(state, channels)
        assert planes.shape == (channels, 9, num_words(cols))
        assert np.array_equal(unpack_state(planes, cols), state)

    def test_unpack_state_out_parameter(self):
        state = np.arange(16, dtype=np.uint8).reshape(2, 8)
        planes = pack_state(state, 4)
        out = np.empty((2, 8), dtype=np.uint8)
        result = unpack_state(planes, 8, out=out)
        assert result is out
        assert np.array_equal(out, state)

    def test_shape_errors(self):
        with pytest.raises(ValueError):
            pack_plane(np.zeros(8, dtype=np.uint8))
        with pytest.raises(ValueError):
            unpack_plane(np.zeros((2, 2), dtype=np.uint64), 300)


class TestFlipTerms:
    def test_hpp_terms(self):
        terms = flip_terms(hpp_collision_table())
        # exactly the two head-on states change
        assert {t.state for t in terms} == {0b0101, 0b1010}
        for t in terms:
            assert t.flips == 0b1111
            assert t.flip_channels == (0, 1, 2, 3)
            assert len(t.pos) == 2 and len(t.neg) == 2

    def test_every_term_has_a_positive_literal(self):
        for table in (
            hpp_collision_table(),
            *fhp6_collision_tables(),
            *fhp7_collision_tables(),
            *fhp_saturated_tables(),
        ):
            for term in flip_terms(table):
                assert term.pos, f"{table.name} state {term.state:#x}"

    @pytest.mark.parametrize(
        "table",
        [
            hpp_collision_table(),
            *fhp6_collision_tables(),
            *fhp7_collision_tables(),
            *fhp_saturated_tables(),
        ],
        ids=lambda t: t.name,
    )
    def test_compiled_logic_matches_table(self, table):
        verify_plane_logic(table, flip_terms(table))

    def test_verify_rejects_wrong_terms(self):
        table = hpp_collision_table()
        terms = flip_terms(table)
        broken = (FlipTerm(state=terms[0].state, flips=0b0001, pos=terms[0].pos,
                           neg=terms[0].neg, flip_channels=(0,)),) + terms[1:]
        with pytest.raises(ValueError, match="diverges"):
            verify_plane_logic(table, broken)

    def test_chirality_split_covers_both_tables(self):
        left, right = fhp6_collision_tables()
        common, only_left, only_right = split_chirality_terms(left, right)
        # triads are chirality-independent, head-on pairs are not
        assert {t.state for t in common} == {0b010101, 0b101010}
        # three distinct head-on states: {0,3}, {1,4}, {2,5}
        assert {t.state for t in only_left} == {0b001001, 0b010010, 0b100100}
        assert len(only_left) == len(only_right) == 3
        verify_plane_logic(left, common + only_left)
        verify_plane_logic(right, common + only_right)

    def test_chirality_split_channel_mismatch(self):
        left, _ = fhp6_collision_tables()
        _, right7 = fhp7_collision_tables()
        with pytest.raises(ValueError):
            split_chirality_terms(left, right7)


class TestKernel:
    @pytest.mark.parametrize("boundary", ["periodic", "null", "reflecting"])
    @pytest.mark.parametrize("cols", [30, 63, 64, 65, 130])
    def test_hpp_propagate_matches_reference(self, boundary, cols):
        model = HPPModel(12, cols, boundary=boundary)
        kernel = BitplaneKernel(model)
        state = uniform_random_state(12, cols, 4, 0.4, np.random.default_rng(3))
        planes = kernel.pack(state)
        out = kernel.alloc_planes()
        kernel.propagate_into(planes, out)
        assert np.array_equal(kernel.unpack(out), model.propagate(state))

    @pytest.mark.parametrize("boundary", ["periodic", "null", "reflecting"])
    @pytest.mark.parametrize("cols", [30, 64, 65, 100])
    def test_fhp_propagate_matches_reference(self, boundary, cols):
        model = FHPModel(12, cols, boundary=boundary, rest_particles=True)
        kernel = BitplaneKernel(model)
        state = uniform_random_state(12, cols, 7, 0.4, np.random.default_rng(4))
        planes = kernel.pack(state)
        out = kernel.alloc_planes()
        kernel.propagate_into(planes, out)
        assert np.array_equal(kernel.unpack(out), model.propagate(state))

    def test_hpp_collide_matches_reference(self):
        model = HPPModel(10, 70)
        kernel = BitplaneKernel(model)
        state = uniform_random_state(10, 70, 4, 0.5, np.random.default_rng(5))
        planes = kernel.pack(state)
        out = kernel.alloc_planes()
        kernel.collide_into(planes, out)
        assert np.array_equal(kernel.unpack(out), model.collide(state))

    @pytest.mark.parametrize("chirality", ["alternate", "left", "right"])
    def test_fhp_collide_matches_reference(self, chirality):
        model = FHPModel(10, 70, chirality=chirality)
        kernel = BitplaneKernel(model)
        state = uniform_random_state(10, 70, 6, 0.5, np.random.default_rng(6))
        planes = kernel.pack(state)
        out = kernel.alloc_planes()
        for t in (0, 1, 2):
            kernel.collide_into(planes, out, t=t)
            assert np.array_equal(kernel.unpack(out), model.collide(state, t))

    def test_obstacle_bounce_back(self):
        from repro.lgca.automaton import ObstacleMap

        mask = np.zeros((8, 70), dtype=bool)
        mask[3, 40] = True
        model = HPPModel(8, 70)
        kernel = BitplaneKernel(model, obstacles=ObstacleMap(mask))
        state = np.zeros((8, 70), dtype=np.uint8)
        state[3, 40] = 0b0001  # +x particle sitting on the solid site
        planes = kernel.pack(state)
        out = kernel.alloc_planes()
        kernel.collide_into(planes, out)
        collided = kernel.unpack(out)
        assert collided[3, 40] == 0b0100  # reversed, not scattered

    def test_rejects_unknown_model(self):
        class NotAModel:
            pass

        with pytest.raises(TypeError):
            BitplaneKernel(NotAModel())

    def test_obstacle_shape_mismatch(self):
        model = HPPModel(8, 8)
        with pytest.raises(ValueError):
            BitplaneKernel(model, obstacles=np.ones((4, 4), dtype=bool))

    def test_step_into_is_allocation_free(self):
        """Steady-state stepping must not allocate new arrays."""
        import tracemalloc

        model = FHPModel(32, 100)
        kernel = BitplaneKernel(model)
        state = uniform_random_state(32, 100, 6, 0.3, np.random.default_rng(7))
        a = kernel.pack(state)
        b = kernel.alloc_planes()
        kernel.step_into(a, b, 0)
        kernel.step_into(b, a, 1)
        tracemalloc.start()
        for t in range(6):
            kernel.step_into(a, b, t)
            a, b = b, a
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # numpy scalar boxes etc. are tolerated; array-sized blocks are not
        assert peak < 16_000, f"stepping allocated {peak} bytes"
