"""Unit tests for macroscopic observables."""

import numpy as np
import pytest

from repro.lgca.fhp import FHP_VELOCITIES, FHPModel
from repro.lgca.observables import (
    coarse_grain,
    density_field,
    fhp_viscosity,
    galilean_factor,
    mean_velocity_field,
    momentum_field,
    reynolds_number,
    total_mass,
    total_momentum,
)


class TestDensityField:
    def test_counts_particles(self):
        s = np.array([[0b000011, 0]], dtype=np.uint8)
        d = density_field(s, 6)
        assert d[0, 0] == 2 and d[0, 1] == 0

    def test_dtype_float(self):
        assert density_field(np.zeros((2, 2), dtype=np.uint8), 6).dtype == np.float64


class TestMomentumField:
    def test_single_particle(self):
        s = np.zeros((2, 2), dtype=np.uint8)
        s[0, 0] = 1 << 1  # FHP channel 1: (0.5, sqrt(3)/2)
        m = momentum_field(s, FHP_VELOCITIES)
        assert np.allclose(m[0, 0], FHP_VELOCITIES[1])
        assert np.allclose(m[1, 1], 0)

    def test_opposite_pair_cancels(self):
        s = np.zeros((1, 1), dtype=np.uint8)
        s[0, 0] = (1 << 0) | (1 << 3)
        m = momentum_field(s, FHP_VELOCITIES)
        assert np.allclose(m[0, 0], 0, atol=1e-12)

    def test_totals(self):
        s = np.full((3, 3), 1 << 0, dtype=np.uint8)
        assert total_mass(s, 6) == 9
        assert np.allclose(total_momentum(s, FHP_VELOCITIES), [9.0, 0.0])


class TestCoarseGrain:
    def test_scalar_field(self):
        f = np.arange(16, dtype=float).reshape(4, 4)
        g = coarse_grain(f, 2)
        assert g.shape == (2, 2)
        assert g[0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_vector_field(self):
        f = np.ones((4, 4, 2))
        g = coarse_grain(f, 2)
        assert g.shape == (2, 2, 2)
        assert np.allclose(g, 1.0)

    def test_window_one_identity(self):
        f = np.random.default_rng(0).random((3, 3))
        assert np.allclose(coarse_grain(f, 1), f)

    def test_rejects_non_dividing(self):
        with pytest.raises(ValueError, match="divisible"):
            coarse_grain(np.zeros((5, 4)), 2)


class TestMeanVelocityField:
    def test_uniform_drift(self):
        s = np.full((4, 4), 1 << 0, dtype=np.uint8)  # everyone moving +x
        u = mean_velocity_field(s, FHP_VELOCITIES, 6, window=2)
        assert np.allclose(u[..., 0], 1.0)
        assert np.allclose(u[..., 1], 0.0, atol=1e-12)

    def test_empty_cells_zero(self):
        s = np.zeros((2, 2), dtype=np.uint8)
        u = mean_velocity_field(s, FHP_VELOCITIES, 6)
        assert np.allclose(u, 0.0)


class TestViscosityAndReynolds:
    def test_viscosity_positive_at_typical_density(self):
        assert fhp_viscosity(1.0 / 6.0) > 0

    def test_viscosity_decreases_then_increases(self):
        # nu(d) has a minimum inside (0, 1); check it is not monotone.
        ds = np.linspace(0.05, 0.6, 12)
        nus = [fhp_viscosity(float(d)) for d in ds]
        assert min(nus) < nus[0] and min(nus) < nus[-1]

    def test_viscosity_rejects_bad_density(self):
        with pytest.raises(ValueError):
            fhp_viscosity(0.0)
        with pytest.raises(ValueError):
            fhp_viscosity(1.0)

    def test_fhp7_viscosity_smaller(self):
        d = 1.0 / 7.0
        assert fhp_viscosity(d, rest_particles=True) < fhp_viscosity(d)

    def test_galilean_factor_half_density_zero(self):
        assert galilean_factor(0.5) == pytest.approx(0.0)

    def test_reynolds_scales_linearly_with_lattice(self):
        """The paper's scaling argument: Re grows linearly in L, so
        'very large Reynolds Numbers will require huge lattices'."""
        r1 = reynolds_number(100, 0.1)
        r2 = reynolds_number(1000, 0.1)
        assert r2 == pytest.approx(10 * r1)

    def test_reynolds_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            reynolds_number(0, 0.1)

    def test_viscosity_positive_across_densities(self):
        """Both Boltzmann viscosities stay positive over (0, 1) — the
        guard in reynolds_number is purely defensive."""
        for d in np.linspace(0.02, 0.98, 25):
            assert fhp_viscosity(float(d)) > 0
            assert fhp_viscosity(float(d), rest_particles=True) > 0


class TestPhysicalRelaxation:
    def test_shear_decays(self, rng):
        """Momentum shear relaxes under FHP dynamics (viscosity > 0)."""
        from repro.lgca.flows import shear_flow_state

        m = FHPModel(32, 32)
        s = shear_flow_state(32, 32, m.velocities, 0.3, 0.25, rng)

        def shear_amplitude(state):
            mom = momentum_field(state, m.velocities)
            top = mom[:16, :, 0].mean()
            bottom = mom[16:, :, 0].mean()
            return top - bottom

        a0 = shear_amplitude(s)
        for t in range(60):
            s = m.step(s, t)
        a1 = shear_amplitude(s)
        assert abs(a1) < abs(a0) * 0.8
