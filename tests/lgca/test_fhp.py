"""Unit + property tests for the FHP lattice gas."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lgca.bits import popcount
from repro.lgca.fhp import (
    FHPModel,
    FHP_VELOCITIES,
    fhp6_collision_tables,
    fhp7_collision_tables,
)
from repro.lgca.observables import total_mass, total_momentum

REST = 1 << 6


class TestFHP6Tables:
    def test_head_on_rotates(self):
        left, right = fhp6_collision_tables()
        pair = 0b001001  # channels {0, 3}
        assert left(pair) == 0b010010  # {1, 4}
        assert right(pair) == 0b100100  # {5, 2}

    def test_three_body_swaps(self):
        left, right = fhp6_collision_tables()
        assert left(0b010101) == 0b101010
        assert left(0b101010) == 0b010101
        assert right(0b010101) == 0b101010

    def test_other_states_pass_through(self):
        left, _ = fhp6_collision_tables()
        # single particles, 60-degree pairs, 4+ particle states
        for s in (0b000001, 0b000011, 0b011011, 0b111111, 0b110111):
            assert left(s) == s

    def test_tables_are_permutations(self):
        for t in fhp6_collision_tables():
            assert sorted(t.table.tolist()) == list(range(64))

    def test_left_right_are_inverses_on_pairs(self):
        left, right = fhp6_collision_tables()
        for i in range(3):
            pair = (1 << i) | (1 << (i + 3))
            assert right(left(pair)) == pair

    def test_conservation_machine_checked(self):
        # CollisionTable construction runs the full 64-state check;
        # reaching here means it passed.  Double-check one state by hand.
        left, _ = fhp6_collision_tables()
        out = left(0b001001)
        p_in = FHP_VELOCITIES[0] + FHP_VELOCITIES[3]
        p_out = FHP_VELOCITIES[1] + FHP_VELOCITIES[4]
        assert np.allclose(p_in, p_out, atol=1e-12)
        assert popcount(out, 6) == 2


class TestFHP7Tables:
    def test_rest_spectator_head_on(self):
        left, _ = fhp7_collision_tables()
        pair = 0b001001 | REST
        assert left(pair) == (0b010010 | REST)

    def test_rest_creation_annihilation(self):
        left, _ = fhp7_collision_tables()
        # mover 0 + rest -> channels {5, 1}
        mover = (1 << 0) | REST
        split = (1 << 5) | (1 << 1)
        assert left(mover) == split
        assert left(split) == mover

    def test_tables_are_permutations(self):
        for t in fhp7_collision_tables():
            assert sorted(t.table.tolist()) == list(range(128))

    def test_three_body_with_rest(self):
        left, _ = fhp7_collision_tables()
        assert left(0b010101 | REST) == (0b101010 | REST)


class TestFHPModel:
    def test_rejects_odd_rows_periodic(self):
        with pytest.raises(ValueError, match="even"):
            FHPModel(5, 8)

    def test_odd_rows_ok_non_periodic(self):
        FHPModel(5, 8, boundary="null")

    def test_rejects_bad_chirality(self):
        with pytest.raises(ValueError, match="chirality"):
            FHPModel(4, 4, chirality="spin")

    def test_metadata(self):
        assert FHPModel(4, 4).bits_per_site == 6
        assert FHPModel(4, 4, rest_particles=True).bits_per_site == 7

    def test_chirality_field_alternate_flips_with_time(self):
        m = FHPModel(4, 4, chirality="alternate")
        f0 = m.chirality_field(0)
        f1 = m.chirality_field(1)
        assert np.array_equal(f0, ~f1)

    def test_chirality_field_fixed(self):
        m = FHPModel(4, 4, chirality="left")
        assert m.chirality_field(3).all()
        m = FHPModel(4, 4, chirality="right")
        assert not m.chirality_field(3).any()

    def test_chirality_random_needs_rng(self):
        m = FHPModel(4, 4, chirality="random")
        with pytest.raises(ValueError, match="rng"):
            m.chirality_field(0)

    def test_chirality_random_uses_rng(self):
        m = FHPModel(64, 64, chirality="random")
        f = m.chirality_field(0, np.random.default_rng(0))
        frac = f.mean()
        assert 0.4 < frac < 0.6

    def test_propagation_even_row_directions(self):
        m = FHPModel(8, 8)
        # channel 2 (up-left) from even row 4: (4,2) -> (3,1)
        s = np.zeros((8, 8), dtype=np.uint8)
        s[4, 2] = 1 << 2
        out = m.propagate(s)
        assert out[3, 1] == 1 << 2

    def test_propagation_odd_row_directions(self):
        m = FHPModel(8, 8)
        # channel 2 (up-left) from odd row 3: (3,2) -> (2,2)
        s = np.zeros((8, 8), dtype=np.uint8)
        s[3, 2] = 1 << 2
        out = m.propagate(s)
        assert out[2, 2] == 1 << 2

    def test_six_step_cycle_returns_home(self):
        """A single particle turning through all 6 directions traverses a
        closed hexagon: propagate once per direction, end at start."""
        m = FHPModel(16, 16)
        r, c = 8, 8
        pos = (r, c)
        for direction in range(6):
            s = np.zeros((16, 16), dtype=np.uint8)
            s[pos] = 1 << direction
            out = m.propagate(s)
            pos = tuple(np.argwhere(out)[0])
        assert pos == (r, c)

    def test_rest_particle_stays(self):
        m = FHPModel(6, 6, rest_particles=True)
        s = np.zeros((6, 6), dtype=np.uint8)
        s[3, 3] = REST
        out = m.propagate(s)
        assert out[3, 3] == REST

    def test_propagation_periodic_is_permutation(self):
        rng = np.random.default_rng(1)
        m = FHPModel(6, 6)
        s = rng.integers(0, 64, size=(6, 6)).astype(np.uint8)
        out = m.propagate(s)
        for ch in range(6):
            assert ((s >> ch) & 1).sum() == ((out >> ch) & 1).sum()

    @given(st.integers(0, 2**32 - 1), st.sampled_from(["alternate", "left", "right"]))
    def test_conservation_periodic(self, seed, chirality):
        rng = np.random.default_rng(seed)
        m = FHPModel(8, 8, chirality=chirality)
        s = rng.integers(0, 64, size=(8, 8)).astype(np.uint8)
        mass0 = total_mass(s, 6)
        mom0 = total_momentum(s, m.velocities)
        for t in range(4):
            s = m.step(s, t)
        assert total_mass(s, 6) == mass0
        assert np.allclose(total_momentum(s, m.velocities), mom0, atol=1e-9)

    @given(st.integers(0, 2**32 - 1))
    def test_conservation_rest_particles(self, seed):
        rng = np.random.default_rng(seed)
        m = FHPModel(8, 8, rest_particles=True)
        s = rng.integers(0, 128, size=(8, 8)).astype(np.uint8)
        mass0 = total_mass(s, 7)
        mom0 = total_momentum(s, m.velocities)
        for t in range(4):
            s = m.step(s, t)
        assert total_mass(s, 7) == mass0
        assert np.allclose(total_momentum(s, m.velocities), mom0, atol=1e-9)

    def test_random_chirality_conserves(self):
        rng = np.random.default_rng(9)
        m = FHPModel(8, 8, chirality="random")
        s = rng.integers(0, 64, size=(8, 8)).astype(np.uint8)
        mass0 = total_mass(s, 6)
        mom0 = total_momentum(s, m.velocities)
        for t in range(6):
            s = m.step(s, t, rng)
        assert total_mass(s, 6) == mass0
        assert np.allclose(total_momentum(s, m.velocities), mom0, atol=1e-9)

    def test_null_boundary_mass_nonincreasing(self):
        rng = np.random.default_rng(2)
        m = FHPModel(6, 6, boundary="null")
        s = rng.integers(0, 64, size=(6, 6)).astype(np.uint8)
        masses = [total_mass(s, 6)]
        for t in range(6):
            s = m.step(s, t)
            masses.append(total_mass(s, 6))
        assert all(a >= b for a, b in zip(masses, masses[1:]))

    def test_reflecting_conserves_mass(self):
        rng = np.random.default_rng(5)
        m = FHPModel(6, 6, boundary="reflecting")
        s = rng.integers(0, 64, size=(6, 6)).astype(np.uint8)
        mass0 = total_mass(s, 6)
        for t in range(8):
            s = m.step(s, t)
        assert total_mass(s, 6) == mass0

    def test_reflecting_wall_reverses_direction(self):
        m = FHPModel(6, 6, boundary="reflecting")
        s = np.zeros((6, 6), dtype=np.uint8)
        s[2, 5] = 1 << 0  # +x at right wall
        out = m.propagate(s)
        assert out[2, 5] == 1 << 3  # reversed in place
