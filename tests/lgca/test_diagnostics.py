"""Unit tests for kinetic diagnostics and the saturated collision set."""

import numpy as np
import pytest

from repro.lgca.diagnostics import (
    channel_occupation,
    collision_rate,
    measure_shear_viscosity,
)
from repro.lgca.fhp import FHPModel, fhp_saturated_tables
from repro.lgca.flows import uniform_random_state


class TestSaturatedTables:
    def test_permutations(self):
        left, right = fhp_saturated_tables()
        assert sorted(left.table.tolist()) == list(range(128))
        assert sorted(right.table.tolist()) == list(range(128))

    def test_right_inverts_left(self):
        left, right = fhp_saturated_tables()
        assert np.array_equal(right.table[left.table], np.arange(128))

    def test_every_degenerate_state_collides(self):
        """States sharing (mass, momentum) with another state must move."""
        left, _ = fhp_saturated_tables()
        fixed = set(left.fixed_points().tolist())
        # the FHP-I head-on pairs and triads are certainly degenerate
        for i in range(3):
            assert ((1 << i) | (1 << (i + 3))) not in fixed
        assert 0b010101 not in fixed
        # a lone mover is momentum-unique: must be fixed
        assert 0b000001 in fixed
        assert 0 in fixed

    def test_superset_of_fhp2_collisions(self):
        """Every state FHP-II collides, the saturated set also collides."""
        from repro.lgca.fhp import fhp7_collision_tables

        fhp2_left, _ = fhp7_collision_tables()
        sat_left, _ = fhp_saturated_tables()
        states = np.arange(128)
        fhp2_moves = states[fhp2_left.table != states]
        sat_fixed = set(sat_left.fixed_points().tolist())
        for s in fhp2_moves:
            assert int(s) not in sat_fixed

    def test_model_integration(self, rng):
        m = FHPModel(16, 16, rest_particles=True, saturated=True)
        s = uniform_random_state(16, 16, 7, 0.2, rng)
        from repro.lgca.observables import total_mass, total_momentum

        mass0 = total_mass(s, 7)
        p0 = total_momentum(s, m.velocities)
        for t in range(6):
            s = m.step(s, t)
        assert total_mass(s, 7) == mass0
        assert np.allclose(total_momentum(s, m.velocities), p0, atol=1e-9)

    def test_saturated_requires_rest(self):
        with pytest.raises(ValueError, match="rest_particles"):
            FHPModel(8, 8, saturated=True)


class TestCollisionRate:
    def test_zero_for_empty_gas(self):
        m = FHPModel(8, 8)
        assert collision_rate(m, np.zeros((8, 8), dtype=np.uint8)) == 0.0

    def test_one_for_all_head_on(self):
        m = FHPModel(8, 8)
        s = np.full((8, 8), 0b001001, dtype=np.uint8)
        assert collision_rate(m, s) == 1.0

    def test_ordering_fhp1_fhp2_saturated(self, rng):
        rates = {}
        for name, kw in (
            ("fhp1", {}),
            ("fhp2", dict(rest_particles=True)),
            ("sat", dict(rest_particles=True, saturated=True)),
        ):
            m = FHPModel(48, 48, **kw)
            d = 1.0 / m.num_channels
            s = uniform_random_state(48, 48, m.num_channels, d, rng)
            rates[name] = collision_rate(m, s)
        assert rates["fhp1"] < rates["fhp2"] < rates["sat"]


class TestChannelOccupation:
    def test_shape_and_values(self):
        s = np.full((4, 4), 0b000011, dtype=np.uint8)
        occ = channel_occupation(s, 6)
        assert occ.shape == (6,)
        assert occ[0] == occ[1] == 1.0
        assert occ[2:].sum() == 0.0

    def test_equilibration_evens_channels(self, rng):
        """A channel-biased gas relaxes toward equal occupations."""
        m = FHPModel(32, 32)
        s = np.zeros((32, 32), dtype=np.uint8)
        # all mass initially in channels 0 and 3 (head-on: collides hard)
        mask = rng.random((32, 32)) < 0.6
        s[mask] = 0b001001
        occ0 = channel_occupation(s, 6)
        for t in range(40):
            s = m.step(s, t)
        occ1 = channel_occupation(s, 6)
        assert occ0.std() > 5 * occ1.std()


class TestViscosityMeasurement:
    def test_fhp1_matches_boltzmann(self, rng):
        m = FHPModel(128, 128, chirality="alternate")
        res = measure_shear_viscosity(m, density=0.2, amplitude=0.15, steps=200, rng=rng)
        assert res.r_squared > 0.97
        assert res.relative_error < 0.25

    def test_saturated_less_viscous_than_fhp1(self, rng):
        """More collisions, lower viscosity — measured, not asserted
        from the formula."""
        m1 = FHPModel(96, 96, chirality="alternate")
        r1 = measure_shear_viscosity(m1, 0.2, 0.15, 150, rng)
        m3 = FHPModel(96, 96, rest_particles=True, saturated=True)
        r3 = measure_shear_viscosity(m3, 0.2, 0.15, 150, rng)
        assert r3.measured < r1.measured

    def test_too_few_points_raises(self, rng):
        """Fewer than 10 usable fit points is refused."""
        m = FHPModel(16, 16)
        with pytest.raises(ValueError, match="noise floor"):
            measure_shear_viscosity(m, 0.2, 0.15, steps=10, rng=rng)
