"""Unit tests for initial conditions and obstacle geometries."""

import numpy as np
import pytest

from repro.lgca.fhp import FHP_VELOCITIES
from repro.lgca.flows import (
    channel_flow_state,
    cylinder_obstacle,
    density_pulse_state,
    directed_beam_state,
    plate_obstacle,
    shear_flow_state,
    uniform_random_state,
)
from repro.lgca.observables import density_field, momentum_field, total_mass


class TestUniformRandomState:
    def test_density_statistics(self, rng):
        s = uniform_random_state(64, 64, 6, 0.3, rng)
        mean_occ = total_mass(s, 6) / (64 * 64 * 6)
        assert 0.27 < mean_occ < 0.33

    def test_density_zero_empty(self, rng):
        assert uniform_random_state(8, 8, 6, 0.0, rng).sum() == 0

    def test_density_one_full(self, rng):
        s = uniform_random_state(8, 8, 6, 1.0, rng)
        assert (s == 0b111111).all()

    def test_deterministic_with_seed(self, rng_factory):
        a = uniform_random_state(8, 8, 6, 0.5, rng_factory(7))
        b = uniform_random_state(8, 8, 6, 0.5, rng_factory(7))
        assert np.array_equal(a, b)

    def test_rejects_bad_density(self, rng):
        with pytest.raises(ValueError):
            uniform_random_state(4, 4, 6, 1.5, rng)


class TestDriftedStates:
    def test_channel_flow_has_positive_x_momentum(self, rng):
        s = channel_flow_state(32, 32, FHP_VELOCITIES, 0.3, 0.2, rng)
        mom = momentum_field(s, FHP_VELOCITIES).sum(axis=(0, 1))
        assert mom[0] > 0
        assert abs(mom[1]) < mom[0] * 0.2

    def test_shear_flow_opposes(self, rng):
        s = shear_flow_state(32, 32, FHP_VELOCITIES, 0.3, 0.25, rng)
        mom = momentum_field(s, FHP_VELOCITIES)
        assert mom[:16, :, 0].mean() > 0
        assert mom[16:, :, 0].mean() < 0

    def test_zero_speed_is_unbiased(self, rng):
        s = channel_flow_state(48, 48, FHP_VELOCITIES, 0.3, 0.0, rng)
        mom = momentum_field(s, FHP_VELOCITIES).sum(axis=(0, 1))
        # Expect O(sqrt(N)) fluctuation, not a systematic drift.
        assert abs(mom[0]) < 150


class TestDensityPulse:
    def test_center_denser_than_background(self, rng):
        s = density_pulse_state(32, 32, 6, 0.1, 0.9, 5, rng)
        d = density_field(s, 6)
        center = d[13:19, 13:19].mean()
        edge = d[:4, :4].mean()
        assert center > edge * 2

    def test_rejects_bad_radius(self, rng):
        with pytest.raises(ValueError):
            density_pulse_state(16, 16, 6, 0.1, 0.9, 0, rng)


class TestDirectedBeam:
    def test_full_grid(self):
        s = directed_beam_state(4, 4, channel=2)
        assert (s == 1 << 2).all()

    def test_rectangle(self):
        s = directed_beam_state(6, 6, channel=0, row_range=(1, 3), col_range=(2, 5))
        assert s[1, 2] == 1 and s[2, 4] == 1
        assert s[0, 0] == 0 and s[3, 2] == 0


class TestObstacles:
    def test_cylinder_contains_center(self):
        om = cylinder_obstacle(16, 16, center=(8, 8), radius=3)
        assert om.mask[8, 8]
        assert not om.mask[0, 0]

    def test_cylinder_area_approximation(self):
        om = cylinder_obstacle(64, 64, center=(32, 32), radius=10)
        assert abs(om.num_solid - np.pi * 100) < 40

    def test_plate(self):
        om = plate_obstacle(16, 16, row=8, col_range=(4, 12))
        assert om.num_solid == 8
        assert om.mask[8, 4] and om.mask[8, 11]

    def test_plate_thickness(self):
        om = plate_obstacle(16, 16, row=8, col_range=(4, 12), thickness=2)
        assert om.num_solid == 16

    def test_plate_rejects_outside(self):
        with pytest.raises(ValueError, match="fit"):
            plate_obstacle(8, 8, row=9, col_range=(0, 4))
