"""Property-based tests for observables and flows (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lgca.fhp import FHP_VELOCITIES
from repro.lgca.observables import (
    coarse_grain,
    density_field,
    momentum_field,
    total_mass,
    total_momentum,
)


def random_state(seed, rows, cols, channels=6):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << channels, size=(rows, cols)).astype(np.uint8)


class TestDensityProperties:
    @given(st.integers(0, 2**31 - 1), st.integers(2, 12), st.integers(2, 12))
    def test_density_bounds(self, seed, rows, cols):
        d = density_field(random_state(seed, rows, cols), 6)
        assert (d >= 0).all() and (d <= 6).all()

    @given(st.integers(0, 2**31 - 1))
    def test_total_mass_is_sum_of_density(self, seed):
        s = random_state(seed, 6, 6)
        assert total_mass(s, 6) == density_field(s, 6).sum()

    @given(st.integers(0, 2**31 - 1))
    def test_mass_additive_over_disjoint_states(self, seed):
        """Mass of a union of disjoint channel sets adds."""
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 8, size=(5, 5)).astype(np.uint8)  # channels 0-2
        b = (rng.integers(0, 8, size=(5, 5)).astype(np.uint8)) << np.uint8(3)
        assert total_mass(a | b, 6) == total_mass(a, 6) + total_mass(b, 6)


class TestMomentumProperties:
    @given(st.integers(0, 2**31 - 1))
    def test_momentum_additive_over_disjoint_states(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 8, size=(4, 4)).astype(np.uint8)
        b = (rng.integers(0, 8, size=(4, 4)).astype(np.uint8)) << np.uint8(3)
        pa = total_momentum(a, FHP_VELOCITIES)
        pb = total_momentum(b, FHP_VELOCITIES)
        pab = total_momentum(a | b, FHP_VELOCITIES)
        assert np.allclose(pab, pa + pb, atol=1e-12)

    def test_full_state_has_zero_momentum(self):
        """All six channels occupied: velocities sum to zero."""
        s = np.full((3, 3), 0b111111, dtype=np.uint8)
        assert np.allclose(total_momentum(s, FHP_VELOCITIES), 0, atol=1e-12)

    @given(st.integers(0, 5))
    def test_single_channel_momentum_direction(self, ch):
        s = np.zeros((2, 2), dtype=np.uint8)
        s[0, 0] = 1 << ch
        p = total_momentum(s, FHP_VELOCITIES)
        assert np.allclose(p, FHP_VELOCITIES[ch], atol=1e-12)


class TestCoarseGrainProperties:
    @given(
        st.integers(0, 2**31 - 1),
        st.sampled_from([1, 2, 3, 4, 6]),
    )
    def test_mean_preserved(self, seed, window):
        """Coarse graining preserves the global mean exactly."""
        rng = np.random.default_rng(seed)
        field = rng.random((12, 12))
        coarse = coarse_grain(field, window)
        assert coarse.mean() == pytest.approx(field.mean())

    @given(st.integers(0, 2**31 - 1))
    def test_vector_components_independent(self, seed):
        rng = np.random.default_rng(seed)
        field = rng.random((8, 8, 2))
        coarse = coarse_grain(field, 4)
        for k in (0, 1):
            assert np.allclose(
                coarse[..., k], coarse_grain(field[..., k], 4)
            )

    @given(st.integers(0, 2**31 - 1))
    def test_momentum_field_sums_to_total(self, seed):
        s = random_state(seed, 6, 6)
        mom = momentum_field(s, FHP_VELOCITIES)
        assert np.allclose(mom.sum(axis=(0, 1)), total_momentum(s, FHP_VELOCITIES))


class TestBoundaryProperties:
    @given(st.integers(-50, 50), st.integers(1, 20))
    def test_periodic_resolve_in_range(self, index, size):
        from repro.lattice.boundary import PeriodicBoundary

        r = PeriodicBoundary().resolve(index, size)
        assert 0 <= r < size
        assert (index - r) % size == 0

    @given(st.integers(-50, 50), st.integers(2, 20))
    def test_reflecting_resolve_in_range(self, index, size):
        from repro.lattice.boundary import ReflectingBoundary

        r = ReflectingBoundary().resolve(index, size)
        assert 0 <= r < size

    @given(st.integers(0, 19), st.integers(2, 20))
    def test_all_boundaries_identity_inside(self, index, size):
        from repro.lattice.boundary import make_boundary

        if index >= size:
            return
        for name in ("null", "periodic", "reflecting", "truncated"):
            assert make_boundary(name).resolve(index, size) == index

    @given(st.integers(2, 20))
    def test_reflecting_is_even_extension(self, size):
        """resolve(-k) == resolve(k) for the mirror boundary."""
        from repro.lattice.boundary import ReflectingBoundary

        b = ReflectingBoundary()
        for k in range(1, size):
            assert b.resolve(-k, size) == b.resolve(k, size)
