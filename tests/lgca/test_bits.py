"""Unit + property tests for repro.lgca.bits."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lgca.bits import (
    channel_bit,
    direction_count,
    has_particle,
    pack_channels,
    popcount,
    popcount_table,
    unpack_channels,
)


class TestPopcount:
    def test_scalar(self):
        assert popcount(0b101101, 6) == 4

    def test_zero(self):
        assert popcount(0, 8) == 0

    def test_full(self):
        assert popcount((1 << 7) - 1, 7) == 7

    def test_array(self):
        states = np.array([[0, 1], [3, 7]], dtype=np.uint8)
        assert np.array_equal(popcount(states, 4), [[0, 1], [2, 3]])

    def test_table_cached_and_readonly(self):
        t1 = popcount_table(6)
        t2 = popcount_table(6)
        assert t1 is t2
        with pytest.raises(ValueError):
            t1[0] = 5

    def test_table_rejects_huge(self):
        with pytest.raises(ValueError):
            popcount_table(25)

    @given(st.integers(0, 255))
    def test_matches_bin_count(self, state):
        assert popcount(state, 8) == bin(state).count("1")


class TestDirectionCount:
    def test_scalar(self):
        assert direction_count(0b100, 2) == 1
        assert direction_count(0b100, 1) == 0

    def test_array(self):
        states = np.array([1, 2, 3], dtype=np.uint8)
        assert np.array_equal(direction_count(states, 0), [1, 0, 1])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            direction_count(3, -1)


class TestChannelHelpers:
    def test_channel_bit(self):
        assert channel_bit(0) == 1
        assert channel_bit(5) == 32

    def test_channel_bit_rejects_negative(self):
        with pytest.raises(ValueError):
            channel_bit(-1)

    def test_has_particle(self):
        assert has_particle(0b10, 1)
        assert not has_particle(0b10, 0)


class TestPackUnpack:
    def test_roundtrip_6ch(self):
        rng = np.random.default_rng(0)
        states = rng.integers(0, 64, size=(5, 7)).astype(np.uint8)
        assert np.array_equal(pack_channels(unpack_channels(states, 6)), states)

    def test_roundtrip_7ch_uses_uint8(self):
        states = np.array([127, 0, 64], dtype=np.uint8)
        packed = pack_channels(unpack_channels(states, 7))
        assert packed.dtype == np.uint8
        assert np.array_equal(packed, states)

    def test_many_channels_uint16(self):
        channels = np.zeros((12, 3), dtype=np.uint8)
        channels[11, 0] = 1
        packed = pack_channels(channels)
        assert packed.dtype == np.uint16
        assert packed[0] == 1 << 11

    def test_pack_rejects_nonbinary(self):
        channels = np.full((2, 2), 2, dtype=np.int64)
        with pytest.raises(ValueError, match="outside"):
            pack_channels(channels)

    def test_pack_rejects_too_many_channels(self):
        with pytest.raises(ValueError, match="16-bit"):
            pack_channels(np.zeros((17, 2), dtype=np.uint8))

    def test_pack_rejects_scalar(self):
        with pytest.raises(ValueError):
            pack_channels(np.uint8(3))

    def test_unpack_shape(self):
        states = np.zeros((4, 5), dtype=np.uint8)
        assert unpack_channels(states, 6).shape == (6, 4, 5)

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=20))
    def test_property_roundtrip(self, values):
        states = np.array(values, dtype=np.uint8)
        assert np.array_equal(pack_channels(unpack_channels(states, 6)), states)
