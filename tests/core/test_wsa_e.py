"""Unit tests for the WSA-E variant (section 6.3)."""

import pytest

from repro.core.technology import PAPER_TECHNOLOGY
from repro.core.wsa_e import WSAEDesign, WSAEModel


class TestPins:
    def test_single_pe_fits(self):
        d = WSAEDesign(PAPER_TECHNOLOGY, lattice_size=1000)
        assert d.pes_per_chip == 1
        assert d.pins_used == 48  # 6D
        assert d.is_feasible()

    def test_two_lanes_would_not_fit(self):
        """The paper: 'the pin constraints ... allow only one processor
        per chip in this case' — two lanes would need 96 > 72 pins."""
        assert 2 * 48 > PAPER_TECHNOLOGY.Pi

    def test_infeasible_technology_raises(self):
        tiny = PAPER_TECHNOLOGY.with_(pins=40)
        with pytest.raises(ValueError, match="pins"):
            WSAEModel(tiny).design(1000)


class TestStorage:
    def test_delay_sites_formula(self):
        """2L + 10 node values per stage."""
        d = WSAEDesign(PAPER_TECHNOLOGY, lattice_size=1000)
        assert d.delay_sites_per_stage == 2010

    def test_storage_area_per_pe(self):
        d = WSAEDesign(PAPER_TECHNOLOGY, lattice_size=1000)
        assert d.storage_area_per_pe == pytest.approx(2010 * 576e-6)

    def test_commercial_density_scales(self):
        d = WSAEDesign(PAPER_TECHNOLOGY, lattice_size=1000, commercial_density=8.0)
        assert d.storage_area_per_pe_commercial == pytest.approx(
            d.storage_area_per_pe / 8.0
        )

    def test_storage_grows_linearly_in_l(self):
        d1 = WSAEDesign(PAPER_TECHNOLOGY, lattice_size=500)
        d2 = WSAEDesign(PAPER_TECHNOLOGY, lattice_size=1000)
        assert d2.delay_sites_per_stage - d1.delay_sites_per_stage == 1000


class TestBandwidthAndRate:
    def test_constant_bandwidth_16_bits(self):
        """'WSA-E has a constant bandwidth requirement of 16 bits per
        clock tick' — independent of L and k."""
        for size in (100, 1000, 5000):
            for k in (1, 64):
                d = WSAEDesign(PAPER_TECHNOLOGY, size, pipeline_depth=k)
                assert d.main_memory_bandwidth_bits_per_tick == 16

    def test_rate_linear_in_chips(self):
        d = WSAEDesign(PAPER_TECHNOLOGY, 1000, pipeline_depth=20)
        assert d.update_rate == pytest.approx(20 * 10e6)
        assert d.num_chips == 20

    def test_chips_for_target_rate(self):
        m = WSAEModel(PAPER_TECHNOLOGY)
        assert m.chips_for_target_rate(1000, 35e6) == 4
        assert m.chips_for_target_rate(1000, 10e6) == 1

    def test_chips_for_target_rate_validates(self):
        with pytest.raises(ValueError):
            WSAEModel(PAPER_TECHNOLOGY).chips_for_target_rate(1000, 0)


class TestValidation:
    def test_rejects_bad_density(self):
        with pytest.raises(ValueError):
            WSAEDesign(PAPER_TECHNOLOGY, 100, commercial_density=0)

    def test_rejects_bad_lattice(self):
        with pytest.raises(ValueError):
            WSAEDesign(PAPER_TECHNOLOGY, 0)
