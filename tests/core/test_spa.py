"""Unit tests for the SPA design model — anchored to section 6.2's numbers."""

import pytest

from repro.core.spa import SPADesign, SPAModel
from repro.core.technology import PAPER_TECHNOLOGY


@pytest.fixture
def model() -> SPAModel:
    return SPAModel(PAPER_TECHNOLOGY)


class TestPinOptimum:
    def test_pin_limit_is_13_5(self, model):
        """Π² / 16DE = 72² / (16·8·3) = 13.5 — the paper's constant line."""
        assert model.pin_limit() == pytest.approx(13.5)

    def test_continuous_split(self, model):
        """P_w = Π/4D = 2.25, P_k = Π/4E = 6."""
        pw, pk = model.optimal_split_continuous()
        assert pw == pytest.approx(2.25)
        assert pk == pytest.approx(6.0)

    def test_integer_split_is_2_by_6(self, model):
        """The paper's 12-PE chip: P_w = 2, P_k = 6 (ties with 3×4 broken
        toward fewer memory streams)."""
        assert model.optimal_integer_split() == (2, 6)

    def test_integer_split_product_maximal(self, model):
        """No feasible integer split beats P_w·P_k = 12."""
        t = PAPER_TECHNOLOGY
        best = 0
        for pw in range(1, 10):
            for pk in range(1, 20):
                if 2 * t.D * pw + 2 * t.E * pk <= t.Pi:
                    best = max(best, pw * pk)
        assert best == 12


class TestCorner:
    def test_corner_matches_paper(self, model):
        """P ≈ 13.5 and W ≈ 43."""
        corner = model.corner()
        assert corner.p == pytest.approx(13.5)
        assert 42 < corner.x < 44

    def test_corner_slice_width_rounds_to_43(self, model):
        assert model.corner_slice_width() == 43

    def test_area_limit_shape(self, model):
        assert model.area_limit(10) > model.area_limit(100)
        with pytest.raises(ValueError):
            model.area_limit(-1)

    def test_design_curves(self, model):
        pins, area = model.design_curves(1, 500, num=40)
        assert pins.ps == pytest.approx(13.5)
        assert area.ps[0] > area.ps[-1]


class TestOptimalDesign:
    def test_corner_policy(self, model):
        d = model.optimal_design(785)
        assert (d.pes_wide, d.pes_deep) == (2, 6)
        assert d.slice_width == 43
        assert d.is_feasible()

    def test_max_policy_widens_slice(self, model):
        d = model.optimal_design(785, slice_width_policy="max")
        assert d.slice_width > 43
        assert d.is_feasible()
        wider = SPADesign(
            PAPER_TECHNOLOGY, d.slice_width + 1, 2, 6, lattice_size=785
        )
        assert not wider.is_feasible()

    def test_bad_policy(self, model):
        with pytest.raises(ValueError, match="policy"):
            model.optimal_design(785, slice_width_policy="median")

    def test_slice_capped_at_lattice(self, model):
        d = model.optimal_design(20)
        assert d.slice_width <= 20


class TestAccounting:
    def test_pins_used(self):
        d = SPADesign(PAPER_TECHNOLOGY, 43, 2, 6, 785)
        assert d.pins_used == 2 * 8 * 2 + 2 * 3 * 6  # 68 <= 72

    def test_storage_per_pe_is_128_and_three_quarters_B(self):
        """Paper: SPA 'requires (128¾)B area per processor'."""
        d = SPADesign(PAPER_TECHNOLOGY, 43, 2, 6, 785)
        in_units_of_b = d.storage_area_per_pe / PAPER_TECHNOLOGY.B
        assert in_units_of_b == pytest.approx(128.75, abs=0.3)

    def test_throughput_per_chip_identity(self):
        """R / N = F · P_w · P_k — verified 'by direct substitution'."""
        d = SPADesign(PAPER_TECHNOLOGY, 43, 2, 6, 785, pipeline_depth=12)
        assert d.throughput_per_chip == pytest.approx(10e6 * 12)

    def test_update_rate_formula(self):
        d = SPADesign(PAPER_TECHNOLOGY, 43, 2, 6, 860, pipeline_depth=6)
        assert d.update_rate == pytest.approx(10e6 * 6 * 860 / 43)

    def test_num_slices_ceil(self):
        d = SPADesign(PAPER_TECHNOLOGY, 43, 2, 6, 785)
        assert d.num_slices == 19  # ceil(785/43)

    def test_num_chips_integer_rounds_up(self):
        d = SPADesign(PAPER_TECHNOLOGY, 43, 2, 6, 785, pipeline_depth=6)
        assert d.num_chips_integer == 10  # ceil(19/2) * ceil(6/6)

    def test_bandwidth_grows_with_lattice(self):
        d1 = SPADesign(PAPER_TECHNOLOGY, 43, 2, 6, 430)
        d2 = SPADesign(PAPER_TECHNOLOGY, 43, 2, 6, 860)
        assert (
            d2.main_memory_bandwidth_bits_per_tick
            == pytest.approx(2 * d1.main_memory_bandwidth_bits_per_tick)
        )

    def test_bandwidth_magnitude_vs_paper(self):
        """Paper quotes 262 bits/tick for the optimal SPA vs WSA's 64;
        the exact model value at W = 43, L = 785 is 2D·L/W ≈ 292 —
        same ≈4× ratio (see EXPERIMENTS.md)."""
        d = SPADesign(PAPER_TECHNOLOGY, 43, 2, 6, 785)
        assert d.main_memory_bandwidth_bits_per_tick == pytest.approx(292.1, abs=0.5)
        assert d.main_memory_bandwidth_bits_per_tick_integer == 304  # 16 * 19

    def test_infeasibility_reasons(self):
        d = SPADesign(PAPER_TECHNOLOGY, 200, 4, 10, 800)
        reasons = d.infeasibility_reasons()
        assert any("pins" in r for r in reasons)
        assert any("area" in r for r in reasons)

    def test_default_pipeline_depth_is_pk(self):
        d = SPADesign(PAPER_TECHNOLOGY, 43, 2, 6, 785)
        assert d.pipeline_depth == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            SPADesign(PAPER_TECHNOLOGY, 0, 2, 6, 785)
