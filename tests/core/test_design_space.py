"""Unit tests for generic design-space machinery."""

import numpy as np
import pytest

from repro.core.design_space import (
    DesignCurve,
    DesignPoint,
    best_integer_p,
    feasibility_corner,
    sample_curve,
)


class TestDesignPoint:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DesignPoint(-1, 2)
        with pytest.raises(ValueError):
            DesignPoint(1, -2)


class TestDesignCurve:
    def test_validates_monotone_xs(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            DesignCurve("c", np.array([0.0, 0.0, 1.0]), np.zeros(3))

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            DesignCurve("c", np.arange(3.0), np.arange(4.0))

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            DesignCurve("c", np.array([1.0]), np.array([2.0]))

    def test_interpolation(self):
        c = DesignCurve("c", np.array([0.0, 10.0]), np.array([0.0, 5.0]))
        assert c.at(4.0) == pytest.approx(2.0)

    def test_at_outside_range(self):
        c = DesignCurve("c", np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        with pytest.raises(ValueError):
            c.at(2.0)

    def test_rows(self):
        c = DesignCurve("c", np.array([0.0, 1.0]), np.array([2.0, 3.0]))
        assert c.rows() == [(0.0, 2.0), (1.0, 3.0)]


class TestSampleCurve:
    def test_clamps_negative_to_zero(self):
        c = sample_curve("c", lambda x: 1.0 - x, 0.0, 2.0, num=5)
        assert c.ps.min() == 0.0

    def test_num_points(self):
        c = sample_curve("c", lambda x: x, 0.0, 1.0, num=11)
        assert c.xs.size == 11

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            sample_curve("c", lambda x: x, 1.0, 1.0)


class TestFeasibilityCorner:
    def test_crossing(self):
        # pin limit constant 4; area limit 10 - x: cross at x = 6
        corner = feasibility_corner(lambda x: 4.0, lambda x: 10.0 - x, 0.0, 20.0)
        assert corner.x == pytest.approx(6.0)
        assert corner.p == pytest.approx(4.0)

    def test_area_binding_everywhere(self):
        corner = feasibility_corner(lambda x: 4.0, lambda x: 2.0 - x, 0.0, 10.0)
        assert corner.x == 0.0
        assert corner.p == pytest.approx(2.0)

    def test_pins_binding_everywhere(self):
        corner = feasibility_corner(lambda x: 1.0, lambda x: 100.0 - x, 0.0, 10.0)
        assert corner.x == 10.0
        assert corner.p == pytest.approx(1.0)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            feasibility_corner(lambda x: 1.0, lambda x: 1.0, 5.0, 5.0)


class TestBestIntegerP:
    def test_floors(self):
        assert best_integer_p(4.9) == 4

    def test_exact_integer_preserved(self):
        assert best_integer_p(4.0) == 4

    def test_near_integer_tolerance(self):
        assert best_integer_p(3.9999999999) == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            best_integer_p(-0.5)
