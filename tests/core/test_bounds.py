"""Unit + property tests for the architecture-facing bounds R = O(B·S^{1/d})."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import (
    bandwidth_for_target_rate,
    io_lower_bound,
    line_time_upper_bound,
    storage_for_target_rate,
    update_rate_upper_bound,
)


class TestLineTimeUpperBound:
    def test_d1_form(self):
        # 2 * (1! * 2S) = 4S
        assert line_time_upper_bound(100, 1) == pytest.approx(400)

    def test_d2_form(self):
        assert line_time_upper_bound(50, 2) == pytest.approx(2 * math.sqrt(200))

    def test_validates(self):
        with pytest.raises(ValueError):
            line_time_upper_bound(0, 2)
        with pytest.raises(ValueError):
            line_time_upper_bound(10, 0)

    @given(st.integers(1, 4), st.integers(1, 10**6))
    def test_monotone_in_storage(self, d, s):
        assert line_time_upper_bound(s + 1, d) > line_time_upper_bound(s, d)


class TestUpdateRateUpperBound:
    def test_asymptotic_scaling_d(self):
        """R bound scales as S^{1/d}: double S^d, double... check ratios."""
        r1 = update_rate_upper_bound(1e6, 100, 2)
        r2 = update_rate_upper_bound(1e6, 400, 2)
        assert r2 / r1 == pytest.approx(2.0)

    def test_linear_in_bandwidth(self):
        r1 = update_rate_upper_bound(1e6, 100, 2)
        r2 = update_rate_upper_bound(2e6, 100, 2)
        assert r2 / r1 == pytest.approx(2.0)

    def test_finite_size_bound_tighter_or_close(self):
        asym = update_rate_upper_bound(1e6, 100, 2)
        finite = update_rate_upper_bound(1e6, 100, 2, num_vertices=1e9)
        assert finite <= asym * 1.05

    def test_fits_in_storage_is_unbounded(self):
        assert update_rate_upper_bound(1e6, 1000, 2, num_vertices=10) == math.inf

    def test_higher_dimension_weaker_per_storage(self):
        """At equal S, higher d gives a *larger* relative benefit of
        bandwidth — i.e. S^{1/d} shrinks with d for big S."""
        s = 10**6
        r1 = update_rate_upper_bound(1.0, s, 1)
        r3 = update_rate_upper_bound(1.0, s, 3)
        assert r3 < r1


class TestInversions:
    def test_storage_for_target_rate_roundtrip(self):
        b, d = 1e6, 2
        target = 3e8
        s = storage_for_target_rate(target, b, d)
        # plugging back in recovers the target rate (asymptotic form)
        recovered = 4.0 * b * (math.factorial(d) * 2 * s) ** (1 / d)
        assert recovered == pytest.approx(target)

    def test_storage_cost_is_power_d(self):
        """Doubling the target rate costs 2^d in storage."""
        for d in (1, 2, 3):
            s1 = storage_for_target_rate(1e8, 1e6, d)
            s2 = storage_for_target_rate(2e8, 1e6, d)
            assert s2 / s1 == pytest.approx(2.0**d)

    def test_bandwidth_for_target_rate_roundtrip(self):
        s, d = 5000, 2
        target = 1e9
        b = bandwidth_for_target_rate(target, s, d)
        assert update_rate_upper_bound(b, s, d) == pytest.approx(2 * target / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            storage_for_target_rate(-1, 1, 2)
        with pytest.raises(ValueError):
            bandwidth_for_target_rate(1, 0, 2)


class TestIOLowerBound:
    def test_zero_when_fits(self):
        assert io_lower_bound(10, 1000, 2) == 0.0

    def test_positive_at_scale(self):
        assert io_lower_bound(1e9, 1000, 2) > 0

    def test_decreasing_in_storage(self):
        q1 = io_lower_bound(1e9, 100, 2)
        q2 = io_lower_bound(1e9, 10000, 2)
        assert q2 < q1
