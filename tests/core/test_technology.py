"""Unit tests for ChipTechnology."""

import pytest

from repro.core.technology import PAPER_TECHNOLOGY, ChipTechnology


class TestPaperDefaults:
    def test_published_constants(self):
        t = PAPER_TECHNOLOGY
        assert t.D == 8
        assert t.Pi == 72
        assert t.B == pytest.approx(576e-6)
        assert t.Gamma == pytest.approx(19.4e-3)
        assert t.E == 3
        assert t.F == 10e6

    def test_pe_equivalent_sites(self):
        """A PE costs ~34 shift-register cells in the paper's process."""
        assert PAPER_TECHNOLOGY.pe_equivalent_sites() == pytest.approx(33.68, abs=0.01)


class TestValidation:
    def test_rejects_non_normalized_site_area(self):
        with pytest.raises(ValueError, match="normalized"):
            ChipTechnology(site_area=1.5)

    def test_rejects_non_normalized_pe_area(self):
        with pytest.raises(ValueError, match="normalized"):
            ChipTechnology(pe_area=2.0)

    def test_rejects_zero_pins(self):
        with pytest.raises(ValueError):
            ChipTechnology(pins=0)

    def test_rejects_fractional_bits(self):
        with pytest.raises(TypeError):
            ChipTechnology(bits_per_site=7.5)

    def test_rejects_negative_clock(self):
        with pytest.raises(ValueError):
            ChipTechnology(clock_hz=-1)


class TestWith:
    def test_with_creates_modified_copy(self):
        t2 = PAPER_TECHNOLOGY.with_(pins=144)
        assert t2.pins == 144
        assert PAPER_TECHNOLOGY.pins == 72
        assert t2.D == PAPER_TECHNOLOGY.D

    def test_with_validates(self):
        with pytest.raises(ValueError):
            PAPER_TECHNOLOGY.with_(pins=-1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PAPER_TECHNOLOGY.pins = 100  # type: ignore[misc]


class TestAbsoluteAreas:
    def test_lambda2_conversion(self):
        t = ChipTechnology(chip_area=2.0e9)
        assert t.site_area_lambda2() == pytest.approx(576e-6 * 2.0e9)
        assert t.pe_area_lambda2() == pytest.approx(19.4e-3 * 2.0e9)
