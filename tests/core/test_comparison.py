"""Unit tests for the section 6.3 comparisons (experiments E5 / E6)."""

import pytest

from repro.core.comparison import (
    compare_extensible,
    compare_optimal_designs,
    summarize_architectures,
)


class TestOptimalComparison:
    def test_spa_three_times_faster(self):
        """'SPA is three times faster than WSA. (SPA has twelve
        processors per chip while WSA has four.)'"""
        c = compare_optimal_designs()
        assert c.wsa.pes_per_chip == 4
        assert c.spa.pes_per_chip == 12
        assert c.speedup_spa_over_wsa == pytest.approx(3.0)

    def test_bandwidth_roughly_four_times(self):
        """'the SPA system requires four times as much main memory
        bandwidth as the WSA system: 262 bits/tick versus 64 bits/tick'
        — our exact model gives 292 vs 64 ≈ 4.6× (same conclusion)."""
        c = compare_optimal_designs()
        assert c.wsa_summary.bandwidth_bits_per_tick == 64
        assert 250 < c.spa_summary.bandwidth_bits_per_tick < 310
        assert 3.5 < c.bandwidth_ratio_spa_over_wsa < 5.0

    def test_access_patterns(self):
        c = compare_optimal_designs()
        assert "raster" in c.wsa_summary.access_pattern
        assert "staggered" in c.spa_summary.access_pattern

    def test_extensibility_flags(self):
        c = compare_optimal_designs()
        assert not c.wsa_summary.extensible
        assert c.spa_summary.extensible

    def test_same_lattice_compared(self):
        c = compare_optimal_designs()
        assert c.wsa.lattice_size == c.spa.lattice_size == 785


class TestExtensibleComparison:
    def test_spa_twelve_times_faster_per_chip(self):
        """'the SPA system is twelve times faster than WSA-E because it
        has twelve processors per chip as opposed to one per chip.'"""
        c = compare_extensible(1000)
        assert c.speedup_spa_over_wsa_e == pytest.approx(12.0)

    def test_bandwidth_about_one_twentieth(self):
        """'requiring about one twentieth as much bandwidth' at L=1000."""
        c = compare_extensible(1000)
        ratio = c.bandwidth_ratio_wsa_e_over_spa
        assert 1 / 25 < ratio < 1 / 18

    def test_area_about_twice_with_commercial_memory(self):
        """'WSA-E requires about twice as much area as SPA' — holds with
        the off-chip commercial-memory density κ = 8."""
        c = compare_extensible(1000, commercial_density=8.0)
        assert c.commercial_area_ratio_wsa_e_over_spa == pytest.approx(2.0, abs=0.3)

    def test_raw_onchip_area_ratio_much_larger(self):
        """Without the commercial-density assumption the per-PE storage
        ratio is (2L+10)/(128¾) ≈ 15.6 — documenting why κ matters."""
        c = compare_extensible(1000)
        assert c.storage_area_ratio_wsa_e_over_spa == pytest.approx(15.6, abs=0.5)

    def test_penalty_regimes(self):
        """Fixed rate, growing L: WSA-E's storage grows, SPA's bandwidth
        grows — 'the penalty for larger lattice size is either linear
        growth in the number of chips ... or ... in the main memory
        bandwidth'."""
        c1 = compare_extensible(1000)
        c2 = compare_extensible(2000)
        assert c2.wsa_e.storage_area_per_pe > c1.wsa_e.storage_area_per_pe * 1.9
        assert (
            c2.spa.main_memory_bandwidth_bits_per_tick
            > c1.spa.main_memory_bandwidth_bits_per_tick * 1.9
        )
        # while the other resource stays flat
        assert (
            c2.wsa_e.main_memory_bandwidth_bits_per_tick
            == c1.wsa_e.main_memory_bandwidth_bits_per_tick
        )
        assert c2.spa.storage_area_per_pe == pytest.approx(c1.spa.storage_area_per_pe)


class TestSummarize:
    def test_three_rows(self):
        rows = summarize_architectures()
        assert [r.name for r in rows] == ["WSA", "SPA", "WSA-E"]

    def test_custom_lattice(self):
        rows = summarize_architectures(lattice_size=1200)
        wsa_e = rows[2]
        assert wsa_e.lattice_size == 1200

    def test_wsa_e_one_pe(self):
        rows = summarize_architectures()
        assert rows[2].pes_per_chip == 1
