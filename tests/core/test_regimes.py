"""Unit tests for the operating-regime map (conclusions' claim)."""

import math

import pytest

from repro.core.regimes import RegimePoint, architecture_throughputs, regime_map


class TestArchitectureThroughputs:
    def test_wsa_infeasible_beyond_lmax(self):
        rates, _ = architecture_throughputs(2000, 100)
        assert rates["WSA"] == 0.0
        assert rates["WSA-E"] > 0
        assert rates["SPA"] > 0

    def test_wsa_feasible_at_785(self):
        rates, bw = architecture_throughputs(785, 10)
        assert rates["WSA"] == pytest.approx(10e6 * 4 * 10)
        assert bw["WSA"] == 64

    def test_pipeline_depth_capped_at_l(self):
        """k_max = L: more chips than L adds nothing for WSA/WSA-E."""
        r1, _ = architecture_throughputs(100, 100)
        r2, _ = architecture_throughputs(100, 10_000)
        assert r1["WSA"] == r2["WSA"]
        assert r1["WSA-E"] == r2["WSA-E"]

    def test_spa_chips_capped(self):
        """SPA's usable chips cap at slices/P_w × L/P_k ranks."""
        r1, _ = architecture_throughputs(100, 100)
        r2, _ = architecture_throughputs(100, 10_000)
        assert r1["SPA"] == r2["SPA"]

    def test_bandwidth_budget_kills_spa_at_large_l(self):
        rates, _ = architecture_throughputs(
            2000, 10, bandwidth_budget_bits_per_tick=64
        )
        assert rates["SPA"] == 0.0
        assert rates["WSA-E"] > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            architecture_throughputs(0, 10)
        with pytest.raises(ValueError):
            architecture_throughputs(10, 10, bandwidth_budget_bits_per_tick=0)


class TestRegimeMap:
    def test_unconstrained_spa_dominates_midrange(self):
        pts = regime_map([785], [10])
        assert pts[0].winner == "SPA"

    def test_three_regimes_under_budget_64(self):
        """The paper's conclusion, as a map: SPA at small L, WSA in its
        mid-L window, WSA-E beyond WSA's reach."""
        pts = {
            (p.lattice_size, p.num_chips): p.winner
            for p in regime_map(
                [100, 400, 2000], [10, 100], bandwidth_budget_bits_per_tick=64
            )
        }
        assert pts[(100, 10)] == "SPA"
        assert pts[(400, 100)] == "WSA"
        assert pts[(2000, 100)] == "WSA-E"

    def test_none_when_budget_impossible(self):
        pts = regime_map([785], [10], bandwidth_budget_bits_per_tick=1)
        assert pts[0].winner == "none"

    def test_margin(self):
        pt = regime_map([785], [10])[0]
        assert pt.margin() > 1.0

    def test_margin_infinite_when_single(self):
        point = RegimePoint(
            lattice_size=10,
            num_chips=1,
            throughput={"X": 5.0, "Y": 0.0},
            bandwidth_bits_per_tick={"X": 1.0, "Y": 0.0},
            winner="X",
        )
        assert point.margin() == math.inf

    def test_grid_size(self):
        pts = regime_map([100, 200], [1, 2, 3])
        assert len(pts) == 6
