"""Unit tests for the WSA design model — anchored to section 6.1's numbers."""

import pytest

from repro.core.technology import PAPER_TECHNOLOGY
from repro.core.wsa import WSADesign, WSAModel


@pytest.fixture
def model() -> WSAModel:
    return WSAModel(PAPER_TECHNOLOGY)


class TestConstraints:
    def test_pin_limit_is_4_5(self, model):
        """Π / 2D = 72 / 16 = 4.5."""
        assert model.pin_limit() == pytest.approx(4.5)

    def test_area_limit_closed_form(self, model):
        """P <= (1 - 3B - 2BL)/(7B + Γ) — check one hand value."""
        t = PAPER_TECHNOLOGY
        L = 500.0
        expected = (1 - 3 * t.B - 2 * t.B * L) / (7 * t.B + t.Gamma)
        assert model.area_limit(L) == pytest.approx(expected)

    def test_area_limit_decreasing_in_l(self, model):
        assert model.area_limit(100) > model.area_limit(800)

    def test_area_limit_rejects_negative(self, model):
        with pytest.raises(ValueError):
            model.area_limit(-1)

    def test_design_curves_structure(self, model):
        pins, area = model.design_curves(1, 1000, num=50)
        assert pins.name == "pins" and area.name == "area"
        assert (pins.ps == pins.ps[0]).all()  # constant in L


class TestOperatingPoint:
    def test_corner_near_paper_figure(self, model):
        """The curves cross at P = 4.5, L ≈ 775 (paper plots 'P ≈ 4 and
        L ≈ 785' after integerizing P)."""
        corner = model.corner()
        assert corner.p == pytest.approx(4.5)
        assert 770 < corner.x < 780

    def test_optimal_integer_design_is_paper_point(self, model):
        """Integer design: P = 4, L = 785 — the published corner."""
        d = model.optimal_design()
        assert d.pes_per_chip == 4
        assert d.lattice_size == 785

    def test_optimal_design_feasible_and_tight(self, model):
        d = model.optimal_design()
        assert d.is_feasible()
        assert d.chip_area_used > 0.99  # the corner wastes no silicon
        # L+1 would violate area
        bigger = WSADesign(PAPER_TECHNOLOGY, d.lattice_size + 1, 4)
        assert not bigger.is_feasible()

    def test_absolute_max_lattice(self, model):
        """With P = 1, L maxes out around 846: 'an upper bound on L even
        if we were to accept arbitrarily slow computation'."""
        l_max = model.absolute_max_lattice_size()
        assert 840 <= l_max <= 850
        assert WSADesign(PAPER_TECHNOLOGY, l_max, 1).is_feasible()
        assert not WSADesign(PAPER_TECHNOLOGY, l_max + 1, 1).is_feasible()

    def test_max_lattice_decreases_with_p(self, model):
        assert model.max_lattice_size(1) > model.max_lattice_size(4)

    def test_no_design_when_pins_too_few(self):
        tiny = PAPER_TECHNOLOGY.with_(pins=8)  # P < 1 from pins? 8/16 = 0.5
        with pytest.raises(ValueError):
            WSAModel(tiny).optimal_design()


class TestSystemAccounting:
    def test_pins_used(self):
        d = WSADesign(PAPER_TECHNOLOGY, 785, 4)
        assert d.pins_used == 64  # 2 * 8 * 4, the paper's 64 bits/tick

    def test_bandwidth_matches_pins(self):
        d = WSADesign(PAPER_TECHNOLOGY, 785, 4)
        assert d.main_memory_bandwidth_bits_per_tick == 64
        assert d.main_memory_bandwidth_bytes_per_second == pytest.approx(80e6)

    def test_update_rate_formula(self):
        d = WSADesign(PAPER_TECHNOLOGY, 785, 4, pipeline_depth=10)
        assert d.update_rate == pytest.approx(10e6 * 4 * 10)
        assert d.num_chips == 10

    def test_storage_sites(self):
        d = WSADesign(PAPER_TECHNOLOGY, 785, 4)
        assert d.storage_sites_per_chip == 2 * 785 + 7 * 4 + 3

    def test_throughput_per_area_constant_in_k(self):
        d1 = WSADesign(PAPER_TECHNOLOGY, 785, 4, 1)
        d2 = WSADesign(PAPER_TECHNOLOGY, 785, 4, 50)
        assert d1.throughput_per_area == pytest.approx(d2.throughput_per_area)

    def test_infeasibility_reasons(self):
        d = WSADesign(PAPER_TECHNOLOGY, 2000, 10)
        reasons = d.infeasibility_reasons()
        assert any("pins" in r for r in reasons)
        assert any("area" in r for r in reasons)


class TestUltimatePerformance:
    def test_max_system_depth_is_l(self, model):
        """k_max = L: 'at that point the pipeline contains all the values
        of the sites in the lattice'."""
        ms = model.max_system()
        assert ms.pipeline_depth == ms.lattice_size == 785
        assert ms.num_chips == 785

    def test_max_rate_formula(self, model):
        """R_max = (Π/2D) · F · L with the continuous corner L."""
        corner = model.corner()
        assert model.max_update_rate() == pytest.approx(4.5 * 10e6 * corner.x)

    def test_max_system_rate_consistent(self, model):
        ms = model.max_system()
        assert ms.update_rate == pytest.approx(10e6 * 4 * 785)
