"""Unit tests for the machine-model comparison (conclusions' future work)."""

import math

import pytest

from repro.core.machines import (
    PERIOD_MACHINES,
    MachineModel,
    io_bound_update_rate,
    machine_comparison_rows,
)


def make_machine(**kw) -> MachineModel:
    defaults = dict(
        name="m",
        compute_rate=1e8,
        memory_bandwidth_bytes=1e7,
        storage_sites=1000,
        bits_per_site=8,
    )
    defaults.update(kw)
    return MachineModel(**defaults)


class TestIOBoundRate:
    def test_formula(self):
        assert io_bound_update_rate(1e6, 100, 1) == pytest.approx(4e6 * 200)
        assert io_bound_update_rate(1e6, 50, 2) == pytest.approx(
            4e6 * math.sqrt(200)
        )

    def test_validates(self):
        with pytest.raises(ValueError):
            io_bound_update_rate(0, 10, 2)
        with pytest.raises(ValueError):
            io_bound_update_rate(1, 10, 0)


class TestMachineModel:
    def test_bandwidth_in_sites(self):
        m = make_machine(memory_bandwidth_bytes=1e6, bits_per_site=8)
        assert m.bandwidth_sites_per_second == pytest.approx(1e6)

    def test_streaming_rate_is_half_bandwidth(self):
        m = make_machine()
        assert m.streaming_rate() == pytest.approx(m.bandwidth_sites_per_second / 2)

    def test_achievable_is_min(self):
        m = make_machine(compute_rate=1e3)
        assert m.achievable_rate(2) == 1e3  # compute-bound
        m2 = make_machine(compute_rate=1e15)
        assert m2.achievable_rate(2) == pytest.approx(m2.io_ceiling(2))

    def test_io_bound_flag(self):
        assert make_machine(compute_rate=1e15).is_io_bound(2)
        assert not make_machine(compute_rate=1.0).is_io_bound(2)

    def test_required_reuse(self):
        m = make_machine(compute_rate=2e7, memory_bandwidth_bytes=1e6)
        assert m.required_reuse() == pytest.approx(20.0)

    def test_io_ceiling_grows_with_dimension_root(self):
        m = make_machine(storage_sites=10**6)
        assert m.io_ceiling(1) > m.io_ceiling(2) > m.io_ceiling(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_machine(compute_rate=0)
        with pytest.raises(ValueError):
            make_machine(storage_sites=-1)


class TestPeriodMachines:
    def test_all_construct(self):
        assert len(PERIOD_MACHINES) >= 5

    def test_prototype_matches_section8(self):
        proto = next(m for m in PERIOD_MACHINES if "prototype" in m.name)
        assert proto.compute_rate == 20e6
        # On its 2 MB/s host, pure streaming caps it at 1 M updates/s:
        assert proto.streaming_rate() == pytest.approx(1e6)

    def test_prototype_requires_20x_reuse(self):
        """The section 8 derating, as a reuse requirement."""
        proto = next(m for m in PERIOD_MACHINES if "prototype" in m.name)
        assert proto.required_reuse() == pytest.approx(10.0)

    def test_comparison_rows_complete(self):
        rows = machine_comparison_rows(2)
        assert len(rows) == len(PERIOD_MACHINES)
        for row in rows:
            assert row["achievable"] <= row["compute_rate"] + 1e-9
            assert row["achievable"] <= row["io_ceiling"] + 1e-9

    def test_workstation_is_compute_bound(self):
        rows = {r["name"]: r for r in machine_comparison_rows(2)}
        ws = rows["Sun-3 class workstation"]
        assert not ws["io_bound"]

    def test_special_purpose_beats_workstation(self):
        rows = {r["name"]: r for r in machine_comparison_rows(2)}
        assert (
            rows["WSA max system (785 chips)"]["achievable"]
            > 100 * rows["Sun-3 class workstation"]["achievable"]
        )
