"""Unit tests for the section 8 prototype throughput model (experiment E7)."""

import numpy as np
import pytest

from repro.core.technology import PAPER_TECHNOLOGY
from repro.core.throughput import PrototypeThroughputModel, realized_update_rate


class TestRealizedUpdateRate:
    def test_bandwidth_limited(self):
        assert realized_update_rate(20e6, 2e6, 8) == pytest.approx(1e6)

    def test_compute_limited(self):
        assert realized_update_rate(20e6, 100e6, 8) == pytest.approx(20e6)

    def test_validates(self):
        with pytest.raises(ValueError):
            realized_update_rate(0, 1e6)
        with pytest.raises(ValueError):
            realized_update_rate(1e6, -1)


class TestPrototypeModel:
    def test_paper_peak_20m(self):
        """'Each chip provides 20 million site-updates per second running
        at 10 MHz.'"""
        m = PrototypeThroughputModel()
        assert m.peak_updates_per_second == pytest.approx(20e6)

    def test_paper_40mb_demand(self):
        """'...the 40 megabyte per second bandwidth required for this
        level of performance.'"""
        m = PrototypeThroughputModel()
        assert m.required_bandwidth_bytes_per_second == pytest.approx(40e6)

    def test_paper_realized_1m(self):
        """'We expect to realize approximately 1 million
        site-updates/sec/chip' — i.e. a ~2 MB/s workstation host."""
        m = PrototypeThroughputModel()
        assert m.realized_rate(2e6) == pytest.approx(1e6)

    def test_utilization(self):
        m = PrototypeThroughputModel()
        assert m.utilization(2e6) == pytest.approx(0.05)
        assert m.utilization(40e6) == pytest.approx(1.0)
        assert m.utilization(400e6) == pytest.approx(1.0)

    def test_host_bandwidth_for_rate(self):
        m = PrototypeThroughputModel()
        assert m.host_bandwidth_for_rate(1e6) == pytest.approx(2e6)

    def test_host_bandwidth_for_rate_rejects_above_peak(self):
        m = PrototypeThroughputModel()
        with pytest.raises(ValueError, match="peak"):
            m.host_bandwidth_for_rate(30e6)

    def test_bytes_per_update(self):
        assert PrototypeThroughputModel().bytes_per_update == pytest.approx(2.0)

    def test_sweep_monotone_then_flat(self):
        m = PrototypeThroughputModel()
        rows = m.bandwidth_sweep(np.array([1e6, 10e6, 40e6, 100e6]))
        rates = [r[1] for r in rows]
        assert rates == sorted(rates)
        assert rates[-1] == rates[-2] == pytest.approx(20e6)

    def test_custom_updates_per_tick(self):
        m = PrototypeThroughputModel(PAPER_TECHNOLOGY, updates_per_tick=4)
        assert m.peak_updates_per_second == pytest.approx(40e6)

    def test_validates_updates_per_tick(self):
        with pytest.raises(ValueError):
            PrototypeThroughputModel(updates_per_tick=0)
