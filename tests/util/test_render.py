"""Unit tests for ASCII field rendering."""

import numpy as np
import pytest

from repro.util.render import SHADES, shade_map, spacetime_diagram, speed_map


class TestShadeMap:
    def test_zero_field_blank(self):
        out = shade_map(np.zeros((2, 3)))
        assert out == "   \n   "

    def test_max_value_darkest(self):
        field = np.array([[0.0, 1.0]])
        out = shade_map(field)
        assert out[0] == SHADES[0]
        assert out[1] == SHADES[-1]

    def test_shape(self):
        out = shade_map(np.random.default_rng(0).random((4, 7)))
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == 7 for l in lines)

    def test_vmax_normalization(self):
        field = np.array([[1.0]])
        assert shade_map(field, vmax=2.0)[0] != SHADES[-1]
        assert shade_map(field, vmax=1.0)[0] == SHADES[-1]

    def test_overlay(self):
        field = np.ones((2, 2))
        mask = np.array([[True, False], [False, False]])
        out = shade_map(field, overlay=mask)
        assert out.splitlines()[0][0] == "#"

    def test_overlay_shape_mismatch(self):
        with pytest.raises(ValueError, match="overlay shape"):
            shade_map(np.ones((2, 2)), overlay=np.ones((3, 3), dtype=bool))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            shade_map(np.ones(3))

    def test_rejects_multichar_overlay(self):
        with pytest.raises(ValueError, match="single character"):
            shade_map(np.ones((2, 2)), overlay=np.ones((2, 2), dtype=bool), overlay_char="##")

    def test_values_above_vmax_clamped(self):
        out = shade_map(np.array([[5.0]]), vmax=1.0)
        assert out == SHADES[-1]


class TestSpeedMap:
    def test_magnitude(self):
        v = np.zeros((1, 2, 2))
        v[0, 1] = [3.0, 4.0]  # |u| = 5
        out = speed_map(v)
        assert out[0] == SHADES[0]
        assert out[1] == SHADES[-1]

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            speed_map(np.zeros((2, 2)))


class TestSpacetimeDiagram:
    def test_renders_history(self):
        h = np.array([[0, 1, 0], [1, 1, 1]])
        assert spacetime_diagram(h) == ".#.\n###"

    def test_custom_chars(self):
        h = np.array([[1, 0]])
        assert spacetime_diagram(h, on="X", off="_") == "X_"

    def test_rejects_nonbinary(self):
        with pytest.raises(ValueError, match="0 or 1"):
            spacetime_diagram(np.array([[2]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            spacetime_diagram(np.array([1, 0]))

    def test_rejects_multichar(self):
        with pytest.raises(ValueError):
            spacetime_diagram(np.array([[1]]), on="##")

    def test_rule90_smoke(self):
        from repro.lgca.wolfram import ElementaryCA

        tape = np.zeros(9, dtype=np.uint8)
        tape[4] = 1
        h = ElementaryCA(90, boundary="null").history(tape, 2)
        out = spacetime_diagram(h)
        assert out.splitlines()[0] == "....#...."
        assert out.splitlines()[1] == "...#.#..."
