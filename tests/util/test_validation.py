"""Unit tests for repro.util.validation."""

import math

import numpy as np
import pytest

from repro.util.validation import (
    check_in_range,
    check_integer,
    check_nonnegative,
    check_positive,
    check_probability,
)


class TestCheckInteger:
    def test_accepts_python_int(self):
        assert check_integer(5, "x") == 5

    def test_accepts_numpy_integer(self):
        assert check_integer(np.int64(7), "x") == 7

    def test_accepts_integral_float(self):
        assert check_integer(4.0, "x") == 4

    def test_rejects_fractional_float(self):
        with pytest.raises(TypeError, match="x=4.5"):
            check_integer(4.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError, match="bool"):
            check_integer(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_integer("4", "x")

    def test_returns_int_type(self):
        assert type(check_integer(np.int32(3), "x")) is int


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.5, "x") == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="positive"):
            check_positive(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x=-3"):
            check_positive(-3, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_positive(math.nan, "x")

    def test_integer_mode_rejects_fraction(self):
        with pytest.raises(TypeError):
            check_positive(2.5, "x", integer=True)

    def test_integer_mode_converts(self):
        assert check_positive(3.0, "x", integer=True) == 3

    def test_rejects_non_real(self):
        with pytest.raises(TypeError):
            check_positive([1], "x")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_nonnegative(-1e-9, "x")

    def test_integer_mode(self):
        assert check_nonnegative(0.0, "x", integer=True) == 0

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_nonnegative(float("nan"), "x")


class TestCheckInRange:
    def test_inclusive_endpoints(self):
        assert check_in_range(0, "x", 0, 1) == 0
        assert check_in_range(1, "x", 0, 1) == 1

    def test_exclusive_rejects_endpoints(self):
        with pytest.raises(ValueError):
            check_in_range(0, "x", 0, 1, inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            check_in_range(1.5, "x", 0, 1)

    def test_rejects_non_real(self):
        with pytest.raises(TypeError):
            check_in_range(None, "x", 0, 1)


class TestCheckProbability:
    def test_accepts_half(self):
        assert check_probability(0.5, "p") == 0.5

    def test_returns_float(self):
        assert isinstance(check_probability(1, "p"), float)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability(1.01, "p")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability(-0.01, "p")
