"""Tests for the repro exception hierarchy."""

import pytest

from repro.util.errors import (
    CheckpointError,
    ConfigError,
    FaultDetectedError,
    ReproError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (ConfigError, FaultDetectedError, CheckpointError):
            assert issubclass(cls, ReproError)

    def test_config_error_is_also_value_error(self):
        """Call sites that predate the hierarchy catch ValueError; the
        dual inheritance keeps them working."""
        assert issubclass(ConfigError, ValueError)
        with pytest.raises(ValueError):
            raise ConfigError("bad width")

    def test_fault_detected_carries_detections(self):
        exc = FaultDetectedError("boom", detections=("a", "b"))
        assert exc.detections == ("a", "b")

    def test_fault_detected_default_empty(self):
        assert FaultDetectedError("boom").detections == ()

    def test_repro_error_is_not_value_error(self):
        assert not issubclass(ReproError, ValueError)


class TestCliHandling:
    def test_repro_error_becomes_exit_2_one_liner(self, capsys):
        from repro.cli import main

        assert main(["faults", "--rows", "7"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro faults:")
        assert "even" in err
