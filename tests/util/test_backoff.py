"""Property tests for the shared capped-backoff-with-jitter policy."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.backoff import BackoffPolicy

policies = st.builds(
    BackoffPolicy,
    max_retries=st.integers(min_value=1, max_value=8),
    base_delay=st.floats(min_value=1e-3, max_value=10.0),
    multiplier=st.floats(min_value=1.0, max_value=4.0),
    max_delay=st.one_of(st.none(), st.floats(min_value=1e-3, max_value=100.0)),
    jitter=st.floats(min_value=0.0, max_value=0.99),
)


class TestValidation:
    def test_rejects_zero_retries(self):
        with pytest.raises(ValueError):
            BackoffPolicy(max_retries=0)

    def test_rejects_shrinking_multiplier(self):
        with pytest.raises(ValueError, match="multiplier"):
            BackoffPolicy(multiplier=0.5)

    def test_rejects_jitter_of_one(self):
        with pytest.raises(ValueError, match="jitter"):
            BackoffPolicy(jitter=1.0)

    def test_rejects_negative_max_delay(self):
        with pytest.raises(ValueError, match="max_delay"):
            BackoffPolicy(max_delay=-1.0)

    def test_recovery_reexport_is_same_class(self):
        # The class was promoted to repro.util; the old import path must
        # keep working for the in-process recovery layer.
        from repro.resilience.recovery import BackoffPolicy as Legacy

        assert Legacy is BackoffPolicy


class TestUndithered:
    @given(policies)
    def test_delays_non_decreasing(self, policy):
        schedule = [policy.base(a) for a in range(policy.max_retries)]
        assert all(b >= a for a, b in zip(schedule, schedule[1:]))

    @given(policies)
    def test_capped_at_max_delay(self, policy):
        for attempt in range(policy.max_retries):
            delay = policy.base(attempt)
            assert delay > 0
            if policy.max_delay is not None:
                assert delay <= policy.max_delay

    @given(policies)
    def test_no_rng_means_no_jitter(self, policy):
        assert policy.schedule() == tuple(
            policy.base(a) for a in range(policy.max_retries)
        )

    def test_exact_geometric_growth(self):
        policy = BackoffPolicy(max_retries=4, base_delay=1.0, multiplier=2.0)
        assert policy.schedule() == (1.0, 2.0, 4.0, 8.0)

    def test_cap_flattens_the_tail(self):
        policy = BackoffPolicy(
            max_retries=5, base_delay=1.0, multiplier=2.0, max_delay=3.0
        )
        assert policy.schedule() == (1.0, 2.0, 3.0, 3.0, 3.0)


class TestJitter:
    @given(policies, st.integers(min_value=0, max_value=2**31))
    def test_jitter_within_bounds(self, policy, seed):
        rng = np.random.default_rng(seed)
        for attempt in range(policy.max_retries):
            base = policy.base(attempt)
            delay = policy.delay(attempt, rng)
            low = base * (1.0 - policy.jitter)
            high = base * (1.0 + policy.jitter)
            if policy.max_delay is not None:
                high = min(high, policy.max_delay)
            assert low * (1 - 1e-12) <= delay <= high * (1 + 1e-12)

    @given(policies, st.integers(min_value=0, max_value=2**31))
    def test_seeded_jitter_reproducible(self, policy, seed):
        first = policy.schedule(np.random.default_rng(seed))
        second = policy.schedule(np.random.default_rng(seed))
        assert first == second

    @given(st.integers(min_value=0, max_value=2**31))
    def test_jitter_never_exceeds_cap(self, seed):
        policy = BackoffPolicy(
            max_retries=6,
            base_delay=1.0,
            multiplier=3.0,
            max_delay=2.0,
            jitter=0.5,
        )
        rng = np.random.default_rng(seed)
        assert all(d <= 2.0 for d in policy.schedule(rng))
