"""Unit tests for repro.util.tables."""

import pytest

from repro.util.tables import Table, format_quantity, format_rate


class TestFormatQuantity:
    def test_mega(self):
        assert format_quantity(2.0e7, "B/s") == "20 MB/s"

    def test_kilo(self):
        assert format_quantity(1500, "b") == "1.5 kb"

    def test_plain_below_thousand(self):
        assert format_quantity(64, "bits") == "64 bits"

    def test_giga(self):
        assert "G" in format_quantity(3.14e10)

    def test_tera(self):
        assert "T" in format_quantity(2e12)

    def test_negative(self):
        assert format_quantity(-2e6, "B").startswith("-2")

    def test_no_unit(self):
        assert format_quantity(5e6) == "5 M"


class TestFormatRate:
    def test_paper_style(self):
        assert format_rate(20e6) == "20 Mupdates/s"

    def test_unit_rate(self):
        assert format_rate(1e6) == "1 Mupdates/s"


class TestTable:
    def test_render_contains_title_and_cells(self):
        t = Table("E5", ["arch", "P"])
        t.add_row("WSA", 4)
        t.add_row("SPA", 12)
        text = t.render()
        assert "E5" in text
        assert "WSA" in text and "12" in text

    def test_row_width_mismatch(self):
        t = Table("x", ["a", "b"])
        with pytest.raises(ValueError, match="2 columns"):
            t.add_row(1)

    def test_float_formatting(self):
        t = Table("x", ["v"])
        t.add_row(3.14159265358979)
        assert "3.14159" in t.render()

    def test_add_rows_bulk(self):
        t = Table("x", ["a", "b"])
        t.add_rows([(1, 2), (3, 4)])
        assert len(t.rows) == 2

    def test_columns_aligned(self):
        t = Table("x", ["name", "v"])
        t.add_row("long-name-here", 1)
        lines = t.render().splitlines()
        header, rule, row = lines[2], lines[3], lines[4]
        assert len(header) == len(rule) == len(row)

    def test_print_smoke(self, capsys):
        t = Table("t", ["a"])
        t.add_row(1)
        t.print()
        assert "t" in capsys.readouterr().out
