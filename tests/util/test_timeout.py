"""Tests for the SIGALRM wall-clock guard."""

import time

import pytest

from repro.util.timeout import WallClockTimeout, wall_clock_limit


class TestWallClockLimit:
    def test_fast_body_passes_through(self):
        with wall_clock_limit(5.0):
            value = 1 + 1
        assert value == 2

    def test_none_disables_the_guard(self):
        with wall_clock_limit(None) as armed:
            assert armed is False

    def test_slow_body_raises(self):
        with pytest.raises(WallClockTimeout) as excinfo:
            with wall_clock_limit(0.1) as armed:
                if not armed:  # platform without SIGALRM: nothing to test
                    pytest.skip("wall-clock guard cannot arm here")
                time.sleep(5.0)
        assert excinfo.value.seconds == 0.1

    def test_timer_is_disarmed_after_exit(self):
        with wall_clock_limit(0.2) as armed:
            pass
        if armed:
            time.sleep(0.3)  # would raise if the timer were still live

    def test_inner_guard_fires_inside_outer(self):
        with wall_clock_limit(30.0):
            with pytest.raises(WallClockTimeout):
                with wall_clock_limit(0.1) as armed:
                    if not armed:
                        pytest.skip("wall-clock guard cannot arm here")
                    time.sleep(5.0)

    def test_zero_seconds_means_unlimited(self):
        with wall_clock_limit(0.0) as armed:
            assert armed is False
