"""Legacy entry point so `python setup.py develop` works on minimal
offline environments (no `wheel` package available for PEP 660 editable
installs).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
