#!/usr/bin/env python
"""The section 8 story, end to end, in simulation.

Streams one FHP gas through all three engine architectures, verifies
every one against the reference automaton, then attaches each to hosts
of varying bandwidth and watches the prototype's 20x derating appear —
"It is unlikely, however, that the workstation host will be able to
supply the 40 megabyte per second bandwidth".

Run:  python examples/engine_simulation.py
"""

import numpy as np

from repro import machines
from repro.engines.memory import HostInterface
from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import density_pulse_state
from repro.util.tables import Table, format_quantity, format_rate

ROWS, COLS, GENS = 48, 48, 12


def main() -> None:
    model = FHPModel(ROWS, COLS, boundary="null", chirality="alternate")
    rng = np.random.default_rng(123)
    frame = density_pulse_state(ROWS, COLS, 6, 0.1, 0.85, 8, rng)

    reference = LatticeGasAutomaton(model, frame.copy())
    reference.run(GENS)
    print(f"Reference: {ROWS}x{COLS} FHP gas, {GENS} generations.\n")

    engines = [
        machines.create("serial", model, pipeline_depth=4),
        machines.create("wsa", model, lanes=4, pipeline_depth=4),
        machines.create("spa", model, slice_width=12, pipeline_depth=4),
    ]

    table = Table(
        "Engines vs reference (all must be bit-identical)",
        ["engine", "match", "ticks", "updates/tick", "bits/tick", "PEs"],
    )
    stats_by_name = {}
    for engine in engines:
        out, stats = engine.run(frame.copy(), GENS)
        match = np.array_equal(out, reference.state)
        assert match
        stats_by_name[stats.name] = stats
        table.add_row(
            stats.name,
            "bit-exact",
            stats.ticks,
            f"{stats.updates_per_tick:.2f}",
            f"{stats.main_bandwidth_bits_per_tick:.1f}",
            stats.num_pes,
        )
    table.print()

    spa = next(e for e in engines if type(e) is machines.get("spa").engine_cls)
    print(
        "SPA side channels: worst-case "
        f"{spa.boundary_bits_per_site_update()} bits per edge-site update "
        f"(the paper's E = 3); mean "
        f"{spa.mean_boundary_bits_per_edge_site():.2f} bits per boundary row.\n"
    )

    # The host wall: derate each engine by realistic host channels.
    hosts = [2e6, 10e6, 40e6, 200e6]
    t2 = Table(
        "Realized throughput under host-bandwidth caps (section 8)",
        ["engine"] + [format_quantity(h, "B/s host") for h in hosts],
    )
    for name, stats in stats_by_name.items():
        row = [name]
        for h in hosts:
            rep = HostInterface(h).realized(stats)
            row.append(
                f"{format_rate(rep.realized_updates_per_second)} ({rep.derating:.0%})"
            )
        t2.add_row(*row)
    t2.print()

    print(
        "The fastest engine is also the first to hit the host wall — the\n"
        "paper's conclusion: 'communication bottlenecks — at all scales of\n"
        "the architectural hierarchy — are the critical limiting factors in\n"
        "the performance of highly pipelined, massively parallel machines.'"
    )


if __name__ == "__main__":
    main()
