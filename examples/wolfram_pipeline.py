#!/usr/bin/env python
"""The Steiglitz–Morita 1-D CA chip (reference [16]) in simulation.

Before the lattice-gas engines, the serial-pipelining idea was built for
one-dimensional cellular automata, where a stage's delay line is a
constant 2·radius + 1 cells.  This example streams rule 110 (and the
linear rule 90) through a deep pipeline, prints the space-time diagram,
and shows the 1-D engine's machine balance — I/O per update falls as
2/k with *constant* storage per stage, the regime 2-D engines can only
dream of (their delay lines grow with the lattice line length; that gap
is exactly what the paper's section 7 bound formalizes).

Run:  python examples/wolfram_pipeline.py
"""

import numpy as np

from repro.engines.ca_pipeline import CAPipelineEngine
from repro.lgca.wolfram import ElementaryCA
from repro.util.render import spacetime_diagram
from repro.util.tables import Table, format_rate

WIDTH = 72
GENS = 24


def main() -> None:
    rng = np.random.default_rng(3)

    # -- rule 110 from a random seed row ----------------------------------
    rule = ElementaryCA(110, boundary="null")
    tape = (rng.random(WIDTH) < 0.25).astype(np.uint8)
    history = rule.history(tape, GENS)
    print(f"rule 110, {WIDTH} cells, {GENS} generations:\n")
    print(spacetime_diagram(history))

    # -- the same evolution through the pipeline engine --------------------
    engine = CAPipelineEngine(rule, pipeline_depth=8)
    out, stats = engine.run(tape, GENS)
    assert np.array_equal(out, history[-1]), "engine must match the reference"
    print("\npipeline engine (k=8): bit-identical to the reference.")

    table = Table("1-D pipeline machine balance", ["quantity", "value"])
    table.add_row("cell updates", stats.site_updates)
    table.add_row("ticks", stats.ticks)
    table.add_row("rate at 10 MHz", format_rate(stats.updates_per_second))
    table.add_row("delay cells per stage", engine.storage_cells_per_stage)
    table.add_row("I/O bits per update", f"{stats.io_bits_per_update:.3f}")
    table.print()

    # -- depth sweep: the 2/k law with constant storage ---------------------
    t2 = Table(
        "I/O per update vs pipeline depth (1-D: storage stays 3 cells/stage)",
        ["k", "I/O bits per update", "total delay cells"],
    )
    big_tape = (rng.random(4096) < 0.3).astype(np.uint8)
    for k in (1, 2, 4, 8, 16):
        eng = CAPipelineEngine(rule, pipeline_depth=k)
        _, s = eng.run(big_tape, 16)
        t2.add_row(k, f"{s.io_bits_per_update:.4f}", s.storage_sites)
    t2.print()

    print(
        "Compare the 2-D engines: the same 2/k law, but each stage's delay\n"
        "line is 2L+3 sites — the lattice line length the Theorem 1 span\n"
        "bound says no embedding can avoid."
    )


if __name__ == "__main__":
    main()
