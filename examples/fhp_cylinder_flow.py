#!/usr/bin/env python
"""Flow past a cylinder with the FHP lattice gas.

The paper proposes lattice gases as "microscopic models for fluid
dynamics"; this example runs the canonical wake experiment: a uniform +x
flow meets a solid disk, bounce-back walls top and bottom, and the
coarse-grained velocity field develops a stagnation point and a velocity
deficit behind the body.  The momentum the gas loses per step is the
drag on the cylinder.

Run:  python examples/fhp_cylinder_flow.py
"""

import numpy as np

from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import channel_flow_state, cylinder_obstacle
from repro.lgca.observables import (
    mean_velocity_field,
    reynolds_number,
)
from repro.util.render import speed_map

ROWS, COLS = 64, 128
RADIUS = 6.0
STEPS = 300
WINDOW = 8  # coarse-graining block


def main() -> None:
    rng = np.random.default_rng(7)
    model = FHPModel(ROWS, COLS, boundary="periodic")
    state = channel_flow_state(ROWS, COLS, model.velocities, 0.25, 0.25, rng)
    body = cylinder_obstacle(ROWS, COLS, center=(ROWS / 2, COLS / 4), radius=RADIUS)
    gas = LatticeGasAutomaton(model, state, obstacles=body, rng=rng)

    re = reynolds_number(2 * RADIUS, 0.25, 0.25 / 1.0)
    print(f"FHP cylinder flow: {ROWS}x{COLS}, r={RADIUS}, Re ≈ {re:.1f}")
    print(f"initial momentum: {gas.momentum().round(1)}")

    p_prev = gas.momentum()
    drag_samples = []
    for step in range(STEPS):
        gas.step()
        if step % 50 == 49:
            p_now = gas.momentum()
            drag = (p_prev - p_now) / 50.0
            drag_samples.append(drag[0])
            p_prev = p_now
            print(
                f"  t={step + 1:4d}  momentum={p_now.round(1)}  "
                f"mean drag/step (last 50): {drag[0]:+.2f}"
            )

    u = mean_velocity_field(gas.state, model.velocities, 6, window=WINDOW)
    obstacle_blocks = (
        body.mask.reshape(ROWS // WINDOW, WINDOW, COLS // WINDOW, WINDOW)
        .mean(axis=(1, 3))
        > 0.5
    )
    print("\ncoarse-grained speed field (|u|, '#' = body):\n")
    print(speed_map(u, overlay=obstacle_blocks))

    # Wake diagnostics: x-velocity ahead of vs behind the body.
    cyl_block_col = int(COLS / 4 / WINDOW)
    mid = ROWS // (2 * WINDOW)
    ahead = u[mid, max(cyl_block_col - 3, 0), 0]
    behind = u[mid, min(cyl_block_col + 2, u.shape[1] - 1), 0]
    print(f"\ncenterline u_x ahead of body:  {ahead:+.3f}")
    print(f"centerline u_x behind body:    {behind:+.3f}  (velocity deficit)")
    mean_drag = float(np.mean(drag_samples))
    print(f"mean drag per step: {mean_drag:+.3f} (momentum absorbed by the body)")


if __name__ == "__main__":
    main()
