#!/usr/bin/env python
"""I/O lower bounds in action: pebbling a lattice computation graph.

Builds the computation graph C_d of a 2-D LGCA, plays the red-blue
pebble game with three schedules of increasing sophistication, and
compares their measured main-memory traffic against the paper's lower
bound chain (Lemma 1 + Lemma 2 + Theorem 4) — ending with the headline
inequality R = O(B·S^{1/d}) evaluated for the paper's own prototype.

Run:  python examples/pebbling_io_bounds.py
"""

from repro.core.bounds import (
    bandwidth_for_target_rate,
    storage_for_target_rate,
    update_rate_upper_bound,
)
from repro.lattice.geometry import OrthogonalLattice
from repro.pebbling.bounds import (
    io_per_update_lower_bound,
    theorem4_line_time_bound,
)
from repro.pebbling.division import induced_partition
from repro.pebbling.graph import ComputationGraph
from repro.pebbling.lines import max_line_vertices_per_subset
from repro.pebbling.schedules import (
    measure_schedule,
    per_site_schedule,
    row_cache_schedule,
    row_cache_storage_needed,
    trapezoid_schedule,
    trapezoid_storage_needed,
)
from repro.util.tables import Table, format_rate


def main() -> None:
    lattice = OrthogonalLattice.cube(2, 16)
    graph = ComputationGraph(lattice, generations=8)
    print(
        f"Computation graph C_2: {lattice.num_sites} sites x "
        f"{graph.num_layers} layers = {graph.num_vertices} vertices, "
        f"{graph.num_non_input_vertices} site updates\n"
    )

    table = Table(
        "Pebbling schedules on C_2 (16x16, T=8)",
        ["schedule", "S (red pebbles)", "I/O moves", "I/O per update", "recompute"],
    )
    reports = []
    r = measure_schedule(graph, per_site_schedule(graph), 8, "per-site (no reuse)")
    reports.append(r)
    for depth in (1, 4):
        r = measure_schedule(
            graph,
            row_cache_schedule(graph, depth),
            row_cache_storage_needed(graph, depth),
            f"pipeline k={depth} (the paper's engine)",
        )
        reports.append(r)
    r = measure_schedule(
        graph,
        trapezoid_schedule(graph, base=8, height=4),
        trapezoid_storage_needed(graph, 8, 4),
        "trapezoid tiles b=8, h=4",
    )
    reports.append(r)
    for rep in reports:
        table.add_row(
            rep.name,
            rep.max_red,
            rep.io_moves,
            f"{rep.io_per_update:.3f}",
            f"{rep.recompute_factor:.2f}x",
        )
    table.print()

    # the lower-bound chain, checked on the pipeline schedule
    moves = row_cache_schedule(graph, 4)
    storage = 40
    part = induced_partition(graph, moves, storage)
    tau = max_line_vertices_per_subset(graph, part)
    bound = theorem4_line_time_bound(graph.d, storage)
    print(
        f"Theorem 2/4 check at S={storage}: the pebbling induces a valid "
        f"2S-partition with g={part.size} subsets;\n"
        f"  realized line-time τ = {tau} < {bound:.1f} = 2(d!·2S)^(1/d)  ✓"
    )
    floor = io_per_update_lower_bound(graph, storage)
    print(f"  per-update I/O floor at S={storage}: {floor:.4f}\n")

    # the architecture-facing form, with the paper's prototype numbers
    print("R = O(B·S^(1/d)) as a ceiling for the paper's engines (d = 2):")
    bandwidth_sites = 1e6  # a 1 M site-values/s memory channel
    for storage in (1_600, 16_000, 160_000):
        ceiling = update_rate_upper_bound(bandwidth_sites, storage, 2)
        print(
            f"  B = 1 M values/s, S = {storage:>7,}  ->  R <= {format_rate(ceiling)}"
        )
    print()
    # How close do real machines come?  Reuse factor R/B:
    s_chip = 1_600  # one WSA chip's delay line, ~2L sites at L=785
    permitted = 4 * (2 * 2 * s_chip) ** 0.5
    print(
        f"The bound permits a reuse factor R/B up to 4(d!·2S)^(1/2) = "
        f"{permitted:.0f} at the WSA chip's S = {s_chip} sites."
    )
    print(
        "  a 1-chip engine achieves R/B = 1 (every update streams a value "
        "in and out);\n"
        "  a k-chip pipeline achieves R/B = k — the paper's k = L = 785 "
        "maximum system\n"
        "  approaches the same order as the ceiling, with S growing "
        "linearly in k."
    )
    floor_s = storage_for_target_rate(785.0, 1.0, 2)
    pipeline_s = 785 * 1600
    print(
        f"\nInverting the bound: R/B = 785 requires S >= {floor_s:,.0f} "
        f"site values;\nthe real 785-chip pipeline holds "
        f"785 x ~1600 = {pipeline_s:,} — a {pipeline_s / floor_s:.0f}x gap,\n"
        "because pipeline delay lines are tied to whole lattice rows.  "
        "Closing that gap\nis exactly the paper's open problem: 'discover "
        "an optimal pebbling ... and\nthereby discover an architecture "
        "which is optimal with regard to input/output\ncomplexity.'  "
        "Either way, 'memory bandwidth, and not processor speed or size,\n"
        "is the factor that limits performance.'"
    )


if __name__ == "__main__":
    main()
