#!/usr/bin/env python
"""Fault injection, detection, and recovery — a guided tour.

Walks the resilience subsystem bottom-up:

1. inject a single memory bit flip into a reference evolution and watch
   the parity monitor localize it and the runner repair the row;
2. put a stuck-at defect on a PE output and let TMR voting outvote it
   inline;
3. stream a frame over an unreliable host channel (drop + stall) and
   recover it through checksummed retransmission with backoff;
4. run the full campaign twice — monitors on and off — and print the
   classification summaries side by side, the monitored arm showing
   zero silent data corruption.

Run:  python examples/fault_campaign.py
"""

import numpy as np

from repro import machines
from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.resilience import (
    CampaignConfig,
    FaultInjector,
    FaultSpec,
    ReliableRowTransport,
    ResilientAutomatonRunner,
    TMRVoter,
    UnreliableRowChannel,
    run_campaign,
)
from repro.util.tables import Table

ROWS, COLS, GENS = 16, 16, 8


def memory_flip_demo() -> None:
    model = FHPModel(ROWS, COLS, boundary="periodic", chirality="alternate")
    init = uniform_random_state(ROWS, COLS, 6, 0.3, np.random.default_rng(1))
    golden = LatticeGasAutomaton(model, init).run(GENS)

    injector = FaultInjector(
        [FaultSpec("seu", "bit_flip", "memory", 4, row=7, col=5, channel=2)]
    )
    runner = ResilientAutomatonRunner(
        LatticeGasAutomaton(model, init), injector, checkpoint_interval=4
    )
    final = runner.run(GENS)
    rep = runner.report
    table = Table("1. Memory upset vs parity + row recompute", ["quantity", "value"])
    table.add_row("fault", "bit flip, memory word (7,5) bit 2, generation 4")
    table.add_row("detections", len(rep.detections))
    table.add_row("detected rows", str(list(rep.detections[0].rows)))
    table.add_row("row recomputes", rep.row_recomputes)
    table.add_row("final matches golden", np.array_equal(final, golden))
    table.print()


def tmr_demo() -> None:
    model = FHPModel(ROWS, COLS, boundary="null", chirality="alternate")
    init = uniform_random_state(ROWS, COLS, 6, 0.3, np.random.default_rng(2))
    golden, _ = machines.create("serial", model).run(init, GENS)

    injector = FaultInjector(
        [
            FaultSpec(
                "stuck", "stuck_at", "pe", 3, channel=1, stuck_value=0, duration=2
            )
        ]
    )
    voter = TMRVoter(injector.post_collide_hook())
    engine = machines.create(
        "serial", model, post_collide=voter.as_post_collide()
    )
    final, _ = engine.run(init, GENS)
    table = Table("2. Stuck PE output vs TMR voting", ["quantity", "value"])
    table.add_row("fault", "collision output bit 1 stuck at 0, generations 3-4")
    table.add_row("replica disagreements", len(voter.detections))
    table.add_row("final matches golden", np.array_equal(final, golden))
    table.print()


def transport_demo() -> None:
    frame = uniform_random_state(ROWS, COLS, 6, 0.3, np.random.default_rng(3))
    injector = FaultInjector(
        [
            FaultSpec("drop", "drop_row", "host", 0, row=9),
            FaultSpec("stall", "stall", "host", 0, duration=2),
        ]
    )
    channel = UnreliableRowChannel(frame, injector, generation=0)
    received, rep = ReliableRowTransport(channel).receive()
    table = Table("3. Unreliable host vs checksummed retransmit", ["quantity", "value"])
    table.add_row("faults", "row 9 dropped; host stalls twice on retransmit")
    table.add_row("detections", len(rep.detections))
    table.add_row("retransmits", rep.retransmits)
    table.add_row("backoff delays", str(rep.backoff_delays))
    table.add_row("frame intact", np.array_equal(received, frame))
    table.print()


def campaign_demo() -> None:
    on = run_campaign(CampaignConfig(monitors=True))["summary"]
    off = run_campaign(CampaignConfig(monitors=False))["summary"]
    table = Table("4. Campaign summary", ["outcome", "monitors on", "monitors off"])
    for outcome in on:
        table.add_row(outcome, on[outcome], off[outcome])
    table.print()
    print(
        "With monitors every fault is caught or outvoted; without them the "
        "same faults pass straight into the results."
    )


def main() -> None:
    memory_flip_demo()
    tmr_demo()
    transport_demo()
    campaign_demo()


if __name__ == "__main__":
    main()
