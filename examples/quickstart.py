#!/usr/bin/env python
"""Quickstart: the three layers of the library in ~60 lines of use.

1. simulate an FHP lattice gas (the paper's workload),
2. ask the analytic design models for the paper's engine operating
   points,
3. stream the same gas through a simulated wide-serial engine and check
   it agrees with the reference bit for bit.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import machines
from repro.core.spa import SPAModel
from repro.core.wsa import WSAModel
from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.lgca.observables import total_mass, total_momentum
from repro.util.tables import format_rate


def main() -> None:
    rng = np.random.default_rng(42)

    # -- 1. the workload: an FHP-I lattice gas --------------------------------
    model = FHPModel(rows=64, cols=64)  # hexagonal, 6 bits/site, periodic
    state = uniform_random_state(64, 64, model.num_channels, density=0.3, rng=rng)
    gas = LatticeGasAutomaton(model, state)

    print("FHP lattice gas, 64x64, per-channel density 0.3")
    print(f"  particles: {gas.particle_count()}")
    print(f"  momentum:  {gas.momentum().round(6)}")
    gas.run(100)
    print("after 100 generations (exact conservation):")
    print(f"  particles: {gas.particle_count()}")
    print(f"  momentum:  {gas.momentum().round(6)}")
    assert gas.particle_count() == total_mass(state, 6)
    assert np.allclose(gas.momentum(), total_momentum(state, model.velocities))

    # -- 2. the paper's engine design models ----------------------------------
    wsa = WSAModel().optimal_design()
    spa = SPAModel().optimal_design(lattice_size=wsa.lattice_size)
    print("\nOptimal 3µ-CMOS engine designs (paper section 6):")
    print(
        f"  WSA: P={wsa.pes_per_chip} PEs/chip at L={wsa.lattice_size}, "
        f"{wsa.main_memory_bandwidth_bits_per_tick} bits/tick, "
        f"{format_rate(wsa.updates_per_chip_per_second)}/chip"
    )
    print(
        f"  SPA: {spa.pes_per_chip} PEs/chip (P_w={spa.pes_wide}, "
        f"P_k={spa.pes_deep}, W={spa.slice_width}), "
        f"{spa.main_memory_bandwidth_bits_per_tick:.0f} bits/tick, "
        f"{format_rate(spa.throughput_per_chip)}/chip"
    )
    print(f"  SPA / WSA speed per chip: {spa.pes_per_chip / wsa.pes_per_chip:.1f}x")

    # -- 3. a simulated engine, verified against the reference ----------------
    engine_model = FHPModel(rows=32, cols=32, boundary="null")
    frame = uniform_random_state(32, 32, 6, 0.35, rng)
    reference = LatticeGasAutomaton(engine_model, frame.copy())
    reference.run(8)

    engine = machines.create("wsa", engine_model, lanes=4, pipeline_depth=4)
    result, stats = engine.run(frame, generations=8)

    assert np.array_equal(result, reference.state), "engine must match reference!"
    print("\nWide-serial engine (P=4, k=4) on a 32x32 null-boundary gas:")
    print("  bit-identical to the reference automaton over 8 generations")
    print(f"  ticks: {stats.ticks}, updates/tick: {stats.updates_per_tick:.2f}")
    print(f"  at 10 MHz: {format_rate(stats.updates_per_second)}")
    print(
        f"  main-memory traffic: {stats.main_bandwidth_bits_per_tick:.1f} bits/tick "
        f"({stats.io_bits_per_update:.2f} bits per site update)"
    )


if __name__ == "__main__":
    main()
