#!/usr/bin/env python
"""One-command reproduction scoreboard: every paper claim, checked live.

Walks through experiments E1–E13 (see DESIGN.md), computes each of the
paper's quantitative claims with the library, and prints PASS/FAIL rows
with paper-vs-measured values.  The detailed series behind each row come
from ``pytest benchmarks/ --benchmark-only``; this script is the
five-minute executive summary.

Run:  python examples/reproduce_paper.py
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass
class Check:
    exp: str
    claim: str
    paper: str
    measured: str
    ok: bool


CHECKS: list[Check] = []


def check(exp: str, claim: str, paper: str, measured: str, ok: bool) -> None:
    CHECKS.append(Check(exp, claim, paper, measured, bool(ok)))


def run_e1() -> None:
    from repro.lattice.embedding import (
        hex_diagonal_pair_distance,
        hex_neighborhood_stream_diameter,
        row_major_embedding,
    )

    emb = row_major_embedding(1000)
    span = emb.span()
    check("E1", "Theorem 1: span >= n (row-major optimal)", ">= 1000", str(span), span == 1000)
    pair = hex_diagonal_pair_distance(emb.positions)
    check("E1", "neighborhood pair gap 2n-2", "1998", str(pair), pair == 1998)
    spread = hex_neighborhood_stream_diameter(emb.positions)
    check("E1", "PE memory 'about 2000 sites' at n=1000", "~2000", str(spread), spread == 2000)


def run_e2_e3() -> None:
    from repro.core.wsa import WSAModel

    model = WSAModel()
    d = model.optimal_design()
    check("E2", "WSA corner", "P=4, L=785", f"P={d.pes_per_chip}, L={d.lattice_size}",
          d.pes_per_chip == 4 and d.lattice_size == 785)
    ms = model.max_system()
    check("E3", "N_max = L chips", "785", str(ms.num_chips), ms.num_chips == 785)
    check("E3", "R_max = (Pi/2D)·F·L", "3.14e10/s", f"{ms.update_rate:.3g}/s",
          abs(ms.update_rate - 3.14e10) < 1e8)


def run_e4() -> None:
    from repro.core.spa import SPAModel

    model = SPAModel()
    corner = model.corner()
    check("E4", "SPA corner", "P=13.5, W~43", f"P={corner.p:.1f}, W={corner.x:.1f}",
          abs(corner.p - 13.5) < 0.01 and abs(corner.x - 43) < 1.0)
    pw, pk = model.optimal_integer_split()
    check("E4", "integer split, twelve PEs", "(2,6)=12", f"({pw},{pk})={pw*pk}", pw * pk == 12)


def run_e5_e6() -> None:
    from repro.core.comparison import compare_extensible, compare_optimal_designs

    c = compare_optimal_designs()
    check("E5", "SPA three times faster per chip", "3.0x",
          f"{c.speedup_spa_over_wsa:.2f}x", abs(c.speedup_spa_over_wsa - 3.0) < 0.01)
    check("E5", "bandwidth ~4x (262 vs 64 bits/tick)", "4.1x",
          f"{c.bandwidth_ratio_spa_over_wsa:.2f}x (292 vs 64)",
          3.5 < c.bandwidth_ratio_spa_over_wsa < 5.0)
    e = compare_extensible(1000)
    check("E6", "SPA twelve times faster than WSA-E", "12x",
          f"{e.speedup_spa_over_wsa_e:.1f}x", abs(e.speedup_spa_over_wsa_e - 12) < 0.01)
    check("E6", "WSA-E ~2x area at L=1000 (κ=8)", "~2x",
          f"{e.commercial_area_ratio_wsa_e_over_spa:.2f}x",
          abs(e.commercial_area_ratio_wsa_e_over_spa - 2.0) < 0.3)
    check("E6", "WSA-E ~1/20 bandwidth at L=1000", "~0.05",
          f"{e.bandwidth_ratio_wsa_e_over_spa:.3f}",
          0.03 < e.bandwidth_ratio_wsa_e_over_spa < 0.06)


def run_e7() -> None:
    from repro.core.throughput import PrototypeThroughputModel

    m = PrototypeThroughputModel()
    check("E7", "prototype peak 20M updates/s at 10MHz", "2.0e7/s",
          f"{m.peak_updates_per_second:.3g}/s", m.peak_updates_per_second == 20e6)
    check("E7", "needs 40 MB/s", "4.0e7 B/s",
          f"{m.required_bandwidth_bytes_per_second:.3g} B/s",
          m.required_bandwidth_bytes_per_second == 40e6)
    check("E7", "realized ~1M on workstation", "1.0e6/s",
          f"{m.realized_rate(2e6):.3g}/s", m.realized_rate(2e6) == 1e6)


def run_e8_e9() -> None:
    from repro.lattice.geometry import OrthogonalLattice
    from repro.pebbling.bounds import lemma8_lower_bound, theorem4_line_time_bound
    from repro.pebbling.division import induced_partition
    from repro.pebbling.graph import ComputationGraph
    from repro.pebbling.lines import line_spread, max_line_vertices_per_subset
    from repro.pebbling.schedules import row_cache_schedule

    ok8 = True
    for d in (1, 2, 3):
        g = ComputationGraph(OrthogonalLattice.cube(d, 10), generations=6)
        for j in (1, 2, 4):
            if line_spread(g, j) <= lemma8_lower_bound(d, j):
                ok8 = False
    check("E8", "Lemma 8: T_d(j) > j^d/d!", "strict", "holds d=1..3, j=1..4", ok8)

    g = ComputationGraph(OrthogonalLattice.cube(1, 32), generations=8)
    moves = row_cache_schedule(g, depth=4)
    ok9 = True
    for s in (8, 16, 32):
        part = induced_partition(g, moves, s)
        if max_line_vertices_per_subset(g, part) >= theorem4_line_time_bound(1, s):
            ok9 = False
    check("E9", "Theorem 4: tau(2S) < 2(d!2S)^(1/d)", "strict",
          "holds on induced partitions", ok9)


def run_e10() -> None:
    from repro.lattice.geometry import OrthogonalLattice
    from repro.pebbling.graph import ComputationGraph
    from repro.pebbling.schedules import (
        measure_schedule,
        trapezoid_schedule,
        trapezoid_storage_needed,
    )

    g = ComputationGraph(OrthogonalLattice.cube(1, 256), generations=32)
    pts = []
    for b in (4, 8, 16, 32):
        rep = measure_schedule(
            g, trapezoid_schedule(g, b, b), trapezoid_storage_needed(g, b, b), "t"
        )
        pts.append((math.log(rep.max_red), math.log(rep.io_per_update)))
    n = len(pts)
    sx = sum(x for x, _ in pts)
    sy = sum(y for _, y in pts)
    sxx = sum(x * x for x, _ in pts)
    sxy = sum(x * y for x, y in pts)
    slope = (n * sxy - sx * sy) / (n * sxx - sx * sx)
    check("E10", "tiled I/O scales as S^(-1/d), d=1", "slope -1.00",
          f"slope {slope:.2f}", abs(slope + 1.0) < 0.15)


def run_e11() -> None:
    from repro import machines
    from repro.lgca.automaton import LatticeGasAutomaton
    from repro.lgca.fhp import FHPModel
    from repro.lgca.flows import uniform_random_state

    model = FHPModel(16, 16, boundary="null")
    rng = np.random.default_rng(0)
    frame = uniform_random_state(16, 16, 6, 0.35, rng)
    ref = LatticeGasAutomaton(model, frame.copy())
    ref.run(6)
    all_match = True
    for engine in (
        machines.create("serial", model, pipeline_depth=3),
        machines.create("wsa", model, lanes=4, pipeline_depth=3),
        machines.create("spa", model, slice_width=8, pipeline_depth=3),
    ):
        out, _ = engine.run(frame.copy(), 6)
        all_match &= bool(np.array_equal(out, ref.state))
    check("E11", "all engines bit-identical to reference", "exact",
          "bit-exact" if all_match else "MISMATCH", all_match)
    spa = machines.create("spa", model, slice_width=8)
    e_bits = spa.boundary_bits_per_site_update()
    check("E11", "slice-boundary bits E", "3", str(e_bits), e_bits == 3)


def run_e12() -> None:
    from repro.lgca.diagnostics import measure_shear_viscosity, measure_sound_speed
    from repro.lgca.fhp import FHPModel

    rng = np.random.default_rng(5)
    m = FHPModel(128, 128, chirality="alternate")
    visc = measure_shear_viscosity(m, 0.2, 0.15, 200, rng)
    check("E12", "measured viscosity vs Boltzmann", f"{visc.predicted:.3f}",
          f"{visc.measured:.3f} ({visc.relative_error:.0%} off)",
          visc.relative_error < 0.3)
    m2 = FHPModel(64, 64, chirality="alternate")
    snd = measure_sound_speed(m2, 0.2, 0.3, 400, np.random.default_rng(1))
    check("E12", "sound speed c_s = 1/sqrt(2)", f"{snd.predicted:.3f}",
          f"{snd.measured:.3f}", snd.relative_error < 0.2)


def run_e13() -> None:
    from repro.core.machines import machine_comparison_rows

    rows = {r["name"]: r for r in machine_comparison_rows(2)}
    proto = rows["WSA prototype chip"]
    check("E13", "prototype realized rate (machine model)", "1e6/s",
          f"{proto['realized']:.3g}/s", proto["realized"] == 1e6)
    maxsys = rows["WSA max system (785 chips)"]
    check("E13", "k=L pipeline exactly balanced", "100%",
          f"{maxsys['balance']:.0%}", abs(maxsys["balance"] - 1.0) < 1e-9)


def main() -> None:
    for fn in (
        run_e1,
        run_e2_e3,
        run_e4,
        run_e5_e6,
        run_e7,
        run_e8_e9,
        run_e10,
        run_e11,
        run_e12,
        run_e13,
    ):
        fn()

    width_claim = max(len(c.claim) for c in CHECKS)
    width_paper = max(len(c.paper) for c in CHECKS)
    width_meas = max(len(c.measured) for c in CHECKS)
    print(
        f"{'exp':4}  {'claim':{width_claim}}  {'paper':{width_paper}}  "
        f"{'measured':{width_meas}}  result"
    )
    print("-" * (4 + width_claim + width_paper + width_meas + 14))
    passed = 0
    for c in CHECKS:
        mark = "PASS" if c.ok else "FAIL"
        passed += c.ok
        print(
            f"{c.exp:4}  {c.claim:{width_claim}}  {c.paper:{width_paper}}  "
            f"{c.measured:{width_meas}}  {mark}"
        )
    print(f"\n{passed}/{len(CHECKS)} paper claims reproduced.")
    if passed != len(CHECKS):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
