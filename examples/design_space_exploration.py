#!/usr/bin/env python
"""Design-space exploration: what would the paper's engines look like in
a different chip technology?

The analysis of section 6 is parametric in (D, E, Π, B, Γ, F).  This
example re-derives the design curves, corners, and architecture
comparison for three technologies:

* the paper's 3µ CMOS (the published constants),
* a "denser process" — 4x denser storage and logic, same package,
* a "bigger package" — same die, 144 pins instead of 72.

It shows the paper's central point surviving the technology shift: the
corner moves, but I/O (pins and main-memory bandwidth) stays the binding
resource.

Run:  python examples/design_space_exploration.py
"""

from repro.core.comparison import compare_optimal_designs
from repro.core.spa import SPAModel
from repro.core.technology import PAPER_TECHNOLOGY, ChipTechnology
from repro.core.wsa import WSAModel
from repro.util.tables import Table, format_rate

TECHNOLOGIES = [
    ("paper 3µ CMOS", PAPER_TECHNOLOGY),
    (
        "4x denser process",
        PAPER_TECHNOLOGY.with_(site_area=576e-6 / 4, pe_area=19.4e-3 / 4),
    ),
    ("144-pin package", PAPER_TECHNOLOGY.with_(pins=144)),
    (
        "denser + bigger package",
        PAPER_TECHNOLOGY.with_(
            site_area=576e-6 / 4, pe_area=19.4e-3 / 4, pins=144
        ),
    ),
]


def main() -> None:
    table = Table(
        "Engine operating points across technologies",
        [
            "technology",
            "WSA P*",
            "WSA L*",
            "WSA bits/tick",
            "SPA P_w x P_k",
            "SPA W*",
            "SPA bits/tick (L=W*·19)",
            "SPA/WSA speed",
        ],
    )
    for name, tech in TECHNOLOGIES:
        wsa = WSAModel(tech).optimal_design()
        spa_model = SPAModel(tech)
        spa = spa_model.optimal_design(lattice_size=wsa.lattice_size)
        table.add_row(
            name,
            wsa.pes_per_chip,
            wsa.lattice_size,
            wsa.main_memory_bandwidth_bits_per_tick,
            f"{spa.pes_wide} x {spa.pes_deep} = {spa.pes_per_chip}",
            spa.slice_width,
            f"{spa.main_memory_bandwidth_bits_per_tick:.0f}",
            f"{spa.pes_per_chip / wsa.pes_per_chip:.2f}x",
        )
    table.print()

    # The binding-resource story: what fraction of the chip is PEs?
    t2 = Table(
        "Where the silicon goes (the paper: 'about 4 percent of the area "
        "is used for processing')",
        ["technology", "arch", "PE area fraction", "storage area fraction"],
    )
    for name, tech in TECHNOLOGIES:
        wsa = WSAModel(tech).optimal_design()
        pe_frac = wsa.pes_per_chip * tech.Gamma
        storage_frac = wsa.storage_sites_per_chip * tech.B
        t2.add_row(name, "WSA", f"{pe_frac:.1%}", f"{storage_frac:.1%}")
        spa = SPAModel(tech).optimal_design(lattice_size=wsa.lattice_size)
        pe_frac = spa.pes_per_chip * tech.Gamma
        storage_frac = spa.pes_per_chip * spa.storage_sites_per_pe * tech.B
        t2.add_row(name, "SPA", f"{pe_frac:.1%}", f"{storage_frac:.1%}")
    t2.print()

    # Scaling a full machine: chips and achievable rates at k = L.
    t3 = Table(
        "Maximum-throughput WSA systems (k = L pipeline)",
        ["technology", "chips", "R_max", "memory bandwidth"],
    )
    for name, tech in TECHNOLOGIES:
        ms = WSAModel(tech).max_system()
        t3.add_row(
            name,
            ms.num_chips,
            format_rate(ms.update_rate),
            f"{ms.main_memory_bandwidth_bits_per_tick} bits/tick",
        )
    t3.print()

    comp = compare_optimal_designs()
    print(
        "Paper-technology comparison summary: SPA is "
        f"{comp.speedup_spa_over_wsa:.1f}x faster per chip and needs "
        f"{comp.bandwidth_ratio_spa_over_wsa:.1f}x the main-memory bandwidth —\n"
        "the trade the paper's section 6.3 is about."
    )


if __name__ == "__main__":
    main()
