"""Fault-injection campaign runner.

A campaign sweeps fault kind × location × generation over small lattice
runs and classifies every trial by comparing the faulted run against a
golden (fault-free) evolution:

* ``detected-corrected`` — a monitor fired and the final state still
  matches the golden run (recovery worked, or the anomaly was purely
  a performance event like a brown-out);
* ``detected-aborted`` — monitors detected an unrecoverable fault and
  the run stopped cleanly instead of emitting wrong data;
* ``detected-uncorrected`` — detected, recovery attempted, output still
  wrong (should be empty; its presence is a recovery bug);
* ``masked`` — the fault never changed an observable bit (e.g. a
  stuck-at forcing a bit to the value it already had);
* ``silent-data-corruption`` — the final state is wrong and nothing
  noticed.  The whole point of the subsystem is that this bucket is
  **empty with monitors on and populated with monitors off**, which the
  CI smoke job asserts.

Everything is seeded: the same :class:`CampaignConfig` produces a
byte-identical JSON report on every run (no clocks, no unseeded RNG,
``sort_keys`` serialization).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.engines.memory import MainMemory
from repro.engines.pe import make_rule
from repro.engines.pipeline import PipelineStage
from repro.machines import create as create_machine
from repro.lgca.automaton import LatticeGasAutomaton
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.resilience.faults import FaultInjector, FaultSpec, UnreliableRowChannel
from repro.resilience.monitors import Detection, TMRVoter
from repro.resilience.recovery import (
    BackoffPolicy,
    ReliableRowTransport,
    ResilientAutomatonRunner,
    assemble_raw,
)
from repro.telemetry import NULL_RECORDER, Recorder
from repro.util.errors import ConfigError, FaultDetectedError
from repro.util.tables import Table
from repro.util.timeout import WallClockTimeout, wall_clock_limit

__all__ = [
    "OUTCOMES",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "CampaignConfig",
    "Trial",
    "TrialResult",
    "build_trials",
    "run_trial",
    "run_campaign",
    "report_json",
    "render_report",
]

SCHEMA_NAME = "repro-fault-campaign"
SCHEMA_VERSION = 2

#: Classification buckets, in report order.  ``aborted`` is the runner's
#: own self-defense: a trial whose injection stalled the run past the
#: configured wall-clock limit was killed by the campaign's timeout
#: guard rather than classified by comparison.
OUTCOMES = (
    "detected-corrected",
    "detected-aborted",
    "detected-uncorrected",
    "masked",
    "silent-data-corruption",
    "aborted",
)


@dataclass(frozen=True)
class CampaignConfig:
    """Parameters of one campaign (all defaulted for the CI smoke run)."""

    seed: int = 0
    rows: int = 16
    cols: int = 16
    generations: int = 8
    density: float = 0.3
    checkpoint_interval: int = 4
    monitors: bool = True
    trial_timeout_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.rows % 2:
            raise ConfigError(
                f"rows={self.rows} must be even (periodic FHP trials)"
            )
        if self.generations < 4:
            raise ConfigError(
                f"generations={self.generations} must be >= 4 so faults can "
                "fire away from the run's edges"
            )
        if not 0.0 < self.density < 1.0:
            raise ConfigError(f"density={self.density} must be in (0, 1)")
        if self.trial_timeout_seconds <= 0:
            raise ConfigError(
                f"trial_timeout_seconds={self.trial_timeout_seconds} "
                "must be positive"
            )

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form."""
        return {
            "seed": self.seed,
            "rows": self.rows,
            "cols": self.cols,
            "generations": self.generations,
            "density": self.density,
            "checkpoint_interval": self.checkpoint_interval,
            "monitors": self.monitors,
            "trial_timeout_seconds": self.trial_timeout_seconds,
        }


@dataclass(frozen=True)
class Trial:
    """One campaign point: the fault(s) to inject and the monitor profile.

    ``profile`` names the detection/recovery mechanism the monitored arm
    uses — the taxonomy's monitor/recovery matrix, one row per trial:

    ==================== ============================================
    profile              mechanism
    ==================== ============================================
    parity+conservation  row tags + invariants on the automaton, row
                         recompute / checkpoint rollback
    conservation-only    invariants alone, checkpoint rollback+replay
    tmr                  triple-modular-redundancy vote at the PE
    duplex               tickwise-vs-vectorized lockstep comparison,
                         recompute on mismatch
    transport            seq/CRC tags + retransmit with backoff
    ==================== ============================================
    """

    name: str
    specs: tuple[FaultSpec, ...]
    profile: str


@dataclass(frozen=True)
class TrialResult:
    """Classification and evidence for one executed trial."""

    trial: Trial
    outcome: str
    landed: bool
    aborted: bool
    matches_golden: bool
    detections: tuple[Detection, ...]
    corrections: int = 0
    notes: str = ""

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form."""
        return {
            "trial": self.trial.name,
            "profile": self.trial.profile,
            "faults": [s.to_dict() for s in self.trial.specs],
            "outcome": self.outcome,
            "landed": self.landed,
            "aborted": self.aborted,
            "matches_golden": self.matches_golden,
            "detections": [d.to_dict() for d in self.detections],
            "corrections": self.corrections,
            "notes": self.notes,
        }


def _classify(
    *, aborted: bool, landed: bool, detected: bool, matches_golden: bool
) -> str:
    if aborted:
        return "detected-aborted"
    if not landed:
        return "masked"
    if detected and matches_golden:
        return "detected-corrected"
    if detected:
        return "detected-uncorrected"
    if matches_golden:
        return "masked"
    return "silent-data-corruption"


def build_trials(config: CampaignConfig) -> list[Trial]:
    """The deterministic fault sweep for ``config`` (seeded placement).

    Covers every (kind, location) pair the injector implements, with
    sites drawn from the lattice interior and generations from the run's
    interior so edge effects never mask a fault by construction.
    """
    rng = np.random.default_rng(config.seed)

    def site() -> tuple[int, int, int]:
        r = int(rng.integers(2, config.rows - 2))
        c = int(rng.integers(2, config.cols - 2))
        ch = int(rng.integers(0, 6))
        return r, c, ch

    def gen() -> int:
        return int(rng.integers(1, config.generations - 1))

    trials: list[Trial] = []

    def add(name: str, profile: str, *specs: FaultSpec) -> None:
        trials.append(Trial(name=name, specs=tuple(specs), profile=profile))

    r, c, ch = site()
    add(
        "mem-flip",
        "parity+conservation",
        FaultSpec("mem-flip", "bit_flip", "memory", gen(), row=r, col=c, channel=ch),
    )
    r, c, ch = site()
    add(
        "mem-flip-rollback",
        "conservation-only",
        FaultSpec(
            "mem-flip-rollback", "bit_flip", "memory", gen(), row=r, col=c, channel=ch
        ),
    )
    r, c, ch = site()
    add(
        "mem-stuck",
        "parity+conservation",
        FaultSpec(
            "mem-stuck",
            "stuck_at",
            "memory",
            gen(),
            row=r,
            col=c,
            channel=ch,
            stuck_value=1,
            duration=2,
        ),
    )
    r, c, ch = site()
    add(
        "pe-flip",
        "tmr",
        FaultSpec("pe-flip", "bit_flip", "pe", gen(), row=r, col=c, channel=ch),
    )
    _, _, ch = site()
    add(
        "pe-stuck",
        "tmr",
        FaultSpec(
            "pe-stuck",
            "stuck_at",
            "pe",
            gen(),
            channel=ch,
            stuck_value=0,
            duration=2,
        ),
    )
    r, c, ch = site()
    add(
        "sr-flip",
        "duplex",
        FaultSpec("sr-flip", "bit_flip", "shiftreg", gen(), row=r, col=c, channel=ch),
    )
    g = gen()
    row = int(rng.integers(1, config.rows - 1))
    add("host-drop", "transport", FaultSpec("host-drop", "drop_row", "host", g, row=row))
    g = gen()
    row = int(rng.integers(1, config.rows - 1))
    add(
        "host-dup",
        "transport",
        FaultSpec("host-dup", "duplicate_row", "host", g, row=row),
    )
    g = gen()
    row = int(rng.integers(1, config.rows - 1))
    _, c, ch = site()
    add(
        "host-flip",
        "transport",
        FaultSpec("host-flip", "bit_flip", "host", g, row=row, col=c, channel=ch),
    )
    g = gen()
    row = int(rng.integers(1, config.rows - 1))
    add(
        "host-stall",
        "transport",
        # The stall surfaces on retransmit, so it rides with a drop.
        FaultSpec("host-stall-drop", "drop_row", "host", g, row=row),
        FaultSpec("host-stall", "stall", "host", g, duration=2),
    )
    g = gen()
    row = int(rng.integers(1, config.rows - 1))
    add(
        "host-stall-hard",
        "transport",
        FaultSpec("host-stall-hard-drop", "drop_row", "host", g, row=row),
        # Longer than the retry budget: the transport must abort.
        FaultSpec("host-stall-hard", "stall", "host", g, duration=16),
    )
    g = gen()
    add(
        "host-brownout",
        "transport",
        FaultSpec(
            "host-brownout", "brownout", "host", g, duration=1, bandwidth_factor=0.5
        ),
    )
    return trials


def _gas_model(config: CampaignConfig, boundary: str) -> FHPModel:
    return FHPModel(
        config.rows, config.cols, boundary=boundary, chirality="alternate"
    )


def _initial_state(config: CampaignConfig) -> np.ndarray:
    rng = np.random.default_rng(config.seed + 0x5EED)
    return uniform_random_state(config.rows, config.cols, 6, config.density, rng)


def _run_memory_trial(
    config: CampaignConfig, trial: Trial, monitored: bool
) -> TrialResult:
    """Memory faults go through the automaton + MainMemory read path."""
    model = _gas_model(config, "periodic")
    init = _initial_state(config)
    golden = LatticeGasAutomaton(model, init).run(config.generations)
    injector = FaultInjector(trial.specs)
    runner = ResilientAutomatonRunner(
        LatticeGasAutomaton(model, init),
        injector,
        use_parity=monitored and trial.profile != "conservation-only",
        use_conservation=monitored,
        checkpoint_interval=config.checkpoint_interval,
        memory=MainMemory(),
    )
    final = runner.run(config.generations)
    rep = runner.report
    return TrialResult(
        trial=trial,
        outcome=_classify(
            aborted=rep.aborted,
            landed=bool(injector.landed),
            detected=rep.detected,
            matches_golden=bool(np.array_equal(final, golden)) and not rep.aborted,
        ),
        landed=bool(injector.landed),
        aborted=rep.aborted,
        matches_golden=bool(np.array_equal(final, golden)) and not rep.aborted,
        detections=tuple(rep.detections),
        corrections=rep.corrections,
        notes=f"rollbacks={rep.rollbacks} row_recomputes={rep.row_recomputes}",
    )


def _run_pe_trial(
    config: CampaignConfig, trial: Trial, monitored: bool
) -> TrialResult:
    """PE faults go through the serial pipeline engine's collide hook."""
    model = _gas_model(config, "null")
    init = _initial_state(config)
    golden, _ = create_machine("serial", model).run(init, config.generations)
    injector = FaultInjector(trial.specs)
    hook = injector.post_collide_hook()
    detections: tuple[Detection, ...] = ()
    if monitored:
        voter = TMRVoter(hook)
        engine = create_machine(
            "serial", model, post_collide=voter.as_post_collide()
        )
        final, _ = engine.run(init, config.generations)
        detections = tuple(voter.detections)
    else:
        engine = create_machine("serial", model, post_collide=hook)
        final, _ = engine.run(init, config.generations)
    matches = bool(np.array_equal(final, golden))
    return TrialResult(
        trial=trial,
        outcome=_classify(
            aborted=False,
            landed=bool(injector.landed),
            detected=bool(detections),
            matches_golden=matches,
        ),
        landed=bool(injector.landed),
        aborted=False,
        matches_golden=matches,
        detections=detections,
        corrections=len(detections) if monitored else 0,
    )


def _run_shiftreg_trial(
    config: CampaignConfig, trial: Trial, monitored: bool
) -> TrialResult:
    """Delay-line faults: tickwise stage, duplex-checked when monitored.

    The monitored arm runs the tick-accurate stage in lockstep with the
    vectorized stage (dual modular redundancy — the delay line is inside
    the tickwise path only, so a flip there makes the two disagree);
    on mismatch it recomputes the generation, which succeeds because a
    transient flip does not recur.
    """
    model = _gas_model(config, "null")
    init = _initial_state(config)
    rule = make_rule(model)
    clean_stage = PipelineStage(rule)
    injector = FaultInjector(trial.specs)
    golden = init.ravel().copy()
    for g in range(config.generations):
        golden = clean_stage.process(golden, g)
    golden = golden.copy()  # detach from the stage's internal double buffer
    stream = init.ravel().copy()
    detections: list[Detection] = []
    corrections = 0
    for g in range(config.generations):
        transform = injector.shiftreg_transform(config.cols, g)
        stage = (
            PipelineStage(rule, shiftreg_transform=transform)
            if transform is not None
            else clean_stage
        )
        out = stage.process_tickwise(stream, g)
        if monitored:
            reference = clean_stage.process(stream, g)
            if not np.array_equal(out, reference):
                bad = np.nonzero(out != reference)[0]
                rows = tuple(sorted({int(i) // config.cols for i in bad}))
                detections.append(
                    Detection(
                        monitor="duplex",
                        generation=g,
                        detail=f"tickwise/vectorized mismatch at "
                        f"{bad.size} site(s)",
                        rows=rows,
                    )
                )
                # Recompute: the transient already fired, so a clean
                # tickwise pass reproduces the reference bit-exactly.
                out = clean_stage.process_tickwise(stream, g)
                corrections += 1
        stream = out
    matches = bool(np.array_equal(stream, golden))
    return TrialResult(
        trial=trial,
        outcome=_classify(
            aborted=False,
            landed=bool(injector.landed),
            detected=bool(detections),
            matches_golden=matches,
        ),
        landed=bool(injector.landed),
        aborted=False,
        matches_golden=matches,
        detections=tuple(detections),
        corrections=corrections,
    )


def _run_host_trial(
    config: CampaignConfig, trial: Trial, monitored: bool
) -> TrialResult:
    """Host faults hit one frame transfer in the middle of a run."""
    model = _gas_model(config, "periodic")
    init = _initial_state(config)
    golden = LatticeGasAutomaton(model, init).run(config.generations)
    transfer_gen = trial.specs[0].generation
    injector = FaultInjector(trial.specs)
    auto = LatticeGasAutomaton(model, init)
    auto.run(transfer_gen)
    channel = UnreliableRowChannel(auto.state, injector, generation=transfer_gen)
    detections: tuple[Detection, ...] = ()
    aborted = False
    notes = ""
    if monitored:
        transport = ReliableRowTransport(channel, policy=BackoffPolicy())
        try:
            frame, treport = transport.receive()
            detections = tuple(treport.detections)
            notes = (
                f"retransmits={treport.retransmits} "
                f"bandwidth={treport.realized_bandwidth_factor:.2f}"
            )
            auto.state = frame
        except FaultDetectedError as exc:
            aborted = True
            detections = tuple(exc.detections)
            notes = str(exc)
    else:
        auto.state = assemble_raw(channel)
    if not aborted:
        auto.run(config.generations - transfer_gen)
    matches = (not aborted) and bool(np.array_equal(auto.state, golden))
    return TrialResult(
        trial=trial,
        outcome=_classify(
            aborted=aborted,
            landed=bool(injector.landed),
            detected=bool(detections),
            matches_golden=matches,
        ),
        landed=bool(injector.landed),
        aborted=aborted,
        matches_golden=matches,
        detections=detections,
        corrections=len(detections) if monitored and not aborted else 0,
        notes=notes,
    )


_RUNNERS = {
    "memory": _run_memory_trial,
    "pe": _run_pe_trial,
    "shiftreg": _run_shiftreg_trial,
    "host": _run_host_trial,
}


def run_trial(config: CampaignConfig, trial: Trial) -> TrialResult:
    """Execute one trial under the campaign's monitor setting.

    Every trial runs under a wall-clock guard
    (:func:`repro.util.timeout.wall_clock_limit`): an injection that
    stalls the run — a hang in a recovery path, a retransmit loop that
    never converges — is killed at ``trial_timeout_seconds`` and
    classified ``aborted`` instead of hanging the whole campaign.  The
    note records the configured limit (not the elapsed time) so the
    report stays byte-reproducible.
    """
    location = trial.specs[0].location
    try:
        with wall_clock_limit(config.trial_timeout_seconds):
            return _RUNNERS[location](config, trial, config.monitors)
    except WallClockTimeout:
        return TrialResult(
            trial=trial,
            outcome="aborted",
            landed=False,
            aborted=True,
            matches_golden=False,
            detections=(),
            notes=(
                f"trial exceeded the wall-clock limit of "
                f"{config.trial_timeout_seconds:g}s and was aborted"
            ),
        )


def run_campaign(
    config: CampaignConfig | None = None,
    recorder: Recorder | None = None,
) -> dict[str, object]:
    """Run the full sweep; returns the versioned report dict.

    The report is deterministic for a given config — serialize with
    ``json.dumps(report, sort_keys=True)`` for a byte-stable artifact.
    When a ``recorder`` is supplied, per-trial wall time, outcome
    counters, and one ``faults.trial`` event per trial are attached to
    it as a side channel; the report itself is built purely from the
    trial results, so telemetry never perturbs its bytes.
    """
    config = config or CampaignConfig()
    rec = recorder if recorder is not None else NULL_RECORDER
    clk = rec.clock
    trial_timer = rec.timer("faults.trial_seconds")
    trials_c = rec.counter("faults.trials")
    detections_c = rec.counter("faults.detections")
    results: list[TrialResult] = []
    for trial in build_trials(config):
        t_start = clk()
        result = run_trial(config, trial)
        trial_timer.record(clk() - t_start)
        trials_c.add(1)
        detections_c.add(len(result.detections))
        rec.event(
            "faults.trial",
            trial=trial.name,
            profile=trial.profile,
            outcome=result.outcome,
            landed=result.landed,
            detections=len(result.detections),
            corrections=result.corrections,
        )
        results.append(result)
    summary = {outcome: 0 for outcome in OUTCOMES}
    for result in results:
        summary[result.outcome] += 1
        rec.counter(f"faults.outcome.{result.outcome}").add(1)
    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "config": config.to_dict(),
        "trials": [r.to_dict() for r in results],
        "summary": summary,
    }


def report_json(report: dict[str, object]) -> str:
    """The canonical byte-stable serialization of a campaign report."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def render_report(report: dict[str, object]) -> str:
    """Fixed-width text rendering of a campaign report."""
    config = report["config"]
    monitors = "on" if config["monitors"] else "off"
    table = Table(
        title=(
            f"Fault campaign: seed={config['seed']} "
            f"{config['rows']}x{config['cols']} "
            f"G={config['generations']} monitors={monitors}"
        ),
        columns=["trial", "kind", "location", "gen", "outcome", "det", "notes"],
    )
    for entry in report["trials"]:
        primary = entry["faults"][-1]
        table.add_row(
            entry["trial"],
            primary["kind"],
            primary["location"],
            primary["generation"],
            entry["outcome"],
            len(entry["detections"]),
            entry["notes"],
        )
    lines = [table.render(), ""]
    summary = report["summary"]
    lines.append(
        "summary: "
        + "  ".join(f"{outcome}={summary[outcome]}" for outcome in OUTCOMES)
    )
    return "\n".join(lines) + "\n"
