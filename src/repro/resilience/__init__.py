"""Fault injection, detection, and recovery for the lattice engines.

Layering:

* :mod:`repro.resilience.faults` — seeded fault specs, the injector,
  and the unreliable host channel;
* :mod:`repro.resilience.monitors` — parity tags, conservation drift,
  TMR voting, bandwidth floor;
* :mod:`repro.resilience.checkpoint` — self-verifying recovery points;
* :mod:`repro.resilience.recovery` — the resilient automaton runner and
  the reliable row transport (rollback, recompute, bounded retry);
* :mod:`repro.resilience.campaign` — the sweep runner and its
  deterministic report.
"""

from repro.resilience.campaign import (
    OUTCOMES,
    CampaignConfig,
    Trial,
    TrialResult,
    build_trials,
    render_report,
    report_json,
    run_campaign,
    run_trial,
)
from repro.resilience.checkpoint import Checkpoint, CheckpointStore
from repro.resilience.faults import (
    FAULT_KINDS,
    FAULT_LOCATIONS,
    FaultInjector,
    FaultSpec,
    HostStallError,
    RowPacket,
    UnreliableRowChannel,
    row_checksum,
)
from repro.resilience.monitors import (
    BandwidthMonitor,
    ConservationMonitor,
    Detection,
    FusedMonitor,
    ParityMonitor,
    TMRVoter,
    row_parity_tags,
)
from repro.resilience.recovery import (
    BackoffPolicy,
    ReliableRowTransport,
    ResilientAutomatonRunner,
    RunReport,
    TransportReport,
    assemble_raw,
)

__all__ = [
    "OUTCOMES",
    "CampaignConfig",
    "Trial",
    "TrialResult",
    "build_trials",
    "render_report",
    "report_json",
    "run_campaign",
    "run_trial",
    "Checkpoint",
    "CheckpointStore",
    "FAULT_KINDS",
    "FAULT_LOCATIONS",
    "FaultInjector",
    "FaultSpec",
    "HostStallError",
    "RowPacket",
    "UnreliableRowChannel",
    "row_checksum",
    "BandwidthMonitor",
    "ConservationMonitor",
    "Detection",
    "FusedMonitor",
    "ParityMonitor",
    "TMRVoter",
    "row_parity_tags",
    "BackoffPolicy",
    "ReliableRowTransport",
    "ResilientAutomatonRunner",
    "RunReport",
    "TransportReport",
    "assemble_raw",
]
