"""Recovery: checkpoint/rollback, row recomputation, bounded retry.

Two recovery engines, one per side of the host interface:

* :class:`ResilientAutomatonRunner` — evolves the golden
  :class:`~repro.lgca.automaton.LatticeGasAutomaton` under fault
  injection with parity + conservation monitoring, periodic
  checkpoints, row-granular recomputation (when parity names the
  corrupted rows) and checkpoint rollback-and-replay otherwise.
  Transient faults do not recur on replay, so one rollback fixes them;
  persistent faults re-fire every replay and exhaust the bounded retry
  budget into a clean abort (:class:`~repro.util.errors.FaultDetectedError`)
  instead of silent corruption or an infinite loop.
* :class:`ReliableRowTransport` — receives a sequence-numbered,
  checksummed row stream from an
  :class:`~repro.resilience.faults.UnreliableRowChannel`, detecting
  drops, duplicates, and payload corruption by tag, re-requesting rows
  with exponential backoff when the host stalls, and flagging
  bandwidth brown-outs.

Both record everything they did in a report object — the campaign
classifier and the tests read those, not stdout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lgca.automaton import LatticeGasAutomaton
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.faults import (
    FaultInjector,
    HostStallError,
    UnreliableRowChannel,
)
from repro.resilience.monitors import (
    BandwidthMonitor,
    ConservationMonitor,
    Detection,
    ParityMonitor,
)
from repro.engines.memory import MainMemory
from repro.util.backoff import BackoffPolicy
from repro.util.errors import CheckpointError, FaultDetectedError
from repro.util.validation import check_nonnegative

__all__ = [
    "BackoffPolicy",  # re-exported; the class lives in repro.util.backoff
    "RunReport",
    "ResilientAutomatonRunner",
    "TransportReport",
    "ReliableRowTransport",
    "assemble_raw",
]


@dataclass
class RunReport:
    """Everything a resilient run detected and did about it."""

    generations: int = 0
    detections: list[Detection] = field(default_factory=list)
    corrections: int = 0
    row_recomputes: int = 0
    rollbacks: int = 0
    backoff_delays: list[float] = field(default_factory=list)
    checkpoint_saves: int = 0
    aborted: bool = False
    abort_reason: str = ""

    @property
    def detected(self) -> bool:
        """Whether any monitor fired during the run."""
        return bool(self.detections)

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form."""
        return {
            "generations": self.generations,
            "detections": [d.to_dict() for d in self.detections],
            "corrections": self.corrections,
            "row_recomputes": self.row_recomputes,
            "rollbacks": self.rollbacks,
            "backoff_delays": list(self.backoff_delays),
            "checkpoint_saves": self.checkpoint_saves,
            "aborted": self.aborted,
            "abort_reason": self.abort_reason,
        }


class ResilientAutomatonRunner:
    """Monitored, checkpointed evolution of the reference automaton.

    Parameters
    ----------
    auto:
        The automaton to protect (periodic boundary for conservation
        monitoring).
    injector:
        Fault source; ``None`` runs clean (useful for overhead benches).
    use_parity / use_conservation:
        Which monitors to enable.  With both off the runner is a plain
        (unprotected) evolution — the campaign's control arm.
    checkpoint_interval:
        Generations between recovery points.
    policy:
        Bounded-retry/backoff policy for rollback replays.
    memory:
        Optional :class:`~repro.engines.memory.MainMemory` the state is
        routed through each generation, so memory faults surface through
        the real ``store_frame``/``load_frame`` hook and the traffic is
        accounted.
    """

    def __init__(
        self,
        auto: LatticeGasAutomaton,
        injector: FaultInjector | None = None,
        *,
        use_parity: bool = True,
        use_conservation: bool = True,
        checkpoint_interval: int = 4,
        policy: BackoffPolicy | None = None,
        memory: MainMemory | None = None,
    ):
        self.auto = auto
        self.injector = injector
        self.parity = ParityMonitor() if use_parity else None
        self.conservation = (
            ConservationMonitor(auto.model) if use_conservation else None
        )
        self.store = CheckpointStore(interval=checkpoint_interval)
        self.policy = policy or BackoffPolicy()
        self.memory = memory
        self.report = RunReport()
        self._gen = auto.time
        if memory is not None and injector is not None:
            memory.read_transform = injector.memory_read_transform(
                auto.shape, lambda: self._gen
            )
        # state before the most recent step, for row recomputation
        self._prev_state: np.ndarray | None = None
        self._prev_gen: int = -1
        self._prev_rng_before: dict | None = None
        self._prev_rng_after: dict | None = None

    # -- fault surfaces ----------------------------------------------------------

    def _read_frame(self, generation: int) -> np.ndarray:
        """The frame as the engine sees it this generation (post-faults)."""
        self._gen = generation
        if self.injector is None:
            return self.auto.state
        if self.memory is not None:
            self.memory.store_frame(self.auto.state.ravel())
            return self.memory.load_frame().reshape(self.auto.shape)
        return self.injector.corrupt_frame(self.auto.state, generation)

    def _rng_state(self) -> dict | None:
        rng = self.auto.rng
        return None if rng is None else dict(rng.bit_generator.state)

    def _set_rng_state(self, state: dict | None) -> None:
        if self.auto.rng is not None and state is not None:
            self.auto.rng.bit_generator.state = state

    # -- recovery actions --------------------------------------------------------

    def _recompute_rows(self, rows: tuple[int, ...], generation: int) -> bool:
        """Repair corrupted rows of the current state from the previous one.

        The state at ``generation`` was verified good when tagged; only
        the named rows rotted at rest.  Replaying the last step from the
        retained ``generation - 1`` state regenerates them bit-exactly
        (deterministic microdynamics), so only the corrupted rows are
        rewritten.  Returns False when no previous state is available
        (fall back to checkpoint rollback).
        """
        if self._prev_state is None or self._prev_gen != generation - 1:
            return False
        self._set_rng_state(self._prev_rng_before)
        replay_auto = LatticeGasAutomaton(
            self.auto.model,
            self._prev_state,
            obstacles=self.auto.obstacles,
            rng=self.auto.rng,
            time=generation - 1,
        )
        replay_auto.step()
        state = self.auto.state
        state[list(rows)] = replay_auto.state[list(rows)]
        self._set_rng_state(self._prev_rng_after)
        self.report.row_recomputes += 1
        self.report.corrections += 1
        return True

    def _rollback_and_replay(self, target: int) -> None:
        """Restore the last checkpoint and replay up to ``target``.

        Bounded retries with exponential backoff; raises
        :class:`FaultDetectedError` when every attempt re-detects (a
        persistent fault) or no checkpoint survives.
        """
        last_detail = "unknown"
        for attempt in range(self.policy.max_retries):
            self.report.backoff_delays.append(self.policy.delay(attempt))
            try:
                cp = self.store.latest()
            except CheckpointError as exc:
                raise FaultDetectedError(
                    f"cannot recover: {exc}", tuple(self.report.detections)
                ) from exc
            self.auto.state = cp.state.copy()
            self.auto.time = cp.generation
            self.store.restore_rng(cp, self.auto.rng)
            if self.parity is not None:
                self.parity.tag(self.auto.state)
            self._prev_state = None  # stale across a rollback
            self.report.rollbacks += 1
            clean = True
            while self.auto.time < target:
                detections = self._advance_one()
                if detections:
                    last_detail = detections[-1].detail
                    clean = False
                    break
            if clean:
                self.report.corrections += 1
                return
        raise FaultDetectedError(
            f"persistent fault survived {self.policy.max_retries} "
            f"rollback attempts (last: {last_detail})",
            tuple(self.report.detections),
        )

    # -- the per-generation pipeline ---------------------------------------------

    def _advance_one(self) -> list[Detection]:
        """One monitored generation; returns (and records) detections.

        Recovery is *not* attempted here — the caller decides (the main
        loop recovers; the replay loop treats any detection as a failed
        attempt).  Row-granular repair of at-rest corruption is the
        exception: it happens inline because it needs only the retained
        previous state, and a repaired frame continues cleanly.
        """
        t = self.auto.time
        frame = self._read_frame(t)
        detections: list[Detection] = []
        if self.parity is not None:
            at_rest = self.parity.check(frame, t)
            if at_rest:
                self.report.detections.extend(at_rest)
                self.auto.state = frame
                if self._recompute_rows(at_rest[0].rows, t):
                    frame = self.auto.state
                else:
                    return at_rest
        self.auto.state = frame
        self._prev_state = self.auto.state.copy()
        self._prev_gen = t
        self._prev_rng_before = self._rng_state()
        self.auto.step()
        self._prev_rng_after = self._rng_state()
        if self.conservation is not None:
            drift = self.conservation.check(self.auto.state, self.auto.time)
            if drift:
                self.report.detections.extend(drift)
                detections.extend(drift)
        if not detections:
            if self.parity is not None:
                self.parity.tag(self.auto.state)
            if self.store.due(self.auto.time):
                self.store.save(self.auto.time, self.auto.state, self.auto.rng)
                self.report.checkpoint_saves += 1
        return detections

    def run(self, generations: int, *, abort_raises: bool = False) -> np.ndarray:
        """Advance ``generations`` with monitoring and recovery.

        Returns the final state; consult :attr:`report` for what
        happened on the way.  An unrecoverable fault either raises
        :class:`FaultDetectedError` (``abort_raises=True``) or is
        recorded as ``report.aborted`` with the evolution stopped at
        the last consistent state.
        """
        generations = check_nonnegative(generations, "generations", integer=True)
        if self.conservation is not None:
            self.conservation.arm(self.auto.state)
        if self.parity is not None:
            self.parity.tag(self.auto.state)
        self.store.save(self.auto.time, self.auto.state, self.auto.rng)
        self.report.checkpoint_saves += 1
        target = self.auto.time + generations
        try:
            while self.auto.time < target:
                detections = self._advance_one()
                if detections:
                    self._rollback_and_replay(target)
        except FaultDetectedError as exc:
            if abort_raises:
                raise
            self.report.aborted = True
            self.report.abort_reason = str(exc)
        self.report.generations = self.auto.time - (target - generations)
        return self.auto.state


@dataclass
class TransportReport:
    """What one reliable frame transfer detected and did."""

    rows: int = 0
    detections: list[Detection] = field(default_factory=list)
    retransmits: int = 0
    backoff_delays: list[float] = field(default_factory=list)
    realized_bandwidth_factor: float = 1.0
    aborted: bool = False
    abort_reason: str = ""

    @property
    def detected(self) -> bool:
        """Whether any transfer anomaly was seen."""
        return bool(self.detections)

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form."""
        return {
            "rows": self.rows,
            "detections": [d.to_dict() for d in self.detections],
            "retransmits": self.retransmits,
            "backoff_delays": list(self.backoff_delays),
            "realized_bandwidth_factor": self.realized_bandwidth_factor,
            "aborted": self.aborted,
            "abort_reason": self.abort_reason,
        }


class ReliableRowTransport:
    """Receive a frame over an unreliable host channel, reliably.

    Every packet carries ``(seq, crc32, row)``; the receiver detects
    duplicates and corruption immediately, detects drops by the gap in
    sequence numbers at end of stream, and recovers everything through
    bounded retransmission with exponential backoff.
    """

    def __init__(
        self,
        channel: UnreliableRowChannel,
        policy: BackoffPolicy | None = None,
        bandwidth_monitor: BandwidthMonitor | None = None,
    ):
        self.channel = channel
        self.policy = policy or BackoffPolicy()
        self.bandwidth_monitor = bandwidth_monitor or BandwidthMonitor()

    def _retransmit(self, seq: int, report: TransportReport) -> np.ndarray:
        generation = self.channel.generation
        for attempt in range(self.policy.max_retries + 1):
            try:
                packet = self.channel.retransmit(seq)
            except HostStallError as exc:
                delay = self.policy.delay(attempt)
                report.backoff_delays.append(delay)
                report.detections.append(
                    Detection(
                        monitor="transport",
                        generation=generation,
                        detail=f"{exc}; backing off {delay:g} units "
                        f"(attempt {attempt + 1})",
                        rows=(seq,),
                    )
                )
                continue
            report.retransmits += 1
            if packet.intact:
                return packet.row
            report.detections.append(
                Detection(
                    monitor="transport",
                    generation=generation,
                    detail=f"retransmitted row {seq} failed its checksum",
                    rows=(seq,),
                )
            )
        raise FaultDetectedError(
            f"row {seq} unrecoverable after {self.policy.max_retries + 1} "
            "retransmit attempts",
            tuple(report.detections),
        )

    def receive(self) -> tuple[np.ndarray, TransportReport]:
        """Collect the full frame; returns ``(rows, report)``.

        Raises
        ------
        FaultDetectedError
            When a row stays unrecoverable through the whole retry
            budget (the caller aborts the generation).
        """
        expected = self.channel.rows.shape[0]
        generation = self.channel.generation
        report = TransportReport(rows=expected)
        received: dict[int, np.ndarray] = {}
        for packet in self.channel.packets():
            if packet.seq in received:
                report.detections.append(
                    Detection(
                        monitor="transport",
                        generation=generation,
                        detail=f"duplicate row {packet.seq} discarded",
                        rows=(packet.seq,),
                    )
                )
                continue
            if not packet.intact:
                report.detections.append(
                    Detection(
                        monitor="transport",
                        generation=generation,
                        detail=f"row {packet.seq} failed its checksum",
                        rows=(packet.seq,),
                    )
                )
                received[packet.seq] = self._retransmit(packet.seq, report)
                continue
            received[packet.seq] = packet.row
        for seq in range(expected):
            if seq not in received:
                report.detections.append(
                    Detection(
                        monitor="transport",
                        generation=generation,
                        detail=f"row {seq} missing from stream (dropped)",
                        rows=(seq,),
                    )
                )
                received[seq] = self._retransmit(seq, report)
        factor = expected / max(self.channel.transfer_time_units, 1e-12)
        report.realized_bandwidth_factor = min(factor, 1.0)
        report.detections.extend(
            self.bandwidth_monitor.check_transfer(
                report.realized_bandwidth_factor, generation
            )
        )
        frame = np.stack([received[seq] for seq in range(expected)])
        return frame, report


def assemble_raw(channel: UnreliableRowChannel) -> np.ndarray:
    """The unprotected receiver: take the wire as-is.

    Dropped rows shift everything up, duplicates shift it down, and the
    frame is padded with zero rows / truncated to the expected height —
    exactly what a host DMA engine with no sequence checking would do.
    """
    expected, cols = channel.rows.shape
    rows = [packet.row for packet in channel.packets()]
    while len(rows) < expected:
        rows.append(np.zeros(cols, dtype=channel.rows.dtype))
    return np.stack(rows[:expected])
