"""Checkpoint/restart for lattice evolutions.

A checkpoint is everything needed to replay deterministically from a
generation boundary: the state field, the RNG bit-generator state (for
``chirality="random"`` models), and the generation index.  Checkpoints
carry their own parity tags so a *corrupted checkpoint* is detected at
restore time instead of silently seeding a wrong replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.resilience.monitors import row_parity_tags
from repro.util.errors import CheckpointError
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["Checkpoint", "CheckpointStore"]


@dataclass(frozen=True)
class Checkpoint:
    """One recovery point: state field + RNG state + generation index."""

    generation: int
    state: np.ndarray = field(repr=False)
    rng_state: dict | None = field(default=None, repr=False)
    tags: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def verify(self) -> None:
        """Raise :class:`CheckpointError` if the stored state rotted."""
        if self.tags is None:
            return
        current = row_parity_tags(self.state)
        if not np.array_equal(current, self.tags):
            bad = np.nonzero(current != self.tags)[0]
            raise CheckpointError(
                f"checkpoint at generation {self.generation} is corrupted "
                f"in rows {[int(r) for r in bad]}"
            )


class CheckpointStore:
    """A bounded ring of recent checkpoints.

    Parameters
    ----------
    interval:
        Generations between checkpoints (:meth:`due` answers "now?").
    keep:
        Recovery points retained; older ones age out.
    """

    def __init__(self, interval: int = 8, keep: int = 2):
        self.interval = check_positive(interval, "interval", integer=True)
        self.keep = check_positive(keep, "keep", integer=True)
        self._ring: list[Checkpoint] = []
        self.saves = 0

    def __len__(self) -> int:
        return len(self._ring)

    def due(self, generation: int) -> bool:
        """Whether ``generation`` falls on a checkpoint boundary."""
        check_nonnegative(generation, "generation", integer=True)
        return generation % self.interval == 0

    def save(
        self,
        generation: int,
        state: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> Checkpoint:
        """Snapshot ``state`` (copied) and the RNG at ``generation``."""
        cp = Checkpoint(
            generation=check_nonnegative(generation, "generation", integer=True),
            state=np.asarray(state).copy(),
            rng_state=None if rng is None else dict(rng.bit_generator.state),
            tags=row_parity_tags(state),
        )
        self._ring.append(cp)
        if len(self._ring) > self.keep:
            self._ring.pop(0)
        self.saves += 1
        return cp

    def latest(self) -> Checkpoint:
        """Most recent verified checkpoint.

        Raises
        ------
        CheckpointError
            If no checkpoint exists or the newest one fails its own
            parity verification (and no older one survives).
        """
        if not self._ring:
            raise CheckpointError("no checkpoint to restore from")
        for cp in reversed(self._ring):
            try:
                cp.verify()
            except CheckpointError:
                continue
            return cp
        raise CheckpointError("every retained checkpoint is corrupted")

    def restore_rng(self, cp: Checkpoint, rng: np.random.Generator | None) -> None:
        """Rewind ``rng`` to the checkpointed bit-generator state."""
        if rng is not None and cp.rng_state is not None:
            rng.bit_generator.state = cp.rng_state
