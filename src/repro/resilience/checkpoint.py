"""Checkpoint/restart for lattice evolutions.

A checkpoint is everything needed to replay deterministically from a
generation boundary: the state field, the RNG bit-generator state (for
``chirality="random"`` models), and the generation index.  Checkpoints
carry their own parity tags so a *corrupted checkpoint* is detected at
restore time instead of silently seeding a wrong replay.

The store keeps a bounded in-memory ring and can additionally persist
every checkpoint to a directory.  Durable writes are **crash-safe**:
each checkpoint is written to a temporary file, flushed and fsynced,
then moved into place with an atomic rename (and the directory entry
fsynced) — a process killed at any instant mid-checkpoint leaves the
previous restorable frame untouched.  Restore scans newest-to-oldest
and skips anything unreadable or parity-corrupt, so a torn or rotted
file degrades to an older recovery point, never to a wrong replay.
"""

from __future__ import annotations

import json
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.resilience.monitors import row_parity_tags
from repro.util.errors import CheckpointError
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["Checkpoint", "CheckpointStore"]

#: Durable checkpoint filename prefix (``ckpt-<generation>.npz``).
_FILE_PREFIX = "ckpt-"
_TMP_PREFIX = ".tmp-"


@dataclass(frozen=True)
class Checkpoint:
    """One recovery point: state field + RNG state + generation index."""

    generation: int
    state: np.ndarray = field(repr=False)
    rng_state: dict | None = field(default=None, repr=False)
    tags: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def verify(self) -> None:
        """Raise :class:`CheckpointError` if the stored state rotted."""
        if self.tags is None:
            return
        current = row_parity_tags(self.state)
        if not np.array_equal(current, self.tags):
            bad = np.nonzero(current != self.tags)[0]
            raise CheckpointError(
                f"checkpoint at generation {self.generation} is corrupted "
                f"in rows {[int(r) for r in bad]}"
            )


def _checkpoint_path(directory: Path, generation: int) -> Path:
    return directory / f"{_FILE_PREFIX}{generation:012d}.npz"


def _write_durable(directory: Path, cp: Checkpoint) -> Path:
    """Write ``cp`` crash-safely: temp file + fsync + atomic rename."""
    final = _checkpoint_path(directory, cp.generation)
    tmp = directory / f"{_TMP_PREFIX}{final.name}.{os.getpid()}"
    rng_json = "" if cp.rng_state is None else json.dumps(cp.rng_state)
    try:
        with open(tmp, "wb") as fh:
            np.savez(
                fh,
                generation=np.asarray(cp.generation, dtype=np.int64),
                state=cp.state,
                tags=cp.tags,
                rng_json=np.asarray(rng_json),
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    except OSError as exc:
        tmp.unlink(missing_ok=True)
        raise CheckpointError(f"cannot persist checkpoint to {final}: {exc}") from exc
    # Make the rename itself durable: fsync the directory entry.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return final  # platform without directory fds; rename already atomic
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return final


def _read_durable(path: Path) -> Checkpoint:
    """Load one durable checkpoint; raises :class:`CheckpointError` if torn."""
    try:
        with np.load(path, allow_pickle=False) as data:
            rng_json = str(data["rng_json"])
            cp = Checkpoint(
                generation=int(data["generation"]),
                state=np.array(data["state"]),
                rng_state=json.loads(rng_json) if rng_json else None,
                tags=np.array(data["tags"]),
            )
    except (
        OSError,
        ValueError,
        KeyError,
        json.JSONDecodeError,
        zipfile.BadZipFile,
    ) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    cp.verify()
    return cp


class CheckpointStore:
    """A bounded ring of recent checkpoints, optionally disk-durable.

    Parameters
    ----------
    interval:
        Generations between checkpoints (:meth:`due` answers "now?").
    keep:
        Recovery points retained (in memory and on disk); older ones
        age out.
    directory:
        When set, every :meth:`save` also persists the checkpoint
        crash-safely under this directory, and :meth:`latest` falls back
        to disk when the in-memory ring is empty — which is how a
        *restarted process* (a fresh store pointed at the same
        directory) resumes from its predecessor's last good frame.
    """

    def __init__(
        self,
        interval: int = 8,
        keep: int = 2,
        directory: str | Path | None = None,
    ):
        self.interval = check_positive(interval, "interval", integer=True)
        self.keep = check_positive(keep, "keep", integer=True)
        self.directory = None if directory is None else Path(directory)
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._ring: list[Checkpoint] = []
        self.saves = 0

    def __len__(self) -> int:
        return len(self._ring)

    def due(self, generation: int) -> bool:
        """Whether ``generation`` falls on a checkpoint boundary."""
        check_nonnegative(generation, "generation", integer=True)
        return generation % self.interval == 0

    def save(
        self,
        generation: int,
        state: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> Checkpoint:
        """Snapshot ``state`` (copied) and the RNG at ``generation``.

        With a ``directory`` configured the snapshot is also written
        durably (temp + fsync + atomic rename) before this returns, so
        a crash at any later instant can restart from it.
        """
        cp = Checkpoint(
            generation=check_nonnegative(generation, "generation", integer=True),
            state=np.asarray(state).copy(),
            rng_state=None if rng is None else dict(rng.bit_generator.state),
            tags=row_parity_tags(state),
        )
        if self.directory is not None:
            _write_durable(self.directory, cp)
            self._prune_durable()
        self._ring.append(cp)
        if len(self._ring) > self.keep:
            self._ring.pop(0)
        self.saves += 1
        return cp

    def _durable_paths(self) -> list[Path]:
        """Durable checkpoint files, oldest first (temp files excluded)."""
        assert self.directory is not None
        return sorted(
            p
            for p in self.directory.iterdir()
            if p.name.startswith(_FILE_PREFIX) and p.suffix == ".npz"
        )

    def _prune_durable(self) -> None:
        for path in self._durable_paths()[: -self.keep]:
            path.unlink(missing_ok=True)

    def latest(self) -> Checkpoint:
        """Most recent verified checkpoint (memory ring, then disk).

        Raises
        ------
        CheckpointError
            If no checkpoint exists or every retained one fails its own
            verification (parity mismatch, torn file).
        """
        for cp in reversed(self._ring):
            try:
                cp.verify()
            except CheckpointError:
                continue
            return cp
        if self.directory is not None:
            try:
                return self.load_latest(self.directory)
            except CheckpointError:
                pass
        if not self._ring:
            raise CheckpointError("no checkpoint to restore from")
        raise CheckpointError("every retained checkpoint is corrupted")

    @classmethod
    def load_latest(cls, directory: str | Path) -> Checkpoint:
        """Newest intact durable checkpoint under ``directory``.

        Scans newest-to-oldest, skipping torn/corrupt files and
        leftover temporaries, so the survivor of a mid-write crash is
        whatever frame last completed its atomic rename.

        Raises
        ------
        CheckpointError
            When the directory holds no restorable checkpoint.
        """
        directory = Path(directory)
        if not directory.is_dir():
            raise CheckpointError(f"no checkpoint directory {directory}")
        candidates = sorted(
            (
                p
                for p in directory.iterdir()
                if p.name.startswith(_FILE_PREFIX) and p.suffix == ".npz"
            ),
            reverse=True,
        )
        for path in candidates:
            try:
                return _read_durable(path)
            except CheckpointError:
                continue
        raise CheckpointError(f"no restorable checkpoint under {directory}")

    def restore_rng(self, cp: Checkpoint, rng: np.random.Generator | None) -> None:
        """Rewind ``rng`` to the checkpointed bit-generator state."""
        if rng is not None and cp.rng_state is not None:
            rng.bit_generator.state = cp.rng_state
