"""Runtime corruption detectors for lattice evolutions.

Three pluggable monitors, ordered by what they can see:

* :class:`ParityMonitor` — per-row parity/checksum tags of the stored
  lattice.  Catches corruption *at rest* (memory upsets between
  generations) and names the corrupted rows, enabling row-granular
  recomputation instead of a full rollback.
* :class:`ConservationMonitor` — exact mass and momentum drift against
  the gas's invariants (periodic boundary).  Catches *any* single bit
  flip in a conserved channel within one generation, because a flip
  changes the particle count by exactly ±1 and LGCA microdynamics are
  reversible — a wrong bit never heals itself.
* :class:`TMRVoter` — triple-modular-redundancy voting across three PE
  replicas.  Catches (and corrects, inline) faults inside the update
  computation itself, which no state-side monitor can attribute.

All monitors return :class:`Detection` records and never raise; policy
(rollback, abort) lives in :mod:`repro.resilience.recovery`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lgca.automaton import SiteModel
from repro.telemetry import NULL_RECORDER, Recorder

__all__ = [
    "Detection",
    "row_parity_tags",
    "ParityMonitor",
    "ConservationMonitor",
    "FusedMonitor",
    "TMRVoter",
    "BandwidthMonitor",
]


@dataclass(frozen=True)
class Detection:
    """One monitor finding.

    Attributes
    ----------
    monitor:
        Which monitor fired (``"parity"``, ``"conservation"``, …).
    generation:
        Lattice generation the check ran at.
    detail:
        Human-readable description of what diverged.
    rows:
        Affected lattice rows when the monitor can localize (parity
        can; conservation cannot).
    """

    monitor: str
    generation: int
    detail: str
    rows: tuple[int, ...] = ()

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form."""
        return {
            "monitor": self.monitor,
            "generation": self.generation,
            "detail": self.detail,
            "rows": list(self.rows),
        }


def row_parity_tags(state: np.ndarray) -> np.ndarray:
    """Per-row integrity tags of a site-state frame.

    Tag = exact (uint64) sum of the row's site words — one vectorized
    pass over the frame, the budget that keeps whole-frame monitoring
    under the bench's 10% overhead ceiling.  Any change to a single
    word shifts its row sum by a nonzero delta (site words are < 2^16,
    the sum cannot wrap), so every single-event corruption is caught
    and localized to its row; only a multi-word forgery with exactly
    cancelling deltas in one row aliases, which the single-event fault
    model excludes.
    """
    return np.asarray(state).sum(axis=1, dtype=np.uint64)


class ParityMonitor:
    """Tag rows after each verified-good generation; verify on re-read."""

    name = "parity"

    def __init__(self) -> None:
        self._tags: np.ndarray | None = None

    def tag(self, state: np.ndarray) -> None:
        """Record tags for a frame known (or assumed) good."""
        self._tags = row_parity_tags(state)

    def check(self, state: np.ndarray, generation: int) -> list[Detection]:
        """Compare the frame against the last recorded tags."""
        if self._tags is None:
            return []
        tags = row_parity_tags(state)
        bad = np.nonzero(tags != self._tags)[0]
        if not bad.size:
            return []
        rows = tuple(int(r) for r in bad)
        return [
            Detection(
                monitor=self.name,
                generation=generation,
                detail=f"row parity mismatch in rows {list(rows)}",
                rows=rows,
            )
        ]


class ConservationMonitor:
    """Flag mass/momentum drift of a periodic (closed) lattice gas.

    With periodic boundaries both invariants are exact integers /
    exact algebraic sums, so the tolerance only absorbs float roundoff
    in the hexagonal momentum components.
    """

    name = "conservation"

    def __init__(self, model: SiteModel, momentum_atol: float = 1e-6):
        boundary = getattr(model, "boundary", "periodic")
        if boundary != "periodic":
            raise ValueError(
                "conservation monitoring needs a closed (periodic) lattice; "
                f"model has boundary={boundary!r}"
            )
        self.model = model
        self.momentum_atol = momentum_atol
        # Per-state-value lookup tables: both invariants come from one
        # histogram of the 2^C possible site words, not from a per-site
        # field — O(N) bincount + O(2^C) dot, ~50x cheaper than
        # materializing a momentum field every generation.
        num_states = 1 << model.num_channels
        bits = (
            np.arange(num_states)[:, None] >> np.arange(model.num_channels)
        ) & 1
        self._num_states = num_states
        self._mass_lut = bits.sum(axis=1).astype(np.int64)
        self._momentum_lut = bits.astype(np.float64) @ np.asarray(
            model.velocities, dtype=np.float64
        )
        self._mass: int | None = None
        self._momentum: np.ndarray | None = None

    def _invariants(self, state: np.ndarray) -> tuple[int, np.ndarray]:
        counts = np.bincount(
            np.asarray(state).ravel(), minlength=self._num_states
        )
        return int(counts @ self._mass_lut), counts @ self._momentum_lut

    def arm(self, state: np.ndarray) -> None:
        """Record the invariants of the initial (trusted) state."""
        self._mass, self._momentum = self._invariants(state)

    def rearm(self, state: np.ndarray) -> None:
        """Re-record invariants after a trusted restore (checkpoints)."""
        self.arm(state)

    def check(self, state: np.ndarray, generation: int) -> list[Detection]:
        """Compare the frame's invariants against the armed values."""
        if self._mass is None or self._momentum is None:
            return []
        detections = []
        mass, momentum = self._invariants(state)
        if mass != self._mass:
            detections.append(
                Detection(
                    monitor=self.name,
                    generation=generation,
                    detail=f"mass drift: {self._mass} -> {mass} "
                    f"({mass - self._mass:+d} particles)",
                )
            )
        drift = float(np.abs(momentum - self._momentum).max())
        if drift > self.momentum_atol:
            detections.append(
                Detection(
                    monitor=self.name,
                    generation=generation,
                    detail=f"momentum drift |dp|={drift:.3e} "
                    f"exceeds {self.momentum_atol:.1e}",
                )
            )
        return detections


def _popcount(words: np.ndarray) -> np.ndarray:
    """Per-word particle counts; numpy's native popcount when present."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words)
    lut = np.array([bin(w).count("1") for w in range(256)], dtype=np.uint8)
    return np.take(lut, words)


class FusedMonitor:
    """Hot-loop detector: light per-generation sweep, periodic full sweep.

    The two-pass parity + conservation configuration costs two LUT
    passes plus a histogram per generation — measurable against the
    automaton's highly vectorized step.  This monitor keeps the same
    detection guarantee at a fraction of the cost:

    * every generation (:meth:`observe`): total mass via a single
      popcount reduction — any single bit flip moves total mass by
      exactly ±1 and reversible microdynamics never heal it, so every
      single-event upset is still flagged within one generation — plus
      fresh per-row word-sum tags so :meth:`check_at_rest` stays
      available to callers that re-read frames from storage;
    * every ``sweep_interval`` generations, a full histogram sweep also
      compares exact momentum, catching mass-preserving word
      substitutions (a particle moved between channels) within a
      bounded window.

    Emitted detections reuse the ``"parity"`` / ``"conservation"``
    monitor names, so downstream classification is unchanged.

    ``recorder`` (optional) measures the monitor itself: per-generation
    check cost on the ``resilience.monitor.observe_seconds`` timer,
    light/full sweep counters, and one ``resilience.detection`` event
    per finding — the overhead numbers in ``docs/OBSERVABILITY.md``
    come from these.  Detections are returned exactly as before either
    way.
    """

    def __init__(
        self,
        model: SiteModel,
        momentum_atol: float = 1e-6,
        sweep_interval: int = 4,
        recorder: Recorder | None = None,
    ):
        if sweep_interval < 1:
            raise ValueError(f"sweep_interval={sweep_interval} must be >= 1")
        # Shares the periodic-boundary requirement (and raises the same
        # error) as the full monitor it embeds for the periodic sweep.
        self._full = ConservationMonitor(model, momentum_atol=momentum_atol)
        self.model = model
        self.sweep_interval = sweep_interval
        self._mass: int | None = None
        self._tags: np.ndarray | None = None
        self._since_sweep = 0
        rec = recorder if recorder is not None else NULL_RECORDER
        self._recorder = rec
        self._clk = rec.clock
        self._observe_timer = rec.timer("resilience.monitor.observe_seconds")
        self._light_sweeps = rec.counter("resilience.monitor.light_sweeps")
        self._full_sweeps = rec.counter("resilience.monitor.full_sweeps")
        self._detections_c = rec.counter("resilience.monitor.detections")

    def arm(self, state: np.ndarray) -> None:
        """Record invariants and tags of the initial (trusted) state."""
        self._full.arm(state)
        self._mass = int(_popcount(np.asarray(state)).sum(dtype=np.int64))
        self._tags = row_parity_tags(state)
        self._since_sweep = 0

    def rearm(self, state: np.ndarray) -> None:
        """Re-record after a trusted restore (checkpoints)."""
        self.arm(state)

    def observe(self, state: np.ndarray, generation: int) -> list[Detection]:
        """Post-step check: light mass sweep, periodic full sweep.

        Also refreshes the per-row tags, so one call per generation
        keeps :meth:`check_at_rest` usable between generations.
        """
        if self._mass is None:
            return []
        t_start = self._clk()
        detections: list[Detection] = []
        self._since_sweep += 1
        if self._since_sweep >= self.sweep_interval:
            self._since_sweep = 0
            self._full_sweeps.add(1)
            detections.extend(self._full.check(state, generation))
        else:
            self._light_sweeps.add(1)
            mass = int(_popcount(np.asarray(state)).sum(dtype=np.int64))
            if mass != self._mass:
                detections.append(
                    Detection(
                        monitor="conservation",
                        generation=generation,
                        detail=f"mass drift: {self._mass} -> {mass} "
                        f"({mass - self._mass:+d} particles)",
                    )
                )
        self._tags = row_parity_tags(state)
        self._observe_timer.record(self._clk() - t_start)
        if detections:
            self._detections_c.add(len(detections))
            for d in detections:
                self._recorder.event(
                    "resilience.detection",
                    monitor=d.monitor,
                    generation=d.generation,
                    detail=d.detail,
                )
        return detections

    def check_at_rest(
        self, state: np.ndarray, generation: int
    ) -> list[Detection]:
        """Verify a frame against the tags of the last observed state."""
        if self._tags is None:
            return []
        tags = row_parity_tags(state)
        bad = np.nonzero(tags != self._tags)[0]
        if not bad.size:
            return []
        rows = tuple(int(r) for r in bad)
        return [
            Detection(
                monitor="parity",
                generation=generation,
                detail=f"row parity mismatch in rows {list(rows)}",
                rows=rows,
            )
        ]


class TMRVoter:
    """Majority-vote three PE replicas, one of which may be faulty.

    Wraps a (possibly fault-injecting) transform as replica 0 against
    two clean replicas; the bitwise majority of three words corrects any
    fault confined to one replica, and every disagreement is recorded as
    a :class:`Detection` — TMR is the one monitor that both detects
    *and* corrects in the same clock.
    """

    name = "tmr"

    def __init__(self, faulty_hook):
        self.faulty_hook = faulty_hook
        self.detections: list[Detection] = []

    @staticmethod
    def vote(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
        """Bitwise majority of three equally-shaped word arrays."""
        return (a & b) | (a & c) | (b & c)

    def as_post_collide(self):
        """A :data:`~repro.engines.pe.PostCollideHook` running the vote.

        The stage hands us the *clean* collided values (replicas 1, 2);
        replica 0 passes through the faulty transform.  The returned
        values are the vote — i.e. clean unless two replicas fail
        together, which the single-event fault model excludes.
        """

        def hook(values: np.ndarray, r: np.ndarray, c: np.ndarray, t: int) -> np.ndarray:
            replica0 = np.asarray(self.faulty_hook(values.copy(), r, c, t))
            voted = self.vote(replica0, values, values)
            disagree = np.nonzero(replica0 != values)[0]
            if disagree.size:
                rows = tuple(sorted({int(np.asarray(r).ravel()[i]) for i in disagree[:8]}))
                self.detections.append(
                    Detection(
                        monitor=self.name,
                        generation=t,
                        detail=f"replica disagreement at {disagree.size} site(s), "
                        "outvoted 2-to-1",
                        rows=rows,
                    )
                )
            return voted

        return hook


class BandwidthMonitor:
    """Flag host-interface bandwidth brown-outs.

    Compares a transfer's realized bandwidth factor against a floor;
    a brown-out is a *performance* fault — data stays intact, so the
    recovery action is accounting (stretched wall clock), not rollback.
    """

    name = "bandwidth"

    def __init__(self, floor: float = 0.9):
        if not 0.0 < floor <= 1.0:
            raise ValueError(f"floor={floor} must be in (0, 1]")
        self.floor = floor

    def check_transfer(
        self, realized_factor: float, generation: int
    ) -> list[Detection]:
        """One detection when the realized factor dips below the floor."""
        if realized_factor >= self.floor:
            return []
        return [
            Detection(
                monitor=self.name,
                generation=generation,
                detail=f"host bandwidth at {realized_factor:.0%} of nominal "
                f"(floor {self.floor:.0%})",
            )
        ]
