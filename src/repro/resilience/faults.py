"""Deterministic, seeded fault injection for the lattice engines.

The fault model covers the three physical layers a real streaming
lattice machine can lose bits in (the same taxonomy CAM-8 and the
Columbia machine engineer against):

* **memory** — single-event upsets in :class:`~repro.engines.memory.MainMemory`
  words (data corrupted *at rest*, surfacing on the next read), and
  stuck-at cells that force a bit for a window of generations;
* **pe / shiftreg** — transient flips in PE pipeline registers and
  delay-line stages, and stuck-at defects on collision-rule outputs
  (a stuck PE output corrupts *every* site it processes);
* **host** — dropped, duplicated, or payload-corrupted stream words,
  transient stalls, and bandwidth brown-outs on the host interface.

Everything is driven by an explicit list of :class:`FaultSpec` records;
nothing here consults a clock or an un-seeded RNG, so a campaign with a
given seed is bit-for-bit reproducible.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.util.errors import ReproError
from repro.util.validation import check_nonnegative

__all__ = [
    "FAULT_KINDS",
    "FAULT_LOCATIONS",
    "FaultSpec",
    "FaultInjector",
    "HostStallError",
    "RowPacket",
    "UnreliableRowChannel",
    "row_checksum",
]

#: Transient and persistent fault kinds the injector understands.
FAULT_KINDS = (
    "bit_flip",
    "stuck_at",
    "drop_row",
    "duplicate_row",
    "stall",
    "brownout",
)

#: Hardware layers a fault can live in.
FAULT_LOCATIONS = ("memory", "pe", "shiftreg", "host")


class HostStallError(ReproError):
    """The host interface did not deliver a word within its deadline."""


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault event.

    Attributes
    ----------
    fault_id:
        Stable identifier used in reports and the injector's fired set.
    kind:
        One of :data:`FAULT_KINDS`.
    location:
        One of :data:`FAULT_LOCATIONS`.
    generation:
        Generation at which the fault fires (first fires, for
        persistent kinds).
    row, col:
        Target site for site-addressed faults; for host faults ``row``
        is the stream row index; for shift-register faults the flat
        push index is ``row * cols + col``.
    channel:
        Bit (velocity channel) the fault touches.
    stuck_value:
        Forced bit value for ``stuck_at`` faults.
    duration:
        Generations a persistent fault stays active (``stuck_at``,
        ``brownout``) or failed attempts before a ``stall`` clears.
        Transient kinds use 1.
    bandwidth_factor:
        Fraction of nominal host bandwidth available during a
        ``brownout``.
    """

    fault_id: str
    kind: str
    location: str
    generation: int
    row: int = 0
    col: int = 0
    channel: int = 0
    stuck_value: int = 0
    duration: int = 1
    bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.location not in FAULT_LOCATIONS:
            raise ValueError(f"unknown fault location {self.location!r}")
        check_nonnegative(self.generation, "generation", integer=True)
        if self.duration < 1:
            raise ValueError(f"duration={self.duration} must be >= 1")
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError(
                f"bandwidth_factor={self.bandwidth_factor} must be in (0, 1]"
            )

    def active_at(self, generation: int) -> bool:
        """Whether a persistent fault's window covers ``generation``."""
        return self.generation <= generation < self.generation + self.duration

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (stable key order via sort_keys)."""
        return {
            "fault_id": self.fault_id,
            "kind": self.kind,
            "location": self.location,
            "generation": self.generation,
            "row": self.row,
            "col": self.col,
            "channel": self.channel,
            "stuck_value": self.stuck_value,
            "duration": self.duration,
            "bandwidth_factor": self.bandwidth_factor,
        }


class FaultInjector:
    """Applies a list of :class:`FaultSpec` events to running hardware.

    Transient faults (``bit_flip`` and host word faults) fire **once**:
    after a rollback-and-replay the upset does not recur — that is what
    makes checkpoint recovery effective.  Persistent faults
    (``stuck_at``, ``brownout``) re-apply for every generation in their
    window, so replaying through the window re-detects them and the
    runner eventually aborts instead of looping forever.

    Attributes
    ----------
    fired:
        Ordered ids of transient faults that have fired.
    landed:
        Ids of faults that actually changed at least one bit (a
        ``stuck_at`` forcing a bit to its existing value never lands).
    """

    def __init__(self, faults: Sequence[FaultSpec]):
        ids = [f.fault_id for f in faults]
        if len(set(ids)) != len(ids):
            raise ValueError("fault_id values must be unique")
        self.faults = tuple(faults)
        self.fired: list[str] = []
        self.landed: set[str] = set()

    def reset(self) -> None:
        """Forget all fired/landed state (for a fresh run, not a replay)."""
        self.fired.clear()
        self.landed.clear()

    # -- helpers -----------------------------------------------------------------

    def _mark(self, spec: FaultSpec, changed: bool) -> None:
        if spec.kind in ("bit_flip", "drop_row", "duplicate_row", "stall"):
            if spec.fault_id not in self.fired:
                self.fired.append(spec.fault_id)
        if changed:
            self.landed.add(spec.fault_id)

    def _transient_due(self, spec: FaultSpec, generation: int) -> bool:
        return spec.generation == generation and spec.fault_id not in self.fired

    # -- memory faults -----------------------------------------------------------

    def corrupt_frame(self, frame: np.ndarray, generation: int) -> np.ndarray:
        """Apply memory-located faults to a stored frame at ``generation``.

        Returns a (possibly copied) frame; the input is never mutated.
        """
        out = frame
        for spec in self.faults:
            if spec.location != "memory":
                continue
            if spec.kind == "bit_flip" and self._transient_due(spec, generation):
                out = out.copy() if out is frame else out
                out[spec.row, spec.col] ^= out.dtype.type(1 << spec.channel)
                self._mark(spec, True)
            elif spec.kind == "stuck_at" and spec.active_at(generation):
                bit = out.dtype.type(1 << spec.channel)
                old = int(out[spec.row, spec.col])
                new = (old | int(bit)) if spec.stuck_value else (old & ~int(bit))
                if new != old:
                    out = out.copy() if out is frame else out
                    out[spec.row, spec.col] = new
                    self._mark(spec, True)
                else:
                    self._mark(spec, False)
        return out

    def memory_read_transform(
        self, shape: tuple[int, int], generation_source: Callable[[], int]
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Adapter for :attr:`repro.engines.memory.MainMemory.read_transform`.

        ``generation_source`` is polled at read time (the memory has no
        notion of lattice generations of its own).
        """

        def transform(words: np.ndarray) -> np.ndarray:
            frame = words.reshape(shape)
            return self.corrupt_frame(frame, generation_source()).reshape(words.shape)

        return transform

    # -- PE faults ---------------------------------------------------------------

    def post_collide_hook(
        self,
    ) -> Callable[[np.ndarray, np.ndarray, np.ndarray, int], np.ndarray]:
        """A :data:`~repro.engines.pe.PostCollideHook` applying PE faults.

        ``bit_flip`` touches one site at one generation; ``stuck_at``
        forces the channel bit on *every* site the PE processes while
        active (a defect in the collision logic, not in one word).
        """

        def hook(values: np.ndarray, r: np.ndarray, c: np.ndarray, t: int) -> np.ndarray:
            out = values
            for spec in self.faults:
                if spec.location != "pe":
                    continue
                if spec.kind == "bit_flip" and self._transient_due(spec, t):
                    where = np.nonzero((r == spec.row) & (c == spec.col))[0]
                    if where.size:
                        out = out.copy() if out is values else out
                        out[where[0]] ^= out.dtype.type(1 << spec.channel)
                        self._mark(spec, True)
                elif spec.kind == "stuck_at" and spec.active_at(t):
                    bit = int(1 << spec.channel)
                    if spec.stuck_value:
                        forced = out | out.dtype.type(bit)
                    else:
                        forced = out & ~out.dtype.type(bit)
                    changed = bool(np.any(forced != out))
                    out = forced
                    self._mark(spec, changed)
            return out

        return hook

    # -- shift-register faults ---------------------------------------------------

    def shiftreg_transform(
        self, cols: int, generation: int
    ) -> Callable[[int, int], int] | None:
        """Per-push delay-line hook for one generation's tickwise pass.

        Returns ``None`` when no shift-register fault targets
        ``generation`` — callers then run a clean register.
        """
        due = [
            spec
            for spec in self.faults
            if spec.location == "shiftreg"
            and spec.kind == "bit_flip"
            and spec.generation == generation
            and spec.fault_id not in self.fired
        ]
        if not due:
            return None

        def transform(value: int, push_index: int) -> int:
            for spec in due:
                if push_index == spec.row * cols + spec.col and (
                    spec.fault_id not in self.fired
                ):
                    value ^= 1 << spec.channel
                    self._mark(spec, True)
            return value

        return transform

    # -- host faults -------------------------------------------------------------

    def host_faults(self, generation: int) -> list[FaultSpec]:
        """Host-located faults scheduled for ``generation``."""
        return [
            f
            for f in self.faults
            if f.location == "host" and f.active_at(generation)
        ]


def row_checksum(row: np.ndarray) -> int:
    """CRC-32 of a row's raw bytes — the per-row tag streamed rows carry."""
    return zlib.crc32(np.ascontiguousarray(row).tobytes()) & 0xFFFFFFFF


@dataclass(frozen=True)
class RowPacket:
    """One word on the host wire: sequence number, checksum, payload."""

    seq: int
    checksum: int
    row: np.ndarray = field(repr=False)

    @property
    def intact(self) -> bool:
        """Whether the payload still matches its checksum."""
        return row_checksum(self.row) == self.checksum


class UnreliableRowChannel:
    """A host interface that streams one frame row-by-row with faults.

    The sender side tags every row with its sequence number and CRC-32
    *before* the wire can touch it, so a receiver that checks tags can
    detect anything this channel does short of a correlated
    tag-plus-payload forgery.

    Parameters
    ----------
    rows:
        The frame to transmit, shape ``(R, C)``.
    injector:
        Source of host-located :class:`FaultSpec` events.
    generation:
        Which generation's scheduled host faults apply to this transfer.
    """

    def __init__(
        self,
        rows: np.ndarray,
        injector: FaultInjector,
        generation: int = 0,
    ):
        self.rows = np.asarray(rows)
        if self.rows.ndim != 2:
            raise ValueError("channel payload must be a 2-D frame of rows")
        self.injector = injector
        self.generation = generation
        self._faults = injector.host_faults(generation)
        self._stall_remaining = {
            f.fault_id: f.duration for f in self._faults if f.kind == "stall"
        }
        self.transfer_time_units = 0.0

    @property
    def bandwidth_factor(self) -> float:
        """Fraction of nominal bandwidth available (min over brown-outs)."""
        factors = [f.bandwidth_factor for f in self._faults if f.kind == "brownout"]
        return min(factors) if factors else 1.0

    def _packet(self, seq: int) -> RowPacket:
        row = self.rows[seq]
        packet = RowPacket(seq=seq, checksum=row_checksum(row), row=row.copy())
        for spec in self._faults:
            if (
                spec.kind == "bit_flip"
                and spec.row == seq
                and self.injector._transient_due(spec, self.generation)
            ):
                corrupted = packet.row.copy()
                corrupted[spec.col] ^= corrupted.dtype.type(1 << spec.channel)
                packet = replace(packet, row=corrupted)
                self.injector._mark(spec, True)
        return packet

    def packets(self) -> Iterator[RowPacket]:
        """The raw wire: drops, duplicates, and corruption included."""
        for seq in range(self.rows.shape[0]):
            self.transfer_time_units += 1.0 / self.bandwidth_factor
            for spec in self._faults:
                if spec.kind == "brownout" and spec.bandwidth_factor < 1.0:
                    self.injector._mark(spec, True)
            dropped = False
            for spec in self._faults:
                if (
                    spec.kind == "drop_row"
                    and spec.row == seq
                    and self.injector._transient_due(spec, self.generation)
                ):
                    self.injector._mark(spec, True)
                    dropped = True
            if dropped:
                continue
            packet = self._packet(seq)
            yield packet
            for spec in self._faults:
                if (
                    spec.kind == "duplicate_row"
                    and spec.row == seq
                    and self.injector._transient_due(spec, self.generation)
                ):
                    self.injector._mark(spec, True)
                    yield packet

    def retransmit(self, seq: int) -> RowPacket:
        """Re-request one row (the reliable transport's recovery path).

        Retransmission reads the sender's buffer again, so it returns a
        clean packet — but a stalled host fails the first ``duration``
        attempts with :class:`HostStallError` before recovering.
        """
        if not 0 <= seq < self.rows.shape[0]:
            raise ValueError(f"retransmit seq {seq} outside frame")
        for spec in self._faults:
            if spec.kind == "stall" and self._stall_remaining.get(spec.fault_id, 0) > 0:
                self._stall_remaining[spec.fault_id] -= 1
                self.injector._mark(spec, True)
                raise HostStallError(
                    f"host stalled answering retransmit of row {seq} "
                    f"({spec.fault_id})"
                )
        self.transfer_time_units += 1.0 / self.bandwidth_factor
        row = self.rows[seq]
        return RowPacket(seq=seq, checksum=row_checksum(row), row=row.copy())

    def first_fetch_stalls(self) -> list[FaultSpec]:
        """Stall faults that will also delay the *initial* stream."""
        return [f for f in self._faults if f.kind == "stall"]
