"""Supervised multi-process runtime for sharded lattice runs.

This package scales the in-process resilience story
(:mod:`repro.resilience`) up one level, to whole *processes*: the
lattice is split into row slabs (:mod:`repro.runtime.sharding`), each
slab evolves in its own worker process (:mod:`repro.runtime.worker`),
and a supervisor (:mod:`repro.runtime.supervisor`) runs the halo-exchange
barrier, watches heartbeats, restarts dead or hung workers from durable
checkpoints, trips a per-backend circuit breaker
(:mod:`repro.runtime.breaker`), and reports everything in a
schema-versioned supervision report.

The headline invariant: a supervised run that loses no shard
permanently — however many workers crashed and restarted along the way —
produces a final lattice **bit-identical** to the unsupervised
single-process evolution.
"""

from repro.runtime.breaker import BreakerTransition, CircuitBreaker
from repro.runtime.modelspec import MODEL_KINDS, ModelSpec
from repro.runtime.sharding import BOUNDARY_ROWS, Shard, ShardRunner, plan_shards
from repro.runtime.supervisor import (
    REPORT_SCHEMA,
    REPORT_SCHEMA_VERSION,
    RestartEvent,
    SupervisionReport,
    SupervisorConfig,
    supervised_run,
)
from repro.runtime.worker import InducedFault, WorkerConfig, worker_main

__all__ = [
    "BOUNDARY_ROWS",
    "BreakerTransition",
    "CircuitBreaker",
    "InducedFault",
    "MODEL_KINDS",
    "ModelSpec",
    "REPORT_SCHEMA",
    "REPORT_SCHEMA_VERSION",
    "RestartEvent",
    "Shard",
    "ShardRunner",
    "SupervisionReport",
    "SupervisorConfig",
    "WorkerConfig",
    "plan_shards",
    "supervised_run",
    "worker_main",
]
