"""The shard worker process: step, checkpoint, exchange halos, obey.

One worker owns one row slab (:class:`~repro.runtime.sharding.Shard`)
and talks to the supervisor over a duplex pipe in strict lock-step:

=================================== =====================================
worker sends                        supervisor replies
=================================== =====================================
``("ready", incarnation, gen,       ``("replay", [(g, above, below)...])``
``clock)``
``("boundary", g, top, bottom)``    ``("halo", g, above, below)``
``("checkpoint", g)``               —  (accounting only)
``("done", g)``                     ``("collect",)``
``("state", g, slab)``              ``("stop",)``
``("error", g, message)``           —  (the worker exits)
=================================== =====================================

Every incarnation checkpoints its slab crash-safely
(:class:`~repro.resilience.checkpoint.CheckpointStore` with a
directory); a restarted incarnation finds no ``initial_slab`` in its
config, restores the newest intact checkpoint, announces the restored
generation in ``ready``, and the supervisor replays the buffered halo
history to catch it up to the barrier — bit-identically, because the
kernels are deterministic and the halos are the exact rows the dead
incarnation saw.

``ready`` also carries a reading of the worker's monotonic clock — the
supervisor timestamps the receipt and the difference becomes this
incarnation's clock offset, aligning its spooled span/event times onto
the coordinator timeline (see :mod:`repro.telemetry.merge`).

Telemetry follows the checkpoint discipline: when
``WorkerConfig.spool_path`` is set, the worker records into a private
:class:`~repro.telemetry.InMemoryRecorder` and appends cumulative
snapshots to a crash-safe spool (:mod:`repro.telemetry.spool`) — at
every checkpoint and once more before ``done`` — so a killed worker
loses at most the telemetry since its last checkpoint, exactly what it
loses in lattice state.

:class:`InducedFault` is the runtime's chaos hook (the process-level
sibling of :class:`repro.resilience.faults.FaultSpec`): a configured
worker kills itself, stalls, or raises at an exact generation, so tests
and the CI smoke job exercise real worker death instead of simulated
corruption.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from multiprocessing.connection import Connection

import numpy as np

from repro.resilience.checkpoint import CheckpointStore
from repro.runtime.modelspec import ModelSpec
from repro.runtime.sharding import Shard, ShardRunner
from repro.telemetry import (
    MONOTONIC,
    NULL_RECORDER,
    InMemoryRecorder,
    Recorder,
    SpoolWriter,
    TelemetryError,
)
from repro.util.errors import ConfigError
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["InducedFault", "WorkerConfig", "worker_main"]

#: Exit codes a worker uses for deliberate self-termination.
EXIT_INDUCED_CRASH = 13
EXIT_ERROR = 3


@dataclass(frozen=True)
class InducedFault:
    """A process-level fault a worker inflicts on itself, for testing.

    Parameters
    ----------
    worker:
        Target worker index.
    generation:
        Fires when the worker is about to publish its boundary rows for
        this generation.
    kind:
        ``"crash"`` (hard ``os._exit`` — models OOM-kill / segfault),
        ``"stall"`` (sleep ``seconds`` — models a hang; the watchdog
        must reap it), or ``"backend-error"`` (raise — models a kernel
        bug surfacing on one backend).
    backend:
        Restrict firing to incarnations running this backend (``None``
        fires on any) — with the circuit breaker this models a fault
        that follows the *backend*, not the worker.
    incarnations:
        Fire only while ``incarnation < incarnations`` (default 1: the
        first life only, so the restarted worker survives).
    seconds:
        Stall duration for ``kind="stall"``.
    """

    worker: int
    generation: int
    kind: str
    backend: str | None = None
    incarnations: int = 1
    seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "stall", "backend-error"):
            raise ConfigError(
                f"kind={self.kind!r} must be crash, stall, or backend-error"
            )
        check_nonnegative(self.worker, "worker", integer=True)
        check_nonnegative(self.generation, "generation", integer=True)
        check_positive(self.incarnations, "incarnations", integer=True)
        check_positive(self.seconds, "seconds")

    def armed(self, worker: int, generation: int, incarnation: int, backend: str) -> bool:
        """Whether this fault fires for the given worker state."""
        return (
            self.worker == worker
            and self.generation == generation
            and incarnation < self.incarnations
            and (self.backend is None or self.backend == backend)
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form."""
        return {
            "worker": self.worker,
            "generation": self.generation,
            "kind": self.kind,
            "backend": self.backend,
            "incarnations": self.incarnations,
        }


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one worker incarnation needs, by value (picklable).

    ``initial_slab`` is set on the first incarnation only; later
    incarnations restore from the checkpoint directory instead.
    ``spool_path`` switches per-worker telemetry on: the worker records
    into its own recorder and spools snapshots there (one file per
    incarnation, the supervisor names it).
    """

    worker: int
    spec: ModelSpec
    shard: Shard
    backend: str
    target_generation: int
    checkpoint_dir: str
    checkpoint_interval: int
    checkpoint_keep: int = 2
    incarnation: int = 0
    initial_slab: np.ndarray | None = None
    obstacles_mask: np.ndarray | None = None
    induced: tuple[InducedFault, ...] = ()
    spool_path: str | None = None


def _fire_induced(config: WorkerConfig, generation: int) -> None:
    """Inflict any armed induced fault for ``generation`` on ourselves."""
    for fault in config.induced:
        if not fault.armed(config.worker, generation, config.incarnation, config.backend):
            continue
        if fault.kind == "crash":
            os._exit(EXIT_INDUCED_CRASH)
        if fault.kind == "stall":
            time.sleep(fault.seconds)
        elif fault.kind == "backend-error":
            raise RuntimeError(
                f"induced backend error on {config.backend!r} "
                f"(worker {config.worker}, generation {generation})"
            )


def _spool_snapshot(
    spool: SpoolWriter | None,
    recorder: Recorder,
    status: str,
    generation: int,
) -> None:
    """Best-effort cumulative snapshot frame (telemetry never kills a worker)."""
    if spool is None:
        return
    try:
        spool.snapshot_frame(
            recorder.snapshot(),  # type: ignore[attr-defined]
            status=status,
            generation=generation,
        )
    except TelemetryError:
        pass


def _checkpoint(
    store: CheckpointStore,
    runner: ShardRunner,
    conn: Connection,
    recorder: Recorder,
    spool: SpoolWriter | None,
) -> None:
    store.save(runner.time, runner.interior)
    _spool_snapshot(spool, recorder, status="checkpoint", generation=runner.time)
    conn.send(("checkpoint", runner.time))


def _advance_to_target(
    config: WorkerConfig,
    conn: Connection,
    runner: ShardRunner,
    store: CheckpointStore,
    recorder: Recorder,
    spool: SpoolWriter | None,
) -> bool:
    """Replay buffered halos, then step to the target; False on early stop."""
    msg = conn.recv()
    if msg[0] == "stop":
        return False
    assert msg[0] == "replay", msg[0]
    if msg[1]:
        with recorder.span("worker.replay", generation=runner.time):
            for generation, above, below in msg[1]:
                assert generation == runner.time, (generation, runner.time)
                runner.set_halos(above, below)
                runner.step()
                if store.due(runner.time):
                    _checkpoint(store, runner, conn, recorder, spool)

    with recorder.span("worker.run", generation=runner.time):
        while runner.time < config.target_generation:
            generation = runner.time
            _fire_induced(config, generation)
            top, bottom = runner.boundary_rows()
            conn.send(("boundary", generation, top, bottom))
            msg = conn.recv()
            if msg[0] == "stop":
                return False
            assert msg[0] == "halo" and msg[1] == generation, msg[:2]
            runner.set_halos(msg[2], msg[3])
            runner.step()
            if store.due(runner.time):
                _checkpoint(store, runner, conn, recorder, spool)
    return True


def _worker_loop(
    config: WorkerConfig,
    conn: Connection,
    recorder: Recorder,
    spool: SpoolWriter | None,
) -> None:
    shard = config.shard
    model = config.spec.build(rows=shard.local_rows)
    store = CheckpointStore(
        interval=config.checkpoint_interval,
        keep=config.checkpoint_keep,
        directory=config.checkpoint_dir,
    )
    restored = config.initial_slab is None
    if restored:
        cp = CheckpointStore.load_latest(config.checkpoint_dir)
        runner = ShardRunner(
            model,
            shard,
            cp.state,
            backend=config.backend,
            obstacles_mask=config.obstacles_mask,
            time=cp.generation,
            recorder=recorder,
        )
    else:
        runner = ShardRunner(
            model,
            shard,
            config.initial_slab,
            backend=config.backend,
            obstacles_mask=config.obstacles_mask,
            time=0,
            recorder=recorder,
        )
    if spool is not None:
        spool.open_frame(
            worker=config.worker,
            incarnation=config.incarnation,
            pid=os.getpid(),
            backend=config.backend,
            shard={
                "index": shard.index,
                "row_start": shard.row_start,
                "row_stop": shard.row_stop,
                "halo_top": shard.halo_top,
                "halo_bottom": shard.halo_bottom,
            },
            target_generation=config.target_generation,
            restored_generation=runner.time if restored else None,
        )
    # The clock reading rides in ``ready`` for the alignment handshake;
    # MONOTONIC is also the spooling recorder's clock, so the offset the
    # supervisor computes applies to every span/event we record.
    conn.send(("ready", config.incarnation, runner.time, MONOTONIC()))
    if not restored:
        _checkpoint(store, runner, conn, recorder, spool)

    finished = _advance_to_target(config, conn, runner, store, recorder, spool)
    _spool_snapshot(
        spool,
        recorder,
        status="done" if finished else "stopped",
        generation=runner.time,
    )
    if not finished:
        return
    conn.send(("done", runner.time))
    msg = conn.recv()
    if msg[0] == "collect":
        conn.send(("state", runner.time, runner.interior.copy()))
        conn.recv()  # the final ("stop",)


def worker_main(config: WorkerConfig, conn: Connection) -> None:
    """Process entry point: run the shard loop, report errors, exit.

    Any exception is reported as an ``("error", ...)`` message before a
    hard exit, so the supervisor can distinguish a backend bug (restart
    on the fallback backend) from a silent death (plain restart).  With
    a spool configured, a last-gasp snapshot is attempted first so the
    failing incarnation's telemetry survives it.
    """
    recorder: Recorder = NULL_RECORDER
    spool: SpoolWriter | None = None
    try:
        if config.spool_path is not None:
            recorder = InMemoryRecorder(clock=MONOTONIC)
            spool = SpoolWriter(config.spool_path)
        _worker_loop(config, conn, recorder, spool)
    except Exception as exc:  # deliberate last-resort: report, then die
        _spool_snapshot(spool, recorder, status="error", generation=-1)
        try:
            conn.send(("error", -1, f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
        os._exit(EXIT_ERROR)
    finally:
        if spool is not None:
            spool.close()
        conn.close()
