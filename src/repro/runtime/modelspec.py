"""Picklable lattice-model descriptions for cross-process construction.

Worker processes cannot be handed a live model object cheaply (and must
not be, under the ``spawn`` start method): a :class:`ModelSpec` is a
small frozen record that each process turns into a real
:class:`~repro.lgca.hpp.HPPModel` / :class:`~repro.lgca.fhp.FHPModel`
locally — at full lattice shape for the golden run, or at a shard's
local-frame shape for a worker.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lgca.automaton import SiteModel
from repro.lgca.fhp import FHPModel
from repro.lgca.flows import uniform_random_state
from repro.lgca.hpp import HPPModel
from repro.util.errors import ConfigError
from repro.util.validation import check_positive, check_probability

__all__ = ["MODEL_KINDS", "ModelSpec"]

#: Model kinds the runtime can build, matching the CLI's ``--model`` names.
MODEL_KINDS = ("hpp", "fhp6", "fhp7", "fhp-sat")


@dataclass(frozen=True)
class ModelSpec:
    """A lattice-gas model, by value.

    Parameters
    ----------
    kind:
        One of :data:`MODEL_KINDS`.
    rows, cols:
        Whole-lattice shape.
    boundary:
        ``"periodic"``, ``"null"``, or ``"reflecting"`` (the supervised
        runtime additionally restricts this — see
        :class:`repro.runtime.supervisor.SupervisorConfig`).
    chirality:
        FHP chirality policy; ignored for HPP.
    """

    kind: str
    rows: int
    cols: int
    boundary: str = "periodic"
    chirality: str = "alternate"

    def __post_init__(self) -> None:
        if self.kind not in MODEL_KINDS:
            raise ConfigError(
                f"kind={self.kind!r} must be one of {', '.join(MODEL_KINDS)}"
            )
        check_positive(self.rows, "rows", integer=True)
        check_positive(self.cols, "cols", integer=True)
        # Shape/boundary/chirality values are validated for real by the
        # model constructor; build the full-lattice model once to fail fast.
        self.build()

    @property
    def num_channels(self) -> int:
        """Channels per site for this model kind."""
        return {"hpp": 4, "fhp6": 6, "fhp7": 7, "fhp-sat": 7}[self.kind]

    def build(self, rows: int | None = None, cols: int | None = None) -> SiteModel:
        """Construct the model, optionally at an overridden (local) shape."""
        rows = self.rows if rows is None else rows
        cols = self.cols if cols is None else cols
        if self.kind == "hpp":
            return HPPModel(rows, cols, boundary=self.boundary)
        return FHPModel(
            rows,
            cols,
            rest_particles=self.kind in ("fhp7", "fhp-sat"),
            saturated=self.kind == "fhp-sat",
            boundary=self.boundary,
            chirality=self.chirality,
        )

    def initial_state(self, density: float, seed: int) -> np.ndarray:
        """The seeded uniform-random initial frame at ``density``."""
        check_probability(density, "density")
        rng = np.random.default_rng(seed)
        return uniform_random_state(
            self.rows, self.cols, self.num_channels, density, rng
        )
