"""Per-backend circuit breaker for the supervised runtime.

A worker crash while running a kernel backend is evidence against that
*backend*, not just that worker: a miscompiled plane-algebra kernel or a
backend-specific numerical bug will kill every worker that touches it,
restart after restart.  The breaker watches consecutive failures
attributed to a primary backend and, once a threshold trips, routes all
subsequent worker (re)spawns to a fallback backend — the verified
``reference`` kernels — so the run completes (bit-identically, since
backends are equivalence-tested) instead of burning the restart budget.

Standard three-state protocol:

* **closed** — primary backend in use; consecutive failures counted.
* **open** — fallback in use; after ``cooldown_seconds`` the next spawn
  is allowed to probe the primary again (**half-open**).
* **half-open** — exactly one probe worker runs the primary; durable
  progress (a checkpoint) closes the breaker, another failure re-opens
  it and restarts the cooldown.

The breaker takes its clock as a callable so tests drive it virtually.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry import MONOTONIC, Clock
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["BreakerTransition", "CircuitBreaker"]


@dataclass(frozen=True)
class BreakerTransition:
    """One state change of a breaker, for the supervision report."""

    backend: str
    state: str
    generation: int
    reason: str

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form."""
        return {
            "backend": self.backend,
            "state": self.state,
            "generation": self.generation,
            "reason": self.reason,
        }


class CircuitBreaker:
    """Trip a failing primary backend over to a fallback, then probe back.

    Parameters
    ----------
    backend:
        The primary backend this breaker guards.
    fallback:
        Backend selected while the breaker is open.  When it equals
        ``backend`` the breaker is inert (there is nowhere to fall
        back to) and always selects the primary.
    failure_threshold:
        Consecutive primary-backend failures that open the breaker.
    cooldown_seconds:
        Open time before a half-open probe is allowed.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        backend: str,
        fallback: str,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock: Clock = MONOTONIC,
    ):
        self.backend = backend
        self.fallback = fallback
        self.failure_threshold = check_positive(
            failure_threshold, "failure_threshold", integer=True
        )
        self.cooldown_seconds = check_nonnegative(
            cooldown_seconds, "cooldown_seconds"
        )
        self._clock = clock
        self.state = "closed"
        self.consecutive_failures = 0
        self.transitions: list[BreakerTransition] = []
        self._opened_at = 0.0
        self._probe_outstanding = False

    def _transition(self, state: str, generation: int, reason: str) -> None:
        self.state = state
        self.transitions.append(
            BreakerTransition(
                backend=self.backend,
                state=state,
                generation=generation,
                reason=reason,
            )
        )

    def select_backend(self, generation: int) -> str:
        """The backend a worker spawning now should run.

        Called at every worker (re)spawn.  While open, the cooldown is
        checked here: once elapsed, the breaker goes half-open and this
        spawn becomes the probe.
        """
        if self.backend == self.fallback or self.state == "closed":
            return self.backend
        if self.state == "open":
            if self._clock() - self._opened_at >= self.cooldown_seconds:
                self._transition(
                    "half-open",
                    generation,
                    f"cooldown of {self.cooldown_seconds:g}s elapsed; probing",
                )
                self._probe_outstanding = True
                return self.backend
            return self.fallback
        # half-open: one probe at a time
        if self._probe_outstanding:
            return self.fallback
        self._probe_outstanding = True
        return self.backend

    def record_failure(self, backend: str, generation: int) -> None:
        """Attribute one worker failure to ``backend``.

        Failures on the fallback never count against the primary.
        """
        if backend != self.backend or self.backend == self.fallback:
            return
        self.consecutive_failures += 1
        if self.state == "half-open":
            self._probe_outstanding = False
            self._opened_at = self._clock()
            self._transition("open", generation, "probe failed")
        elif (
            self.state == "closed"
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._opened_at = self._clock()
            self._transition(
                "open",
                generation,
                f"{self.consecutive_failures} consecutive failures "
                f"on {self.backend!r}",
            )

    def record_success(self, backend: str, generation: int) -> None:
        """Note durable progress (a checkpoint) by a worker on ``backend``."""
        if backend != self.backend:
            return
        self.consecutive_failures = 0
        if self.state == "half-open":
            self._probe_outstanding = False
            self._transition("closed", generation, "probe made durable progress")

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable summary for the supervision report."""
        return {
            "backend": self.backend,
            "fallback": self.fallback,
            "failure_threshold": self.failure_threshold,
            "cooldown_seconds": self.cooldown_seconds,
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "transitions": [t.to_dict() for t in self.transitions],
        }
