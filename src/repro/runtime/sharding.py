"""Row-slab sharding with halo exchange for multi-process lattice runs.

The supervised runtime divides the lattice into adjacent horizontal
slabs, one per worker, mirroring the slice geometry of
:class:`~repro.engines.partitioned.PartitionedEngine` rotated 90°: rows
instead of columns, because every kernel in :mod:`repro.lgca` stores the
lattice row-major, which makes slab views and halo rows contiguous.

Each worker steps a *local frame* of ``halo_top + slab + halo_bottom``
rows.  The halo sizes are not free:

* the local frame must start on an **even global row** so that
  shard-local row parity equals global row parity — both the hexagonal
  propagation offsets and the ``alternate`` chirality checkerboard
  ``(r + c + t) % 2`` key on it — hence ``halo_top`` is 2 when the slab
  starts on an even row and 1 when it starts on an odd row;
* the local frame must have an **even number of rows** so a periodic
  FHP sub-model can be constructed (the half-cell row offset must tile)
  — hence ``halo_bottom`` is 1 or 2, whichever makes the total even.

Because propagation moves particles at most one row per generation,
refreshing the halo rows with the neighbours' boundary rows before each
step makes the slab *interior* evolve bit-identically to the
whole-lattice run: sub-lattice boundary artifacts (row wrap for
periodic, row absorption for null) land only in the halo rows, which
are overwritten before they are ever read again.  Neighbours therefore
exchange a fixed **two** boundary rows per side per generation and each
receiver slices off the 1 or 2 it needs.

Bit-identity holds for deterministic chirality policies only
(``alternate``/``left``/``right``); per-site ``random`` chirality draws
a whole-lattice field from one RNG stream, which no row decomposition
can reproduce, and is rejected by the supervisor's config validation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lgca.backends import make_stepper
from repro.util.errors import ConfigError
from repro.util.validation import check_positive

__all__ = ["BOUNDARY_ROWS", "Shard", "ShardRunner", "plan_shards"]

#: Boundary rows exchanged per side per generation (max halo depth).
BOUNDARY_ROWS = 2


@dataclass(frozen=True)
class Shard:
    """One worker's slab of the lattice, plus its halo geometry.

    Attributes
    ----------
    index:
        Worker index (0 = top slab).
    row_start, row_stop:
        The owned global row range ``[row_start, row_stop)``.
    halo_top, halo_bottom:
        Ghost rows above/below the slab in the worker's local frame.
    """

    index: int
    row_start: int
    row_stop: int
    halo_top: int
    halo_bottom: int

    @property
    def slab_rows(self) -> int:
        """Rows this shard owns."""
        return self.row_stop - self.row_start

    @property
    def local_rows(self) -> int:
        """Rows in the worker's local frame (slab + halos)."""
        return self.halo_top + self.slab_rows + self.halo_bottom

    @property
    def interior(self) -> slice:
        """The owned slab within the local frame."""
        return slice(self.halo_top, self.halo_top + self.slab_rows)

    def local_row_indices(self, rows: int) -> np.ndarray:
        """Global row index (mod ``rows``) of every local-frame row.

        Used to slice global per-row data — obstacle masks above all —
        into the local frame, halos included.
        """
        return np.arange(self.row_start - self.halo_top, self.row_stop + self.halo_bottom) % rows


def plan_shards(rows: int, num_workers: int) -> tuple[Shard, ...]:
    """Split ``rows`` lattice rows into ``num_workers`` slabs.

    Rows are distributed as evenly as possible (earlier shards take the
    remainder).  Every slab must be at least :data:`BOUNDARY_ROWS` rows
    tall so a neighbour can always supply a full boundary exchange.

    Raises
    ------
    ConfigError
        When the lattice is too short for that many workers.
    """
    check_positive(rows, "rows", integer=True)
    check_positive(num_workers, "num_workers", integer=True)
    base, extra = divmod(rows, num_workers)
    if base < BOUNDARY_ROWS:
        raise ConfigError(
            f"num_workers={num_workers} needs at least "
            f"{BOUNDARY_ROWS * num_workers} rows (got {rows}): every slab "
            f"must be >= {BOUNDARY_ROWS} rows tall for halo exchange"
        )
    shards: list[Shard] = []
    row_start = 0
    for index in range(num_workers):
        slab = base + (1 if index < extra else 0)
        halo_top = 2 if row_start % 2 == 0 else 1
        halo_bottom = 2 - ((halo_top + slab) % 2)
        shards.append(
            Shard(
                index=index,
                row_start=row_start,
                row_stop=row_start + slab,
                halo_top=halo_top,
                halo_bottom=halo_bottom,
            )
        )
        row_start += slab
    return tuple(shards)


class ShardRunner:
    """Steps one shard's local frame; the worker process's compute core.

    Pure in-process logic (no pipes, no processes) so the sharded
    evolution is testable — and benchmarkable — without a supervisor.

    Parameters
    ----------
    model:
        A *local* site model of shape ``(shard.local_rows, cols)`` —
        build it via :meth:`repro.runtime.modelspec.ModelSpec.build`.
    shard:
        The geometry of this slab.
    initial_slab:
        The owned rows' initial state, shape ``(shard.slab_rows, cols)``.
    backend:
        Kernel backend name (``"reference"`` / ``"bitplane"``).
    obstacles_mask:
        Optional local-frame boolean mask (halos included), pre-sliced
        from the global mask with :meth:`Shard.local_row_indices`.
    time:
        Generation the initial slab belongs to.
    """

    def __init__(
        self,
        model: object,
        shard: Shard,
        initial_slab: np.ndarray,
        backend: str = "reference",
        obstacles_mask: np.ndarray | None = None,
        time: int = 0,
    ):
        rows: int = model.rows  # type: ignore[attr-defined]
        cols: int = model.cols  # type: ignore[attr-defined]
        if rows != shard.local_rows:
            raise ConfigError(
                f"local model has {rows} rows; shard {shard.index} "
                f"needs {shard.local_rows}"
            )
        if initial_slab.shape != (shard.slab_rows, cols):
            raise ConfigError(
                f"initial slab shape {initial_slab.shape} != "
                f"{(shard.slab_rows, cols)}"
            )
        self.model = model
        self.shard = shard
        self.backend = backend
        self.time = time
        from repro.lgca.automaton import ObstacleMap

        obstacles = None if obstacles_mask is None else ObstacleMap(obstacles_mask)
        self._stepper = make_stepper(model, obstacles=obstacles, backend=backend)
        self._local = np.zeros((shard.local_rows, cols), dtype=np.uint8)
        self._local[shard.interior] = initial_slab

    @property
    def interior(self) -> np.ndarray:
        """The owned slab's current state (a view; copy to retain)."""
        return self._local[self.shard.interior]

    def boundary_rows(self) -> tuple[np.ndarray, np.ndarray]:
        """``(top, bottom)`` — the slab's outermost rows for neighbours.

        Always :data:`BOUNDARY_ROWS` rows each; receivers slice off the
        halo depth they need.
        """
        interior = self.interior
        return (
            interior[:BOUNDARY_ROWS].copy(),
            interior[-BOUNDARY_ROWS:].copy(),
        )

    def set_halos(
        self,
        above_bottom: np.ndarray | None,
        below_top: np.ndarray | None,
    ) -> None:
        """Refresh the halo rows from the neighbours' boundary rows.

        ``above_bottom`` is the *bottom* boundary pair of the shard
        above (its last two rows); ``below_top`` the *top* pair of the
        shard below.  ``None`` zero-fills the halo — the null-boundary
        lattice edge, where nothing flows in.
        """
        shard = self.shard
        if above_bottom is None:
            self._local[: shard.halo_top] = 0
        else:
            self._local[: shard.halo_top] = above_bottom[
                BOUNDARY_ROWS - shard.halo_top :
            ]
        bottom = slice(shard.halo_top + shard.slab_rows, None)
        if below_top is None:
            self._local[bottom] = 0
        else:
            self._local[bottom] = below_top[: shard.halo_bottom]

    def step(self) -> None:
        """Advance the local frame one generation (halos must be fresh)."""
        self._local = self._stepper.step(self._local, self.time).copy()
        self.time += 1
