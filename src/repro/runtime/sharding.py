"""Row-slab sharding with halo exchange for multi-process lattice runs.

The supervised runtime divides the lattice into adjacent horizontal
slabs, one per worker, mirroring the slice geometry of
:class:`~repro.engines.partitioned.PartitionedEngine` rotated 90°: rows
instead of columns, because every kernel in :mod:`repro.lgca` stores the
lattice row-major, which makes slab views and halo rows contiguous.

The slab geometry itself — :class:`~repro.lattice.slabs.Shard` and
:func:`~repro.lattice.slabs.plan_shards` — lives in
:mod:`repro.lattice.slabs`, shared with the thread-tiled ``"parallel"``
kernel backend (:mod:`repro.lgca.parallel`); this module re-exports it
and adds the process-level :class:`ShardRunner` on top.  See the slab
planner's docstring for the halo-size invariants (even local start row,
even local frame) and why refreshing two boundary rows per side per
generation makes the slab interiors evolve bit-identically to the
whole-lattice run.

Bit-identity at *this* layer holds for deterministic chirality policies
only (``alternate``/``left``/``right``); per-site ``random`` chirality
draws a whole-lattice field from one RNG stream, which independent
worker processes cannot reproduce, and is rejected by the supervisor's
config validation.  (The thread-level parallel backend *can* shard it,
because its coordinator draws the field once and shares memory.)
"""

from __future__ import annotations

import numpy as np

from repro.lattice.slabs import BOUNDARY_ROWS, Shard, plan_shards
from repro.lgca.backends import make_stepper
from repro.telemetry import NULL_RECORDER, Recorder
from repro.util.errors import ConfigError

__all__ = ["BOUNDARY_ROWS", "Shard", "ShardRunner", "plan_shards"]


class ShardRunner:
    """Steps one shard's local frame; the worker process's compute core.

    Pure in-process logic (no pipes, no processes) so the sharded
    evolution is testable — and benchmarkable — without a supervisor.

    Parameters
    ----------
    model:
        A *local* site model of shape ``(shard.local_rows, cols)`` —
        build it via :meth:`repro.runtime.modelspec.ModelSpec.build`.
    shard:
        The geometry of this slab.
    initial_slab:
        The owned rows' initial state, shape ``(shard.slab_rows, cols)``.
    backend:
        Kernel backend name (``"reference"`` / ``"bitplane"``).
    obstacles_mask:
        Optional local-frame boolean mask (halos included), pre-sliced
        from the global mask with :meth:`Shard.local_row_indices`.
    time:
        Generation the initial slab belongs to.
    recorder:
        Optional telemetry recorder; the runner pre-binds
        ``shard.halo_seconds`` / ``shard.step_seconds`` timers and a
        ``shard.generations`` counter, and forwards the recorder to the
        kernel stepper for ``kernel.<backend>.*`` attribution.
    """

    def __init__(
        self,
        model: object,
        shard: Shard,
        initial_slab: np.ndarray,
        backend: str = "reference",
        obstacles_mask: np.ndarray | None = None,
        time: int = 0,
        recorder: Recorder | None = None,
    ):
        rows: int = model.rows  # type: ignore[attr-defined]
        cols: int = model.cols  # type: ignore[attr-defined]
        if rows != shard.local_rows:
            raise ConfigError(
                f"local model has {rows} rows; shard {shard.index} "
                f"needs {shard.local_rows}"
            )
        if initial_slab.shape != (shard.slab_rows, cols):
            raise ConfigError(
                f"initial slab shape {initial_slab.shape} != "
                f"{(shard.slab_rows, cols)}"
            )
        self.model = model
        self.shard = shard
        self.backend = backend
        self.time = time
        from repro.lgca.automaton import ObstacleMap

        obstacles = None if obstacles_mask is None else ObstacleMap(obstacles_mask)
        rec = recorder if recorder is not None else NULL_RECORDER
        self._stepper = make_stepper(
            model, obstacles=obstacles, backend=backend, recorder=recorder
        )
        self._local = np.zeros((shard.local_rows, cols), dtype=np.uint8)
        self._local[shard.interior] = initial_slab
        # Pre-bound handles (see OBSERVABILITY.md): free under the null
        # recorder, allocation-free per generation under a real one.
        self._clock = rec.clock
        self._halo_timer = rec.timer("shard.halo_seconds")
        self._step_timer = rec.timer("shard.step_seconds")
        self._generations = rec.counter("shard.generations")

    @property
    def interior(self) -> np.ndarray:
        """The owned slab's current state (a view; copy to retain)."""
        return self._local[self.shard.interior]

    def boundary_rows(self) -> tuple[np.ndarray, np.ndarray]:
        """``(top, bottom)`` — the slab's outermost rows for neighbours.

        Always :data:`BOUNDARY_ROWS` rows each; receivers slice off the
        halo depth they need.
        """
        interior = self.interior
        return (
            interior[:BOUNDARY_ROWS].copy(),
            interior[-BOUNDARY_ROWS:].copy(),
        )

    def set_halos(
        self,
        above_bottom: np.ndarray | None,
        below_top: np.ndarray | None,
    ) -> None:
        """Refresh the halo rows from the neighbours' boundary rows.

        ``above_bottom`` is the *bottom* boundary pair of the shard
        above (its last two rows); ``below_top`` the *top* pair of the
        shard below.  ``None`` zero-fills the halo — the null-boundary
        lattice edge, where nothing flows in.
        """
        start = self._clock()
        shard = self.shard
        if above_bottom is None:
            self._local[: shard.halo_top] = 0
        else:
            self._local[: shard.halo_top] = above_bottom[
                BOUNDARY_ROWS - shard.halo_top :
            ]
        bottom = slice(shard.halo_top + shard.slab_rows, None)
        if below_top is None:
            self._local[bottom] = 0
        else:
            self._local[bottom] = below_top[: shard.halo_bottom]
        self._halo_timer.record(self._clock() - start)

    def step(self) -> None:
        """Advance the local frame one generation (halos must be fresh)."""
        start = self._clock()
        self._local = self._stepper.step(self._local, self.time).copy()
        self.time += 1
        self._step_timer.record(self._clock() - start)
        self._generations.add(1)
