"""The supervised sharded runtime: watchdog, restarts, breaker, report.

:func:`supervised_run` shards a lattice evolution across worker
*processes* (row slabs with halo exchange, :mod:`repro.runtime.sharding`)
and babysits them the way the in-process resilience layer babysits a
single evolution:

* a **lock-step barrier** — every generation, each worker publishes its
  two boundary rows; once all live workers have published generation
  ``g``, the supervisor routes each worker its neighbours' rows and the
  workers step.  The supervisor keeps a bounded *halo history* of these
  exchanges;
* a **watchdog** — a worker that owes the barrier a message and has
  been silent past ``watchdog_timeout`` is presumed hung and killed;
* **checkpoint-restart** — dead or killed workers are respawned under a
  capped exponential-backoff-with-jitter policy
  (:class:`repro.util.backoff.BackoffPolicy`); the new incarnation
  restores the newest intact durable checkpoint
  (:class:`~repro.resilience.checkpoint.CheckpointStore`) and the
  supervisor replays the halo history to catch it up to the barrier —
  so a restarted run is **bit-identical** to an undisturbed one;
* a per-primary-backend **circuit breaker**
  (:class:`~repro.runtime.breaker.CircuitBreaker`) — repeated failures
  attributed to the primary kernel backend reroute respawns to the
  fallback (``reference``) backend, with a half-open probe after a
  cooldown;
* **graceful degradation** — a worker that exhausts its restart budget
  is dropped: its neighbours keep stepping against its last published
  boundary rows (the moving-frame analogue of
  ``PartitionedEngine.failed_slices``) and the run completes *degraded*
  (if allowed) with the dead slab assembled from its last checkpoint;
* a **deadline** — the whole run aborts when a wall-clock budget is
  exhausted.

Everything observable lands in a schema-versioned
:class:`SupervisionReport`.  All timekeeping goes through one
injectable :class:`~repro.telemetry.Clock` shared with the breaker
(defaulting to the telemetry spine's monotonic clock), so the
watchdog/deadline tests drive virtual time instead of sleeping, and
worker lifecycle events (spawn, restart, watchdog kill, drop, breaker
transitions) are emitted to an optional
:class:`~repro.telemetry.Recorder` alongside the report.
"""

from __future__ import annotations

import multiprocessing
import shutil
import tempfile
import time as _time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path

import numpy as np

from repro.lgca.backends import available_backends
from repro.resilience.checkpoint import CheckpointStore
from repro.runtime.breaker import CircuitBreaker
from repro.runtime.modelspec import ModelSpec
from repro.runtime.sharding import Shard, plan_shards
from repro.runtime.worker import InducedFault, WorkerConfig, worker_main
from repro.telemetry import (
    MONOTONIC,
    NULL_RECORDER,
    Clock,
    InMemoryRecorder,
    Recorder,
    TelemetryReport,
)
from repro.telemetry.merge import (
    ProcessTelemetry,
    coordinator_process,
    load_worker_spools,
    merge_processes,
)
from repro.telemetry.spool import worker_spool_path
from repro.util.backoff import BackoffPolicy
from repro.util.errors import CheckpointError, ConfigError
from repro.util.validation import check_nonnegative, check_positive

__all__ = [
    "REPORT_SCHEMA",
    "REPORT_SCHEMA_VERSION",
    "RestartEvent",
    "SupervisionReport",
    "SupervisorConfig",
    "supervised_run",
]

#: Supervision report schema identity.
REPORT_SCHEMA = "repro-supervised-run"
REPORT_SCHEMA_VERSION = 1

#: Sub-lattice boundaries the row decomposition can reproduce exactly.
_SHARDABLE_BOUNDARIES = ("periodic", "null")


def _default_backoff() -> BackoffPolicy:
    return BackoffPolicy(
        max_retries=3, base_delay=0.1, multiplier=2.0, max_delay=2.0, jitter=0.1
    )


@dataclass(frozen=True)
class SupervisorConfig:
    """Everything a supervised run needs.

    Parameters
    ----------
    spec:
        The lattice model, by value.  The boundary must be ``periodic``
        or ``null`` (``reflecting`` edges and per-site ``random``
        chirality cannot be sharded bit-identically and are rejected).
    generations:
        Generations to evolve.
    num_workers:
        Worker processes / row slabs.
    backend:
        Primary kernel backend for every worker.
    fallback_backend:
        Backend the circuit breaker falls back to (``reference``).
    density, seed:
        Seeded uniform initial state (ignored when ``initial_state``
        is given).
    initial_state:
        Explicit initial frame, shape ``(rows, cols, channels)``.
    obstacles:
        Optional whole-lattice obstacle mask.
    checkpoint_dir:
        Directory for per-worker durable checkpoints; a temporary
        directory (removed afterwards) when ``None``.
    checkpoint_interval, checkpoint_keep:
        Per-worker :class:`CheckpointStore` settings.
    watchdog_timeout:
        Seconds a worker may owe the barrier a message before it is
        presumed hung and killed.
    poll_interval:
        Supervisor event-loop wakeup period.
    backoff:
        Restart delay policy; ``max_retries`` is also the per-worker
        restart budget between checkpoints.
    max_total_restarts:
        Run-wide restart budget across all workers.
    breaker_threshold, breaker_cooldown:
        Circuit-breaker settings for the primary backend.
    deadline_seconds:
        Wall-clock budget for the whole run (``None`` = unlimited).
    allow_degraded:
        Complete (exit code 3) with dropped shards frozen at their last
        checkpoint instead of failing the run.
    induced:
        Test-only process faults (:class:`InducedFault`).
    start_method:
        Multiprocessing start method; default prefers ``fork``.
    """

    spec: ModelSpec
    generations: int
    num_workers: int = 2
    backend: str = "reference"
    fallback_backend: str = "reference"
    density: float = 0.3
    seed: int = 0
    initial_state: np.ndarray | None = None
    obstacles: np.ndarray | None = None
    checkpoint_dir: str | None = None
    checkpoint_interval: int = 8
    checkpoint_keep: int = 3
    watchdog_timeout: float = 10.0
    poll_interval: float = 0.02
    backoff: BackoffPolicy = field(default_factory=_default_backoff)
    max_total_restarts: int = 8
    breaker_threshold: int = 3
    breaker_cooldown: float = 30.0
    deadline_seconds: float | None = None
    allow_degraded: bool = False
    induced: tuple[InducedFault, ...] = ()
    start_method: str | None = None

    def __post_init__(self) -> None:
        check_positive(self.generations, "generations", integer=True)
        check_positive(self.num_workers, "num_workers", integer=True)
        check_positive(self.watchdog_timeout, "watchdog_timeout")
        check_positive(self.poll_interval, "poll_interval")
        check_positive(self.checkpoint_interval, "checkpoint_interval", integer=True)
        check_positive(self.checkpoint_keep, "checkpoint_keep", integer=True)
        check_nonnegative(self.max_total_restarts, "max_total_restarts")
        check_positive(self.breaker_threshold, "breaker_threshold", integer=True)
        check_nonnegative(self.breaker_cooldown, "breaker_cooldown")
        if self.deadline_seconds is not None:
            check_positive(self.deadline_seconds, "deadline_seconds")
        known = tuple(b.name for b in available_backends())
        for name in (self.backend, self.fallback_backend):
            if name not in known:
                raise ConfigError(
                    f"unknown backend {name!r}; available: {', '.join(known)}"
                )
            if name == "parallel":
                raise ConfigError(
                    "backend 'parallel' runs its own thread pool per stepper "
                    "and cannot be nested under process-level sharding; the "
                    "supervisor already parallelizes across workers — use "
                    "'bitplane' (or 'reference') per worker"
                )
        if self.spec.boundary not in _SHARDABLE_BOUNDARIES:
            raise ConfigError(
                f"boundary={self.spec.boundary!r} cannot be sharded "
                f"bit-identically; use one of "
                f"{', '.join(_SHARDABLE_BOUNDARIES)}"
            )
        if self.spec.kind != "hpp" and self.spec.chirality == "random":
            raise ConfigError(
                "chirality='random' draws a whole-lattice RNG field and "
                "cannot be sharded bit-identically; use a deterministic "
                "chirality policy"
            )
        plan_shards(self.spec.rows, self.num_workers)  # fail fast on geometry


@dataclass(frozen=True)
class RestartEvent:
    """One worker respawn, for the supervision report."""

    worker: int
    incarnation: int
    generation: int
    reason: str
    delay: float
    backend: str

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form."""
        return {
            "worker": self.worker,
            "incarnation": self.incarnation,
            "generation": self.generation,
            "reason": self.reason,
            "delay": round(self.delay, 6),
            "backend": self.backend,
        }


@dataclass
class SupervisionReport:
    """Everything observable about one supervised run.

    ``telemetry`` is the merged multi-process
    :class:`~repro.telemetry.TelemetryReport` (schema v2, one entry per
    coordinator/worker-incarnation) when the run was given a collecting
    recorder; it travels alongside the report object — ``to_dict`` keeps
    the v1 supervised-run schema unchanged, the CLI writes the telemetry
    to its own ``--telemetry`` file.
    """

    outcome: str  # "complete" | "degraded" | "failed"
    reason: str
    generations: int
    generations_completed: int
    num_workers: int
    backend: str
    fallback_backend: str
    restarts: list[RestartEvent]
    watchdog_kills: int
    checkpoint_saves: dict[int, int]
    breaker: dict[str, object] | None
    degraded_shards: list[dict[str, int]]
    wall_time_seconds: float
    telemetry: TelemetryReport | None = None

    @property
    def exit_code(self) -> int:
        """CLI exit code: 0 complete, 3 degraded, 1 failed."""
        return {"complete": 0, "degraded": 3}.get(self.outcome, 1)

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form (schema-versioned)."""
        return {
            "schema": REPORT_SCHEMA,
            "schema_version": REPORT_SCHEMA_VERSION,
            "outcome": self.outcome,
            "reason": self.reason,
            "generations": self.generations,
            "generations_completed": self.generations_completed,
            "num_workers": self.num_workers,
            "backend": self.backend,
            "fallback_backend": self.fallback_backend,
            "restarts": [r.to_dict() for r in self.restarts],
            "num_restarts": len(self.restarts),
            "watchdog_kills": self.watchdog_kills,
            "checkpoint_saves": {
                str(w): n for w, n in sorted(self.checkpoint_saves.items())
            },
            "breaker": self.breaker,
            "degraded_shards": self.degraded_shards,
            "wall_time_seconds": round(self.wall_time_seconds, 3),
        }


class _Handle:
    """Supervisor-side state for one worker slot."""

    def __init__(self, shard: Shard, backend: str):
        self.shard = shard
        self.backend = backend
        self.proc: multiprocessing.process.BaseProcess | None = None
        self.conn = None
        self.status = "restart-pending"  # spawned by the main loop
        self.incarnation = -1
        self.delivered = -1  # highest generation whose boundary we hold
        self.failures = 0  # consecutive, reset on checkpoint
        self.okay_since = 0.0  # monotonic time of last interaction
        self.restart_at = 0.0
        self.error: str | None = None
        self.final_state: np.ndarray | None = None

    @property
    def index(self) -> int:
        return self.shard.index


class _Abort(Exception):
    """Internal: unwinds the event loop with a terminal outcome."""

    def __init__(self, outcome: str, reason: str):
        super().__init__(reason)
        self.outcome = outcome
        self.reason = reason


class _Supervision:
    """One supervised run's event loop and bookkeeping.

    ``clock`` is the single monotonic time source for the watchdog,
    restart backoff, the deadline, wall-time accounting, *and* the
    circuit breaker — inject a :class:`~repro.telemetry.StepClock` and
    every timeout in the run trips on virtual time.  ``recorder``
    receives lifecycle events and heartbeat/restart counters; the
    default null recorder makes that free.
    """

    def __init__(
        self,
        config: SupervisorConfig,
        clock: Clock = MONOTONIC,
        recorder: Recorder | None = None,
    ):
        self.config = config
        self.spec = config.spec
        self.clock = clock
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._heartbeats = self.recorder.counter("supervisor.heartbeats")
        self.shards = plan_shards(self.spec.rows, config.num_workers)
        method = config.start_method or (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        self.ctx = multiprocessing.get_context(method)
        self.rng = np.random.default_rng(config.seed + 0x5EED)
        self.breaker = CircuitBreaker(
            backend=config.backend,
            fallback=config.fallback_backend,
            failure_threshold=config.breaker_threshold,
            cooldown_seconds=config.breaker_cooldown,
            clock=clock,
        )
        init = (
            config.initial_state
            if config.initial_state is not None
            else self.spec.initial_state(config.density, config.seed)
        )
        if init.shape[:2] != (self.spec.rows, self.spec.cols):
            raise ConfigError(
                f"initial state shape {init.shape} does not match the "
                f"{self.spec.rows}x{self.spec.cols} lattice"
            )
        self.initial = np.ascontiguousarray(init, dtype=np.uint8)
        self.handles = [_Handle(s, config.backend) for s in self.shards]
        # Halo history: generation -> worker -> (top, bottom) boundary rows.
        self.boundaries: dict[int, dict[int, tuple[np.ndarray, np.ndarray]]] = {}
        self.last_boundary: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for h in self.handles:
            slab = self.initial[h.shard.row_start : h.shard.row_stop]
            self.last_boundary[h.index] = (slab[:2].copy(), slab[-2:].copy())
        self.barrier = 0
        self.window = 2 * config.checkpoint_interval + 4
        self.total_restarts = 0
        self.watchdog_kills = 0
        self.checkpoint_saves: dict[int, int] = {h.index: 0 for h in self.handles}
        self.restarts: list[RestartEvent] = []
        self.degraded: list[dict[str, int]] = []
        self._owns_ckpt_dir = config.checkpoint_dir is None
        self.ckpt_root = Path(
            config.checkpoint_dir
            or tempfile.mkdtemp(prefix="repro-supervised-")
        )
        # Per-worker telemetry spools live beside the checkpoints (same
        # lifetime, same durability story); workers get a spool path only
        # when the run is actually collecting.
        self.telemetry_on = isinstance(self.recorder, InMemoryRecorder)
        self.spool_dir = self.ckpt_root / "telemetry"
        # (worker, incarnation) -> coordinator-minus-worker clock offset,
        # measured at the ready handshake on the recorder's clock.
        self.clock_offsets: dict[tuple[int, int], float] = {}
        self._worker_telemetry: list[ProcessTelemetry] = []
        self.started = self.clock()

    # -- spawning ------------------------------------------------------

    def _worker_dir(self, index: int) -> Path:
        return self.ckpt_root / f"worker-{index:02d}"

    def _local_obstacles(self, shard: Shard) -> np.ndarray | None:
        if self.config.obstacles is None:
            return None
        return np.ascontiguousarray(
            self.config.obstacles[shard.local_row_indices(self.spec.rows)]
        )

    def _spawn(self, h: _Handle, first: bool) -> None:
        h.incarnation += 1
        h.backend = self.breaker.select_backend(self.barrier)
        shard = h.shard
        wc = WorkerConfig(
            worker=h.index,
            spec=self.spec,
            shard=shard,
            backend=h.backend,
            target_generation=self.config.generations,
            checkpoint_dir=str(self._worker_dir(h.index)),
            checkpoint_interval=self.config.checkpoint_interval,
            checkpoint_keep=self.config.checkpoint_keep,
            incarnation=h.incarnation,
            initial_slab=(
                self.initial[shard.row_start : shard.row_stop].copy()
                if first
                else None
            ),
            obstacles_mask=self._local_obstacles(shard),
            induced=self.config.induced,
            spool_path=(
                str(worker_spool_path(self.spool_dir, h.index, h.incarnation))
                if self.telemetry_on
                else None
            ),
        )
        parent, child = self.ctx.Pipe(duplex=True)
        proc = self.ctx.Process(
            target=worker_main,
            args=(wc, child),
            name=f"repro-worker-{h.index}",
            daemon=True,
        )
        proc.start()
        child.close()
        h.proc = proc
        h.conn = parent
        h.status = "starting"
        h.okay_since = self.clock()
        h.error = None
        self.recorder.event(
            "supervisor.spawn",
            worker=h.index,
            incarnation=h.incarnation,
            backend=h.backend,
            generation=self.barrier,
        )

    def _kill(self, h: _Handle) -> None:
        if h.conn is not None:
            h.conn.close()
            h.conn = None
        proc = h.proc
        if proc is None:
            return
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
        else:
            proc.join(timeout=2.0)
        h.proc = None

    # -- failure handling ----------------------------------------------

    def _fail(self, h: _Handle, reason: str) -> None:
        if h.status in ("restart-pending", "dropped"):
            return
        self._kill(h)
        h.failures += 1
        self.breaker.record_failure(h.backend, self.barrier)
        policy = self.config.backoff
        if (
            h.failures > policy.max_retries
            or self.total_restarts >= self.config.max_total_restarts
        ):
            self._drop(h, reason)
            return
        delay = policy.delay(h.failures - 1, self.rng)
        h.status = "restart-pending"
        h.restart_at = self.clock() + delay
        self.restarts.append(
            RestartEvent(
                worker=h.index,
                incarnation=h.incarnation + 1,
                generation=self.barrier,
                reason=reason,
                delay=delay,
                backend=h.backend,  # refreshed by the breaker at respawn
            )
        )
        self.total_restarts += 1
        self.recorder.event(
            "supervisor.restart",
            worker=h.index,
            incarnation=h.incarnation + 1,
            generation=self.barrier,
            reason=reason,
            delay=delay,
            backend=h.backend,
        )

    def _drop(self, h: _Handle, reason: str) -> None:
        """Give up on a shard: freeze its boundary rows, note degradation."""
        h.status = "dropped"
        generation, state = self._checkpointed_slab(h)
        h.final_state = state
        self.recorder.event(
            "supervisor.drop",
            worker=h.index,
            generation=generation,
            reason=reason,
        )
        self.degraded.append(
            {
                "worker": h.index,
                "row_start": h.shard.row_start,
                "row_stop": h.shard.row_stop,
                "generation": generation,
            }
        )
        if not self.config.allow_degraded:
            raise _Abort(
                "failed",
                f"worker {h.index} unrecoverable ({reason}) and degraded "
                f"completion is not allowed",
            )

    def _checkpointed_slab(self, h: _Handle) -> tuple[int, np.ndarray]:
        """Best recoverable state for a dead shard: checkpoint or t=0."""
        try:
            cp = CheckpointStore.load_latest(self._worker_dir(h.index))
        except CheckpointError:
            return 0, self.initial[h.shard.row_start : h.shard.row_stop].copy()
        return cp.generation, cp.state

    # -- halo routing --------------------------------------------------

    def _boundary_of(self, index: int, generation: int) -> tuple[np.ndarray, np.ndarray]:
        entry = self.boundaries.get(generation, {}).get(index)
        return self.last_boundary[index] if entry is None else entry

    def _halo_for(
        self, index: int, generation: int
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        n = len(self.handles)
        periodic = self.spec.boundary == "periodic"
        above_i = index - 1 if index > 0 else (n - 1 if periodic else None)
        below_i = index + 1 if index < n - 1 else (0 if periodic else None)
        above = (
            None if above_i is None else self._boundary_of(above_i, generation)[1]
        )
        below = (
            None if below_i is None else self._boundary_of(below_i, generation)[0]
        )
        return above, below

    def _active(self) -> list[_Handle]:
        return [h for h in self.handles if h.status != "dropped"]

    def _try_route(self) -> None:
        """Advance the barrier while every live worker has published."""
        while self.barrier < self.config.generations:
            have = self.boundaries.get(self.barrier, {})
            if any(h.index not in have for h in self._active()):
                return
            g = self.barrier
            for h in self.handles:
                if h.status != "running" or h.conn is None:
                    continue
                above, below = self._halo_for(h.index, g)
                try:
                    h.conn.send(("halo", g, above, below))
                    h.okay_since = self.clock()
                except OSError:
                    self._fail(h, "pipe closed while sending halo")
            self.barrier = g + 1
            for old in [gg for gg in self.boundaries if gg < self.barrier - self.window]:
                del self.boundaries[old]

    # -- message handling ----------------------------------------------

    def _on_message(self, h: _Handle, msg: tuple) -> None:
        kind = msg[0]
        h.okay_since = self.clock()
        self._heartbeats.add(1)
        if kind == "ready":
            _incarnation, restored = msg[1], msg[2]
            if self.telemetry_on and len(msg) > 3 and msg[3] is not None:
                # Handshake clock alignment: the worker read its clock
                # just before sending, we read ours (the recorder's —
                # the telemetry timeline) on receipt, so the offset is
                # late by at most the message latency.
                self.clock_offsets[(h.index, h.incarnation)] = (
                    self.recorder.clock() - float(msg[3])
                )
            oldest = min(self.boundaries, default=self.barrier)
            if restored < self.barrier and restored < oldest:
                self._fail(
                    h, f"checkpoint at generation {restored} predates halo history"
                )
                return
            bundle = [
                (g, *self._halo_for(h.index, g))
                for g in range(restored, self.barrier)
            ]
            try:
                h.conn.send(("replay", bundle))
            except OSError:
                self._fail(h, "pipe closed while sending replay")
                return
            h.status = "running"
        elif kind == "boundary":
            g, top, bottom = msg[1], msg[2], msg[3]
            self.boundaries.setdefault(g, {})[h.index] = (top, bottom)
            self.last_boundary[h.index] = (top, bottom)
            h.delivered = max(h.delivered, g)
        elif kind == "checkpoint":
            self.checkpoint_saves[h.index] += 1
            h.failures = 0
            self.breaker.record_success(h.backend, msg[1])
        elif kind == "done":
            h.status = "done"
        elif kind == "error":
            self._fail(h, f"worker error: {msg[2]}")

    def _drain(self, h: _Handle) -> None:
        while h.conn is not None and h.status not in ("restart-pending", "dropped"):
            try:
                if not h.conn.poll():
                    return
                msg = h.conn.recv()
            except (OSError, EOFError):
                return  # death is handled via the process sentinel
            self._on_message(h, msg)

    # -- watchdog / deadline -------------------------------------------

    def _owes_barrier(self, h: _Handle) -> bool:
        if h.status == "starting":
            return True  # owes "ready"
        if h.status != "running":
            return False
        return h.delivered < self.barrier or self.barrier >= self.config.generations

    def _check_timeouts(self, now: float) -> None:
        if (
            self.config.deadline_seconds is not None
            and now - self.started > self.config.deadline_seconds
        ):
            raise _Abort(
                "failed",
                f"deadline of {self.config.deadline_seconds:g}s exceeded at "
                f"generation {self.barrier}",
            )
        for h in self._active():
            if (
                h.status in ("starting", "running")
                and self._owes_barrier(h)
                and now - h.okay_since > self.config.watchdog_timeout
            ):
                self.watchdog_kills += 1
                self.recorder.event(
                    "supervisor.watchdog_kill",
                    worker=h.index,
                    generation=self.barrier,
                )
                self._fail(
                    h,
                    f"watchdog: silent for more than "
                    f"{self.config.watchdog_timeout:g}s at generation "
                    f"{self.barrier}",
                )

    # -- event loop ----------------------------------------------------

    def _loop(self) -> None:
        for h in self.handles:
            self._spawn(h, first=True)
        while True:
            now = self.clock()
            self._check_timeouts(now)
            for h in self.handles:
                if h.status == "restart-pending" and now >= h.restart_at:
                    self._spawn(h, first=False)
            live = [
                h
                for h in self.handles
                if h.status in ("starting", "running") and h.conn is not None
            ]
            if not self._active():
                raise _Abort("failed", "every worker was dropped")
            waitables: list[object] = [h.conn for h in live]
            waitables += [h.proc.sentinel for h in live if h.proc is not None]
            if waitables:
                _conn_wait(waitables, timeout=self.config.poll_interval)
            else:
                _time.sleep(self.config.poll_interval)
            for h in list(live):
                self._drain(h)
            for h in list(live):
                if (
                    h.status in ("starting", "running")
                    and h.proc is not None
                    and not h.proc.is_alive()
                ):
                    self._drain(h)  # salvage queued messages first
                    if h.status in ("starting", "running"):
                        code = h.proc.exitcode
                        self._fail(h, f"worker process died (exit code {code})")
            self._try_route()
            if all(h.status == "done" for h in self._active()):
                return

    # -- collection ----------------------------------------------------

    def _collect(self) -> np.ndarray:
        full = np.zeros((self.spec.rows, self.spec.cols), dtype=np.uint8)
        for h in self.handles:
            if h.status == "dropped":
                full[h.shard.row_start : h.shard.row_stop] = h.final_state
                continue
            state = self._collect_one(h)
            if state is None:
                self._fail(h, "worker died before returning its final slab")
                if h.status != "dropped":
                    # _fail scheduled a restart, but collection cannot
                    # wait for a whole re-run; degrade or abort instead.
                    h.status = "dropped"
                    generation, slab = self._checkpointed_slab(h)
                    self.degraded.append(
                        {
                            "worker": h.index,
                            "row_start": h.shard.row_start,
                            "row_stop": h.shard.row_stop,
                            "generation": generation,
                        }
                    )
                    if not self.config.allow_degraded:
                        raise _Abort(
                            "failed",
                            f"worker {h.index} lost at collection and degraded "
                            f"completion is not allowed",
                        )
                    h.final_state = slab
                full[h.shard.row_start : h.shard.row_stop] = h.final_state
                continue
            full[h.shard.row_start : h.shard.row_stop] = state
        return full

    def _collect_one(self, h: _Handle) -> np.ndarray | None:
        if h.conn is None:
            return None
        try:
            h.conn.send(("collect",))
            deadline = self.clock() + self.config.watchdog_timeout
            while self.clock() < deadline:
                if not h.conn.poll(timeout=self.config.poll_interval):
                    continue
                msg = h.conn.recv()
                if msg[0] == "state":
                    if msg[1] != self.config.generations:
                        return None
                    return np.asarray(msg[2], dtype=np.uint8)
                self._on_message(h, msg)  # late checkpoint notices
        except (OSError, EOFError):
            return None
        return None

    # -- telemetry -----------------------------------------------------

    def _harvest_worker_telemetry(self) -> None:
        """Read every worker spool before the checkpoint root vanishes.

        Runs in the ``finally`` path ahead of :meth:`_shutdown` (which
        may rmtree an owned temp root).  Spools are already durable —
        each worker fsyncs its final snapshot before sending ``done``,
        and a killed worker's last-checkpoint snapshot is on disk — so
        this is a plain read, not a join.
        """
        if not self.telemetry_on:
            return
        try:
            self._worker_telemetry = load_worker_spools(
                self.spool_dir, self.clock_offsets
            )
        except Exception:  # noqa: BLE001 - telemetry must never fail a run
            self._worker_telemetry = []

    def _merged_telemetry(self, outcome: str, reason: str) -> TelemetryReport | None:
        """The schema-v2 multi-process report: coordinator + every life."""
        try:
            processes = [coordinator_process(self.recorder)]  # type: ignore[arg-type]
            processes.extend(self._worker_telemetry)
            return merge_processes(
                processes,
                meta={
                    "command": "supervised_run",
                    "outcome": outcome,
                    "reason": reason,
                    "generations": self.config.generations,
                    "num_workers": self.config.num_workers,
                    "backend": self.config.backend,
                },
                producer=f"{REPORT_SCHEMA}/v{REPORT_SCHEMA_VERSION}",
            )
        except Exception:  # noqa: BLE001 - telemetry must never fail a run
            return None

    # -- shutdown ------------------------------------------------------

    def _shutdown(self) -> None:
        for h in self.handles:
            if h.conn is not None:
                try:
                    h.conn.send(("stop",))
                except OSError:
                    pass
            self._kill(h)
        if self._owns_ckpt_dir:
            shutil.rmtree(self.ckpt_root, ignore_errors=True)

    # -- entry point ---------------------------------------------------

    def run(self) -> tuple[np.ndarray | None, SupervisionReport]:
        outcome, reason = "complete", "all shards completed"
        state: np.ndarray | None = None
        try:
            self._loop()
            state = self._collect()
            if self.degraded:
                outcome = "degraded"
                reason = (
                    f"{len(self.degraded)} shard(s) frozen at their last "
                    f"checkpoint"
                )
        except _Abort as abort:
            outcome, reason = abort.outcome, abort.reason
        finally:
            self._harvest_worker_telemetry()
            self._shutdown()
        for t in self.breaker.transitions:
            self.recorder.event(
                "supervisor.breaker_transition",
                backend=t.backend,
                state=t.state,
                generation=t.generation,
                reason=t.reason,
            )
        self.recorder.event(
            "supervisor.outcome",
            outcome=outcome,
            reason=reason,
            generations_completed=self.barrier,
            restarts=len(self.restarts),
            watchdog_kills=self.watchdog_kills,
        )
        report = SupervisionReport(
            outcome=outcome,
            reason=reason,
            generations=self.config.generations,
            generations_completed=self.barrier,
            num_workers=self.config.num_workers,
            backend=self.config.backend,
            fallback_backend=self.config.fallback_backend,
            restarts=self.restarts,
            watchdog_kills=self.watchdog_kills,
            checkpoint_saves=self.checkpoint_saves,
            breaker=(
                self.breaker.to_dict()
                if self.config.backend != self.config.fallback_backend
                else None
            ),
            degraded_shards=self.degraded,
            wall_time_seconds=self.clock() - self.started,
        )
        if self.telemetry_on:
            report.telemetry = self._merged_telemetry(outcome, reason)
        return state, report


def supervised_run(
    config: SupervisorConfig,
    clock: Clock = MONOTONIC,
    recorder: Recorder | None = None,
) -> tuple[np.ndarray | None, SupervisionReport]:
    """Run a sharded lattice evolution under supervision.

    Returns ``(final_state, report)``; the state is ``None`` when the
    run failed outright.  A run that needed restarts but lost no shard
    permanently is bit-identical to an unsupervised
    :class:`~repro.lgca.automaton.LatticeGasAutomaton` evolution of the
    same spec, seed, and generation count.

    ``clock`` is the run's only monotonic time source (watchdog,
    backoff, deadline, breaker, wall time) — the same injectable the
    breaker has always taken — so tests pass a
    :class:`~repro.telemetry.StepClock` and drive every timeout on
    virtual time.  ``recorder`` collects worker lifecycle events and
    heartbeat counters; ``None`` means the zero-overhead null recorder.
    """
    return _Supervision(config, clock=clock, recorder=recorder).run()
