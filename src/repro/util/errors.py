"""The package-wide exception hierarchy.

Every error the toolkit raises *on purpose* derives from
:class:`ReproError`, so callers (the CLI above all) can distinguish "the
user asked for something impossible / the machine detected a fault" from
a genuine bug in the toolkit: the former prints a one-line message and
exits with code 2, the latter keeps its traceback.

:class:`ConfigError` additionally derives from :class:`ValueError` so
that pre-existing callers catching ``ValueError`` around argument
validation keep working.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "FaultDetectedError",
    "CheckpointError",
]


class ReproError(Exception):
    """Base class for all deliberate toolkit errors."""


class ConfigError(ReproError, ValueError):
    """A configuration or input is invalid (wrong shape, dtype, range).

    Subclasses :class:`ValueError` for backward compatibility with
    callers that catch validation errors generically.
    """


class FaultDetectedError(ReproError):
    """A runtime monitor detected corruption that recovery could not fix.

    Attributes
    ----------
    detections:
        The monitor detections that triggered the abort (may be empty
        when raised before any detection was recorded).
    """

    def __init__(self, message: str, detections: tuple = ()):  # type: ignore[type-arg]
        super().__init__(message)
        self.detections = tuple(detections)


class CheckpointError(ReproError):
    """A checkpoint could not be taken, found, or restored."""
