"""Hot-path markers: declare that a function must run allocation-free.

The paper's throughput claims (and ``BENCH_kernels.json``) depend on the
streaming kernels doing *no* per-call array allocation: one hidden
``np.zeros`` inside :meth:`BitplaneKernel.step_into` and the 9–14×
bit-plane speedup quietly becomes a memory-bandwidth benchmark.  The
:func:`hot_path` decorator turns that convention into a machine-checked
contract — ``repro lint`` (rules ``RPR101``/``RPR102``) statically
verifies every marked function, and :data:`HOT_PATH_REGISTRY` names the
functions that are hot *by architecture* so the check cannot be dodged
by deleting a decorator.

The decorator is deliberately inert at runtime: it sets one attribute
and returns the **same** function object, so marking a kernel hot can
never change its behavior (``tests/analysis/test_hot_path_equivalence``
pins this with bit-identical trajectory checks).
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["HOT_PATH_ATTR", "HOT_PATH_REGISTRY", "hot_path", "is_hot_path"]

_F = TypeVar("_F", bound=Callable[..., object])

#: Attribute set on functions marked with :func:`hot_path`.
HOT_PATH_ATTR = "__repro_hot_path__"

#: Qualified ``Class.method`` (or bare function) names that are hot by
#: architecture, independent of decoration.  ``repro lint`` checks these
#: even in a tree where someone removed the decorators.
HOT_PATH_REGISTRY: frozenset[str] = frozenset(
    {
        "BitplaneKernel.step_into",
        "BitplaneKernel.collide_into",
        "BitplaneKernel.propagate_into",
        "BitplaneStepper.step",
        "BitplaneStepper.run",
        "ParallelStepper._advance_tile",
        "ParallelStepper.step",
        "ParallelStepper.run",
        "ReferenceStepper._advance",
        "ReferenceStepper.step",
        "ReferenceStepper.run",
        "PipelineStage.process",
        "StreamingEngineCore._advance_stream",
    }
)


def hot_path(func: _F) -> _F:
    """Mark ``func`` as a streaming hot path (identity at runtime).

    Marked functions are checked by ``repro lint`` rules ``RPR101``
    (no allocation) and ``RPR102`` (no I/O or persistent-state growth).
    The decorator adds :data:`HOT_PATH_ATTR` and returns the *same*
    object, so it is provably behavior-preserving.
    """
    setattr(func, HOT_PATH_ATTR, True)
    return func


def is_hot_path(func: object) -> bool:
    """Whether ``func`` (or the function under a method) is marked hot."""
    return bool(getattr(func, HOT_PATH_ATTR, False))
