"""Wall-clock execution guards.

:func:`wall_clock_limit` bounds a block of code by real elapsed time
using ``SIGALRM`` (``setitimer``), raising :class:`WallClockTimeout`
when the budget expires.  Signals interrupt the interpreter between
bytecodes, so the guard catches stalls in Python-level control flow
(infinite retry loops, sleeps, blocked reads) — the failure modes a
campaign or sweep runner needs protection from — while one long
uninterruptible C call can overrun its budget until it returns.

The guard degrades to a no-op where ``SIGALRM`` cannot be armed (not the
main thread, or a platform without it); callers can check the yielded
flag when they need to know whether the guard is live.
"""

from __future__ import annotations

import signal
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from types import FrameType

from repro.util.errors import ReproError

__all__ = ["WallClockTimeout", "wall_clock_limit"]


class WallClockTimeout(ReproError):
    """A guarded block exceeded its wall-clock budget."""

    def __init__(self, seconds: float):
        super().__init__(f"wall-clock limit of {seconds:g}s exceeded")
        self.seconds = seconds


def _can_arm() -> bool:
    """Whether a SIGALRM timer can be installed from this thread."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def wall_clock_limit(seconds: float | None) -> Iterator[bool]:
    """Bound the enclosed block to ``seconds`` of wall-clock time.

    Yields ``True`` when the guard is armed, ``False`` when it degraded
    to a no-op (``seconds`` falsy, off the main thread, or no SIGALRM).
    Raises :class:`WallClockTimeout` from inside the block on expiry;
    the previous handler and any pending itimer are always restored.
    """
    if not seconds or not _can_arm():
        yield False
        return

    def _expired(signum: int, frame: FrameType | None) -> None:
        raise WallClockTimeout(seconds)

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield True
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
