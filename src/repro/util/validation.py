"""Argument-validation helpers.

Every public constructor in the library validates its inputs with these
functions so that an invalid design parameter (say, a negative chip area
or a zero-dimensional lattice) fails at construction time with a message
naming the offending argument, instead of surfacing later as a cryptic
NumPy broadcasting error deep inside a sweep.
"""

from __future__ import annotations

import math
import numbers
from typing import Any

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_integer",
    "check_probability",
]


def _name_value(name: str, value: Any) -> str:
    return f"{name}={value!r}"


def check_integer(value: Any, name: str) -> int:
    """Return ``value`` as an ``int``, rejecting non-integral input.

    Accepts Python ints and NumPy integer scalars; accepts floats only if
    they are exactly integral (e.g. ``4.0``), which commonly arise from
    NumPy reductions over integer arrays.
    """
    if isinstance(value, bool):
        raise TypeError(f"{_name_value(name, value)} must be an integer, not bool")
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real) and float(value).is_integer():
        return int(value)
    raise TypeError(f"{_name_value(name, value)} must be an integer")


def check_positive(value: Any, name: str, *, integer: bool = False) -> Any:
    """Validate ``value > 0`` (optionally also integral) and return it."""
    if integer:
        value = check_integer(value, name)
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{_name_value(name, value)} must be a real number")
    if math.isnan(float(value)):
        raise ValueError(f"{_name_value(name, value)} must not be NaN")
    if value <= 0:
        raise ValueError(f"{_name_value(name, value)} must be positive")
    return value


def check_nonnegative(value: Any, name: str, *, integer: bool = False) -> Any:
    """Validate ``value >= 0`` (optionally also integral) and return it."""
    if integer:
        value = check_integer(value, name)
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{_name_value(name, value)} must be a real number")
    if math.isnan(float(value)):
        raise ValueError(f"{_name_value(name, value)} must not be NaN")
    if value < 0:
        raise ValueError(f"{_name_value(name, value)} must be non-negative")
    return value


def check_in_range(
    value: Any,
    name: str,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> Any:
    """Validate ``low <= value <= high`` (or strict if ``inclusive=False``)."""
    if not isinstance(value, numbers.Real):
        raise TypeError(f"{_name_value(name, value)} must be a real number")
    if inclusive:
        if not (low <= value <= high):
            raise ValueError(
                f"{_name_value(name, value)} must lie in [{low}, {high}]"
            )
    else:
        if not (low < value < high):
            raise ValueError(
                f"{_name_value(name, value)} must lie in ({low}, {high})"
            )
    return value


def check_probability(value: Any, name: str) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    return float(check_in_range(value, name, 0.0, 1.0))
