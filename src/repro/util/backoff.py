"""Shared capped-exponential-backoff-with-jitter retry policy.

Promoted out of :mod:`repro.resilience.recovery` so both recovery layers
use one policy object:

* the **in-process** layer (rollback-and-replay, row retransmission)
  spends the delays as *virtual time units* recorded in its reports;
* the **process supervisor** (:mod:`repro.runtime`) spends them as real
  wall-clock seconds between worker restarts, with jitter so a fleet of
  restarting workers does not stampede the host in lock-step.

Delays grow geometrically from ``base_delay`` by ``multiplier`` per
attempt, are capped at ``max_delay`` (when set), and are then spread by
``±jitter`` (a fraction of the capped delay) drawn from the caller's
RNG — the policy itself holds no state, so a seeded
``numpy.random.Generator`` reproduces the exact delay sequence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_nonnegative, check_positive

__all__ = ["BackoffPolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded retry with capped exponential backoff and optional jitter.

    Parameters
    ----------
    max_retries:
        Attempts allowed before the caller gives up.
    base_delay:
        Delay before attempt 0 (virtual units or seconds — the caller's
        choice).
    multiplier:
        Geometric growth factor per attempt (must be >= 1 so delays
        never shrink).
    max_delay:
        Cap applied to every delay; ``None`` leaves growth unbounded.
    jitter:
        Fraction in ``[0, 1)``: each delay is scaled by a factor drawn
        uniformly from ``[1 - jitter, 1 + jitter]`` (then re-capped at
        ``max_delay``).  Requires an RNG at :meth:`delay` time; with no
        RNG the undithered delay is returned.
    """

    max_retries: int = 3
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float | None = None
    jitter: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.max_retries, "max_retries", integer=True)
        check_positive(self.base_delay, "base_delay")
        check_positive(self.multiplier, "multiplier")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier={self.multiplier} must be >= 1 (delays never shrink)"
            )
        if self.max_delay is not None:
            check_positive(self.max_delay, "max_delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter={self.jitter} must be in [0, 1)")

    def base(self, attempt: int) -> float:
        """The undithered (capped) delay before retry ``attempt`` (0-based)."""
        check_nonnegative(attempt, "attempt", integer=True)
        delay = self.base_delay * self.multiplier**attempt
        if self.max_delay is not None:
            delay = min(delay, self.max_delay)
        return delay

    def delay(
        self, attempt: int, rng: np.random.Generator | None = None
    ) -> float:
        """Backoff before retry ``attempt``, jittered when an RNG is given.

        The jittered delay stays within ``base(attempt) * (1 ± jitter)``
        and never exceeds ``max_delay``.
        """
        delay = self.base(attempt)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
            if self.max_delay is not None:
                delay = min(delay, self.max_delay)
        return delay

    def schedule(
        self, rng: np.random.Generator | None = None
    ) -> tuple[float, ...]:
        """All ``max_retries`` delays in order (one RNG draw per attempt)."""
        return tuple(self.delay(a, rng) for a in range(self.max_retries))
