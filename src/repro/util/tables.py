"""Fixed-width table rendering used by the benchmark harness.

Every benchmark prints the rows/series a table or figure of the paper
reports.  Routing all of that output through :class:`Table` keeps the
bench output uniform, machine-greppable, and diffable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["Table", "format_quantity", "format_rate"]

_SI_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
]


def format_quantity(value: float, unit: str = "", *, digits: int = 3) -> str:
    """Render ``value`` with an SI prefix, e.g. ``2.0e7 -> '20.0 M'``.

    Values below 1000 are rendered plainly.  ``unit`` is appended after
    the prefix (``format_quantity(4e7, 'B/s') == '40.0 MB/s'``).
    """
    sign = "-" if value < 0 else ""
    mag = abs(float(value))
    for threshold, prefix in _SI_PREFIXES:
        if mag >= threshold:
            return f"{sign}{mag / threshold:.{digits}g} {prefix}{unit}".rstrip()
    return f"{sign}{mag:.{digits}g} {unit}".rstrip()


def format_rate(updates_per_second: float) -> str:
    """Render a site-update rate the way the paper quotes them."""
    return format_quantity(updates_per_second, "updates/s")


@dataclass
class Table:
    """A fixed-width text table with a title, headers, and typed rows.

    Parameters
    ----------
    title:
        Heading printed above the table (e.g. ``"E5: WSA vs SPA"``).
    columns:
        Column header names.
    """

    title: str
    columns: Sequence[str]
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append a row; cells are stringified (floats get 6 significant digits)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        rendered = []
        for cell in cells:
            if isinstance(cell, float):
                rendered.append(f"{cell:.6g}")
            else:
                rendered.append(str(cell))
        self.rows.append(rendered)

    def add_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.add_row(*row)

    def render(self) -> str:
        """Return the full table as a string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "  "
        header = sep.join(c.ljust(w) for c, w in zip(self.columns, widths))
        rule = sep.join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title), header, rule]
        for row in self.rows:
            lines.append(sep.join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - deliberate, mirrors render()
        print(self.render())
        print()
