"""ASCII rendering of lattice fields.

Terminal-friendly visualization for examples and quick interactive use:
scalar fields as shade maps, vector fields as speed maps with obstacle
overlays, and 1-D CA space-time diagrams.  Deliberately dependency-free
(the repository runs in plot-less environments); the functions return
strings so tests can assert on them.
"""

from __future__ import annotations

import numpy as np


__all__ = ["shade_map", "speed_map", "spacetime_diagram"]

#: light-to-dark shade ramp used by the field renderers
SHADES = " .:-=+*%@"


def shade_map(
    field: np.ndarray,
    *,
    vmax: float | None = None,
    overlay: np.ndarray | None = None,
    overlay_char: str = "#",
) -> str:
    """Render a 2-D scalar field as ASCII shades.

    Parameters
    ----------
    field:
        2-D array; larger values render darker.
    vmax:
        Normalization ceiling (default: the field's max; a zero field
        renders all-blank rather than dividing by zero).
    overlay:
        Optional boolean mask drawn as ``overlay_char`` (obstacles).
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 2:
        raise ValueError("field must be 2-D")
    if overlay is not None:
        overlay = np.asarray(overlay, dtype=bool)
        if overlay.shape != field.shape:
            raise ValueError(
                f"overlay shape {overlay.shape} != field shape {field.shape}"
            )
    if len(overlay_char) != 1:
        raise ValueError("overlay_char must be a single character")
    ceiling = float(vmax) if vmax is not None else float(field.max())
    if ceiling <= 0:
        ceiling = 1.0
    levels = np.clip(field / ceiling, 0.0, 1.0) * (len(SHADES) - 1)
    indices = levels.astype(int)
    lines = []
    for i in range(field.shape[0]):
        row = []
        for j in range(field.shape[1]):
            if overlay is not None and overlay[i, j]:
                row.append(overlay_char)
            else:
                row.append(SHADES[indices[i, j]])
        lines.append("".join(row))
    return "\n".join(lines)


def speed_map(
    velocity: np.ndarray,
    *,
    overlay: np.ndarray | None = None,
) -> str:
    """Render a vector field's magnitude |u| as shades.

    ``velocity`` has shape ``(rows, cols, 2)`` — the output of
    :func:`repro.lgca.observables.mean_velocity_field`.
    """
    velocity = np.asarray(velocity, dtype=np.float64)
    if velocity.ndim != 3 or velocity.shape[-1] != 2:
        raise ValueError("velocity must have shape (rows, cols, 2)")
    return shade_map(np.linalg.norm(velocity, axis=-1), overlay=overlay)


def spacetime_diagram(history: np.ndarray, on: str = "#", off: str = ".") -> str:
    """Render a 1-D CA history (time down the page).

    ``history`` has shape ``(generations + 1, cells)`` with 0/1 entries —
    the output of :meth:`repro.lgca.wolfram.ElementaryCA.history`.
    """
    history = np.asarray(history)
    if history.ndim != 2:
        raise ValueError("history must be 2-D (time x cells)")
    if len(on) != 1 or len(off) != 1:
        raise ValueError("on/off must be single characters")
    if np.any((history != 0) & (history != 1)):
        raise ValueError("history cells must be 0 or 1")
    return "\n".join(
        "".join(on if cell else off for cell in row) for row in history
    )
