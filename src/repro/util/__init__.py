"""Shared utilities: argument validation and table rendering.

These helpers keep the numerical modules free of boilerplate.  They are
deliberately tiny: validation raises early with a precise message (the
numerical code then never has to re-check), and :mod:`repro.util.tables`
renders the fixed-width rows the benchmark harness prints so every bench
produces paper-style output through one code path.
"""

from repro.util.backoff import BackoffPolicy
from repro.util.errors import (
    ReproError,
    ConfigError,
    FaultDetectedError,
    CheckpointError,
)
from repro.util.validation import (
    check_positive,
    check_nonnegative,
    check_in_range,
    check_integer,
    check_probability,
)
from repro.util.tables import Table, format_quantity, format_rate
from repro.util.timeout import WallClockTimeout, wall_clock_limit
from repro.util.render import shade_map, speed_map, spacetime_diagram
from repro.util.hotpath import HOT_PATH_REGISTRY, hot_path, is_hot_path

__all__ = [
    "BackoffPolicy",
    "HOT_PATH_REGISTRY",
    "hot_path",
    "is_hot_path",
    "ReproError",
    "ConfigError",
    "FaultDetectedError",
    "CheckpointError",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_integer",
    "check_probability",
    "Table",
    "WallClockTimeout",
    "format_quantity",
    "format_rate",
    "wall_clock_limit",
    "shade_map",
    "speed_map",
    "spacetime_diagram",
]
