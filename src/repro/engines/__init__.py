"""Functional + cycle-level simulators of the paper's engine architectures.

Each engine consumes lattice frames as raster streams and advances them
through a pipeline of processing stages, exactly as the hardware of
sections 3–5 does:

* :mod:`repro.engines.pe` — the site-update rule a PE implements
  (collision lookup + stream-coordinate neighborhood gather).
* :mod:`repro.engines.shiftreg` — the delay-line storage model; the
  tick-accurate stage uses it and *proves by construction* that the
  paper's ``2L + 3``-site window suffices.
* :mod:`repro.engines.streaming_core` — the shared
  :class:`StreamingEngineCore` base: one ``run()`` loop, backend
  selection, fault-hook plumbing, and stats production for all engines.
* :mod:`repro.engines.pipeline` — the serial pipelined architecture
  (section 3): one site per tick, k chained stages.
* :mod:`repro.engines.wide_serial` — the WSA (section 4): P sites per
  tick per stage.
* :mod:`repro.engines.partitioned` — the SPA (section 5): columnar
  slices with synchronous side channels.
* :mod:`repro.engines.extensible` — the WSA-E (section 6.3): off-chip
  delay lines at commercial memory density.
* :mod:`repro.engines.memory` — main-memory / host bandwidth accounting.
* :mod:`repro.engines.stats` — cycle, I/O-bit, and throughput reports.

All engines are verified bit-identical against the reference
:class:`repro.lgca.automaton.LatticeGasAutomaton` by the integration
tests (experiment E11).  The machine registry in :mod:`repro.machines`
pairs each engine with its closed-form design model; new code should
construct engines through it rather than importing classes from here.
"""

from repro.engines.pe import SiteUpdateRule, StreamStencil
from repro.engines.shiftreg import ShiftRegister, WindowOverrunError
from repro.engines.streaming_core import StreamingEngineCore
from repro.engines.pipeline import PipelineStage, SerialPipelineEngine
from repro.engines.wide_serial import WideSerialEngine
from repro.engines.partitioned import PartitionedEngine, SliceExchangeRecord
from repro.engines.extensible import ExtensibleSerialEngine
from repro.engines.ca_pipeline import CAPipelineEngine
from repro.engines.streaming import StreamingRowUpdater, stream_rows
from repro.engines.memory import MainMemory, HostInterface
from repro.engines.stats import EngineRunStats, ThroughputReport

__all__ = [
    "SiteUpdateRule",
    "StreamStencil",
    "ShiftRegister",
    "WindowOverrunError",
    "StreamingEngineCore",
    "PipelineStage",
    "SerialPipelineEngine",
    "WideSerialEngine",
    "PartitionedEngine",
    "SliceExchangeRecord",
    "ExtensibleSerialEngine",
    "CAPipelineEngine",
    "StreamingRowUpdater",
    "stream_rows",
    "MainMemory",
    "HostInterface",
    "EngineRunStats",
    "ThroughputReport",
]
