"""Shared streaming core for the engine simulators.

Sections 3–6.3 of the paper describe four machines that differ in
*geometry* — lanes per stage, slice partitioning, where the delay line
lives — but share one operational skeleton: lattice frames enter as
raster site streams, ``k`` chained stages each collide sites and
reassemble neighborhoods through a delay line, and a pass advances the
lattice ``k`` generations while the accounting tallies ticks, main
memory traffic, side-channel traffic, and silicon.

:class:`StreamingEngineCore` implements that skeleton once — the
``run()`` loop, double buffering, kernel-backend selection, fault-hook
plumbing, and :class:`~repro.engines.stats.EngineRunStats` production —
and each architecture subclasses it with only its geometry: a name,
``ticks_per_pass``, storage/PE/chip counts, and (for the SPA) the
side-channel bits per stage pass.  Every cross-cutting feature added
here (backends, fault hooks, tickwise simulation) is inherited by all
engines uniformly, with uniform error messages.

The module also hosts :class:`PipelineStage` — the single-stage
collide + delay-line model every engine composes — and the backend
resolver; :mod:`repro.engines.pipeline` re-exports both for backward
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar

import numpy as np

from repro.engines.pe import PostCollideHook, SiteUpdateRule, make_rule
from repro.engines.shiftreg import ShiftRegister
from repro.engines.stats import EngineRunStats
from repro.lgca.automaton import SiteModel
from repro.lgca.backends import (
    KernelStepper,
    check_backend_options,
    get_backend,
    make_stepper,
)
from repro.telemetry import NULL_RECORDER, Recorder
from repro.util.hotpath import hot_path
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["PipelineStage", "StreamingEngineCore"]


def _make_engine_stepper(
    model: SiteModel,
    backend: str,
    post_collide: PostCollideHook | None,
    workers: int | str | None = None,
    recorder: Recorder | None = None,
) -> KernelStepper | None:
    """Resolve an engine's frame-evolution backend.

    ``None`` means "stream every site through the PE stage" (the
    reference dataflow the engines exist to model).  Any other
    registered backend evolves frames with its stepper instead — the
    evolution is identical (the backends are bit-exact by contract and
    by test), only wall-clock speed changes.  Fault-injection hooks
    mutate values *inside* the stream, so they require the reference
    dataflow.  ``workers`` is validated against the backend's declared
    options (only ``"parallel"`` accepts it) *before* the reference
    early-return, so every engine rejects stray options uniformly.
    """
    chosen = get_backend(backend)  # uniform name validation and error message
    options = check_backend_options(chosen, {"workers": workers})
    if backend == "reference":
        return None
    if post_collide is not None:
        raise ValueError("fault-injection hooks require backend='reference'")
    return make_stepper(model, backend=backend, recorder=recorder, **options)


@dataclass
class PipelineStage:
    """One pipeline stage: collide + delay-line neighborhood assembly.

    ``post_collide``, when given, transforms collided values as they
    leave the PE and enter the delay line — the stage-level
    fault-injection hook (see :mod:`repro.resilience.faults`).
    ``shiftreg_transform`` is forwarded to the tick-accurate delay line
    as its per-push fault hook (:class:`~repro.engines.shiftreg.ShiftRegister`).
    """

    rule: SiteUpdateRule
    post_collide: PostCollideHook | None = None
    shiftreg_transform: "Callable[[int, int], int] | None" = None

    def __post_init__(self) -> None:
        self._stencil = self.rule.stencil
        self._src, self._valid = self._stencil.gather_maps()
        self._reach = self._stencil.window_reach()
        rows, cols = self._stencil.rows, self._stencil.cols
        n = rows * cols
        self._r = (np.arange(n) // cols).astype(np.int64)
        self._c = (np.arange(n) % cols).astype(np.int64)
        # Working storage for the allocation-free vectorized stage;
        # (re)allocated lazily when the stream geometry/dtype is first seen.
        self._buf_key: tuple[int, np.dtype, np.dtype] | None = None
        self._out_sel = 0

    @property
    def latency_ticks(self) -> int:
        """Ticks between a site entering and its updated value leaving."""
        return self._reach

    @property
    def storage_sites(self) -> int:
        """Delay-line capacity: 2·reach + 1 = 2L + 3 for the hex stencil."""
        return self._stencil.window_sites()

    def collide_sites(
        self,
        values: np.ndarray,
        r: np.ndarray,
        c: np.ndarray,
        generation: int,
    ) -> np.ndarray:
        """Collide site values and apply the stage's fault hook (if any)."""
        collided = np.asarray(self.rule.collide(values, r, c, generation))
        if self.post_collide is not None:
            collided = np.asarray(self.post_collide(collided, r, c, generation))
        return collided

    def _stream_buffers(
        self, stream: np.ndarray, collided: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Working storage for :meth:`process`: (out, gather, bits).

        Setup region: buffers are allocated only when the stream
        geometry or dtype changes, never in steady-state stepping.  The
        two ``out`` buffers alternate between calls so chained stages
        (``stream = stage.process(stream, t)``) never write the array
        they are reading.
        """
        n = stream.size
        key = (n, stream.dtype, collided.dtype)
        if self._buf_key != key:
            self._out_pair = (  # repro: alloc-ok
                np.empty(n, dtype=stream.dtype),  # repro: alloc-ok
                np.empty(n, dtype=stream.dtype),  # repro: alloc-ok
            )
            self._gather = np.empty(n, dtype=collided.dtype)  # repro: alloc-ok
            self._bits = np.empty(n, dtype=stream.dtype)  # repro: alloc-ok
            self._valid_i = self._valid.astype(stream.dtype)  # repro: alloc-ok
            self._buf_key = key
            self._out_sel = 0
        out = self._out_pair[self._out_sel]
        self._out_sel = 1 - self._out_sel
        return out, self._gather, self._bits

    @hot_path
    def process(self, stream: np.ndarray, generation: int) -> np.ndarray:
        """Vectorized stage: one whole frame stream -> next generation.

        Allocation-free in steady state: the result is a view of an
        internal double buffer, valid until the next-but-one call —
        callers that retain it must copy.
        """
        stream = self._check_stream(stream)
        collided = self.collide_sites(stream, self._r, self._c, generation)
        out, gather, bits = self._stream_buffers(stream, collided)
        dtype = stream.dtype
        out.fill(0)
        for ch in range(self._stencil.num_moving_channels):
            np.take(collided, self._src[ch], out=gather)
            np.right_shift(gather, gather.dtype.type(ch), out=gather)
            np.copyto(bits, gather, casting="unsafe")
            np.bitwise_and(bits, self._valid_i[ch], out=bits)
            np.left_shift(bits, dtype.type(ch), out=bits)
            np.bitwise_or(out, bits, out=out)
        for ch in self._stencil.self_channels:
            np.copyto(bits, collided, casting="unsafe")
            np.bitwise_and(bits, dtype.type(1 << ch), out=bits)
            np.bitwise_or(out, bits, out=out)
        return out

    def process_tickwise(
        self,
        stream: np.ndarray,
        generation: int,
        capacity_override: int | None = None,
    ) -> np.ndarray:
        """Tick-accurate stage through a hard-capacity shift register.

        Functionally identical to :meth:`process`; raises
        :class:`repro.engines.shiftreg.WindowOverrunError` if the stencil
        ever needs more than the ``2L + 3`` window the paper budgets.
        ``capacity_override`` shrinks (or grows) the register — tests
        use it to show the window is *necessary*, not merely sufficient:
        one cell less and the stage provably cannot assemble its
        neighborhoods.
        """
        stream = self._check_stream(stream)
        n = stream.size
        cols = self._stencil.cols
        reach = self._reach
        capacity = (
            capacity_override
            if capacity_override is not None
            else self._stencil.window_sites()
        )
        line = ShiftRegister(capacity=capacity, push_transform=self.shiftreg_transform)
        out = np.zeros_like(stream)
        total_ticks = n + reach
        for tick in range(total_ticks):
            if tick < n:
                r, c = divmod(tick, cols)
                collided = int(
                    self.collide_sites(
                        np.array([stream[tick]]),
                        np.array([r]),
                        np.array([c]),
                        generation,
                    )[0]
                )
                line.push(collided)
            else:
                line.push(0)  # drain: the hardware clocks zeros through
            s_out = tick - reach
            if 0 <= s_out < n:
                r, c = divmod(s_out, cols)
                value = 0
                for ch in range(self._stencil.num_moving_channels):
                    src = self._stencil.source_index(r, c, ch)
                    if src is None:
                        continue
                    flat = src[0] * cols + src[1]
                    age = tick - flat  # newest push has flat index == tick
                    if (line.tap(age) >> ch) & 1:
                        value |= 1 << ch
                for ch in self._stencil.self_channels:
                    age = tick - s_out
                    if (line.tap(age) >> ch) & 1:
                        value |= 1 << ch
                out[s_out] = value
        return out

    def _check_stream(self, stream: np.ndarray) -> np.ndarray:
        stream = np.asarray(stream)
        expected = self._stencil.rows * self._stencil.cols
        if stream.shape != (expected,):
            raise ValueError(
                f"stream has shape {stream.shape}, expected ({expected},)"
            )
        return stream


class StreamingEngineCore:
    """Base class for the cycle-level engine simulators.

    Owns everything the four architectures share: parameter validation,
    the verified site-update rule and :class:`PipelineStage`, kernel
    backend resolution, and the pass loop in :meth:`run` that advances
    ``pipeline_depth`` generations per pass while accounting ticks,
    main-memory bits, side-channel bits, and silicon.

    Subclasses supply only their geometry by overriding:

    * :attr:`name` — engine identifier (required);
    * :meth:`ticks_per_pass` — pass duration (default: serial timing,
      ``n + span · latency``);
    * :attr:`storage_sites` / :attr:`num_pes` / :attr:`num_chips` —
      silicon accounting (default: one PE-chip per stage);
    * :meth:`side_bits_per_stage_pass` — side-channel traffic per stage
      pass (default 0; the SPA measures its slice-boundary exchange);
    * :meth:`_advance_stream` — how one stage transforms the stream
      (default: the shared stage's vectorized/tickwise paths);
    * :attr:`supports_tickwise` — clear it when the architecture has no
      tick-accurate model (the SPA's mutually skewed slice streams).

    Parameters
    ----------
    model:
        A reference model with ``boundary="null"`` and deterministic
        chirality (the engine reuses its verified collision tables).
    pipeline_depth:
        k — stages in series; each pass advances k generations.
    clock_hz:
        Major cycle rate for the stats.
    post_collide:
        Optional fault-injection hook applied at every PE output
        (see :class:`PipelineStage`).
    backend:
        Kernel backend evolving the frames (see
        :mod:`repro.lgca.backends`).  ``"reference"`` streams every site
        through the PE stage; ``"bitplane"`` computes the (identical)
        evolution with the multi-spin coded kernels — much faster for
        large frames.  Stats accounting is unchanged: it models the
        *hardware*, which is the same machine either way.  Fault hooks
        and tick-accurate simulation require the reference backend.
    workers:
        Worker count for backends that accept it (``"parallel"``): a
        positive int or ``"auto"``.  ``None`` means "not requested";
        setting it with a backend that does not declare the option
        raises :class:`~repro.util.errors.ConfigError`.
    recorder:
        Optional :class:`~repro.telemetry.Recorder`.  :meth:`run` emits
        run/pass spans and keeps its accounting on recorder counters
        (``engine.ticks``, ``engine.io_bits_main``, …), and the kernel
        stepper (non-reference backends) reports its per-generation
        timings through the same recorder.  The default
        :data:`~repro.telemetry.NULL_RECORDER` makes all of this free;
        the evolution is bit-identical either way.
    """

    #: whether :meth:`run` accepts ``tickwise=True`` on the reference backend
    supports_tickwise: ClassVar[bool] = True

    def __init__(
        self,
        model: SiteModel,
        pipeline_depth: int = 1,
        clock_hz: float = 10e6,
        post_collide: PostCollideHook | None = None,
        backend: str = "reference",
        workers: int | str | None = None,
        recorder: Recorder | None = None,
    ):
        self.model = model
        self.pipeline_depth = check_positive(pipeline_depth, "pipeline_depth", integer=True)
        self.clock_hz = check_positive(clock_hz, "clock_hz")
        self.rule = make_rule(model)
        self.stage = PipelineStage(self.rule, post_collide=post_collide)
        self.backend = backend
        self.workers = workers
        self.recorder: Recorder = recorder if recorder is not None else NULL_RECORDER
        self._stepper = _make_engine_stepper(
            model, backend, post_collide, workers, recorder
        )

    # -- identity and geometry hooks --------------------------------------------

    @property
    def name(self) -> str:
        """Engine identifier used in stats and tables."""
        raise NotImplementedError

    @property
    def num_sites(self) -> int:
        """Total lattice sites per frame."""
        return self.model.rows * self.model.cols

    @property
    def storage_sites(self) -> int:
        """Total delay-line site values across all stages."""
        return self.pipeline_depth * self.stage.storage_sites

    @property
    def num_pes(self) -> int:
        """Total processing elements in the configuration."""
        return self.pipeline_depth

    @property
    def num_chips(self) -> int:
        """Chips the configuration occupies."""
        return self.pipeline_depth

    def ticks_per_pass(self, span: int) -> int:
        """Major clock ticks for one pass through ``span`` active stages."""
        return self.num_sites + span * self.stage.latency_ticks

    def side_bits_per_stage_pass(self) -> int:
        """Side-channel bits one stage moves per pass (0 unless partitioned)."""
        return 0

    # -- evolution ---------------------------------------------------------------

    @hot_path
    def _advance_stream(
        self, stream: np.ndarray, generation: int, tickwise: bool
    ) -> np.ndarray:
        """Transform the site stream through one stage (one generation)."""
        if tickwise:
            # Tick-accurate diagnostic path, not a streaming rate model.
            return self.stage.process_tickwise(stream, generation)  # repro: alloc-ok
        return self.stage.process(stream, generation)

    def run(
        self,
        frame: np.ndarray,
        generations: int,
        start_time: int = 0,
        tickwise: bool = False,
    ) -> tuple[np.ndarray, EngineRunStats]:
        """Advance ``generations`` (multiple passes if > ``pipeline_depth``).

        Returns the final frame and the run's
        :class:`~repro.engines.stats.EngineRunStats`.  All accounting
        lives on the recorder's ``engine.*`` counters — the stats are
        the counter deltas over this run, so a collecting recorder sees
        exactly the numbers the stats report (cumulatively, across
        runs), and the null recorder costs a few integer adds.
        """
        generations = check_nonnegative(generations, "generations", integer=True)
        if tickwise and not self.supports_tickwise:
            raise ValueError(
                f"{type(self).__name__} does not support tickwise simulation"
            )
        if tickwise and self._stepper is not None:
            raise ValueError("tickwise simulation requires backend='reference'")
        frame = self.model.check_state(frame)
        stream = frame.ravel().copy()
        n = self.num_sites
        d = self.model.bits_per_site
        shape = (self.model.rows, self.model.cols)
        per_pass_side = self.side_bits_per_stage_pass()
        rec = self.recorder
        ticks_c = rec.counter("engine.ticks")
        updates_c = rec.counter("engine.site_updates")
        io_c = rec.counter("engine.io_bits_main")
        side_c = rec.counter("engine.io_bits_side")
        passes_c = rec.counter("engine.passes")
        ticks0, updates0 = ticks_c.value, updates_c.value
        io0, side0 = io_c.value, side_c.value
        done = 0
        t = start_time
        with rec.span("engine.run", generation=start_time):
            while done < generations:
                span = min(self.pipeline_depth, generations - done)
                with rec.span("engine.pass", tick=ticks_c.value - ticks0, generation=t):
                    if self._stepper is not None:
                        stream = self._stepper.run(stream.reshape(shape), span, t).ravel()
                        t += span
                    else:
                        for _ in range(span):
                            stream = self._advance_stream(stream, t, tickwise)
                            t += 1
                ticks_c.add(self.ticks_per_pass(span))
                io_c.add(2 * d * n)  # read every site once, write every site once
                side_c.add(span * per_pass_side)
                updates_c.add(span * n)
                passes_c.add(1)
                done += span
        if generations > 0:
            # Detach from the stepper's (or the stage's) internal buffer.
            stream = stream.copy()
        stats = EngineRunStats(
            name=self.name,
            site_updates=updates_c.value - updates0,
            ticks=ticks_c.value - ticks0,
            io_bits_main=io_c.value - io0,
            io_bits_side=side_c.value - side0,
            storage_sites=self.storage_sites,
            num_pes=self.num_pes,
            num_chips=self.num_chips,
            clock_hz=self.clock_hz,
        )
        return stream.reshape(shape), stats
