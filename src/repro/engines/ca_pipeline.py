"""The one-dimensional CA pipeline — reference [16]'s machine.

The paper's serial-pipelining idea was first built for a 1-D cellular
automaton ("a high-performance custom processor for a one-dimensional
cellular automaton", Steiglitz & Morita 1985).  The 1-D case is the
cleanest instance of section 3: a stage's delay line holds just
``2·radius + 1`` cells (constant!, no 2L term), so dozens of PEs fit on
one chip and the pipeline advances the tape one generation per stage
with 2 cell-transfers of I/O per pass.

:class:`CAPipelineEngine` streams a binary tape through ``k`` chained
stages of an :class:`repro.lgca.wolfram.ElementaryCA` or
:class:`repro.lgca.wolfram.ParityCA` rule, with the same tick/I-O
accounting as the lattice engines and a tick-accurate mode backed by the
hard-capacity :class:`repro.engines.shiftreg.ShiftRegister`.
"""

from __future__ import annotations

import numpy as np

from repro.engines.shiftreg import ShiftRegister
from repro.engines.stats import EngineRunStats
from repro.lgca.wolfram import ElementaryCA, ParityCA
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["CAPipelineEngine"]


class CAPipelineEngine:
    """A k-stage pipeline for 1-D binary cellular automata.

    Parameters
    ----------
    rule:
        An :class:`ElementaryCA` or :class:`ParityCA` with ``"null"``
        boundary (streamed frames have no wraparound, exactly like the
        2-D engines).
    pipeline_depth:
        k — stages in series.
    clock_hz:
        Major cycle rate (1 cell per tick per stage).
    """

    def __init__(
        self,
        rule: ElementaryCA | ParityCA,
        pipeline_depth: int = 1,
        clock_hz: float = 10e6,
    ):
        if not isinstance(rule, (ElementaryCA, ParityCA)):
            raise TypeError(f"unsupported rule type {type(rule).__name__}")
        if rule.boundary != "null":
            raise ValueError(
                "streamed CA engines implement null boundaries; "
                f"rule has boundary={rule.boundary!r}"
            )
        self.rule = rule
        self.pipeline_depth = check_positive(
            pipeline_depth, "pipeline_depth", integer=True
        )
        self.clock_hz = check_positive(clock_hz, "clock_hz")

    @property
    def name(self) -> str:
        """Engine identifier used in stats and tables."""
        return f"ca-pipeline(r={self.rule.radius},k={self.pipeline_depth})"

    @property
    def radius(self) -> int:
        """Neighborhood radius r of the 1-D rule."""
        return self.rule.radius

    @property
    def storage_cells_per_stage(self) -> int:
        """The whole delay line: 2·radius + 1 cells — constant in tape
        length, the property that made the 1-D chip easy."""
        return 2 * self.radius + 1

    @property
    def latency_ticks(self) -> int:
        """Ticks before a stage emits its first updated cell: r."""
        return self.radius

    # -- stage implementations ---------------------------------------------------

    def _stage(self, tape: np.ndarray) -> np.ndarray:
        return self.rule.step(tape)

    def _stage_tickwise(self, tape: np.ndarray) -> np.ndarray:
        """Cell-at-a-time through a hard-capacity shift register."""
        n = tape.size
        r = self.radius
        line = ShiftRegister(capacity=self.storage_cells_per_stage)
        out = np.zeros_like(tape)
        if isinstance(self.rule, ElementaryCA):
            table = self.rule.rule_table()

            def update(window):  # window = (left..right), length 2r+1
                idx = (window[0] << 2) | (window[1] << 1) | window[2]
                return int(table[idx])

        else:
            taps = self.rule.taps

            def update(window):
                value = 0
                for tap in taps:
                    value ^= window[tap + r]
                return value

        for tick in range(n + r):
            line.push(int(tape[tick]) if tick < n else 0)
            cell = tick - r
            if 0 <= cell < n:
                window = []
                for offset in range(-r, r + 1):
                    src = cell + offset
                    if 0 <= src < n:
                        window.append(line.tap(tick - src))
                    else:
                        window.append(0)
                out[cell] = update(window)
        return out

    # -- runs -------------------------------------------------------------------------

    def run(
        self,
        tape: np.ndarray,
        generations: int,
        tickwise: bool = False,
    ) -> tuple[np.ndarray, EngineRunStats]:
        """Advance the tape ``generations`` steps; returns tape + stats."""
        generations = check_nonnegative(generations, "generations", integer=True)
        tape = np.asarray(tape).astype(np.uint8, copy=True)
        if tape.ndim != 1 or tape.size == 0:
            raise ValueError("tape must be a non-empty 1-D array")
        n = tape.size
        ticks = 0
        io_bits = 0
        done = 0
        while done < generations:
            span = min(self.pipeline_depth, generations - done)
            for _ in range(span):
                tape = self._stage_tickwise(tape) if tickwise else self._stage(tape)
            ticks += n + span * self.latency_ticks
            io_bits += 2 * n  # one bit in, one bit out per cell per pass
            done += span
        stats = EngineRunStats(
            name=self.name,
            site_updates=generations * n,
            ticks=ticks,
            io_bits_main=io_bits,
            storage_sites=self.pipeline_depth * self.storage_cells_per_stage,
            num_pes=self.pipeline_depth,
            num_chips=1,  # dozens of 1-D PEs fit one chip; model as one
            clock_hz=self.clock_hz,
        )
        return tape, stats
