"""The processing element's site-update rule in stream coordinates.

A pipeline stage sees the lattice as a raster (row-major) stream.  To
emit site ``(r, c)`` of generation ``t+1`` it must gather, for every
velocity channel, the *collided* value of the neighbor that sends a
particle into ``(r, c)`` — i.e. apply the data dependency
``v(a, t+1) = f(N(a), t)`` of section 3 with the neighborhood expressed
as *stream offsets*.

:class:`StreamStencil` precomputes those offsets for a model (HPP's
orthogonal stencil, FHP's parity-dependent hexagonal stencil, or a 1-D
CA), and :class:`SiteUpdateRule` bundles the collision step with the
stencil.  Both the tick-accurate and the vectorized stage
implementations consume these, so they cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.lgca.fhp import (
    FHPModel,
    _COL_OFFSET_EVEN,
    _COL_OFFSET_ODD,
    _ROW_OFFSET,
)
from repro.lgca.hpp import HPPModel, HPP_OFFSETS
from repro.util.validation import check_positive

__all__ = ["StreamStencil", "SiteUpdateRule", "PostCollideHook", "make_rule"]

#: Fault-injection hook applied to the collided value leaving a PE —
#: the point where the physical pipeline register sits, so a transient
#: upset or a stuck-at defect on the collision-rule output is modeled by
#: transforming ``(values, r, c, t) -> values`` right here.
PostCollideHook = Callable[[np.ndarray, np.ndarray, np.ndarray, int], np.ndarray]


@dataclass(frozen=True)
class StreamStencil:
    """Per-channel source offsets for a raster-streamed lattice.

    Attributes
    ----------
    rows, cols:
        Frame shape.
    row_offsets:
        ``(C,)`` source row offsets per channel: source row = r − dr.
    col_offsets_even / col_offsets_odd:
        ``(C,)`` source column offsets, selected by the *source row's*
        parity (identical arrays for orthogonal lattices).
    self_channels:
        Channels that do not move (e.g. the FHP rest particle).
    """

    rows: int
    cols: int
    row_offsets: tuple[int, ...]
    col_offsets_even: tuple[int, ...]
    col_offsets_odd: tuple[int, ...]
    self_channels: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        check_positive(self.rows, "rows", integer=True)
        check_positive(self.cols, "cols", integer=True)
        n = len(self.row_offsets)
        if not (len(self.col_offsets_even) == len(self.col_offsets_odd) == n):
            raise ValueError("offset tuples must have equal length")

    @property
    def num_moving_channels(self) -> int:
        """Channels that propagate (rest particles excluded)."""
        return len(self.row_offsets)

    def window_reach(self) -> int:
        """Largest |stream offset| any channel needs.

        ``cols + 1`` for the hexagonal/orthogonal 2-D stencils — this is
        what makes the paper's delay line ``2L + 3`` sites long
        (reach on both sides plus the center).
        """
        reach = 0
        for i in range(self.num_moving_channels):
            dr = self.row_offsets[i]
            for dc in (self.col_offsets_even[i], self.col_offsets_odd[i]):
                reach = max(reach, abs(dr * self.cols + dc))
        return reach

    def window_sites(self) -> int:
        """Delay-line length the stage needs: 2·reach + 1."""
        return 2 * self.window_reach() + 1

    def source_index(self, r: int, c: int, channel: int) -> tuple[int, int] | None:
        """Source site (row, col) feeding channel ``channel`` of (r, c).

        None when the source falls outside the frame (null boundary).
        """
        dr = self.row_offsets[channel]
        r_src = r - dr
        if not 0 <= r_src < self.rows:
            return None
        dc = self.col_offsets_odd[channel] if r_src % 2 else self.col_offsets_even[channel]
        c_src = c - dc
        if not 0 <= c_src < self.cols:
            return None
        return (r_src, c_src)

    def gather_maps(self) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized form: flat source index and validity per channel.

        Returns ``(src, valid)`` of shapes ``(C, rows*cols)``; invalid
        entries of ``src`` are clamped to 0 and masked by ``valid``.
        """
        n = self.rows * self.cols
        src = np.zeros((self.num_moving_channels, n), dtype=np.int64)
        valid = np.zeros((self.num_moving_channels, n), dtype=bool)
        r = np.arange(n) // self.cols
        c = np.arange(n) % self.cols
        for ch in range(self.num_moving_channels):
            r_src = r - self.row_offsets[ch]
            in_rows = (r_src >= 0) & (r_src < self.rows)
            parity = np.where(in_rows, r_src % 2, 0)
            dc = np.where(
                parity == 1, self.col_offsets_odd[ch], self.col_offsets_even[ch]
            )
            c_src = c - dc
            ok = in_rows & (c_src >= 0) & (c_src < self.cols)
            flat = np.where(ok, r_src * self.cols + c_src, 0)
            src[ch] = flat
            valid[ch] = ok
        return src, valid


@dataclass(frozen=True)
class SiteUpdateRule:
    """What one PE computes: collide the neighborhood, gather one site.

    Attributes
    ----------
    name:
        e.g. ``"fhp6"``.
    num_channels:
        Total state bits (moving + rest).
    stencil:
        Stream-coordinate neighborhood.
    collide:
        ``collide(states, r, c, t) -> states`` — vectorized collision
        of site values at coordinates ``(r, c)`` and generation ``t``
        (coordinates matter for FHP's alternating chirality).
    """

    name: str
    num_channels: int
    stencil: StreamStencil
    collide: Callable[[np.ndarray, np.ndarray, np.ndarray, int], np.ndarray]

    @property
    def bits_per_site(self) -> int:
        """D — site state width in bits."""
        return self.num_channels


def _fhp_stream_stencil(rows: int, cols: int, rest: bool) -> StreamStencil:
    return StreamStencil(
        rows=rows,
        cols=cols,
        row_offsets=tuple(_ROW_OFFSET),
        col_offsets_even=tuple(_COL_OFFSET_EVEN),
        col_offsets_odd=tuple(_COL_OFFSET_ODD),
        self_channels=(6,) if rest else (),
    )


def _hpp_stream_stencil(rows: int, cols: int) -> StreamStencil:
    drs = tuple(dr for dr, _ in HPP_OFFSETS)
    dcs = tuple(dc for _, dc in HPP_OFFSETS)
    return StreamStencil(
        rows=rows,
        cols=cols,
        row_offsets=drs,
        col_offsets_even=dcs,
        col_offsets_odd=dcs,
    )


def make_rule(
    model: FHPModel | HPPModel,
    post_collide: PostCollideHook | None = None,
) -> SiteUpdateRule:
    """Build the PE rule for a reference model (engines never re-derive
    physics — they reuse the verified collision tables).

    ``post_collide``, when given, transforms every collided value before
    it enters the delay line — the hook point
    :mod:`repro.resilience` uses to inject PE pipeline-register upsets
    and stuck-at collision outputs.
    """
    rule = _make_rule_clean(model)
    if post_collide is None:
        return rule
    inner = rule.collide
    hook = post_collide

    def collide_faulty(states, r, c, t):
        out = np.asarray(inner(states, r, c, t))
        return hook(out, np.asarray(r), np.asarray(c), t)

    return SiteUpdateRule(
        name=rule.name,
        num_channels=rule.num_channels,
        stencil=rule.stencil,
        collide=collide_faulty,
    )


def _make_rule_clean(model: FHPModel | HPPModel) -> SiteUpdateRule:
    if isinstance(model, FHPModel):
        if model.boundary != "null":
            raise ValueError(
                "streamed engines implement null boundaries; "
                f"model has boundary={model.boundary!r}"
            )
        if model.chirality == "random":
            raise ValueError("streamed engines require deterministic chirality")
        left, right = model.collision_tables
        chirality = model.chirality

        def collide(states, r, c, t):
            states = np.asarray(states)
            if chirality == "left":
                return left(states)
            if chirality == "right":
                return right(states)
            left_mask = ((np.asarray(r) + np.asarray(c) + t) % 2).astype(bool)
            return np.where(left_mask, left(states), right(states)).astype(states.dtype)

        return SiteUpdateRule(
            name="fhp7" if model.rest_particles else "fhp6",
            num_channels=model.num_channels,
            stencil=_fhp_stream_stencil(model.rows, model.cols, model.rest_particles),
            collide=collide,
        )
    if isinstance(model, HPPModel):
        if model.boundary != "null":
            raise ValueError(
                "streamed engines implement null boundaries; "
                f"model has boundary={model.boundary!r}"
            )
        table = model.collision_table

        def collide(states, r, c, t):  # noqa: ARG001 - uniform rule
            return table(np.asarray(states))

        return SiteUpdateRule(
            name="hpp",
            num_channels=4,
            stencil=_hpp_stream_stencil(model.rows, model.cols),
            collide=collide,
        )
    raise TypeError(f"no PE rule for model type {type(model).__name__}")
