"""The serial pipelined architecture (section 3).

One stage = one PE + one delay line.  Sites of generation ``t`` enter as
a raster stream, one per tick; the stage collides each site as it
arrives, holds collided values in a ``2L + 3``-site shift register, and
assembles the stream of generation ``t+1`` with a fixed latency of
``L + 1`` ticks.  ``k`` chained stages advance the lattice ``k``
generations per pass with *no additional main-memory traffic* — "each
succeeding PE using the data from the previous PE without the need for
further external data".

Two implementations of a stage:

* :meth:`PipelineStage.process` — vectorized (NumPy gather), used by
  benches.
* :meth:`PipelineStage.process_tickwise` — a genuine tick-by-tick
  simulation through :class:`repro.engines.shiftreg.ShiftRegister` whose
  hard capacity *proves* the window size claim.

The equivalence of the two, and of both against the reference
automaton, is experiment E11.

The stage model and the shared pass loop live in
:mod:`repro.engines.streaming_core`; this module re-exports
:class:`PipelineStage` from there and contributes only the serial
geometry (which *is* the base class's default).
"""

from __future__ import annotations

from repro.engines.streaming_core import (  # noqa: F401 — _make_engine_stepper
    PipelineStage,  # re-exported: pre-registry code imports both from here
    StreamingEngineCore,
    _make_engine_stepper,
)

__all__ = ["PipelineStage", "SerialPipelineEngine"]


class SerialPipelineEngine(StreamingEngineCore):
    """A k-stage serial pipeline over a lattice model.

    The serial machine is the base architecture: one lane, one site per
    tick, ``2L + 3`` delay sites and one PE-chip per stage — exactly the
    defaults of :class:`~repro.engines.streaming_core.StreamingEngineCore`,
    whose constructor parameters (``model``, ``pipeline_depth``,
    ``clock_hz``, ``post_collide``, ``backend``) and :meth:`run` it
    inherits unchanged.
    """

    @property
    def name(self) -> str:
        """Engine identifier used in stats and tables."""
        return f"serial-pipeline(k={self.pipeline_depth})"
