"""The serial pipelined architecture (section 3).

One stage = one PE + one delay line.  Sites of generation ``t`` enter as
a raster stream, one per tick; the stage collides each site as it
arrives, holds collided values in a ``2L + 3``-site shift register, and
assembles the stream of generation ``t+1`` with a fixed latency of
``L + 1`` ticks.  ``k`` chained stages advance the lattice ``k``
generations per pass with *no additional main-memory traffic* — "each
succeeding PE using the data from the previous PE without the need for
further external data".

Two implementations of a stage:

* :meth:`PipelineStage.process` — vectorized (NumPy gather), used by
  benches.
* :meth:`PipelineStage.process_tickwise` — a genuine tick-by-tick
  simulation through :class:`repro.engines.shiftreg.ShiftRegister` whose
  hard capacity *proves* the window size claim.

The equivalence of the two, and of both against the reference
automaton, is experiment E11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.engines.pe import PostCollideHook, SiteUpdateRule, make_rule
from repro.engines.shiftreg import ShiftRegister
from repro.engines.stats import EngineStats
from repro.lgca.automaton import SiteModel
from repro.lgca.backends import KernelStepper, get_backend, make_stepper
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["PipelineStage", "SerialPipelineEngine"]


def _make_engine_stepper(
    model: SiteModel,
    backend: str,
    post_collide: PostCollideHook | None,
) -> KernelStepper | None:
    """Resolve an engine's frame-evolution backend.

    ``None`` means "stream every site through the PE stage" (the
    reference dataflow the engines exist to model).  Any other
    registered backend evolves frames with its stepper instead — the
    evolution is identical (the backends are bit-exact by contract and
    by test), only wall-clock speed changes.  Fault-injection hooks
    mutate values *inside* the stream, so they require the reference
    dataflow.
    """
    get_backend(backend)  # uniform name validation and error message
    if backend == "reference":
        return None
    if post_collide is not None:
        raise ValueError("fault-injection hooks require backend='reference'")
    return make_stepper(model, backend=backend)


@dataclass
class PipelineStage:
    """One pipeline stage: collide + delay-line neighborhood assembly.

    ``post_collide``, when given, transforms collided values as they
    leave the PE and enter the delay line — the stage-level
    fault-injection hook (see :mod:`repro.resilience.faults`).
    ``shiftreg_transform`` is forwarded to the tick-accurate delay line
    as its per-push fault hook (:class:`~repro.engines.shiftreg.ShiftRegister`).
    """

    rule: SiteUpdateRule
    post_collide: PostCollideHook | None = None
    shiftreg_transform: "Callable[[int, int], int] | None" = None

    def __post_init__(self) -> None:
        self._stencil = self.rule.stencil
        self._src, self._valid = self._stencil.gather_maps()
        self._reach = self._stencil.window_reach()
        rows, cols = self._stencil.rows, self._stencil.cols
        n = rows * cols
        self._r = (np.arange(n) // cols).astype(np.int64)
        self._c = (np.arange(n) % cols).astype(np.int64)

    @property
    def latency_ticks(self) -> int:
        """Ticks between a site entering and its updated value leaving."""
        return self._reach

    @property
    def storage_sites(self) -> int:
        """Delay-line capacity: 2·reach + 1 = 2L + 3 for the hex stencil."""
        return self._stencil.window_sites()

    def collide_sites(
        self,
        values: np.ndarray,
        r: np.ndarray,
        c: np.ndarray,
        generation: int,
    ) -> np.ndarray:
        """Collide site values and apply the stage's fault hook (if any)."""
        collided = np.asarray(self.rule.collide(values, r, c, generation))
        if self.post_collide is not None:
            collided = np.asarray(self.post_collide(collided, r, c, generation))
        return collided

    def process(self, stream: np.ndarray, generation: int) -> np.ndarray:
        """Vectorized stage: one whole frame stream -> next generation."""
        stream = self._check_stream(stream)
        collided = self.collide_sites(stream, self._r, self._c, generation)
        out = np.zeros_like(stream)
        for ch in range(self._stencil.num_moving_channels):
            bit = (collided[self._src[ch]] >> ch) & 1
            out |= (bit & self._valid[ch]).astype(stream.dtype) << stream.dtype.type(ch)
        for ch in self._stencil.self_channels:
            out |= collided & stream.dtype.type(1 << ch)
        return out

    def process_tickwise(
        self,
        stream: np.ndarray,
        generation: int,
        capacity_override: int | None = None,
    ) -> np.ndarray:
        """Tick-accurate stage through a hard-capacity shift register.

        Functionally identical to :meth:`process`; raises
        :class:`repro.engines.shiftreg.WindowOverrunError` if the stencil
        ever needs more than the ``2L + 3`` window the paper budgets.
        ``capacity_override`` shrinks (or grows) the register — tests
        use it to show the window is *necessary*, not merely sufficient:
        one cell less and the stage provably cannot assemble its
        neighborhoods.
        """
        stream = self._check_stream(stream)
        n = stream.size
        cols = self._stencil.cols
        reach = self._reach
        capacity = (
            capacity_override
            if capacity_override is not None
            else self._stencil.window_sites()
        )
        line = ShiftRegister(capacity=capacity, push_transform=self.shiftreg_transform)
        out = np.zeros_like(stream)
        total_ticks = n + reach
        for tick in range(total_ticks):
            if tick < n:
                r, c = divmod(tick, cols)
                collided = int(
                    self.collide_sites(
                        np.array([stream[tick]]),
                        np.array([r]),
                        np.array([c]),
                        generation,
                    )[0]
                )
                line.push(collided)
            else:
                line.push(0)  # drain: the hardware clocks zeros through
            s_out = tick - reach
            if 0 <= s_out < n:
                r, c = divmod(s_out, cols)
                value = 0
                for ch in range(self._stencil.num_moving_channels):
                    src = self._stencil.source_index(r, c, ch)
                    if src is None:
                        continue
                    flat = src[0] * cols + src[1]
                    age = tick - flat  # newest push has flat index == tick
                    if (line.tap(age) >> ch) & 1:
                        value |= 1 << ch
                for ch in self._stencil.self_channels:
                    age = tick - s_out
                    if (line.tap(age) >> ch) & 1:
                        value |= 1 << ch
                out[s_out] = value
        return out

    def _check_stream(self, stream: np.ndarray) -> np.ndarray:
        stream = np.asarray(stream)
        expected = self._stencil.rows * self._stencil.cols
        if stream.shape != (expected,):
            raise ValueError(
                f"stream has shape {stream.shape}, expected ({expected},)"
            )
        return stream


class SerialPipelineEngine:
    """A k-stage serial pipeline over a lattice model.

    Parameters
    ----------
    model:
        A reference model with ``boundary="null"`` and deterministic
        chirality (the engine reuses its verified collision tables).
    pipeline_depth:
        k — stages in series; each pass advances k generations.
    clock_hz:
        Major cycle rate for the stats.
    post_collide:
        Optional fault-injection hook applied at every PE output
        (see :class:`PipelineStage`).
    backend:
        Kernel backend evolving the frames (see
        :mod:`repro.lgca.backends`).  ``"reference"`` streams every site
        through the PE stage; ``"bitplane"`` computes the (identical)
        evolution with the multi-spin coded kernels — much faster for
        large frames.  Stats accounting is unchanged: it models the
        *hardware*, which is the same machine either way.  Fault hooks
        and tick-accurate simulation require the reference backend.
    """

    def __init__(
        self,
        model: SiteModel,
        pipeline_depth: int = 1,
        clock_hz: float = 10e6,
        post_collide: PostCollideHook | None = None,
        backend: str = "reference",
    ):
        self.model = model
        self.pipeline_depth = check_positive(pipeline_depth, "pipeline_depth", integer=True)
        self.clock_hz = check_positive(clock_hz, "clock_hz")
        self.rule = make_rule(model)
        self.stage = PipelineStage(self.rule, post_collide=post_collide)
        self.backend = backend
        self._stepper = _make_engine_stepper(model, backend, post_collide)

    @property
    def name(self) -> str:
        """Engine identifier used in stats and tables."""
        return f"serial-pipeline(k={self.pipeline_depth})"

    @property
    def num_sites(self) -> int:
        """Total lattice sites per frame."""
        return self.model.rows * self.model.cols

    def _frame_to_stream(self, frame: np.ndarray) -> np.ndarray:
        frame = self.model.check_state(frame)
        return frame.ravel().copy()

    def _stream_to_frame(self, stream: np.ndarray) -> np.ndarray:
        return stream.reshape(self.model.rows, self.model.cols)

    def run(
        self,
        frame: np.ndarray,
        generations: int,
        start_time: int = 0,
        tickwise: bool = False,
    ) -> tuple[np.ndarray, EngineStats]:
        """Advance ``generations`` (a multiple passes if > k).

        Returns the final frame and the run's :class:`EngineStats`.
        """
        generations = check_nonnegative(generations, "generations", integer=True)
        if tickwise and self._stepper is not None:
            raise ValueError("tickwise simulation requires backend='reference'")
        stream = self._frame_to_stream(frame)
        n = self.num_sites
        d = self.model.bits_per_site
        ticks = 0
        io_bits = 0
        done = 0
        t = start_time
        while done < generations:
            span = min(self.pipeline_depth, generations - done)
            if self._stepper is not None:
                stream = self._stepper.run(
                    self._stream_to_frame(stream), span, t
                ).ravel()
                t += span
            else:
                for _ in range(span):
                    if tickwise:
                        stream = self.stage.process_tickwise(stream, t)
                    else:
                        stream = self.stage.process(stream, t)
                    t += 1
            # One pass: n sites streamed through `span` stages back to back.
            ticks += n + span * self.stage.latency_ticks
            io_bits += 2 * d * n  # read every site once, write every site once
            done += span
        if self._stepper is not None and generations > 0:
            stream = stream.copy()  # detach from the stepper's internal buffer
        stats = EngineStats(
            name=self.name,
            site_updates=generations * n,
            ticks=ticks,
            io_bits_main=io_bits,
            storage_sites=self.pipeline_depth * self.stage.storage_sites,
            num_pes=self.pipeline_depth,
            num_chips=self.pipeline_depth,
            clock_hz=self.clock_hz,
        )
        return self._stream_to_frame(stream), stats
