"""Streaming (prism-array) lattice updating.

Section 3, discussing the fixed-span problem: "one can actually process
a *prism* array, finite in all but one dimension" — a lattice of fixed
width L and unbounded length, flowing through the engine row by row.
That is precisely what a fixed-L pipeline stage is good for, and this
module realizes it at the software level: a generator-style updater
that consumes rows of generation t and emits rows of generation t+1
with one row of latency, holding only a **three-row window** regardless
of how many rows ever flow through.

This is the row-granular counterpart of the site-granular tick
simulation: it proves the O(L) memory claim at a different granularity
and gives examples/users an updater for lattices too long to
materialize.

Boundary semantics match the engines: null boundaries on the left/right
edges; the first and last rows of the stream see null above/below.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.engines.pe import PostCollideHook, make_rule
from repro.lgca.automaton import SiteModel
from repro.util.errors import ConfigError
from repro.util.validation import check_positive

__all__ = ["StreamingRowUpdater", "stream_rows"]


class StreamingRowUpdater:
    """Advance an unbounded row stream one generation with 3 rows of memory.

    Parameters
    ----------
    model:
        A reference model (null boundary, deterministic chirality) whose
        ``rows`` attribute is ignored — the stream may be any length;
        ``cols`` fixes the prism width.
    start_time:
        Generation index (FHP chirality needs absolute row/time parity,
        so the updater also tracks the absolute row index).

    Usage::

        updater = StreamingRowUpdater(model)
        for out_row in updater.feed(rows_iterable):
            ...
    """

    def __init__(
        self,
        model: SiteModel,
        start_time: int = 0,
        post_collide: PostCollideHook | None = None,
    ):
        self.model = model
        self.time = start_time
        self.rule = make_rule(model, post_collide=post_collide)
        self._stencil = self.rule.stencil
        self.cols = model.cols

    @property
    def window_rows(self) -> int:
        """Rows resident at any moment: exactly 3 (the hex stencil's
        vertical reach of ±1, the paper's two-lines-plus-window in row
        granularity)."""
        return 3

    def _collide_row(self, row: np.ndarray, row_index: int) -> np.ndarray:
        r = np.full(self.cols, row_index, dtype=np.int64)
        c = np.arange(self.cols, dtype=np.int64)
        return np.asarray(self.rule.collide(row, r, c, self.time))

    def _emit(
        self,
        above: np.ndarray | None,
        center: np.ndarray,
        below: np.ndarray | None,
        row_index: int,
    ) -> np.ndarray:
        """Assemble the updated ``row_index`` from collided neighbors."""
        out = np.zeros(self.cols, dtype=center.dtype)
        stencil = self._stencil
        # source row = row_index - dr: dr = +1 reads the row above,
        # dr = -1 the row below.
        rows_by_offset = {1: above, 0: center, -1: below}
        for ch in range(stencil.num_moving_channels):
            dr = stencil.row_offsets[ch]
            src_row = rows_by_offset.get(dr)
            if src_row is None:
                continue
            src_parity = (row_index - dr) % 2
            dc = (
                stencil.col_offsets_odd[ch]
                if src_parity
                else stencil.col_offsets_even[ch]
            )
            c = np.arange(self.cols)
            c_src = c - dc
            ok = (c_src >= 0) & (c_src < self.cols)
            bit = np.zeros(self.cols, dtype=out.dtype)
            bit[ok] = (src_row[np.clip(c_src, 0, self.cols - 1)][ok] >> ch) & 1
            out |= bit << out.dtype.type(ch)
        for ch in stencil.self_channels:
            out |= center & out.dtype.type(1 << ch)
        return out

    def feed(self, rows: Iterable[np.ndarray]) -> Iterator[np.ndarray]:
        """Consume generation-t rows, yield generation-(t+1) rows.

        Only three collided rows are ever held.  The number of yielded
        rows equals the number fed (null boundary above the first and
        below the last).

        Raises
        ------
        repro.util.errors.ConfigError
            If an incoming row does not match the model's prism width
            ``model.cols``, is not of integer dtype, or carries values
            outside the model's ``num_channels``-bit state space —
            caught *here*, at the host interface, instead of surfacing
            as an opaque numpy broadcasting failure deep in the stencil
            gather.
        """
        above: np.ndarray | None = None
        center: np.ndarray | None = None
        num_channels = self.model.num_channels
        row_index = 0
        for raw in rows:
            raw = self._check_row(np.asarray(raw), row_index, num_channels)
            below = self._collide_row(raw.astype(np.uint8, copy=False), row_index)
            if center is not None:
                yield self._emit(above, center, below, row_index - 1)
            above, center = center, below
            row_index += 1
        if center is not None:
            yield self._emit(above, center, None, row_index - 1)
        self.time += 1

    def _check_row(
        self, raw: np.ndarray, row_index: int, num_channels: int
    ) -> np.ndarray:
        if raw.shape != (self.cols,):
            raise ConfigError(
                f"stream row {row_index} has shape {raw.shape}, expected "
                f"({self.cols},) — the prism width is fixed by model.cols"
            )
        if raw.dtype.kind not in "ui":
            raise ConfigError(
                f"stream row {row_index} has dtype {raw.dtype}, expected an "
                "integer site-state dtype"
            )
        if raw.size and int(raw.max()) >= (1 << num_channels):
            raise ConfigError(
                f"stream row {row_index} carries value {int(raw.max())}, "
                f"outside the {num_channels}-bit site state space"
            )
        return raw


def stream_rows(
    model: SiteModel,
    rows: Iterable[np.ndarray],
    generations: int = 1,
    start_time: int = 0,
) -> Iterator[np.ndarray]:
    """Chain ``generations`` streaming updaters (a software pipeline).

    Each generation adds one updater stage — and one row of latency —
    exactly like chaining chips; total resident memory is
    ``3 · generations`` rows no matter how long the prism is.
    """
    check_positive(generations, "generations", integer=True)
    stream: Iterable[np.ndarray] = rows
    for g in range(generations):
        stream = StreamingRowUpdater(model, start_time=start_time + g).feed(stream)
    return iter(stream)
