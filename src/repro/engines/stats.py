"""Cycle, I/O, and throughput accounting for engine runs.

Every engine returns an :class:`EngineRunStats` alongside its result
frame (produced by the shared
:class:`~repro.engines.streaming_core.StreamingEngineCore` run loop).
The fields follow the paper's cost model: work is site updates, time is
major clock ticks, communication is bits to/from main memory (and for
the SPA, bits across slice boundaries), and silicon is shift-register
sites plus PEs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_nonnegative, check_positive

__all__ = ["EngineRunStats", "ThroughputReport"]


@dataclass
class EngineRunStats:
    """Aggregate counters for one engine run.

    Attributes
    ----------
    name:
        Engine identifier.
    site_updates:
        Total site updates retired (generations × sites).
    ticks:
        Major clock ticks elapsed, including pipeline fill/drain.
    io_bits_main:
        Bits moved to/from main memory.
    io_bits_side:
        Bits moved across slice boundaries (SPA only).
    storage_sites:
        Total delay-line site values across all stages (area ∝ this · β).
    num_pes:
        Total processing elements.
    num_chips:
        Chips the configuration occupies.
    clock_hz:
        Major cycle rate F.
    """

    name: str
    site_updates: int = 0
    ticks: int = 0
    io_bits_main: int = 0
    io_bits_side: int = 0
    storage_sites: int = 0
    num_pes: int = 0
    num_chips: int = 0
    clock_hz: float = 10e6

    def __post_init__(self) -> None:
        check_positive(self.clock_hz, "clock_hz")
        for attr in (
            "site_updates",
            "ticks",
            "io_bits_main",
            "io_bits_side",
            "storage_sites",
            "num_pes",
            "num_chips",
        ):
            check_nonnegative(getattr(self, attr), attr, integer=True)

    # -- derived rates ----------------------------------------------------------

    @property
    def seconds(self) -> float:
        """Wall time at the configured clock."""
        return self.ticks / self.clock_hz

    @property
    def updates_per_second(self) -> float:
        """Achieved R (0 when nothing ran)."""
        return self.site_updates / self.seconds if self.ticks else 0.0

    @property
    def updates_per_tick(self) -> float:
        """Average site updates retired per clock tick."""
        return self.site_updates / self.ticks if self.ticks else 0.0

    @property
    def main_bandwidth_bits_per_tick(self) -> float:
        """Average main-memory traffic per tick."""
        return self.io_bits_main / self.ticks if self.ticks else 0.0

    @property
    def main_bandwidth_bytes_per_second(self) -> float:
        """Main-memory traffic at the configured clock, in bytes/s."""
        return self.main_bandwidth_bits_per_tick * self.clock_hz / 8.0

    @property
    def io_bits_per_update(self) -> float:
        """Main-memory bits per site update — the pebbling quantity."""
        return self.io_bits_main / self.site_updates if self.site_updates else 0.0

    @property
    def pe_utilization(self) -> float:
        """Fraction of PE-ticks that retired an update."""
        denom = self.num_pes * self.ticks
        return self.site_updates / denom if denom else 0.0

    def to_dict(self) -> dict[str, object]:
        """Counters plus derived rates as a JSON-ready mapping."""
        return {
            "name": self.name,
            "site_updates": self.site_updates,
            "ticks": self.ticks,
            "io_bits_main": self.io_bits_main,
            "io_bits_side": self.io_bits_side,
            "storage_sites": self.storage_sites,
            "num_pes": self.num_pes,
            "num_chips": self.num_chips,
            "clock_hz": self.clock_hz,
            "updates_per_tick": self.updates_per_tick,
            "updates_per_second": self.updates_per_second,
            "main_bandwidth_bits_per_tick": self.main_bandwidth_bits_per_tick,
            "pe_utilization": self.pe_utilization,
        }

    def merge(self, other: "EngineRunStats") -> "EngineRunStats":
        """Accumulate a subsequent run (e.g. another pass) into a total."""
        if other.clock_hz != self.clock_hz:
            raise ValueError("cannot merge stats at different clock rates")
        return EngineRunStats(
            name=self.name,
            site_updates=self.site_updates + other.site_updates,
            ticks=self.ticks + other.ticks,
            io_bits_main=self.io_bits_main + other.io_bits_main,
            io_bits_side=self.io_bits_side + other.io_bits_side,
            storage_sites=max(self.storage_sites, other.storage_sites),
            num_pes=max(self.num_pes, other.num_pes),
            num_chips=max(self.num_chips, other.num_chips),
            clock_hz=self.clock_hz,
        )


@dataclass(frozen=True)
class ThroughputReport:
    """Peak vs realized throughput of a configuration (bench E7/E11 rows)."""

    name: str
    peak_updates_per_second: float
    realized_updates_per_second: float
    bandwidth_demand_bytes_per_second: float
    host_bandwidth_bytes_per_second: float

    def __post_init__(self) -> None:
        check_positive(self.peak_updates_per_second, "peak_updates_per_second")
        check_nonnegative(
            self.realized_updates_per_second, "realized_updates_per_second"
        )
        check_positive(
            self.bandwidth_demand_bytes_per_second, "bandwidth_demand_bytes_per_second"
        )
        check_positive(
            self.host_bandwidth_bytes_per_second, "host_bandwidth_bytes_per_second"
        )

    @property
    def derating(self) -> float:
        """realized / peak ∈ (0, 1]."""
        return self.realized_updates_per_second / self.peak_updates_per_second
