"""Main-memory and host-interface bandwidth models.

The design analysis of section 6 "assumes that a memory system capable
of providing full bandwidth to the processor system is available" — a
footnoted "very important assumption" that section 8 then punctures: the
prototype's workstation host cannot supply 40 MB/s, derating 20 M
updates/s to ~1 M.  These classes carry both sides:

* :class:`MainMemory` — the frame store with exact bit accounting and an
  optional bits-per-tick ceiling (the B of the pebbling bound).
* :class:`HostInterface` — a sustained-bytes-per-second host channel
  that stretches a run's wall clock when the engine demands more than
  the host delivers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.engines.stats import EngineRunStats, ThroughputReport
from repro.util.validation import check_positive

__all__ = ["MainMemory", "HostInterface"]


@dataclass
class MainMemory:
    """A bandwidth-limited frame store.

    Parameters
    ----------
    bits_per_site:
        D — width of one site transfer.
    bandwidth_bits_per_tick:
        B — ceiling on bits moved per major tick; ``None`` = the
        section 6 full-bandwidth assumption.
    read_transform:
        Optional fault hook applied to the stored words on every
        :meth:`load_frame` — DRAM single-event upsets corrupt data *at
        rest*, so the corruption surfaces when the frame is read back
        (:mod:`repro.resilience` supplies seeded instances).
    """

    bits_per_site: int = 8
    bandwidth_bits_per_tick: float | None = None
    read_transform: Callable[[np.ndarray], np.ndarray] | None = None
    bits_read: int = field(default=0, init=False)
    bits_written: int = field(default=0, init=False)
    _frame: np.ndarray | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive(self.bits_per_site, "bits_per_site", integer=True)
        if self.bandwidth_bits_per_tick is not None:
            check_positive(self.bandwidth_bits_per_tick, "bandwidth_bits_per_tick")

    @property
    def bits_total(self) -> int:
        """Total traffic accounted so far (read + written)."""
        return self.bits_read + self.bits_written

    def read_sites(self, count: int) -> None:
        """Account a read of ``count`` site values."""
        if count < 0:
            raise ValueError(f"count={count} must be non-negative")
        self.bits_read += count * self.bits_per_site

    def write_sites(self, count: int) -> None:
        """Account a write of ``count`` site values."""
        if count < 0:
            raise ValueError(f"count={count} must be non-negative")
        self.bits_written += count * self.bits_per_site

    def store_frame(self, words: np.ndarray) -> None:
        """Write a frame of site words into the store (accounted)."""
        words = np.asarray(words)
        self._frame = words.copy()
        self.write_sites(words.size)

    def load_frame(self) -> np.ndarray:
        """Read the stored frame back (accounted), through the fault hook.

        Raises
        ------
        LookupError
            If no frame has been stored.
        """
        if self._frame is None:
            raise LookupError("no frame stored in main memory")
        words = self._frame.copy()
        self.read_sites(words.size)
        if self.read_transform is not None:
            words = np.asarray(self.read_transform(words))
            self._frame = words.copy()
        return words

    def min_ticks_for_traffic(self, bits: int | None = None) -> int:
        """Fewest ticks the memory needs to move ``bits`` (default: all
        accounted traffic).  Infinite bandwidth moves anything in 0."""
        if bits is None:
            bits = self.bits_total
        if bits < 0:
            raise ValueError(f"bits={bits} must be non-negative")
        if self.bandwidth_bits_per_tick is None:
            return 0
        return math.ceil(bits / self.bandwidth_bits_per_tick)

    def stretch_ticks(self, compute_ticks: int, bits: int | None = None) -> int:
        """Wall ticks of a run: max(compute, memory-transfer) ticks.

        Compute and transfer overlap (the engines stream), so the run
        takes whichever is longer — the memory wall in one line.
        """
        if compute_ticks < 0:
            raise ValueError(f"compute_ticks={compute_ticks} must be non-negative")
        return max(compute_ticks, self.min_ticks_for_traffic(bits))

    def reset(self) -> None:
        """Zero the traffic counters."""
        self.bits_read = 0
        self.bits_written = 0


@dataclass(frozen=True)
class HostInterface:
    """A sustained host channel (section 8's workstation bottleneck)."""

    bandwidth_bytes_per_second: float

    def __post_init__(self) -> None:
        check_positive(self.bandwidth_bytes_per_second, "bandwidth_bytes_per_second")

    def realized(self, stats: EngineRunStats) -> ThroughputReport:
        """Derate an engine run by this host's sustained bandwidth.

        The engine's compute time is ``stats.seconds``; moving its main-
        memory traffic through the host takes ``bits / (8·H)`` seconds;
        the realized rate divides updates by the larger of the two.
        """
        transfer_seconds = stats.io_bits_main / (
            8.0 * self.bandwidth_bytes_per_second
        )
        wall = max(stats.seconds, transfer_seconds)
        realized = stats.site_updates / wall if wall > 0 else 0.0
        return ThroughputReport(
            name=stats.name,
            peak_updates_per_second=max(stats.updates_per_second, 1e-300),
            realized_updates_per_second=realized,
            bandwidth_demand_bytes_per_second=max(
                stats.main_bandwidth_bytes_per_second, 1e-300
            ),
            host_bandwidth_bytes_per_second=self.bandwidth_bytes_per_second,
        )
