"""WSA-E engine simulator: the off-chip-delay variant of section 6.3.

Functionally a one-lane serial pipeline; architecturally different in
where the delay line lives.  The stage keeps only the 7-cell hexagonal
window on the processor chip; the two long runs between window rows
(≈ 2L + 3 cells total minus the on-chip taps) live in external shift
registers reached through dedicated pins — which is why the pin budget
allows exactly one lane (6D = 48 of 72 pins) and why the lattice size is
no longer bounded by the chip area.

The simulator reuses the verified stage computation and accounts the
WSA-E-specific quantities: on-chip vs off-chip storage, pin usage split
between the host stream and the delay break-outs, and the per-stage
area at a given commercial-memory density.
"""

from __future__ import annotations

import numpy as np

from repro.engines.pe import PostCollideHook, make_rule
from repro.engines.pipeline import PipelineStage
from repro.engines.stats import EngineStats
from repro.lgca.automaton import SiteModel
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["ExtensibleSerialEngine"]

#: hexagonal window cells kept on-chip per stage
_ON_CHIP_WINDOW = 10


class ExtensibleSerialEngine:
    """A k-stage WSA-E pipeline (one lane per stage, off-chip delay).

    Parameters
    ----------
    model:
        Reference model (null boundary, deterministic chirality).
    pipeline_depth:
        k — stages (processor chips) in series.
    commercial_density:
        κ — off-chip memory density advantage (for area reports).
    clock_hz:
        Major cycle rate.
    post_collide:
        Optional fault-injection hook applied at every PE output.
    """

    def __init__(
        self,
        model: SiteModel,
        pipeline_depth: int = 1,
        commercial_density: float = 8.0,
        clock_hz: float = 10e6,
        post_collide: PostCollideHook | None = None,
    ):
        self.model = model
        self.pipeline_depth = check_positive(
            pipeline_depth, "pipeline_depth", integer=True
        )
        self.commercial_density = check_positive(
            commercial_density, "commercial_density"
        )
        self.clock_hz = check_positive(clock_hz, "clock_hz")
        self.rule = make_rule(model)
        self.stage = PipelineStage(self.rule, post_collide=post_collide)

    @property
    def name(self) -> str:
        """Engine identifier used in stats and tables."""
        return f"wsa-e(k={self.pipeline_depth})"

    @property
    def num_sites(self) -> int:
        """Total lattice sites streamed per pass."""
        return self.model.rows * self.model.cols

    # -- WSA-E architecture accounting ---------------------------------------------

    @property
    def delay_sites_per_stage(self) -> int:
        """Total delay per stage (the section 6.3 '2L + 10')."""
        return 2 * self.model.cols + _ON_CHIP_WINDOW

    @property
    def on_chip_sites_per_stage(self) -> int:
        """Window cells kept on the processor chip (the '10')."""
        return _ON_CHIP_WINDOW

    @property
    def off_chip_sites_per_stage(self) -> int:
        """Delay cells pushed out to commercial memory (2L)."""
        return self.delay_sites_per_stage - _ON_CHIP_WINDOW

    def pins_used(self, bits_per_site: int | None = None) -> int:
        """2D stream + 2 off-chip break-outs at 2D each = 6D."""
        d = bits_per_site if bits_per_site is not None else self.model.bits_per_site
        return 6 * d

    def stage_area(self, site_area: float, chip_area: float = 1.0) -> float:
        """Normalized silicon per stage: the processor chip plus the
        off-chip delay at commercial density."""
        off_chip = self.off_chip_sites_per_stage * site_area / self.commercial_density
        return chip_area + off_chip

    # -- evolution -----------------------------------------------------------------------

    def run(
        self,
        frame: np.ndarray,
        generations: int,
        start_time: int = 0,
    ) -> tuple[np.ndarray, EngineStats]:
        """Advance ``generations`` steps; returns (final frame, stats)."""
        generations = check_nonnegative(generations, "generations", integer=True)
        frame = self.model.check_state(frame)
        stream = frame.ravel().copy()
        n = self.num_sites
        d = self.model.bits_per_site
        ticks = 0
        io_bits = 0
        done = 0
        t = start_time
        while done < generations:
            span = min(self.pipeline_depth, generations - done)
            for _ in range(span):
                stream = self.stage.process(stream, t)
                t += 1
            ticks += n + span * self.stage.latency_ticks
            io_bits += 2 * d * n
            done += span
        stats = EngineStats(
            name=self.name,
            site_updates=generations * n,
            ticks=ticks,
            io_bits_main=io_bits,
            storage_sites=self.pipeline_depth * self.delay_sites_per_stage,
            num_pes=self.pipeline_depth,
            num_chips=self.pipeline_depth,
            clock_hz=self.clock_hz,
        )
        return stream.reshape(self.model.rows, self.model.cols), stats
