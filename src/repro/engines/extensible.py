"""WSA-E engine simulator: the off-chip-delay variant of section 6.3.

Functionally a one-lane serial pipeline; architecturally different in
where the delay line lives.  The stage keeps only the 7-cell hexagonal
window on the processor chip; the two long runs between window rows
(≈ 2L + 3 cells total minus the on-chip taps) live in external shift
registers reached through dedicated pins — which is why the pin budget
allows exactly one lane (6D = 48 of 72 pins) and why the lattice size is
no longer bounded by the chip area.

The simulator inherits the serial dataflow — including kernel backends,
fault-injection hooks, and tick-accurate simulation — from
:class:`~repro.engines.streaming_core.StreamingEngineCore` and accounts
the WSA-E-specific quantities: on-chip vs off-chip storage, pin usage
split between the host stream and the delay break-outs, and the
per-stage area at a given commercial-memory density.
"""

from __future__ import annotations

from repro.engines.pe import PostCollideHook
from repro.engines.streaming_core import StreamingEngineCore
from repro.lgca.automaton import SiteModel
from repro.telemetry import Recorder
from repro.util.validation import check_positive

__all__ = ["ExtensibleSerialEngine"]

#: hexagonal window cells kept on-chip per stage
_ON_CHIP_WINDOW = 10


class ExtensibleSerialEngine(StreamingEngineCore):
    """A k-stage WSA-E pipeline (one lane per stage, off-chip delay).

    Parameters
    ----------
    model:
        Reference model (null boundary, deterministic chirality).
    pipeline_depth:
        k — stages (processor chips) in series.
    commercial_density:
        κ — off-chip memory density advantage (for area reports).
    clock_hz:
        Major cycle rate.
    post_collide:
        Optional fault-injection hook applied at every PE output.
    backend:
        Kernel backend evolving the frames (``"reference"`` streams
        through the PE stage; ``"bitplane"`` computes the identical
        evolution with multi-spin coded kernels).  Stats are unchanged;
        fault hooks and tickwise simulation require ``"reference"``.
    """

    def __init__(
        self,
        model: SiteModel,
        pipeline_depth: int = 1,
        commercial_density: float = 8.0,
        clock_hz: float = 10e6,
        post_collide: PostCollideHook | None = None,
        backend: str = "reference",
        workers: int | str | None = None,
        recorder: "Recorder | None" = None,
    ):
        self.commercial_density = check_positive(
            commercial_density, "commercial_density"
        )
        super().__init__(
            model,
            pipeline_depth=pipeline_depth,
            clock_hz=clock_hz,
            post_collide=post_collide,
            backend=backend,
            workers=workers,
            recorder=recorder,
        )

    @property
    def name(self) -> str:
        """Engine identifier used in stats and tables."""
        return f"wsa-e(k={self.pipeline_depth})"

    # -- WSA-E architecture accounting ---------------------------------------------

    @property
    def delay_sites_per_stage(self) -> int:
        """Total delay per stage (the section 6.3 '2L + 10')."""
        return 2 * self.model.cols + _ON_CHIP_WINDOW

    @property
    def on_chip_sites_per_stage(self) -> int:
        """Window cells kept on the processor chip (the '10')."""
        return _ON_CHIP_WINDOW

    @property
    def off_chip_sites_per_stage(self) -> int:
        """Delay cells pushed out to commercial memory (2L)."""
        return self.delay_sites_per_stage - _ON_CHIP_WINDOW

    @property
    def storage_sites(self) -> int:
        """Delay cells across all stages, on-chip window plus off-chip runs."""
        return self.pipeline_depth * self.delay_sites_per_stage

    def pins_used(self, bits_per_site: int | None = None) -> int:
        """2D stream + 2 off-chip break-outs at 2D each = 6D."""
        d = bits_per_site if bits_per_site is not None else self.model.bits_per_site
        return 6 * d

    def stage_area(self, site_area: float, chip_area: float = 1.0) -> float:
        """Normalized silicon per stage: the processor chip plus the
        off-chip delay at commercial density."""
        off_chip = self.off_chip_sites_per_stage * site_area / self.commercial_density
        return chip_area + off_chip
