"""The wide-serial architecture engine (section 4).

A WSA stage is a serial pipeline stage with ``P`` lanes: every tick it
accepts ``P`` consecutive stream sites, updates ``P`` sites, and emits
``P`` sites to the next stage.  The delay line grows only by the
incremental window ("the most attractive feature of this scheme is that
performance is increased, but at a cost of only the incremental amount
of memory needed to store the extra sites"), while the stream pins and
main-memory bandwidth grow linearly in P — the trade the design model in
:mod:`repro.core.wsa` quantifies.

Functionally a WSA stage computes exactly what the serial stage
computes; the lane structure changes *timing and bandwidth*, which is
what this engine accounts for (and the integration tests check the
functional part against the reference automaton).  The pass loop and
all cross-cutting plumbing come from
:class:`~repro.engines.streaming_core.StreamingEngineCore`; this module
adds only the lane geometry and the lane-accurate tickwise stage.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engines.pe import PostCollideHook
from repro.engines.shiftreg import ShiftRegister
from repro.engines.streaming_core import StreamingEngineCore
from repro.lgca.automaton import SiteModel
from repro.telemetry import Recorder
from repro.util.hotpath import hot_path
from repro.util.validation import check_positive

__all__ = ["WideSerialEngine"]


class WideSerialEngine(StreamingEngineCore):
    """A k-stage, P-lane wide-serial pipeline.

    Parameters
    ----------
    model:
        Reference model (null boundary, deterministic chirality).
    lanes:
        P — site updates per stage per tick.
    pipeline_depth:
        k — stages in series (one chip per stage).
    clock_hz:
        Major cycle rate.
    post_collide:
        Optional fault-injection hook applied at every PE output.
    backend:
        Kernel backend evolving the frames (``"reference"`` streams
        through the PE stage; ``"bitplane"`` computes the identical
        evolution with multi-spin coded kernels).  Stats are unchanged;
        fault hooks and tickwise simulation require ``"reference"``.
    """

    def __init__(
        self,
        model: SiteModel,
        lanes: int = 2,
        pipeline_depth: int = 1,
        clock_hz: float = 10e6,
        post_collide: PostCollideHook | None = None,
        backend: str = "reference",
        workers: int | str | None = None,
        recorder: "Recorder | None" = None,
    ):
        self.lanes = check_positive(lanes, "lanes", integer=True)
        super().__init__(
            model,
            pipeline_depth=pipeline_depth,
            clock_hz=clock_hz,
            post_collide=post_collide,
            backend=backend,
            workers=workers,
            recorder=recorder,
        )

    @property
    def name(self) -> str:
        """Engine identifier used in stats and tables."""
        return f"wide-serial(P={self.lanes},k={self.pipeline_depth})"

    @property
    def storage_sites_per_stage(self) -> int:
        """The paper's 2L + 7P + 3 budget.

        The serial window is 2L + 3; each extra lane adds 7 cells (its
        own hexagonal window taps, one column further along the stream).
        """
        return self.stage.storage_sites + 7 * (self.lanes - 1)

    @property
    def storage_sites(self) -> int:
        """Total delay-line site values across all stages."""
        return self.pipeline_depth * self.storage_sites_per_stage

    @property
    def num_pes(self) -> int:
        """P lanes on each of the k stage chips."""
        return self.pipeline_depth * self.lanes

    def ticks_per_pass(self, span: int) -> int:
        """Stream the frame through ``span`` stages at P sites per tick."""
        n_ticks_stream = math.ceil(self.num_sites / self.lanes)
        lane_latency = math.ceil(self.stage.latency_ticks / self.lanes)
        return n_ticks_stream + span * lane_latency

    @hot_path
    def _advance_stream(
        self, stream: np.ndarray, generation: int, tickwise: bool
    ) -> np.ndarray:
        """One stage; the tickwise path is the lane-accurate simulation."""
        if tickwise:
            # Lane-accurate diagnostic path, not a streaming rate model.
            return self.process_stage_tickwise(stream, generation)  # repro: alloc-ok
        return self.stage.process(stream, generation)

    def process_stage_tickwise(
        self, stream: np.ndarray, generation: int
    ) -> np.ndarray:
        """Lane-accurate tick simulation of one WSA stage.

        Per tick, ``P`` consecutive collided sites enter the shared
        delay line and ``P`` lanes each assemble one output site from
        their taps.  The hard register capacity is ``2L + 3 + (P − 1)``
        — the serial window plus one cell per extra lane — proving by
        construction that the *cells* needed grow only by P − 1.  (The
        paper's area term ``2L + 7P + 3`` is larger because its layout
        replicates the 7 window taps into per-PE latches: a shift-
        register cell has one read port, so P lanes reading 7 taps each
        buy their bandwidth with copies, not extra delay.)
        """
        stream = np.asarray(stream)
        n = stream.size
        stencil = self.stage.rule.stencil
        cols = stencil.cols
        reach = stencil.window_reach()
        lanes = self.lanes
        capacity = 2 * reach + 1 + (lanes - 1)
        line = ShiftRegister(capacity=capacity)
        out = np.zeros_like(stream)
        # per tick: push `lanes` collided inputs, emit `lanes` outputs;
        # output block at tick τ is [τP − reach, (τ+1)P − 1 − reach],
        # whose oldest source has age 2·reach + P − 1 — exactly capacity.
        total_ticks = -(-(n + reach) // lanes)
        pushed = 0
        for tick in range(total_ticks):
            for _ in range(lanes):
                if pushed < n:
                    r, c = divmod(pushed, cols)
                    collided = int(
                        self.stage.collide_sites(
                            np.array([stream[pushed]]),
                            np.array([r]),
                            np.array([c]),
                            generation,
                        )[0]
                    )
                    line.push(collided)
                else:
                    line.push(0)
                pushed += 1
            base = tick * lanes - reach
            for lane in range(lanes):
                s_out = base + lane
                if not 0 <= s_out < n:
                    continue
                r, c = divmod(s_out, cols)
                value = 0
                for ch in range(stencil.num_moving_channels):
                    src = stencil.source_index(r, c, ch)
                    if src is None:
                        continue
                    flat = src[0] * cols + src[1]
                    age = (pushed - 1) - flat
                    if (line.tap(age) >> ch) & 1:
                        value |= 1 << ch
                for ch in stencil.self_channels:
                    age = (pushed - 1) - s_out
                    if (line.tap(age) >> ch) & 1:
                        value |= 1 << ch
                out[s_out] = value
        return out
