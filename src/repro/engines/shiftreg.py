"""Shift-register delay-line storage.

"Most of the silicon area in the implementation of a serial processor is
shift register" (section 5).  :class:`ShiftRegister` models that delay
line with a *hard capacity*: the tick-accurate pipeline stage reads its
neighborhood taps out of this structure, and any access outside the
window raises :class:`WindowOverrunError` — so the integration tests
passing is a constructive proof that the paper's ``2L + 3`` window
really is sufficient for the hexagonal stencil (and ``2L + 1`` for HPP).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.util.validation import check_positive

__all__ = ["ShiftRegister", "WindowOverrunError"]


class WindowOverrunError(LookupError):
    """A tap outside the delay line's capacity was requested."""


@dataclass
class ShiftRegister:
    """A fixed-capacity serial delay line of site values.

    Values enter at position 0 and age by one position per push.  A tap
    at ``age`` reads the value pushed ``age`` pushes ago (``age = 0`` is
    the newest).  Reading an age ≥ capacity, or an age older than the
    number of pushes so far, is an overrun.

    Attributes
    ----------
    capacity:
        Number of site values the line can hold — the chip-area cost is
        ``capacity · β``.
    push_transform:
        Optional fault hook ``(value, push_index) -> value`` applied to
        every value entering the line — a transient upset in a delay
        stage is a transform of exactly one ``(value, push_index)``
        pair (:mod:`repro.resilience` supplies seeded instances).
    """

    capacity: int
    fill_value: int = 0
    push_transform: Callable[[int, int], int] | None = None
    _buffer: np.ndarray = field(init=False, repr=False)
    _head: int = field(init=False, default=0, repr=False)
    _pushes: int = field(init=False, default=0, repr=False)

    def __post_init__(self) -> None:
        self.capacity = check_positive(self.capacity, "capacity", integer=True)
        self._buffer = np.full(self.capacity, self.fill_value, dtype=np.int64)
        self._head = 0
        self._pushes = 0

    @property
    def pushes(self) -> int:
        """Total values pushed so far (the stage's input tick count)."""
        return self._pushes

    def push(self, value: int) -> None:
        """Shift the line by one, inserting ``value`` at age 0."""
        if self.push_transform is not None:
            value = self.push_transform(int(value), self._pushes)
        self._head = (self._head - 1) % self.capacity
        self._buffer[self._head] = int(value)
        self._pushes += 1

    def tap(self, age: int) -> int:
        """Read the value pushed ``age`` pushes ago.

        Raises
        ------
        WindowOverrunError
            If ``age`` is negative, at/beyond capacity, or older than
            anything pushed yet — i.e. the hardware would need a longer
            delay line than it has.
        """
        if age < 0:
            raise WindowOverrunError(f"tap age {age} is negative (future value)")
        if age >= self.capacity:
            raise WindowOverrunError(
                f"tap age {age} exceeds delay-line capacity {self.capacity}"
            )
        if age >= self._pushes:
            raise WindowOverrunError(
                f"tap age {age} older than the {self._pushes} values pushed"
            )
        return int(self._buffer[(self._head + age) % self.capacity])

    def tap_or_fill(self, age: int) -> int:
        """Like :meth:`tap` but returns the fill value for not-yet-pushed
        ages (stream warm-up), still erroring on capacity overruns."""
        if age < 0:
            raise WindowOverrunError(f"tap age {age} is negative (future value)")
        if age >= self.capacity:
            raise WindowOverrunError(
                f"tap age {age} exceeds delay-line capacity {self.capacity}"
            )
        if age >= self._pushes:
            return self.fill_value
        return int(self._buffer[(self._head + age) % self.capacity])

    def reset(self) -> None:
        """Clear the line (between frames)."""
        self._buffer.fill(self.fill_value)
        self._head = 0
        self._pushes = 0
