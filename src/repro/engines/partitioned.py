"""The Sternberg partitioned architecture engine (section 5).

The lattice is divided into adjacent, non-overlapping columnar slices of
width W; a serial pipeline is assigned to each slice, and all slices
advance in lock-step.  Sites whose neighborhoods straddle a slice
boundary are completed through a "bidirectional synchronous
communication channel between adjacent partitions" carrying E bits per
site update in each direction.

The engine computes the same evolution as the reference automaton
(checked in E11); the SPA-specific accounting it adds on top of
:class:`~repro.engines.streaming_core.StreamingEngineCore` is:

* per-PE delay storage ``2W + 9`` instead of ``2L + 3``;
* total ticks per pass ``rows · W`` instead of ``rows · L`` (the ×(L/W)
  throughput multiplier);
* main-memory streams per slice (``2D`` bits/tick each — the expensive
  data paths);
* the measured side-channel traffic per boundary, which the tests
  compare against the analytic ``2 E · rows`` bits per stage pass.

A note on timing (why the paper calls SPA "more difficult to clock"):
with all slices streaming in lock-step, a column-0 site's below-left
neighbor lives at the *end* of the left slice's next row — local stream
position ``2W − 1`` ahead — which a ``2W + 9`` delay line cannot wait
for symmetrically on both sides.  The hardware resolves it by running
the slice streams mutually skewed ("the row-staggered pattern that the
SPA scheme requires for its operation"): each slice leads its right
neighbor by enough ticks that boundary values always arrive before they
are needed on one side and are buffered in the window's spare cells on
the other.  This simulator models the *dataflow and traffic* of that
arrangement (frame-synchronous computation plus exact exchange-bit
accounting) rather than the per-tick skew itself; the skew changes
latency constants, not throughput, storage, or I/O — the quantities the
paper's analysis (and our tests) measure.  For the same reason the
engine has no tick-accurate mode (``supports_tickwise`` is False).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.engines.pe import PostCollideHook
from repro.engines.streaming_core import StreamingEngineCore
from repro.lgca.automaton import SiteModel
from repro.telemetry import Recorder
from repro.util.validation import check_positive

__all__ = ["PartitionedEngine", "SliceExchangeRecord"]


@dataclass(frozen=True)
class SliceExchangeRecord:
    """Side-channel traffic measured for one stage pass.

    Attributes
    ----------
    boundary:
        Index b of the boundary between slice b and slice b+1.
    bits_leftward:
        Bits slice b+1 sent to slice b (completing b's right-edge
        neighborhoods).
    bits_rightward:
        Bits slice b sent to slice b+1.
    """

    boundary: int
    bits_leftward: int
    bits_rightward: int

    @property
    def total_bits(self) -> int:
        """Traffic across this boundary in both directions."""
        return self.bits_leftward + self.bits_rightward


class PartitionedEngine(StreamingEngineCore):
    """A slice-partitioned pipeline machine.

    Parameters
    ----------
    model:
        Reference model (null boundary, deterministic chirality).
    slice_width:
        W — lattice columns per slice (the last slice takes the
        remainder if W does not divide the width).
    pipeline_depth:
        k — stages per slice; each pass advances k generations.
    clock_hz:
        Major cycle rate.
    post_collide:
        Optional fault-injection hook applied at every PE output.
    failed_slices:
        Slice indices whose PEs are marked dead.  Their work is remapped
        round-robin onto the surviving slices (graceful degradation):
        the evolution is unchanged, but each pass takes
        ``⌈slices / healthy⌉`` times as long and the dead PEs drop out
        of the storage/PE accounting.
    backend:
        Kernel backend evolving the frames (``"reference"`` streams
        through the PE stage; ``"bitplane"`` computes the identical
        evolution with multi-spin coded kernels).  Stats and exchange
        accounting are unchanged — they are data-independent properties
        of the machine; fault hooks require ``"reference"``.
    """

    #: the mutually skewed slice streams have no single-stream tick model
    supports_tickwise: ClassVar[bool] = False

    def __init__(
        self,
        model: SiteModel,
        slice_width: int,
        pipeline_depth: int = 1,
        clock_hz: float = 10e6,
        post_collide: PostCollideHook | None = None,
        failed_slices: tuple[int, ...] = (),
        backend: str = "reference",
        workers: int | str | None = None,
        recorder: "Recorder | None" = None,
    ):
        self.slice_width = check_positive(slice_width, "slice_width", integer=True)
        if self.slice_width > model.cols:
            raise ValueError(
                f"slice_width={slice_width} exceeds lattice width {model.cols}"
            )
        super().__init__(
            model,
            pipeline_depth=pipeline_depth,
            clock_hz=clock_hz,
            post_collide=post_collide,
            backend=backend,
            workers=workers,
            recorder=recorder,
        )
        self._build_exchange_maps()
        self.failed_slices = tuple(sorted(set(failed_slices)))
        for s in self.failed_slices:
            if not 0 <= s < self.num_slices:
                raise ValueError(
                    f"failed slice {s} out of range for {self.num_slices} slices"
                )
        if len(self.failed_slices) >= self.num_slices:
            raise ValueError("all slices failed; no PEs left to remap work onto")

    # -- geometry -------------------------------------------------------------

    @property
    def name(self) -> str:
        """Engine identifier used in stats and tables."""
        base = f"partitioned(W={self.slice_width},k={self.pipeline_depth}"
        if self.failed_slices:
            base += f",degraded-{len(self.failed_slices)}"
        return base + ")"

    @property
    def num_healthy_slices(self) -> int:
        """Slices with a working PE column (all, minus the failed set)."""
        return self.num_slices - len(self.failed_slices)

    @property
    def num_slices(self) -> int:
        """Number of slices: ⌈cols / W⌉ (the last may be narrower)."""
        return math.ceil(self.model.cols / self.slice_width)

    def slice_of_column(self, col: int) -> int:
        """Index of the slice that owns lattice column ``col``."""
        return col // self.slice_width

    @property
    def storage_sites_per_pe(self) -> int:
        """The paper's 2W + 9 delay budget per processing element."""
        return 2 * self.slice_width + 9

    @property
    def storage_sites(self) -> int:
        """Delay cells across all healthy slices and stages."""
        return (
            self.num_healthy_slices * self.pipeline_depth * self.storage_sites_per_pe
        )

    @property
    def num_pes(self) -> int:
        """One PE column per healthy slice per stage."""
        return self.num_healthy_slices * self.pipeline_depth

    @property
    def num_chips(self) -> int:
        """One chip per healthy slice per stage."""
        return self.num_healthy_slices * self.pipeline_depth

    # -- exchange accounting ----------------------------------------------------

    def _build_exchange_maps(self) -> None:
        """Classify every (site, channel) gather by boundary crossing."""
        stencil = self.stage.rule.stencil
        src, valid = stencil.gather_maps()
        cols = self.model.cols
        dst_col = np.arange(self.num_sites) % cols
        dst_slice = dst_col // self.slice_width
        n_boundaries = self.num_slices - 1
        leftward = np.zeros(max(n_boundaries, 1), dtype=np.int64)
        rightward = np.zeros(max(n_boundaries, 1), dtype=np.int64)
        per_site_crossings = np.zeros(self.num_sites, dtype=np.int64)
        for ch in range(stencil.num_moving_channels):
            src_col = src[ch] % cols
            src_slice = src_col // self.slice_width
            crossing = valid[ch] & (src_slice != dst_slice)
            # A gather whose source lies right of the destination slice is
            # traffic *leftward* across the boundary dst_slice.
            right_src = crossing & (src_slice == dst_slice + 1)
            left_src = crossing & (src_slice == dst_slice - 1)
            if np.any(crossing & ~right_src & ~left_src):
                raise AssertionError(
                    "stencil crosses more than one slice boundary; "
                    f"slice_width={self.slice_width} too narrow for the stencil"
                )
            per_site_crossings += crossing
            for b in range(n_boundaries):
                leftward[b] += int(np.count_nonzero(right_src & (dst_slice == b)))
                rightward[b] += int(
                    np.count_nonzero(left_src & (dst_slice == b + 1))
                )
        self._bits_leftward = leftward
        self._bits_rightward = rightward
        self._max_site_crossings = int(per_site_crossings.max(initial=0))

    def exchange_per_stage_pass(self) -> list[SliceExchangeRecord]:
        """Side-channel bits per boundary for one stage over one frame."""
        return [
            SliceExchangeRecord(
                boundary=b,
                bits_leftward=int(self._bits_leftward[b]),
                bits_rightward=int(self._bits_rightward[b]),
            )
            for b in range(self.num_slices - 1)
        ]

    def side_bits_per_stage_pass(self) -> int:
        """Total boundary-exchange bits one stage moves per frame pass."""
        return sum(rec.total_bits for rec in self.exchange_per_stage_pass())

    def boundary_bits_per_site_update(self) -> int:
        """Measured E: worst-case side-channel bits one site update needs.

        The synchronous channel (and its pins) must be sized for the
        worst site, not the average: a hexagonal-stencil edge site on
        the heavy parity gathers 3 channel bits from across the
        boundary — the E = 3 the paper plugs into the SPA pin
        constraint.  (The *average* is lower, ~2 for the hex stencil,
        because the light parity needs only 1.)
        """
        if self.num_slices < 2:
            return 0
        return self._max_site_crossings

    def mean_boundary_bits_per_edge_site(self) -> float:
        """Average one-way side-channel bits per boundary row (≈2 for hex)."""
        if self.num_slices < 2:
            return 0.0
        return float(self._bits_leftward[0]) / self.model.rows

    # -- timing ---------------------------------------------------------------------

    def ticks_per_pass(self, span: int) -> int:
        """All slices stream in parallel: rows·W sites deep, plus drain.

        With failed PEs the surviving slices take the dead slices' work
        round-robin, so a pass needs ``⌈slices / healthy⌉`` sequential
        rounds.
        """
        widest = min(self.slice_width, self.model.cols)
        stream_ticks = self.model.rows * widest
        latency = widest + 1
        rounds = math.ceil(self.num_slices / self.num_healthy_slices)
        return rounds * stream_ticks + span * latency
