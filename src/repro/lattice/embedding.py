"""Array-to-stream embeddings and the span theorem (Theorem 1).

A serial pipelined lattice engine consumes sites as a one-dimensional
stream.  An *embedding* assigns each site of an ``n x m`` array a distinct
position in that stream.  Two quantities govern how much on-chip delay
memory a pipeline stage needs:

* the **span** — the largest stream distance between *adjacent* array
  sites (Theorem 1 of the paper proves span >= n for any placement of
  ``1..n^2`` in an ``n x n`` array, so row-major's span of ``m`` per row
  is within a factor of ~1 of optimal);
* the **neighborhood stream diameter** — the largest stream distance
  between two sites of one update neighborhood.  For row-major order on
  an ``n x n`` array this is Θ(n) — exactly ``2n`` for the full axial
  hexagonal neighborhood, ``2n − 2`` for its extreme short-diagonal pair
  (the figure the paper quotes) — which the paper (citing Supowit &
  Young) states is optimal, and which fixes the ``2L + O(1)``
  shift-register length of every engine in sections 3–6.

The functions here compute spans and diameters exactly for arbitrary
embeddings, provide the classical embeddings (row-major, column-major,
boustrophedon "snake", blocked, and diagonal), and expose the Theorem 1
lower bound for tests and benchmarks to check against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive

__all__ = [
    "Embedding",
    "row_major_embedding",
    "column_major_embedding",
    "snake_embedding",
    "block_embedding",
    "diagonal_embedding",
    "array_span",
    "embedding_span",
    "neighborhood_stream_diameter",
    "hex_neighborhood_stream_diameter",
    "hex_diagonal_pair_distance",
    "HEX_AXIAL_OFFSETS",
    "minimum_span_lower_bound",
]


@dataclass(frozen=True)
class Embedding:
    """A bijection from array sites to stream positions.

    Attributes
    ----------
    name:
        Human-readable identifier (used in bench output).
    positions:
        Integer array of shape ``(rows, cols)``; ``positions[i, j]`` is the
        stream position of site ``(i, j)``.  Must be a permutation of
        ``0 .. rows*cols - 1``.
    """

    name: str
    positions: np.ndarray

    def __post_init__(self) -> None:
        pos = np.asarray(self.positions)
        if pos.ndim != 2:
            raise ValueError("positions must be a 2-D array")
        if pos.size == 0:
            raise ValueError("positions must be non-empty")
        flat = np.sort(pos.ravel())
        if not np.array_equal(flat, np.arange(pos.size)):
            raise ValueError(
                f"embedding {self.name!r}: positions must be a permutation "
                f"of 0..{pos.size - 1}"
            )
        object.__setattr__(self, "positions", pos.astype(np.int64, copy=False))

    @property
    def rows(self) -> int:
        return int(self.positions.shape[0])

    @property
    def cols(self) -> int:
        return int(self.positions.shape[1])

    def span(self) -> int:
        """Largest stream distance between horizontally/vertically adjacent sites."""
        return array_span(self.positions)

    def stream_order(self) -> list[tuple[int, int]]:
        """Sites in the order they appear on the stream."""
        flat_index = np.argsort(self.positions.ravel())
        return [
            (int(i), int(j))
            for i, j in zip(*np.unravel_index(flat_index, self.positions.shape))
        ]

    def neighborhood_diameter(self, radius: int = 2) -> int:
        """Stream diameter of ``radius``-neighborhoods (see module docstring)."""
        return neighborhood_stream_diameter(self.positions, radius=radius)


def array_span(positions: np.ndarray) -> int:
    """Span of a placement, exactly as defined above Theorem 1.

    ``span = max(|a(i+1,j) - a(i,j)|, |a(i,j+1) - a(i,j)|)`` over all
    valid ``(i, j)``.  Accepts any integer array (not necessarily a
    permutation — Theorem 1 only needs distinct values, which we do not
    re-check here for speed; :class:`Embedding` validates on construction).
    """
    pos = np.asarray(positions)
    if pos.ndim != 2:
        raise ValueError("positions must be a 2-D array")
    spans = []
    if pos.shape[0] > 1:
        spans.append(np.abs(np.diff(pos.astype(np.int64), axis=0)).max())
    if pos.shape[1] > 1:
        spans.append(np.abs(np.diff(pos.astype(np.int64), axis=1)).max())
    return int(max(spans)) if spans else 0


def embedding_span(embedding: Embedding) -> int:
    """Convenience alias: the span of an :class:`Embedding`."""
    return embedding.span()


def neighborhood_stream_diameter(positions: np.ndarray, *, radius: int = 2) -> int:
    """Largest stream distance within any ``radius``-neighborhood.

    A ``radius``-neighborhood of site ``x`` is the set of sites within
    ``radius`` edge traversals of ``x`` (the paper's "2-neighborhoods"
    footnote).  The diameter of the neighborhood *in the stream* is what
    a pipeline PE must buffer; for row-major order and radius r on an
    ``n x n`` array it equals ``r·n``.
    """
    pos = np.asarray(positions, dtype=np.int64)
    if pos.ndim != 2:
        raise ValueError("positions must be a 2-D array")
    radius = check_positive(radius, "radius", integer=True)
    rows, cols = pos.shape
    best = 0
    # Enumerate offsets within L1 distance `radius` once; for each offset,
    # a vectorized shifted-difference gives all pairs at that offset.
    for dr in range(-radius, radius + 1):
        for dc in range(-radius, radius + 1):
            if abs(dr) + abs(dc) > radius or (dr, dc) == (0, 0):
                continue
            r0, r1 = max(0, -dr), min(rows, rows - dr)
            c0, c1 = max(0, -dc), min(cols, cols - dc)
            if r0 >= r1 or c0 >= c1:
                continue
            a = pos[r0:r1, c0:c1]
            b = pos[r0 + dr : r1 + dr, c0 + dc : c1 + dc]
            diff = int(np.abs(a - b).max())
            best = max(best, diff)
    return best


#: Axial-coordinate offsets of the hexagonal update neighborhood (the
#: FHP stencil stored on a parallelogram grid): self, the four
#: orthogonal neighbors, and the two "short diagonal" neighbors.
HEX_AXIAL_OFFSETS = ((0, 0), (1, 0), (-1, 0), (0, 1), (0, -1), (-1, 1), (1, -1))


def hex_neighborhood_stream_diameter(positions: np.ndarray) -> int:
    """Largest stream distance within one hexagonal update neighborhood.

    This is the quantity the paper's section 3 discussion turns on: the
    delay memory a pipelined PE needs spans the whole update
    neighborhood in the stream.  For the row-major embedding of an
    ``n x n`` lattice (axial hex storage) the exact value is ``2n``
    (the column pair ``(r−1, c)``/``(r+1, c)``); the pair the paper
    quotes — "some elements of the neighborhood are at least 2n − 2
    positions apart" — is the short-diagonal pair ``(r−1, c+1)`` vs
    ``(r+1, c−1)``, whose gap :func:`hex_diagonal_pair_distance`
    returns.  Either way the storage is Θ(n) ≈ two lattice lines, and
    by Supowit & Young row-major is optimal.
    """
    pos = np.asarray(positions, dtype=np.int64)
    if pos.ndim != 2:
        raise ValueError("positions must be a 2-D array")
    rows, cols = pos.shape
    best = 0
    offsets = [o for o in HEX_AXIAL_OFFSETS if o != (0, 0)]
    for i, (dr1, dc1) in enumerate([(0, 0)] + offsets):
        for dr2, dc2 in offsets[i:]:
            dr, dc = dr2 - dr1, dc2 - dc1
            r0, r1 = max(0, -dr), min(rows, rows - dr)
            c0, c1 = max(0, -dc), min(cols, cols - dc)
            if r0 >= r1 or c0 >= c1:
                continue
            a = pos[r0:r1, c0:c1]
            b = pos[r0 + dr : r1 + dr, c0 + dc : c1 + dc]
            best = max(best, int(np.abs(a - b).max()))
    return best


def hex_diagonal_pair_distance(positions: np.ndarray) -> int:
    """Stream gap of the hex neighborhood's short-diagonal pair.

    The pair ``(r−1, c+1)`` / ``(r+1, c−1)`` of one update neighborhood:
    exactly ``2n − 2`` for row-major on an ``n x n`` array — the figure
    the paper quotes for the memory distribution of a full neighborhood.
    """
    pos = np.asarray(positions, dtype=np.int64)
    if pos.ndim != 2:
        raise ValueError("positions must be a 2-D array")
    rows, cols = pos.shape
    if rows < 3 or cols < 3:
        return 0
    a = pos[:-2, 2:]  # (r-1, c+1) relative to centers (r, c) with r>=1, c>=1
    b = pos[2:, :-2]  # (r+1, c-1)
    return int(np.abs(a - b).max())


def minimum_span_lower_bound(n: int) -> int:
    """Theorem 1: any placement of 1..n^2 in an n x n array has span >= n."""
    n = check_positive(n, "n", integer=True)
    return n


# Classical embeddings --------------------------------------------------------


def row_major_embedding(rows: int, cols: int | None = None) -> Embedding:
    """The natural raster-scan order the paper's engines use."""
    rows = check_positive(rows, "rows", integer=True)
    cols = rows if cols is None else check_positive(cols, "cols", integer=True)
    return Embedding("row-major", np.arange(rows * cols).reshape(rows, cols))


def column_major_embedding(rows: int, cols: int | None = None) -> Embedding:
    """Column-scan order (row-major transposed)."""
    rows = check_positive(rows, "rows", integer=True)
    cols = rows if cols is None else check_positive(cols, "cols", integer=True)
    pos = np.arange(rows * cols).reshape(cols, rows).T.copy()
    return Embedding("column-major", pos)


def snake_embedding(rows: int, cols: int | None = None) -> Embedding:
    """Boustrophedon order: alternate rows reversed.

    Same span class as row-major (span ``2*cols - 1`` at row turns is not
    achieved — adjacent vertical neighbors at the turn are distance 1),
    included because it is the other natural streaming order hardware uses.
    """
    rows = check_positive(rows, "rows", integer=True)
    cols = rows if cols is None else check_positive(cols, "cols", integer=True)
    pos = np.arange(rows * cols).reshape(rows, cols)
    pos[1::2] = pos[1::2, ::-1]
    return Embedding("snake", pos)


def block_embedding(rows: int, cols: int | None = None, *, block: int = 2) -> Embedding:
    """Blocked order: row-major over ``block x block`` tiles, row-major inside.

    Demonstrates that tiling does *not* beat row-major for span (Theorem 1
    forbids it) even though it improves temporal locality — the distinction
    the pebbling analysis of section 7 formalizes.
    """
    rows = check_positive(rows, "rows", integer=True)
    cols = rows if cols is None else check_positive(cols, "cols", integer=True)
    block = check_positive(block, "block", integer=True)
    pos = np.empty((rows, cols), dtype=np.int64)
    counter = 0
    for br in range(0, rows, block):
        for bc in range(0, cols, block):
            h = min(block, rows - br)
            w = min(block, cols - bc)
            pos[br : br + h, bc : bc + w] = np.arange(counter, counter + h * w).reshape(
                h, w
            )
            counter += h * w
    return Embedding(f"block-{block}", pos)


def diagonal_embedding(rows: int, cols: int | None = None) -> Embedding:
    """Anti-diagonal sweep order (wavefront order).

    The wavefront schedule of reference [8] of the paper; its span is
    Θ(n), matching the Theorem 1 lower bound up to a constant.
    """
    rows = check_positive(rows, "rows", integer=True)
    cols = rows if cols is None else check_positive(cols, "cols", integer=True)
    pos = np.empty((rows, cols), dtype=np.int64)
    counter = 0
    for s in range(rows + cols - 1):
        r_start = max(0, s - cols + 1)
        r_end = min(rows - 1, s)
        for r in range(r_start, r_end + 1):
            pos[r, s - r] = counter
            counter += 1
    return Embedding("diagonal", pos)
