"""Row-slab decomposition with halo geometry: the shared slab planner.

Both parallel execution layers in this repo — the thread-tiled
``"parallel"`` kernel backend (:mod:`repro.lgca.parallel`) and the
supervised multi-process runtime (:mod:`repro.runtime.sharding`) —
divide the lattice into adjacent horizontal slabs, one per worker,
because every kernel in :mod:`repro.lgca` stores the lattice row-major,
which makes slab views and halo rows contiguous.  This module is the
single source of that geometry; it deliberately knows nothing about
processes, threads, or kernels.

Each worker steps a *local frame* of ``halo_top + slab + halo_bottom``
rows.  The halo sizes are not free:

* the local frame must start on an **even global row** so that
  shard-local row parity equals global row parity — both the hexagonal
  propagation offsets and the ``alternate`` chirality checkerboard
  ``(r + c + t) % 2`` key on it — hence ``halo_top`` is 2 when the slab
  starts on an even row and 1 when it starts on an odd row;
* the local frame must have an **even number of rows** so a periodic
  FHP sub-model can be constructed (the half-cell row offset must tile)
  — hence ``halo_bottom`` is 1 or 2, whichever makes the total even.

Because propagation moves particles at most one row per generation,
refreshing the halo rows with the neighbours' boundary rows before each
step makes the slab *interior* evolve bit-identically to the
whole-lattice run: sub-lattice boundary artifacts (row wrap for
periodic, row absorption for null, same-site reflection for
reflecting) land only in the halo rows, which are overwritten before
they are ever read again.  Neighbours therefore exchange a fixed
**two** boundary rows per side per generation and each receiver slices
off the 1 or 2 it needs.

``edge_halos`` selects how the lattice edges are realized:

* ``True`` (the periodic case): every shard gets both halos, and the
  first/last shards' halo rows wrap around to the opposite end of the
  lattice.
* ``False`` (null/reflecting): the first shard has ``halo_top == 0``
  and the last ``halo_bottom == 0``, so the local frame edge of the
  edge shards *coincides with the true lattice edge* and the local
  model's own boundary condition realizes it exactly — reflecting
  walls in particular must fire at the true edge, not at a ghost row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigError
from repro.util.validation import check_positive

__all__ = ["BOUNDARY_ROWS", "Shard", "plan_shards"]

#: Boundary rows exchanged per side per generation (max halo depth).
BOUNDARY_ROWS = 2


@dataclass(frozen=True)
class Shard:
    """One worker's slab of the lattice, plus its halo geometry.

    Attributes
    ----------
    index:
        Worker index (0 = top slab).
    row_start, row_stop:
        The owned global row range ``[row_start, row_stop)``.
    halo_top, halo_bottom:
        Ghost rows above/below the slab in the worker's local frame.
    """

    index: int
    row_start: int
    row_stop: int
    halo_top: int
    halo_bottom: int

    @property
    def slab_rows(self) -> int:
        """Rows this shard owns."""
        return self.row_stop - self.row_start

    @property
    def local_rows(self) -> int:
        """Rows in the worker's local frame (slab + halos)."""
        return self.halo_top + self.slab_rows + self.halo_bottom

    @property
    def interior(self) -> slice:
        """The owned slab within the local frame."""
        return slice(self.halo_top, self.halo_top + self.slab_rows)

    def local_row_indices(self, rows: int) -> np.ndarray:
        """Global row index (mod ``rows``) of every local-frame row.

        Used to slice global per-row data — obstacle masks above all —
        into the local frame, halos included.
        """
        return np.arange(self.row_start - self.halo_top, self.row_stop + self.halo_bottom) % rows


def plan_shards(
    rows: int, num_workers: int, *, edge_halos: bool = True
) -> tuple[Shard, ...]:
    """Split ``rows`` lattice rows into ``num_workers`` slabs.

    Rows are distributed as evenly as possible (earlier shards take the
    remainder).  Every slab must be at least :data:`BOUNDARY_ROWS` rows
    tall so a neighbour can always supply a full boundary exchange.

    Parameters
    ----------
    rows, num_workers:
        Lattice height and slab count.
    edge_halos:
        When ``True`` every shard gets both halos (periodic wrap);
        when ``False`` the first shard's top halo and the last shard's
        bottom halo are zero rows, so edge shards' local frames end at
        the true lattice edge (see the module docstring).

    Raises
    ------
    ConfigError
        When the lattice is too short for that many workers.
    """
    check_positive(rows, "rows", integer=True)
    check_positive(num_workers, "num_workers", integer=True)
    base, extra = divmod(rows, num_workers)
    if base < BOUNDARY_ROWS:
        raise ConfigError(
            f"num_workers={num_workers} needs at least "
            f"{BOUNDARY_ROWS * num_workers} rows (got {rows}): every slab "
            f"must be >= {BOUNDARY_ROWS} rows tall for halo exchange"
        )
    shards: list[Shard] = []
    row_start = 0
    for index in range(num_workers):
        slab = base + (1 if index < extra else 0)
        halo_top = 2 if row_start % 2 == 0 else 1
        halo_bottom = 2 - ((halo_top + slab) % 2)
        if not edge_halos:
            if index == 0:
                halo_top = 0
            if index == num_workers - 1:
                halo_bottom = 0
        shards.append(
            Shard(
                index=index,
                row_start=row_start,
                row_stop=row_start + slab,
                halo_top=halo_top,
                halo_bottom=halo_bottom,
            )
        )
        row_start += slab
    return tuple(shards)
