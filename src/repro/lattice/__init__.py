"""Lattice geometry, stream embeddings, and boundary handling.

This subpackage is the geometric substrate everything else stands on:

* :mod:`repro.lattice.geometry` — d-dimensional orthogonal lattices with
  nearest-neighbor connectivity (the graph *G* of section 7 of the paper)
  and the hexagonal lattice used by the FHP lattice gas (section 2).
* :mod:`repro.lattice.embedding` — embeddings of a 2-D array into a
  1-D stream, the *span* of an embedding, and the machinery behind
  Theorem 1 (any placement of 1..n² in an n×n array has span ≥ n;
  row-major achieves the optimal 2n−2 two-neighborhood diameter).
* :mod:`repro.lattice.boundary` — the boundary-condition taxonomy of
  section 7 (null, periodic/toroidal, reflecting, truncated).
"""

from repro.lattice.geometry import (
    OrthogonalLattice,
    HexagonalLattice,
    manhattan_ball_size,
)
from repro.lattice.embedding import (
    Embedding,
    row_major_embedding,
    column_major_embedding,
    snake_embedding,
    block_embedding,
    diagonal_embedding,
    array_span,
    embedding_span,
    neighborhood_stream_diameter,
    hex_neighborhood_stream_diameter,
    hex_diagonal_pair_distance,
    minimum_span_lower_bound,
)
from repro.lattice.boundary import (
    BoundaryCondition,
    NullBoundary,
    PeriodicBoundary,
    ReflectingBoundary,
    TruncatedBoundary,
    make_boundary,
)

__all__ = [
    "OrthogonalLattice",
    "HexagonalLattice",
    "manhattan_ball_size",
    "Embedding",
    "row_major_embedding",
    "column_major_embedding",
    "snake_embedding",
    "block_embedding",
    "diagonal_embedding",
    "array_span",
    "embedding_span",
    "neighborhood_stream_diameter",
    "hex_neighborhood_stream_diameter",
    "hex_diagonal_pair_distance",
    "minimum_span_lower_bound",
    "BoundaryCondition",
    "NullBoundary",
    "PeriodicBoundary",
    "ReflectingBoundary",
    "TruncatedBoundary",
    "make_boundary",
]
