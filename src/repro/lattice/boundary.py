"""Boundary conditions for lattice computations.

Section 7 of the paper (assumption 2 before Lemma 3) enumerates the ways
LGCA boundaries can be handled: null (zero valued), independently random,
dependently random or deterministic with truncated neighborhoods, or
toroidally connected.  This module gives each a concrete implementation
that both the reference automaton and the engine simulators share, so
that functional-equivalence tests exercise identical boundary semantics.

The interface is array-level: a boundary condition knows how to *pad* a
2-D field and how to *resolve* an out-of-range site index.  Vectorized
LGCA kernels use the padding route (``np.pad`` semantics); the pebbling
computation-graph builder uses index resolution.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "BoundaryCondition",
    "NullBoundary",
    "PeriodicBoundary",
    "ReflectingBoundary",
    "TruncatedBoundary",
    "make_boundary",
]


class BoundaryCondition(ABC):
    """Strategy for sites whose neighborhoods extend past the lattice edge."""

    #: short name used by :func:`make_boundary` and in bench output
    name: str = "abstract"

    @abstractmethod
    def pad(self, field: np.ndarray, width: int = 1) -> np.ndarray:
        """Return ``field`` padded by ``width`` ghost cells on every side."""

    @abstractmethod
    def resolve(self, index: int, size: int) -> int | None:
        """Map a possibly out-of-range coordinate into ``[0, size)``.

        Returns None when the neighbor simply does not exist (null /
        truncated boundaries), which callers treat as "no dependency".
        """

    def exists(self, index: int, size: int) -> bool:
        """Whether a dependency on coordinate ``index`` survives the boundary."""
        return self.resolve(index, size) is not None


@dataclass(frozen=True)
class NullBoundary(BoundaryCondition):
    """Ghost cells hold a fixed value (zero by default): 'null' boundaries.

    With null boundaries the boundary sites do not appear in the
    computation graph at all (paper, section 7, assumption 2) — the
    dependency is on a constant, not a computed value.
    """

    fill_value: int = 0
    name: str = "null"

    def pad(self, field: np.ndarray, width: int = 1) -> np.ndarray:
        return np.pad(field, width, mode="constant", constant_values=self.fill_value)

    def resolve(self, index: int, size: int) -> int | None:
        return index if 0 <= index < size else None


@dataclass(frozen=True)
class PeriodicBoundary(BoundaryCondition):
    """Toroidal wrap-around: the 'toroidally connected' case."""

    name: str = "periodic"

    def pad(self, field: np.ndarray, width: int = 1) -> np.ndarray:
        return np.pad(field, width, mode="wrap")

    def resolve(self, index: int, size: int) -> int | None:
        return index % size


@dataclass(frozen=True)
class ReflectingBoundary(BoundaryCondition):
    """Mirror reflection at the walls (no-slip wall for lattice gases)."""

    name: str = "reflecting"

    def pad(self, field: np.ndarray, width: int = 1) -> np.ndarray:
        return np.pad(field, width, mode="reflect")

    def resolve(self, index: int, size: int) -> int | None:
        if size == 1:
            return 0
        period = 2 * (size - 1)
        index %= period
        return index if index < size else period - index


@dataclass(frozen=True)
class TruncatedBoundary(BoundaryCondition):
    """Deterministic update with truncated neighborhoods.

    Out-of-range neighbors are dropped from the neighborhood; in padded
    form this behaves like edge-replication (the boundary site "sees
    itself" where a neighbor is missing), which is the standard hardware
    realization of a truncated stencil.
    """

    name: str = "truncated"

    def pad(self, field: np.ndarray, width: int = 1) -> np.ndarray:
        return np.pad(field, width, mode="edge")

    def resolve(self, index: int, size: int) -> int | None:
        return None if not 0 <= index < size else index


_REGISTRY: dict[str, type[BoundaryCondition]] = {
    "null": NullBoundary,
    "periodic": PeriodicBoundary,
    "reflecting": ReflectingBoundary,
    "truncated": TruncatedBoundary,
}


def make_boundary(name: str, **kwargs) -> BoundaryCondition:
    """Construct a boundary condition by name.

    >>> make_boundary("periodic").resolve(-1, 10)
    9
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown boundary {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)
