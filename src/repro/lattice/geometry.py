"""Lattice geometry: d-dimensional orthogonal grids and the FHP hexagonal grid.

The paper's section 7 defines the lattice *G* of a d-dimensional LGCA as
the integer points of a d-cell ``{x | 0 <= x_i <= r}`` with edges between
nearest neighbors (assumption 1 before Lemma 3).  :class:`OrthogonalLattice`
implements exactly that graph, plus the reachability counts the pebbling
bounds need (the number of vertices within Manhattan distance *j* — the
quantity bounded below by ``j^d / d!`` in Lemma 8).

:class:`HexagonalLattice` implements the six-neighbor FHP connectivity on
an even/odd row-offset square storage grid, which is how the paper's
engines (and essentially all software FHP implementations) store a
hexagonal lattice in rectangular memory.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Sequence

import numpy as np

from repro.util.validation import check_positive

__all__ = ["OrthogonalLattice", "HexagonalLattice", "manhattan_ball_size"]


@lru_cache(maxsize=4096)
def _ball_size_cached(d: int, j: int) -> int:
    """Number of integer points x >= 0 with x_1 + ... + x_d <= j.

    This is the size of the set Φ in Lemma 8 of the paper: the lattice
    points of the non-negative orthant within L1 distance ``j`` of the
    origin.  Closed form: C(j + d, d).
    """
    return math.comb(j + d, d)


def manhattan_ball_size(d: int, j: int, *, orthant: bool = True) -> int:
    """Count integer lattice points within L1 distance ``j`` of the origin.

    Parameters
    ----------
    d:
        Lattice dimension (>= 1).
    j:
        Radius (>= 0).
    orthant:
        If True (the paper's worst case — origin corner of the d-cell),
        count only points with all coordinates >= 0, giving ``C(j+d, d)``.
        If False, count points of the full integer lattice Z^d within L1
        distance ``j`` (the interior-vertex best case).

    Lemma 8 of the paper uses the orthant count and bounds it below by
    ``j^d / d!``; :func:`repro.pebbling.bounds.lemma8_lower_bound` checks
    that inequality against this exact value.
    """
    d = check_positive(d, "d", integer=True)
    if j < 0:
        raise ValueError(f"j={j} must be non-negative")
    j = int(j)
    if orthant:
        return _ball_size_cached(d, j)
    # Full-lattice ball: sum over number of nonzero coordinates k:
    # C(d, k) ways to choose them, 2^k sign patterns, and compositions of
    # each radius into k positive parts.
    total = 0
    for k in range(0, min(d, j) + 1):
        if k == 0:
            total += 1
            continue
        ways = 0
        for radius in range(k, j + 1):
            ways += math.comb(radius - 1, k - 1)
        total += math.comb(d, k) * (2**k) * ways
    return total


@dataclass(frozen=True)
class OrthogonalLattice:
    """The d-dimensional orthogonal lattice G of the paper (section 7).

    Vertices are integer tuples ``x`` with ``0 <= x_i <= r`` for every
    coordinate, and edges join vertices at Manhattan distance 1.  The
    neighborhood ``N(x)`` *includes x itself*, matching the paper's
    definition ``N(x) = {z | {x, z} is an edge} ∪ {x}``.

    Parameters
    ----------
    shape:
        Side lengths per dimension (number of sites, so ``r = side - 1``).
    """

    shape: tuple[int, ...]

    def __init__(self, shape: Sequence[int]):
        shape = tuple(check_positive(s, "shape entry", integer=True) for s in shape)
        if len(shape) == 0:
            raise ValueError("lattice must have at least one dimension")
        object.__setattr__(self, "shape", shape)

    @classmethod
    def cube(cls, d: int, side: int) -> "OrthogonalLattice":
        """A d-dimensional lattice with equal side lengths."""
        d = check_positive(d, "d", integer=True)
        side = check_positive(side, "side", integer=True)
        return cls((side,) * d)

    @property
    def d(self) -> int:
        """Lattice dimension."""
        return len(self.shape)

    @property
    def num_sites(self) -> int:
        """Total number of lattice sites."""
        return int(np.prod(self.shape))

    def __len__(self) -> int:
        return self.num_sites

    def contains(self, x: Sequence[int]) -> bool:
        """Whether integer point ``x`` is a vertex of the lattice."""
        if len(x) != self.d:
            return False
        return all(0 <= xi < si for xi, si in zip(x, self.shape))

    def sites(self) -> Iterator[tuple[int, ...]]:
        """Iterate over all vertices in row-major order."""
        return itertools.product(*(range(s) for s in self.shape))

    def index(self, x: Sequence[int]) -> int:
        """Row-major linear index of vertex ``x``."""
        if not self.contains(x):
            raise ValueError(f"{tuple(x)} is not a vertex of lattice {self.shape}")
        idx = 0
        for xi, si in zip(x, self.shape):
            idx = idx * si + int(xi)
        return idx

    def site(self, index: int) -> tuple[int, ...]:
        """Inverse of :meth:`index`."""
        n = self.num_sites
        if not 0 <= index < n:
            raise ValueError(f"index={index} out of range [0, {n})")
        coords = []
        for si in reversed(self.shape):
            coords.append(index % si)
            index //= si
        return tuple(reversed(coords))

    def neighborhood(self, x: Sequence[int]) -> list[tuple[int, ...]]:
        """N(x): x plus its nearest neighbors that lie inside the lattice."""
        x = tuple(int(v) for v in x)
        if not self.contains(x):
            raise ValueError(f"{x} is not a vertex of lattice {self.shape}")
        out = [x]
        for axis in range(self.d):
            for delta in (-1, 1):
                y = list(x)
                y[axis] += delta
                if self.contains(y):
                    out.append(tuple(y))
        return out

    def neighbors(self, x: Sequence[int]) -> list[tuple[int, ...]]:
        """Nearest neighbors of ``x`` excluding ``x`` itself."""
        return self.neighborhood(x)[1:]

    def degree(self, x: Sequence[int]) -> int:
        """Number of incident edges at ``x``."""
        return len(self.neighbors(x))

    def distance(self, u: Sequence[int], v: Sequence[int]) -> int:
        """Graph (Manhattan) distance between two vertices."""
        if not self.contains(u) or not self.contains(v):
            raise ValueError("both endpoints must be lattice vertices")
        return int(sum(abs(int(a) - int(b)) for a, b in zip(u, v)))

    def reachable_within(self, x: Sequence[int], j: int) -> int:
        """Number of vertices reachable from ``x`` in at most ``j`` steps.

        This is the quantity the line-spread of the computation graph
        reduces to (Lemma 8): for a corner vertex of a large lattice it
        equals :func:`manhattan_ball_size` with ``orthant=True``.
        """
        x = tuple(int(v) for v in x)
        if not self.contains(x):
            raise ValueError(f"{x} is not a vertex of lattice {self.shape}")
        if j < 0:
            raise ValueError("j must be non-negative")
        # Separable per-axis count: number of coordinates reachable with a
        # given per-axis budget, convolved across axes.
        # counts[k] = number of vertices at exactly L1 distance k.
        counts = np.zeros(j + 1, dtype=object)
        counts[0] = 1
        for axis in range(self.d):
            si = self.shape[axis]
            xi = x[axis]
            # per-axis: how many choices at each |delta| = t
            axis_counts = np.zeros(j + 1, dtype=object)
            for t in range(0, j + 1):
                n_choices = 0
                if xi - t >= 0:
                    n_choices += 1
                if t > 0 and xi + t < si:
                    n_choices += 1
                if t == 0:
                    n_choices = 1
                axis_counts[t] = n_choices
            new_counts = np.zeros(j + 1, dtype=object)
            for a in range(j + 1):
                if counts[a] == 0:
                    continue
                for b in range(j + 1 - a):
                    if axis_counts[b]:
                        new_counts[a + b] += counts[a] * axis_counts[b]
            counts = new_counts
        return int(sum(counts))

    def min_reachable_within(self, j: int) -> int:
        """min over vertices x of :meth:`reachable_within` (corner is worst)."""
        corner = (0,) * self.d
        return self.reachable_within(corner, j)


# FHP hexagonal lattice -----------------------------------------------------

# Unit velocity vectors of the six FHP directions, indexed 0..5 counter-
# clockwise starting from +x.  These are the *physical* directions; the
# storage grid offsets depend on row parity (see below).
FHP_DIRECTIONS = np.array(
    [
        (1.0, 0.0),
        (0.5, math.sqrt(3) / 2),
        (-0.5, math.sqrt(3) / 2),
        (-1.0, 0.0),
        (-0.5, -math.sqrt(3) / 2),
        (0.5, -math.sqrt(3) / 2),
    ]
)

# Storage-grid (row, col) offsets per direction, for even and odd rows,
# using the standard "offset" hexagonal layout: odd rows are shifted half
# a cell to the right.  Row index increases downward (matrix convention),
# and physical +y maps to decreasing row so that momentum bookkeeping in
# :mod:`repro.lgca.observables` stays right-handed.
_EVEN_ROW_OFFSETS = [
    (0, 1),    # 0: +x
    (-1, 0),   # 1: up-right
    (-1, -1),  # 2: up-left
    (0, -1),   # 3: -x
    (1, -1),   # 4: down-left
    (1, 0),    # 5: down-right
]
_ODD_ROW_OFFSETS = [
    (0, 1),
    (-1, 1),
    (-1, 0),
    (0, -1),
    (1, 0),
    (1, 1),
]


@dataclass(frozen=True)
class HexagonalLattice:
    """The hexagonally-connected FHP lattice stored on a rectangular grid.

    Each site has six neighbors (where they exist).  The circled-site
    neighborhood drawn in figure 2 of the paper is ``{x} ∪`` these six.

    Parameters
    ----------
    rows, cols:
        Storage-grid dimensions.
    """

    rows: int
    cols: int

    def __init__(self, rows: int, cols: int):
        object.__setattr__(self, "rows", check_positive(rows, "rows", integer=True))
        object.__setattr__(self, "cols", check_positive(cols, "cols", integer=True))

    @property
    def num_sites(self) -> int:
        return self.rows * self.cols

    @property
    def num_directions(self) -> int:
        return 6

    def contains(self, site: Sequence[int]) -> bool:
        r, c = site
        return 0 <= r < self.rows and 0 <= c < self.cols

    def offsets(self, row: int) -> list[tuple[int, int]]:
        """Storage offsets of the 6 directions for a site in ``row``."""
        return list(_ODD_ROW_OFFSETS if row % 2 else _EVEN_ROW_OFFSETS)

    def neighbor(self, site: Sequence[int], direction: int) -> tuple[int, int] | None:
        """The neighbor reached from ``site`` along ``direction``, or None.

        Returns None if the neighbor would fall outside the storage grid
        (boundary handling is the job of :mod:`repro.lattice.boundary`).
        """
        if not 0 <= direction < 6:
            raise ValueError(f"direction={direction} must be in 0..5")
        r, c = int(site[0]), int(site[1])
        if not self.contains((r, c)):
            raise ValueError(f"{(r, c)} is not a site of the {self.rows}x{self.cols} grid")
        dr, dc = self.offsets(r)[direction]
        nr, nc = r + dr, c + dc
        if 0 <= nr < self.rows and 0 <= nc < self.cols:
            return (nr, nc)
        return None

    def neighborhood(self, site: Sequence[int]) -> list[tuple[int, int]]:
        """The FHP neighborhood of figure 2: the site plus its <=6 neighbors."""
        out = [(int(site[0]), int(site[1]))]
        for direction in range(6):
            n = self.neighbor(site, direction)
            if n is not None:
                out.append(n)
        return out

    def direction_vectors(self) -> np.ndarray:
        """(6, 2) array of unit velocity vectors (physical x, y)."""
        return FHP_DIRECTIONS.copy()

    @staticmethod
    def opposite(direction: int) -> int:
        """Index of the velocity opposite to ``direction``."""
        if not 0 <= direction < 6:
            raise ValueError(f"direction={direction} must be in 0..5")
        return (direction + 3) % 6

    # -- lattice-graph interface (for pebbling computation graphs) ----------
    #
    # Section 7 proves its bounds on the *orthogonal* grid, arguing it is
    # the worst case: "any lattice that satisfies isotropy requires at
    # least the same degree of connectivity."  Exposing the hexagonal
    # lattice through the same interface lets the reproduction check that
    # claim computationally: hexagonal line-spreads dominate orthogonal
    # ones, so Lemma 8 / Theorem 4 hold a fortiori.

    @property
    def d(self) -> int:
        """Spatial dimension (the hexagonal lattice is 2-D)."""
        return 2

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    def sites(self) -> "itertools.product":
        """Iterate over all sites in row-major order."""
        return itertools.product(range(self.rows), range(self.cols))

    def index(self, site: Sequence[int]) -> int:
        """Row-major linear index of ``site``."""
        r, c = int(site[0]), int(site[1])
        if not self.contains((r, c)):
            raise ValueError(f"{(r, c)} is not a site of the {self.rows}x{self.cols} grid")
        return r * self.cols + c

    def site(self, index: int) -> tuple[int, int]:
        """Inverse of :meth:`index`."""
        if not 0 <= index < self.num_sites:
            raise ValueError(f"index={index} out of range [0, {self.num_sites})")
        return divmod(index, self.cols)

    def _bfs_distances(self, origin: tuple[int, int]) -> dict[tuple[int, int], int]:
        from collections import deque

        dist = {origin: 0}
        queue = deque([origin])
        while queue:
            site = queue.popleft()
            for direction in range(6):
                nxt = self.neighbor(site, direction)
                if nxt is not None and nxt not in dist:
                    dist[nxt] = dist[site] + 1
                    queue.append(nxt)
        return dist

    def distance(self, u: Sequence[int], v: Sequence[int]) -> int:
        """Graph distance along hexagonal edges (BFS)."""
        u = (int(u[0]), int(u[1]))
        v = (int(v[0]), int(v[1]))
        if not self.contains(u) or not self.contains(v):
            raise ValueError("both endpoints must be lattice sites")
        dist = self._bfs_distances(u)
        if v not in dist:  # pragma: no cover - the hex grid is connected
            raise ValueError(f"{v} unreachable from {u}")
        return dist[v]

    def reachable_within(self, site: Sequence[int], j: int) -> int:
        """Number of sites within ``j`` hexagonal steps of ``site``."""
        if j < 0:
            raise ValueError("j must be non-negative")
        origin = (int(site[0]), int(site[1]))
        if not self.contains(origin):
            raise ValueError(f"{origin} is not a site of the grid")
        dist = self._bfs_distances(origin)
        return sum(1 for d in dist.values() if d <= int(j))

    def min_reachable_within(self, j: int) -> int:
        """min over sites of :meth:`reachable_within` (corner worst case).

        Checks the four corners plus edge midpoints — the minimum of a
        convex reach function over a convex domain lies on the boundary,
        and for offset-hex grids the corners realize it.
        """
        candidates = [
            (0, 0),
            (0, self.cols - 1),
            (self.rows - 1, 0),
            (self.rows - 1, self.cols - 1),
            (self.rows // 2, 0),
            (0, self.cols // 2),
        ]
        return min(self.reachable_within(c, j) for c in candidates)
