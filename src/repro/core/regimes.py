"""Operating-regime map: which architecture wins where.

The paper's conclusion: "Each has its preferred operating regime in
different parts of the throughput vs. lattice-size plane."  This module
computes that plane.  For every (lattice size L, chip budget N) point it
evaluates the throughput each architecture can deliver *within its own
constraints* —

* **WSA** — only exists for L ≤ L_max(technology) (the chip must hold
  2L+3 delay cells); pipeline depth capped at k = L; R = F·P*·min(N, L).
* **WSA-E** — any L; one PE per chip; R = F·N (the off-chip delay is
  area, not a chip count, consistent with section 6.3's accounting).
* **SPA** — any L; N chips arrange as (slices/P_w) columns × ranks;
  R = F·P·N capped at the all-resident limit (every site in some delay
  line: k ≤ rows, i.e. N ≤ slices·rows/(P_w·P_k) ranks... capped at
  k_max = L like the WSA).

and reports the winner (with bandwidth demands alongside, because the
winner's price is always bandwidth).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.spa import SPAModel
from repro.core.technology import ChipTechnology, PAPER_TECHNOLOGY
from repro.core.wsa import WSAModel
from repro.core.wsa_e import WSAEModel
from repro.util.validation import check_positive

__all__ = ["RegimePoint", "architecture_throughputs", "regime_map"]


@dataclass(frozen=True)
class RegimePoint:
    """One point of the throughput vs. lattice-size plane."""

    lattice_size: int
    num_chips: int
    throughput: dict[str, float]
    bandwidth_bits_per_tick: dict[str, float]
    winner: str

    def margin(self) -> float:
        """Winner's throughput over the runner-up's (1.0 = tie)."""
        ordered = sorted(self.throughput.values(), reverse=True)
        if len(ordered) < 2 or ordered[1] == 0:
            return math.inf
        return ordered[0] / ordered[1]


def architecture_throughputs(
    lattice_size: int,
    num_chips: int,
    technology: ChipTechnology = PAPER_TECHNOLOGY,
    bandwidth_budget_bits_per_tick: float | None = None,
) -> tuple[dict[str, float], dict[str, float]]:
    """(throughput, bandwidth) per architecture at (L, N).

    Architectures that cannot build the point report 0 throughput: WSA
    beyond its L_max, and — when a main-memory ``bandwidth budget`` is
    given — any architecture whose stream demand exceeds it.  The budget
    is what turns the plane into the paper's *regimes*: unconstrained,
    SPA's 3× PEs/chip win almost everywhere; under a realistic memory
    system, SPA's 2D·L/W bits/tick prices it out of large lattices and
    the WSA/WSA-E row appears.
    """
    lattice_size = check_positive(lattice_size, "lattice_size", integer=True)
    num_chips = check_positive(num_chips, "num_chips", integer=True)
    t = technology
    rates: dict[str, float] = {}
    bandwidths: dict[str, float] = {}

    # WSA: fixed-L chips; infeasible beyond the area-limited maximum.
    wsa_model = WSAModel(t)
    try:
        p_star = wsa_model.optimal_design().pes_per_chip
        l_cap = wsa_model.max_lattice_size(p_star)
    except ValueError:
        p_star, l_cap = 0, 0
    if p_star >= 1 and lattice_size <= l_cap:
        k = min(num_chips, lattice_size)  # k_max = L
        rates["WSA"] = t.F * p_star * k
        bandwidths["WSA"] = 2.0 * t.D * p_star
    else:
        rates["WSA"] = 0.0
        bandwidths["WSA"] = 0.0

    # WSA-E: always buildable, one PE/chip, k_max = L.
    wsa_e = WSAEModel(t)
    try:
        wsa_e.design(lattice_size)
        k = min(num_chips, lattice_size)
        rates["WSA-E"] = t.F * k
        bandwidths["WSA-E"] = 2.0 * t.D
    except ValueError:
        rates["WSA-E"] = 0.0
        bandwidths["WSA-E"] = 0.0

    # SPA: N chips of P PEs; the pipeline per slice is capped at k = L
    # (each slice column holding its whole history), so the usable chips
    # cap at slices/P_w · L/P_k.
    spa_model = SPAModel(t)
    try:
        spa = spa_model.optimal_design(lattice_size)
        slices = spa.num_slices
        max_ranks = max(1, lattice_size // spa.pes_deep)
        max_chips = max(1, math.ceil(slices / spa.pes_wide)) * max_ranks
        usable = min(num_chips, max_chips)
        rates["SPA"] = t.F * spa.pes_per_chip * usable
        bandwidths["SPA"] = 2.0 * t.D * slices
    except ValueError:
        rates["SPA"] = 0.0
        bandwidths["SPA"] = 0.0

    if bandwidth_budget_bits_per_tick is not None:
        check_positive(
            bandwidth_budget_bits_per_tick, "bandwidth_budget_bits_per_tick"
        )
        for name in rates:
            if bandwidths[name] > bandwidth_budget_bits_per_tick:
                rates[name] = 0.0

    return rates, bandwidths


def regime_map(
    lattice_sizes: list[int],
    chip_budgets: list[int],
    technology: ChipTechnology = PAPER_TECHNOLOGY,
    bandwidth_budget_bits_per_tick: float | None = None,
) -> list[RegimePoint]:
    """Evaluate the plane on a grid; one :class:`RegimePoint` per cell.

    A winner of ``"none"`` marks cells where no architecture fits the
    bandwidth budget.
    """
    points = []
    for lattice_size in lattice_sizes:
        for num_chips in chip_budgets:
            rates, bandwidths = architecture_throughputs(
                lattice_size,
                num_chips,
                technology,
                bandwidth_budget_bits_per_tick,
            )
            winner = max(rates, key=lambda k: rates[k])
            if rates[winner] <= 0.0:
                winner = "none"
            points.append(
                RegimePoint(
                    lattice_size=lattice_size,
                    num_chips=num_chips,
                    throughput=rates,
                    bandwidth_bits_per_tick=bandwidths,
                    winner=winner,
                )
            )
    return points
