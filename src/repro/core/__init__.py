"""The paper's primary contribution: engine design models and I/O bounds.

* :mod:`repro.core.technology` — the VLSI chip technology parameters
  (area, pins, per-site storage area, per-PE area, clock) with the
  paper's 3µ-CMOS layout constants as the published default.
* :mod:`repro.core.wsa` — the wide-serial architecture design model
  (sections 4 and 6.1): constraint curves in the (L, P) plane, the
  optimal operating point, and system area/throughput formulas.
* :mod:`repro.core.spa` — the Sternberg partitioned architecture model
  (sections 5 and 6.2): constraints in the (W, P) plane with the
  pin-optimal (P_w, P_k) split.
* :mod:`repro.core.wsa_e` — the extensible WSA variant of section 6.3
  with off-chip shift registers.
* :mod:`repro.core.design_space` — shared machinery: feasibility
  regions, curve sampling, corner finding, integer design points.
* :mod:`repro.core.comparison` — the head-to-head tables of section 6.3.
* :mod:`repro.core.throughput` — the section 8 prototype throughput
  model (peak vs host-bandwidth-limited realized rate).
* :mod:`repro.core.bounds` — the architecture-facing form of the
  pebbling bounds: R = O(B·S^{1/d}).
"""

from repro.core.technology import ChipTechnology, PAPER_TECHNOLOGY
from repro.core.design_space import (
    DesignPoint,
    DesignCurve,
    feasibility_corner,
    sample_curve,
)
from repro.core.wsa import WSADesign, WSAModel
from repro.core.spa import SPADesign, SPAModel
from repro.core.wsa_e import WSAEDesign, WSAEModel
from repro.core.comparison import (
    ArchitectureSummary,
    compare_optimal_designs,
    compare_extensible,
    summarize_architectures,
)
from repro.core.throughput import (
    PrototypeThroughputModel,
    realized_update_rate,
)
from repro.core.regimes import (
    RegimePoint,
    architecture_throughputs,
    regime_map,
)
from repro.core.machines import (
    MachineModel,
    PERIOD_MACHINES,
    machine_comparison_rows,
    io_bound_update_rate,
)
from repro.core.bounds import (
    update_rate_upper_bound,
    storage_for_target_rate,
    bandwidth_for_target_rate,
)

__all__ = [
    "ChipTechnology",
    "PAPER_TECHNOLOGY",
    "DesignPoint",
    "DesignCurve",
    "feasibility_corner",
    "sample_curve",
    "WSADesign",
    "WSAModel",
    "SPADesign",
    "SPAModel",
    "WSAEDesign",
    "WSAEModel",
    "ArchitectureSummary",
    "compare_optimal_designs",
    "compare_extensible",
    "summarize_architectures",
    "PrototypeThroughputModel",
    "realized_update_rate",
    "RegimePoint",
    "architecture_throughputs",
    "regime_map",
    "MachineModel",
    "PERIOD_MACHINES",
    "machine_comparison_rows",
    "io_bound_update_rate",
    "update_rate_upper_bound",
    "storage_for_target_rate",
    "bandwidth_for_target_rate",
]
